//! Cross-crate randomized property tests: codec roundtrips, clip algebra,
//! tiling/LZW invariants, index-vs-model equivalence, grid covering laws.
//! Cases are generated with the deterministic in-repo PRNG, so every run
//! exercises the same inputs.

use paradise_array::{lzw, ElemType, NdArray, TileMap};
use paradise_exec::tuple::Tuple;
use paradise_exec::value::{Date, Value};
use paradise_geom::{algorithms::clip, Grid, Point, Polygon, Rect};
use paradise_util::Rng;

fn point(rng: &mut Rng) -> Point {
    Point::new(rng.gen_range(-180.0..180.0), rng.gen_range(-90.0..90.0))
}

fn rect(rng: &mut Rng) -> Rect {
    Rect::from_corners(point(rng), point(rng)).unwrap()
}

/// A star-shaped polygon around a center: always simple.
fn polygon(rng: &mut Rng) -> Polygon {
    let c = point(rng);
    let n = rng.gen_range(3usize..12);
    let ring: Vec<Point> = (0..n)
        .map(|i| {
            let r = rng.gen_range(0.1f64..8.0);
            let a = std::f64::consts::TAU * i as f64 / n as f64;
            Point::new(c.x + r * a.cos(), c.y + r * a.sin())
        })
        .collect();
    Polygon::new(ring).unwrap()
}

#[test]
fn lzw_roundtrips_arbitrary_bytes() {
    let mut rng = Rng::seed_from_u64(1);
    for case in 0..64 {
        let n = rng.gen_range(0usize..4096);
        let data = rng.bytes(n);
        let packed = lzw::compress(&data);
        assert_eq!(lzw::decompress(&packed).unwrap(), data, "case {case}");
    }
}

#[test]
fn maybe_compress_roundtrips() {
    let mut rng = Rng::seed_from_u64(2);
    for _ in 0..64 {
        let n = rng.gen_range(0usize..2048);
        let data = rng.bytes(n);
        let (bytes, flag) = lzw::maybe_compress(&data);
        assert_eq!(lzw::maybe_decompress(&bytes, flag).unwrap(), data);
    }
}

#[test]
fn value_codec_roundtrips() {
    let mut rng = Rng::seed_from_u64(3);
    for _ in 0..64 {
        let s: String = (0..rng.gen_range(0usize..40))
            .map(|_| (b'a' + (rng.index(26) as u8)) as char)
            .collect();
        for v in [
            Value::Int(rng.next_u64() as i64),
            Value::Float(rng.gen_range(-1e12f64..1e12)),
            Value::Str(s.clone()),
            Value::Date(Date(rng.gen_range(-1_000_000i64..1_000_000))),
            Value::Null,
        ] {
            let t = Tuple::new(vec![v]);
            assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
        }
    }
}

#[test]
fn shape_codec_roundtrips() {
    let mut rng = Rng::seed_from_u64(4);
    for _ in 0..64 {
        let t = Tuple::new(vec![Value::Shape(paradise_geom::Shape::Polygon(polygon(&mut rng)))]);
        assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }
}

#[test]
fn clip_area_never_exceeds_either_operand() {
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..64 {
        let poly = polygon(&mut rng);
        let window = rect(&mut rng);
        let a = clip::clipped_area(&poly, &window);
        assert!(a <= poly.area() + 1e-6);
        assert!(a <= window.area() + 1e-6);
        assert!(a >= 0.0);
        // Clip against the polygon's own bbox is the whole polygon.
        let full = clip::clipped_area(&poly, &poly.bbox());
        assert!((full - poly.area()).abs() < 1e-6 * poly.area().max(1.0));
    }
}

#[test]
fn clip_result_lies_within_window() {
    let mut rng = Rng::seed_from_u64(6);
    for _ in 0..64 {
        let poly = polygon(&mut rng);
        let window = rect(&mut rng);
        if let Some(clipped) = clip::clip_polygon_to_rect(&poly, &window) {
            assert!(window.expand(1e-9).contains_rect(&clipped.bbox()));
        }
    }
}

#[test]
fn grid_tiles_cover_their_shapes() {
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..64 {
        let r = rect(&mut rng);
        let tiles = rng.gen_range(4u32..2000);
        let world = Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).unwrap();
        let grid = Grid::with_tile_count(world, tiles).unwrap();
        let ids = grid.tile_ids_for_rect(&r);
        assert!(!ids.is_empty());
        // Every returned tile intersects the rect (clamped to universe).
        let clamped = r.intersection(&world).unwrap_or(r);
        for id in &ids {
            assert!(grid.tile_rect(*id).expand(1e-9).intersects(&clamped));
        }
        // The union of returned tiles covers the clamped rect.
        let union = ids.iter().map(|&i| grid.tile_rect(i)).reduce(|a, b| a.union(&b)).unwrap();
        assert!(union.expand(1e-9).contains_rect(&clamped));
    }
}

#[test]
fn tilemap_roundtrips_arbitrary_2d_arrays() {
    let mut rng = Rng::seed_from_u64(8);
    for _ in 0..48 {
        let h = rng.gen_range(1usize..40);
        let w = rng.gen_range(1usize..40);
        let target = rng.gen_range(16usize..512);
        let mut a = NdArray::zeros(vec![h, w], ElemType::U16).unwrap();
        for i in 0..a.num_elems() {
            a.set_linear(i, rng.next_u64() % 65_536);
        }
        let map = TileMap::build(&a, target).unwrap();
        assert_eq!(map.assemble().unwrap(), a.clone());
        // Any sub-region read matches the direct subarray.
        if h > 2 && w > 2 {
            let (r, _) = map.read_region(&[1, 1], &[h - 2, w - 2]).unwrap();
            assert_eq!(r, a.subarray(&[1, 1], &[h - 2, w - 2]).unwrap());
        }
    }
}

#[test]
fn btree_agrees_with_model() {
    use std::collections::BTreeMap;
    let mut rng = Rng::seed_from_u64(9);
    let dir = std::env::temp_dir().join(format!("paradise-prop-bt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for case in 0..16 {
        let path = dir.join(format!("t{case}.vol"));
        let _ = std::fs::remove_file(&path);
        let vol = std::sync::Arc::new(paradise_storage::Volume::create(&path).unwrap());
        let pool = std::sync::Arc::new(paradise_storage::BufferPool::new(vol, 128));
        let tree = paradise_storage::btree::BTree::create(pool).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u64>> = BTreeMap::new();
        for _ in 0..rng.gen_range(1usize..300) {
            let key = ((rng.next_u64() & 0xFFFF) as u16).to_be_bytes().to_vec();
            let v = rng.next_u64() & 0xFF;
            tree.insert(&key, v).unwrap();
            model.entry(key).or_default().push(v);
        }
        for (key, vals) in &model {
            let mut got = tree.get_all(key).unwrap();
            let mut want = vals.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
        let total: usize = model.values().map(|v| v.len()).sum();
        assert_eq!(tree.len().unwrap(), total);
    }
}

#[test]
fn rtree_search_agrees_with_linear_scan() {
    let mut rng = Rng::seed_from_u64(10);
    for _ in 0..48 {
        let n = rng.gen_range(1usize..150);
        let entries: Vec<(Rect, u64)> = (0..n)
            .map(|i| {
                let p = point(&mut rng);
                let w = rng.gen_range(0.1f64..5.0);
                let h = rng.gen_range(0.1f64..5.0);
                (Rect::from_corners(p, Point::new(p.x + w, p.y + h)).unwrap(), i as u64)
            })
            .collect();
        let window = rect(&mut rng);
        let tree = paradise_storage::RTree::bulk_load(entries.clone());
        let mut got: Vec<u64> = tree.search(&window).iter().map(|(_, v)| *v).collect();
        got.sort_unstable();
        let mut want: Vec<u64> =
            entries.iter().filter(|(r, _)| r.intersects(&window)).map(|(_, v)| *v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

fn random_sample(rng: &mut Rng) -> paradise::obs::MetricSample {
    use paradise::obs::{MetricSample, SampleKind};
    let name: String =
        (0..rng.gen_range(0usize..24)).map(|_| (b'a' + (rng.index(26) as u8)) as char).collect();
    let kind = if rng.index(2) == 0 { SampleKind::Counter } else { SampleKind::Gauge };
    MetricSample::new(name, kind, rng.next_u64())
}

fn random_frame(rng: &mut Rng) -> paradise::net::frame::Frame {
    use paradise::net::frame::Frame;
    let name: String =
        (0..rng.gen_range(1usize..20)).map(|_| (b'a' + (rng.index(26) as u8)) as char).collect();
    match rng.index(10) {
        0 => Frame::OpenStream { stream: rng.next_u64(), window: rng.next_u64() as u32 },
        1 => {
            let n = rng.gen_range(0usize..256);
            Frame::Tuple(rng.bytes(n))
        }
        2 => Frame::Eos,
        3 => Frame::Credit(rng.next_u64() as u32),
        4 => {
            let mut oid = [0u8; 10];
            oid.copy_from_slice(&rng.bytes(10));
            Frame::PullTile(oid)
        }
        5 => {
            let n = rng.gen_range(0usize..512);
            Frame::TileData(rng.bytes(n))
        }
        6 => Frame::Scan { file: name, window: rng.next_u64() as u32 },
        7 => Frame::Error(name),
        8 => Frame::StatsPull,
        _ => Frame::StatsReply((0..rng.gen_range(0usize..8)).map(|_| random_sample(rng)).collect()),
    }
}

#[test]
fn wire_frames_roundtrip() {
    use paradise::net::frame::Frame;
    let mut rng = Rng::seed_from_u64(11);
    for case in 0..256 {
        let f = random_frame(&mut rng);
        let bytes = f.to_bytes();
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4, "case {case}: length prefix");
        assert_eq!(Frame::from_body(&bytes[4..]).unwrap(), f, "case {case}: {f:?}");
    }
}

/// Truncating a frame body must never panic, and any prefix the decoder
/// *does* accept must re-encode to exactly that prefix (i.e. the decoder
/// never invents trailing data).
#[test]
fn truncated_frame_bodies_fail_closed() {
    use paradise::net::frame::Frame;
    let mut rng = Rng::seed_from_u64(12);
    for _ in 0..128 {
        let f = random_frame(&mut rng);
        let body = &f.to_bytes()[4..];
        for cut in 0..body.len() {
            if let Ok(g) = Frame::from_body(&body[..cut]) {
                assert_eq!(
                    &g.to_bytes()[4..],
                    &body[..cut],
                    "decoder accepted {cut} bytes of {f:?} as {g:?} but re-encodes differently"
                );
            }
        }
        // Fixed-size payloads reject truncation outright.
        if matches!(f, Frame::OpenStream { .. } | Frame::Credit(_) | Frame::PullTile(_)) {
            assert!(Frame::from_body(&body[..body.len() - 1]).is_err(), "{f:?}");
        }
    }
    // An empty body is not a frame at all.
    assert!(Frame::from_body(&[]).is_err());
    // Unknown tags are rejected.
    assert!(Frame::from_body(&[42]).is_err());
}

/// `lzw::decompress` fails closed: arbitrary streams and bit-flipped
/// valid streams return `Ok` or `Err` — never a panic, never a runaway
/// allocation loop.
#[test]
fn lzw_decompress_fails_closed_on_garbage() {
    let mut rng = Rng::seed_from_u64(13);
    for _ in 0..128 {
        let n = rng.gen_range(0usize..2048);
        let junk = rng.bytes(n);
        let _ = lzw::decompress(&junk); // must return, Ok or Err
    }
    for _ in 0..64 {
        let n = rng.gen_range(1usize..1024);
        let mut packed = lzw::compress(&rng.bytes(n));
        if packed.is_empty() {
            continue;
        }
        // One flipped bit, one truncation.
        let at = rng.index(packed.len());
        packed[at] ^= 1 << rng.index(8);
        let _ = lzw::decompress(&packed);
        let cut = rng.index(packed.len());
        let _ = lzw::decompress(&packed[..cut]);
    }
}

/// `read_frame` fails closed on a hostile byte stream: arbitrary bytes,
/// truncated frames, and bit-flipped frames all produce `Ok` or `Err` in
/// bounded time — never a panic, hang, or huge allocation (the length
/// prefix is capped before any buffer is sized).
#[test]
fn read_frame_fails_closed_on_hostile_streams() {
    use paradise::net::frame::{read_frame, Frame};
    use std::io::Cursor;
    let mut rng = Rng::seed_from_u64(14);
    for _ in 0..128 {
        let n = rng.gen_range(0usize..512);
        let _ = read_frame(&mut Cursor::new(rng.bytes(n)));
    }
    // An absurd length prefix is rejected without allocating it.
    let mut huge = u32::MAX.to_le_bytes().to_vec();
    huge.extend_from_slice(&[0u8; 16]);
    assert!(read_frame(&mut Cursor::new(huge)).is_err(), "oversized frame must be rejected");
    for _ in 0..64 {
        let bytes = random_frame(&mut rng).to_bytes();
        // Bit flip anywhere in the wire image (length prefix included).
        let mut flipped = bytes.clone();
        let at = rng.index(flipped.len());
        flipped[at] ^= 1 << rng.index(8);
        let _ = read_frame(&mut Cursor::new(flipped));
        // Truncation mid-frame.
        let cut = rng.index(bytes.len());
        let _ = read_frame(&mut Cursor::new(bytes[..cut].to_vec()));
    }
    // A clean frame still decodes after surviving all of the above.
    let f = Frame::Credit(7);
    match read_frame(&mut Cursor::new(f.to_bytes())).unwrap() {
        paradise::net::frame::ReadOutcome::Frame(g) => assert_eq!(g, f),
        other => panic!("expected frame, got {other:?}"),
    }
}

/// `Wal::replay` fails closed: a WAL file holding arbitrary bytes, a torn
/// tail, or a bit-flipped record replays to `Ok` (discarding the garbage
/// as an uncommitted tail) or a clean `Err` — never a panic — and never
/// applies an uncommitted batch.
#[test]
fn wal_replay_fails_closed_on_corrupt_logs() {
    use paradise_storage::{page::PAGE_SIZE, volume::Volume, wal::Wal};
    use std::io::Write as _;
    let mut rng = Rng::seed_from_u64(15);
    let dir = std::env::temp_dir().join(format!("paradise-prop-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let vol = Volume::create(dir.join("vol")).unwrap();
    let pid = vol.alloc_extent().unwrap();
    let baseline = [0x5A; PAGE_SIZE];
    vol.write_page_bytes(pid, &baseline).unwrap();

    for case in 0..96 {
        let path = dir.join(format!("wal-{case}"));
        let mut contents = match case % 3 {
            // Arbitrary bytes.
            0 => {
                let n = rng.gen_range(0usize..4096);
                rng.bytes(n)
            }
            // A valid committed batch, then bit-flip one byte.
            1 => {
                let w = Wal::open(&path).unwrap();
                w.log_commit(&[(pid, &[case as u8; PAGE_SIZE])]).unwrap();
                let mut b = std::fs::read(&path).unwrap();
                let at = rng.index(b.len());
                b[at] ^= 1 << rng.index(8);
                b
            }
            // A valid batch with a torn (truncated) tail.
            _ => {
                let w = Wal::open(&path).unwrap();
                w.log_commit(&[(pid, &[case as u8; PAGE_SIZE])]).unwrap();
                let b = std::fs::read(&path).unwrap();
                let keep = rng.gen_range(0usize..b.len());
                b[..keep].to_vec()
            }
        };
        // Torn tails must never replay: whatever survives decoding either
        // carries its commit record or is discarded.
        if case % 3 == 2 {
            // Guarantee the tail is torn before the commit record.
            contents.truncate(contents.len().saturating_sub(13).min(contents.len()));
        }
        std::fs::remove_file(&path).ok();
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&contents).unwrap();
        drop(f);
        let wal = Wal::open(&path).unwrap();
        match wal.replay(&vol) {
            Ok(_) | Err(_) => {} // fail closed: returning at all is the property
        }
        if case % 3 == 2 {
            // The torn batch never committed, so the page is untouched.
            assert_eq!(
                vol.read_page(pid).unwrap().bytes(),
                &baseline,
                "case {case}: torn tail must not replay"
            );
        } else {
            // Restore the baseline in case a (validly-framed) flip applied.
            vol.write_page_bytes(pid, &baseline).unwrap();
        }
    }
}
