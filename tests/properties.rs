//! Cross-crate property-based tests (proptest): codec roundtrips, clip
//! algebra, tiling/LZW invariants, index-vs-model equivalence, grid
//! covering laws.

use paradise_array::{lzw, ElemType, NdArray, TileMap};
use paradise_exec::tuple::Tuple;
use paradise_exec::value::{Date, Value};
use paradise_geom::{algorithms::clip, Grid, Point, Polygon, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-180.0f64..180.0, -90.0f64..90.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b).unwrap())
}

fn arb_polygon() -> impl Strategy<Value = Polygon> {
    // A star-shaped polygon around a center: always simple.
    (
        arb_point(),
        proptest::collection::vec(0.1f64..8.0, 3..12),
    )
        .prop_map(|(c, radii)| {
            let n = radii.len();
            let ring: Vec<Point> = radii
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    let a = std::f64::consts::TAU * i as f64 / n as f64;
                    Point::new(c.x + r * a.cos(), c.y + r * a.sin())
                })
                .collect();
            Polygon::new(ring).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lzw_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = lzw::compress(&data);
        prop_assert_eq!(lzw::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn maybe_compress_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (bytes, flag) = lzw::maybe_compress(&data);
        prop_assert_eq!(lzw::maybe_decompress(&bytes, flag).unwrap(), data);
    }

    #[test]
    fn value_codec_roundtrips(
        i in any::<i64>(),
        f in -1e12f64..1e12,
        s in "[a-zA-Z0-9 _-]{0,40}",
        days in -1_000_000i64..1_000_000,
    ) {
        for v in [
            Value::Int(i),
            Value::Float(f),
            Value::Str(s.clone()),
            Value::Date(Date(days)),
            Value::Null,
        ] {
            let t = Tuple::new(vec![v]);
            prop_assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
        }
    }

    #[test]
    fn shape_codec_roundtrips(poly in arb_polygon()) {
        let t = Tuple::new(vec![Value::Shape(paradise_geom::Shape::Polygon(poly))]);
        prop_assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn clip_area_never_exceeds_either_operand(poly in arb_polygon(), window in arb_rect()) {
        let a = clip::clipped_area(&poly, &window);
        prop_assert!(a <= poly.area() + 1e-6);
        prop_assert!(a <= window.area() + 1e-6);
        prop_assert!(a >= 0.0);
        // Clip against the polygon's own bbox is the whole polygon.
        let full = clip::clipped_area(&poly, &poly.bbox());
        prop_assert!((full - poly.area()).abs() < 1e-6 * poly.area().max(1.0));
    }

    #[test]
    fn clip_result_lies_within_window(poly in arb_polygon(), window in arb_rect()) {
        if let Some(clipped) = clip::clip_polygon_to_rect(&poly, &window) {
            prop_assert!(window.expand(1e-9).contains_rect(&clipped.bbox()));
        }
    }

    #[test]
    fn grid_tiles_cover_their_shapes(rect in arb_rect(), tiles in 4u32..2000) {
        let world = Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).unwrap();
        let grid = Grid::with_tile_count(world, tiles).unwrap();
        let ids = grid.tile_ids_for_rect(&rect);
        prop_assert!(!ids.is_empty());
        // Every returned tile intersects the rect (clamped to universe).
        let clamped = rect.intersection(&world).unwrap_or(rect);
        for id in &ids {
            prop_assert!(grid.tile_rect(*id).expand(1e-9).intersects(&clamped));
        }
        // The union of returned tiles covers the clamped rect.
        let union = ids
            .iter()
            .map(|&i| grid.tile_rect(i))
            .reduce(|a, b| a.union(&b))
            .unwrap();
        prop_assert!(union.expand(1e-9).contains_rect(&clamped));
    }

    #[test]
    fn tilemap_roundtrips_arbitrary_2d_arrays(
        h in 1usize..40,
        w in 1usize..40,
        target in 16usize..512,
        seed in any::<u64>(),
    ) {
        let mut a = NdArray::zeros(vec![h, w], ElemType::U16).unwrap();
        let mut x = seed | 1;
        for i in 0..a.num_elems() {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            a.set_linear(i, x % 65_536);
        }
        let map = TileMap::build(&a, target).unwrap();
        prop_assert_eq!(map.assemble().unwrap(), a.clone());
        // Any sub-region read matches the direct subarray.
        if h > 2 && w > 2 {
            let (r, _) = map.read_region(&[1, 1], &[h - 2, w - 2]).unwrap();
            prop_assert_eq!(r, a.subarray(&[1, 1], &[h - 2, w - 2]).unwrap());
        }
    }

    #[test]
    fn btree_agrees_with_model(ops in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..300)) {
        use std::collections::BTreeMap;
        let dir = std::env::temp_dir().join(format!("paradise-prop-bt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{}.vol", rand_suffix(&ops)));
        let vol = std::sync::Arc::new(paradise_storage::Volume::create(&path).unwrap());
        let pool = std::sync::Arc::new(paradise_storage::BufferPool::new(vol, 128));
        let tree = paradise_storage::btree::BTree::create(pool).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u64>> = BTreeMap::new();
        for (k, v) in &ops {
            let key = k.to_be_bytes().to_vec();
            tree.insert(&key, u64::from(*v)).unwrap();
            model.entry(key).or_default().push(u64::from(*v));
        }
        for (key, vals) in &model {
            let mut got = tree.get_all(key).unwrap();
            let mut want = vals.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
        let total: usize = model.values().map(|v| v.len()).sum();
        prop_assert_eq!(tree.len().unwrap(), total);
    }

    #[test]
    fn rtree_search_agrees_with_linear_scan(
        rects in proptest::collection::vec((arb_point(), 0.1f64..5.0, 0.1f64..5.0), 1..150),
        window in arb_rect(),
    ) {
        let entries: Vec<(Rect, u64)> = rects
            .iter()
            .enumerate()
            .map(|(i, (p, w, h))| {
                (
                    Rect::from_corners(*p, Point::new(p.x + w, p.y + h)).unwrap(),
                    i as u64,
                )
            })
            .collect();
        let tree = paradise_storage::RTree::bulk_load(entries.clone());
        let mut got: Vec<u64> = tree.search(&window).iter().map(|(_, v)| *v).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = entries
            .iter()
            .filter(|(r, _)| r.intersects(&window))
            .map(|(_, v)| *v)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

/// Cheap deterministic suffix so parallel proptest cases do not collide on
/// the same volume file.
fn rand_suffix(ops: &[(u16, u8)]) -> u64 {
    let mut h: u64 = 1469598103934665603;
    for (a, b) in ops {
        h ^= u64::from(*a) << 8 | u64::from(*b);
        h = h.wrapping_mul(1099511628211);
    }
    h
}
