//! Shape checks for the paper's headline claims at miniature scale:
//! speedup (fixed data, more nodes → less simulated time for the heavy
//! queries) and scaleup (data grown with nodes → roughly flat time), plus
//! the §3.1.3 data-scaleup invariants.

use paradise::queries;
use paradise::{Paradise, ParadiseConfig};
use paradise_datagen::tables::{
    drainage_table, land_cover_table, populated_places_table, raster_table, roads_table, World,
    WorldSpec,
};

fn load(nodes: usize, scale: usize, tag: &str) -> Paradise {
    let world = World::generate(WorldSpec::paper_ratio(3, scale, 3000));
    let dir = std::env::temp_dir()
        .join(format!("paradise-it-scale-{}-{tag}-{nodes}-{scale}", std::process::id()));
    let mut db = Paradise::create(ParadiseConfig::new(dir, nodes).with_grid_tiles(1024)).unwrap();
    db.define_table(raster_table().with_tile_bytes(4096));
    db.define_table(populated_places_table());
    db.define_table(roads_table());
    db.define_table(drainage_table());
    db.define_table(land_cover_table());
    db.load_table("raster", world.rasters.iter().cloned()).unwrap();
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).unwrap();
    db.load_table("roads", world.roads.iter().cloned()).unwrap();
    db.load_table("drainage", world.drainage.iter().cloned()).unwrap();
    db.load_table("landCover", world.land_cover.iter().cloned()).unwrap();
    db.create_rtree_index("landCover", 2).unwrap();
    db.commit().unwrap();
    db
}

/// Median-of-3 simulated seconds for a query runner.
fn sim3(mut f: impl FnMut() -> f64) -> f64 {
    let mut v = [f(), f(), f()];
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[1]
}

#[test]
fn q13_speeds_up_with_more_nodes() {
    // The paper's heaviest query (Q13) "uniformly showed good speedup".
    let db2 = load(2, 1, "sp");
    let db8 = load(8, 1, "sp");
    let t2 = sim3(|| queries::q13(&db2).unwrap().metrics.simulated_time().as_secs_f64());
    let t8 = sim3(|| queries::q13(&db8).unwrap().metrics.simulated_time().as_secs_f64());
    // Perfect speedup would be 4x; demand at least 1.8x to stay robust.
    assert!(t8 < t2 / 1.8, "Q13 should speed up with nodes: 2n={t2:.4}s 8n={t8:.4}s");
}

#[test]
fn q2_scales_up_roughly_flat() {
    // Scaleup: double the nodes AND the data — per-node work stays put.
    let a = load(2, 1, "su");
    let b = load(4, 2, "su");
    let ta = sim3(|| {
        queries::q2(&a, 5, &paradise_datagen::tables::us_polygon())
            .unwrap()
            .metrics
            .simulated_time()
            .as_secs_f64()
    });
    let tb = sim3(|| {
        queries::q2(&b, 5, &paradise_datagen::tables::us_polygon())
            .unwrap()
            .metrics
            .simulated_time()
            .as_secs_f64()
    });
    // Flat within 2.5x either way (generous: tiny absolute times).
    assert!(
        tb < ta * 2.5 && ta < tb * 2.5,
        "Q2 scaleup should be roughly flat: {ta:.4}s vs {tb:.4}s"
    );
}

#[test]
fn data_scaleup_matches_table_31_shape() {
    // Table 3.1's columns: tuple counts double for the vector tables,
    // raster tuple count stays fixed while raster bytes double.
    let w1 = World::generate(WorldSpec::paper_ratio(1, 1, 4000));
    let w2 = World::generate(WorldSpec::paper_ratio(1, 2, 4000));
    let w4 = World::generate(WorldSpec::paper_ratio(1, 4, 4000));
    assert_eq!(w2.populated_places.len(), 2 * w1.populated_places.len());
    assert_eq!(w4.populated_places.len(), 4 * w1.populated_places.len());
    assert_eq!(w2.roads.len(), 2 * w1.roads.len());
    assert_eq!(w2.drainage.len(), 2 * w1.drainage.len());
    assert_eq!(w2.land_cover.len(), 2 * w1.land_cover.len());
    assert_eq!(w1.rasters.len(), w2.rasters.len());
    assert_eq!(w2.raster_bytes(), 2 * w1.raster_bytes());
    assert_eq!(w4.raster_bytes(), 4 * w1.raster_bytes());
    // Total vector points roughly double too (the paper's other axis).
    let pts = |w: &World| -> usize {
        w.drainage.iter().map(|t| t.get(2).unwrap().as_shape().unwrap().num_points()).sum()
    };
    let (p1, p2) = (pts(&w1), pts(&w2));
    assert!(
        p2 as f64 > 1.7 * p1 as f64 && (p2 as f64) < 2.3 * p1 as f64,
        "drainage points should ~double: {p1} -> {p2}"
    );
}

#[test]
fn spatial_skew_exists_but_many_partitions_smooth_it() {
    // §2.7.1: with few partitions the land/ocean skew is dramatic; with
    // thousands of tiles the per-NODE load evens out.
    let world = World::generate(WorldSpec::paper_ratio(8, 1, 4000));
    let db = load(4, 1, "skew");
    let cluster = db.cluster();
    let _ = world;
    let drainage = db.table("drainage").unwrap();
    let counts: Vec<u64> = (0..4)
        .map(|n| {
            cluster.node(n).store.file(&drainage.fragment_file()).map(|f| f.count()).unwrap_or(0)
        })
        .collect();
    let max = *counts.iter().max().unwrap() as f64;
    let min = *counts.iter().min().unwrap().max(&1) as f64;
    assert!(max / min < 3.0, "hashed tiles should balance node load: {counts:?}");
}
