//! End-to-end correctness of the fourteen benchmark queries on a small
//! world, checked against brute-force evaluation of the paper's SQL
//! semantics wherever feasible.

use paradise::queries::{self, LC_SHAPE, LC_TYPE, LINE_SHAPE, LINE_TYPE, PP_LOC, PP_NAME, PP_TYPE};
use paradise::{Paradise, ParadiseConfig};
use paradise_datagen::tables::{
    self, drainage_table, land_cover_table, populated_places_table, raster_table, roads_table,
    World, WorldSpec, LARGE_CITY, OIL_FIELD, QUERY_CHANNEL,
};
use paradise_exec::value::{Date, RasterValue, Value};
use paradise_geom::{Point, Shape};

fn load_world(nodes: usize, tag: &str) -> (Paradise, World) {
    let world = World::generate(WorldSpec::paper_ratio(5, 1, 4000));
    let dir = std::env::temp_dir()
        .join(format!("paradise-it-suite-{}-{tag}-{nodes}", std::process::id()));
    let mut db = Paradise::create(
        ParadiseConfig::new(dir, nodes).with_grid_tiles(1024).with_pool_pages(2048),
    )
    .unwrap();
    db.define_table(raster_table().with_tile_bytes(4096));
    db.define_table(populated_places_table());
    db.define_table(roads_table());
    db.define_table(drainage_table());
    db.define_table(land_cover_table());
    db.load_table("raster", world.rasters.iter().cloned()).unwrap();
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).unwrap();
    db.load_table("roads", world.roads.iter().cloned()).unwrap();
    db.load_table("drainage", world.drainage.iter().cloned()).unwrap();
    db.load_table("landCover", world.land_cover.iter().cloned()).unwrap();
    db.create_btree_index("populatedPlaces", PP_NAME).unwrap();
    db.create_rtree_index("landCover", LC_SHAPE).unwrap();
    db.create_rtree_index("roads", LINE_SHAPE).unwrap();
    db.create_rtree_index("drainage", LINE_SHAPE).unwrap();
    db.commit().unwrap();
    (db, world)
}

#[test]
fn full_benchmark_suite_is_correct() {
    let (db, world) = load_world(4, "full");
    let us = tables::us_polygon();
    let d = tables::query_date();

    // ---- Q2: one row per channel-5 raster whose clip is non-empty ------
    let q2 = queries::q2(&db, QUERY_CHANNEL, &us).unwrap();
    let expect_q2 = world
        .rasters
        .iter()
        .filter(|t| t.get(1).unwrap().as_int().unwrap() == QUERY_CHANNEL)
        .count();
    assert_eq!(q2.rows.len(), expect_q2, "Q2 cardinality");
    // sorted by date
    let dates: Vec<Date> = q2.rows.iter().map(|r| r.get(0).unwrap().as_date().unwrap()).collect();
    assert!(dates.windows(2).all(|w| w[0] <= w[1]), "Q2 order by date");
    // Each clip covers the US box (58 deg wide), snapped outward to whole
    // pixels (4 deg/pixel at the 90x45 base resolution).
    if let Value::Raster(RasterValue::Mem(r)) = q2.rows[0].get(1).unwrap() {
        assert!(
            r.geo().width() >= 58.0 && r.geo().width() <= 58.0 + 2.0 * 4.0,
            "clip geo width {}",
            r.geo().width()
        );
        assert!(
            r.geo().contains_rect(&us.bbox())
                || us.bbox().contains_rect(&r.geo())
                || r.geo().intersects(&us.bbox())
        );
    } else {
        panic!("Q2 must return clipped rasters");
    }

    // ---- Q3: the average image over the date's 4 channels --------------
    let q3 = queries::q3(&db, d, &us, false).unwrap();
    assert_eq!(q3.rows.len(), 1);
    let Value::Raster(RasterValue::Mem(avg)) = q3.rows[0].get(0).unwrap() else {
        panic!("Q3 returns a raster");
    };
    assert!(avg.average().unwrap() > 0.0);
    // Pulls happened: node 0 fetched remote tiles of rasters it does not own.
    assert!(!q3.metrics.phases.is_empty());

    // ---- Q4: single raster, lower-res output ---------------------------
    let q4 = queries::q4(&db, d, QUERY_CHANNEL, &us, 8).unwrap();
    assert_eq!(q4.rows.len(), 1, "exactly one raster matches date+channel");
    let Value::Raster(RasterValue::Mem(low)) = q4.rows[0].get(2).unwrap() else {
        panic!("Q4 returns a raster");
    };
    assert!(low.width() <= 58 / 8 + 1);

    // ---- Q5: Phoenix ----------------------------------------------------
    let q5 = queries::q5(&db, "Phoenix").unwrap();
    let expect_q5 = world
        .populated_places
        .iter()
        .filter(|t| t.get(PP_NAME).unwrap().as_str().unwrap() == "Phoenix")
        .count();
    assert_eq!(q5.rows.len(), expect_q5);
    assert!(expect_q5 >= 1);

    // ---- Q6: polygons overlapping the US box (vs brute force) ----------
    let q6 = queries::q6(&db, &us).unwrap();
    let brute_q6 = world
        .land_cover
        .iter()
        .filter(|t| {
            t.get(LC_SHAPE).unwrap().as_shape().unwrap().overlaps(&Shape::Polygon(us.clone()))
        })
        .count();
    assert_eq!(q6.rows.len(), brute_q6, "Q6 must match brute force (no dups, no misses)");

    // ---- Q7: circle containment + area filter (vs brute force) ---------
    let (center, radius, max_area) = (Point::new(-90.0, 40.0), 25.0, 3.0);
    let q7 = queries::q7(&db, center, radius, max_area).unwrap();
    let circle = paradise_geom::Circle::new(center, radius).unwrap();
    let brute_q7 = world
        .land_cover
        .iter()
        .filter(|t| {
            let Shape::Polygon(p) = t.get(LC_SHAPE).unwrap().as_shape().unwrap() else {
                return false;
            };
            p.within_circle(&circle) && p.area() < max_area
        })
        .count();
    assert_eq!(q7.rows.len(), brute_q7, "Q7 must match brute force");

    // ---- Q8: polygons near Louisville (vs brute force) ------------------
    let q8 = queries::q8(&db, "Louisville", 8.0).unwrap();
    let mut brute_q8 = 0;
    for c in world
        .populated_places
        .iter()
        .filter(|t| t.get(PP_NAME).unwrap().as_str().unwrap() == "Louisville")
    {
        let p = c.get(PP_LOC).unwrap().as_shape().unwrap().as_point().unwrap();
        let b = p.make_box(8.0);
        brute_q8 += world
            .land_cover
            .iter()
            .filter(|t| t.get(LC_SHAPE).unwrap().as_shape().unwrap().overlaps(&Shape::Rect(b)))
            .count();
    }
    assert_eq!(q8.rows.len(), brute_q8, "Q8 must match brute force");

    // ---- Q9: oil polygons x one raster ----------------------------------
    let q9 = queries::q9(&db, d, QUERY_CHANNEL, OIL_FIELD).unwrap();
    let oil_count = {
        let mut ids = std::collections::HashSet::new();
        for t in &world.land_cover {
            if t.get(LC_TYPE).unwrap().as_int().unwrap() == OIL_FIELD {
                ids.insert(t.get(0).unwrap().as_str().unwrap().to_string());
            }
        }
        ids.len()
    };
    // Every oil polygon lies inside the world = inside the raster.
    assert_eq!(q9.rows.len(), oil_count, "Q9: one clip per oil polygon");

    // ---- Q10: threshold filter ------------------------------------------
    let q10 = queries::q10(&db, &us, 25_000.0).unwrap();
    assert!(q10.rows.len() <= world.rasters.len());
    for row in &q10.rows {
        let Value::Raster(RasterValue::Mem(r)) = row.get(2).unwrap() else {
            panic!("Q10 returns clips");
        };
        assert!(r.average().unwrap() > 25_000.0, "Q10 predicate must hold");
    }
    // The latitude-gradient rasters have means well below 40k and above 10k,
    // so the threshold should separate: some rows pass, not all.
    assert!(!q10.rows.is_empty(), "Q10 should select something");

    // ---- Q11: closest road per type (vs brute force) ---------------------
    let probe = Point::new(-89.4, 43.1);
    let q11 = queries::q11(&db, probe).unwrap();
    let mut brute: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
    for t in &world.roads {
        let ty = t.get(LINE_TYPE).unwrap().as_int().unwrap();
        let dd = t.get(LINE_SHAPE).unwrap().as_shape().unwrap().distance_to_point(&probe);
        let e = brute.entry(ty).or_insert(f64::INFINITY);
        if dd < *e {
            *e = dd;
        }
    }
    assert_eq!(q11.rows.len(), brute.len(), "Q11: one row per road type");
    for row in &q11.rows {
        let ty = row.get(1).unwrap().as_int().unwrap();
        let dist = row.get(2).unwrap().as_float().unwrap();
        assert!((dist - brute[&ty]).abs() < 1e-9, "Q11 type {ty}");
    }

    // ---- Q12: closest drainage to each large city (vs brute force) -------
    let q12 = queries::q12(&db, LARGE_CITY, true).unwrap();
    let cities: Vec<Point> = world
        .populated_places
        .iter()
        .filter(|t| t.get(PP_TYPE).unwrap().as_int().unwrap() == LARGE_CITY)
        .map(|t| t.get(PP_LOC).unwrap().as_shape().unwrap().as_point().unwrap())
        .collect();
    assert_eq!(q12.rows.len(), cities.len(), "Q12: one row per large city");
    for row in &q12.rows {
        let loc = row.get(1).unwrap().as_shape().unwrap().as_point().unwrap();
        let dist = row.get(2).unwrap().as_float().unwrap();
        let brute = world
            .drainage
            .iter()
            .map(|t| t.get(LINE_SHAPE).unwrap().as_shape().unwrap().distance_to_point(&loc))
            .fold(f64::INFINITY, f64::min);
        assert!((dist - brute).abs() < 1e-9, "Q12 city at {loc}");
    }

    // ---- Q13: drainage x roads crossings (vs brute force) ----------------
    let q13 = queries::q13(&db).unwrap();
    let mut brute_q13 = 0usize;
    for a in &world.drainage {
        let sa = a.get(LINE_SHAPE).unwrap().as_shape().unwrap();
        for b in &world.roads {
            if sa.overlaps(b.get(LINE_SHAPE).unwrap().as_shape().unwrap()) {
                brute_q13 += 1;
            }
        }
    }
    assert_eq!(q13.rows.len(), brute_q13, "Q13 must match brute force exactly");
    assert!(brute_q13 > 0, "world should contain crossings");

    // ---- Q14: oil polygons x a season of rasters --------------------------
    let hi = Date(d.0 + 270);
    let q14 = queries::q14(&db, d, hi, QUERY_CHANNEL, OIL_FIELD).unwrap();
    let rasters_in_range = world
        .rasters
        .iter()
        .filter(|t| {
            let rd = t.get(0).unwrap().as_date().unwrap();
            t.get(1).unwrap().as_int().unwrap() == QUERY_CHANNEL && rd >= d && rd <= hi
        })
        .count();
    assert_eq!(q14.rows.len(), oil_count * rasters_in_range, "Q14 cardinality");
    assert!(rasters_in_range > 1, "Q14 must touch several rasters");
}

#[test]
fn q12_semi_join_ablation_same_answers() {
    let (db, _world) = load_world(4, "abl");
    let with = queries::q12(&db, LARGE_CITY, true).unwrap();
    let without = queries::q12(&db, LARGE_CITY, false).unwrap();
    assert_eq!(with.rows.len(), without.rows.len());
    for (a, b) in with.rows.iter().zip(&without.rows) {
        assert_eq!(a.get(1).unwrap(), b.get(1).unwrap());
        let da = a.get(2).unwrap().as_float().unwrap();
        let db_ = b.get(2).unwrap().as_float().unwrap();
        assert!((da - db_).abs() < 1e-9);
    }
}

#[test]
fn results_identical_across_cluster_sizes() {
    // Declustering must never change answers: 2-node and 6-node clusters
    // agree on every deterministic query.
    let (db2, _w) = load_world(2, "n2");
    let (db6, _w) = load_world(6, "n6");
    let us = tables::us_polygon();

    let a = queries::q6(&db2, &us).unwrap();
    let b = queries::q6(&db6, &us).unwrap();
    assert_eq!(a.rows.len(), b.rows.len(), "Q6 across cluster sizes");

    let a = queries::q13(&db2).unwrap();
    let b = queries::q13(&db6).unwrap();
    assert_eq!(a.rows.len(), b.rows.len(), "Q13 across cluster sizes");

    let a = queries::q11(&db2, Point::new(10.0, 10.0)).unwrap();
    let b = queries::q11(&db6, Point::new(10.0, 10.0)).unwrap();
    assert_eq!(a.rows.len(), b.rows.len(), "Q11 across cluster sizes");
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.get(2).unwrap().as_float().unwrap(), y.get(2).unwrap().as_float().unwrap());
    }
}
