//! Chaos tests: deterministic fault injection across storage, net, and
//! exec.
//!
//! The contract under test has two halves:
//!
//! * **Durability (commit-point invariant)** — a crash at *any* point of
//!   the redo-only commit protocol loses at most the uncommitted batch:
//!   batches whose commit record reached the WAL always survive replay,
//!   batches that died before the commit point never resurface.
//! * **Availability (never wrong, never wedged)** — under every network
//!   fault schedule (dropped frames, corrupted frames, connection resets,
//!   lost credit grants, dead data servers, poisoned sender threads) a
//!   query either returns byte-identical results or a clean `ExecError`
//!   within bounded time, and the database stays usable for the next
//!   query.
//!
//! Failpoint state is process-global, so every test here serialises on
//! one mutex and disarms on entry.

use paradise::exec::cluster::{Cluster, ClusterConfig, Transport};
use paradise::exec::value::Value;
use paradise::exec::Tuple;
use paradise::net::{NetConfig, TcpTransport};
use paradise::{queries, Paradise, ParadiseConfig, QueryResult, TransportKind};
use paradise_datagen::tables::{
    self, land_cover_table, populated_places_table, raster_table, World, WorldSpec, QUERY_CHANNEL,
};
use paradise_storage::page::PAGE_SIZE;
use paradise_storage::volume::Volume;
use paradise_storage::wal::Wal;
use paradise_util::failpoint::{self, Policy};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Serialises every chaos test: failpoints are process-global, so two
/// tests arming different sites concurrently would see each other's
/// faults. Poison-tolerant — one failed test must not wedge the rest.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let g = GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner());
    failpoint::disarm_all();
    g
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("paradise-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create test dir");
    d
}

// ---------------------------------------------------------------------
// Kill-point torture: the commit-point invariant
// ---------------------------------------------------------------------

/// One run of the redo-only commit protocol, exactly as the engine
/// performs it: page images to the WAL, commit record + sync (the commit
/// point), pages to the volume, sync, truncate.
fn commit_batch(vol: &Volume, wal: &Wal, pid: u64, fill: u8) -> paradise_storage::Result<()> {
    let bytes = [fill; PAGE_SIZE];
    wal.log_commit(&[(pid, &bytes)])?;
    vol.write_page_bytes(pid, &bytes)?;
    vol.sync()?;
    wal.truncate()?;
    Ok(())
}

/// Crash-recovers the pair: reopen both files and replay the WAL, as a
/// restarting data server would.
fn recover(dir: &std::path::Path) -> (Volume, Wal, usize) {
    let vol = Volume::open(dir.join("vol")).expect("reopen volume");
    let wal = Wal::open(dir.join("wal")).expect("reopen wal");
    let redone = wal.replay(&vol).expect("replay");
    (vol, wal, redone)
}

/// Kills the commit protocol at every injection site in turn and checks
/// the invariant: the new batch survives recovery if and only if the
/// crash site is at or after the commit point (the synced commit record).
#[test]
fn kill_point_torture_upholds_commit_point_invariant() {
    let _g = serial();
    // (site, survives): must batch B be visible after crash + replay?
    let cases = [
        ("wal.log_commit", false),         // died before anything was logged
        ("wal.commit_point", false),       // page images logged, no commit record
        ("volume.write_page_bytes", true), // committed, page write lost
        ("volume.sync", true),             // committed, volume sync lost
        ("wal.truncate", true),            // fully durable, cleanup lost
    ];
    for (site, survives) in cases {
        let dir = fresh_dir(&format!("kill-{}", site.replace('.', "-")));
        let pid;
        {
            let vol = Volume::create(dir.join("vol")).expect("create volume");
            pid = vol.alloc_extent().expect("alloc extent");
            let wal = Wal::open(dir.join("wal")).expect("create wal");
            // Batch A commits cleanly; batch B dies at the site.
            commit_batch(&vol, &wal, pid, 0xAA).expect("baseline commit");
            let armed = failpoint::armed(site, Policy::error("injected crash"));
            let err = commit_batch(&vol, &wal, pid, 0xBB)
                .expect_err(&format!("{site}: injected crash must surface"));
            assert!(err.to_string().contains(site), "{site}: error names the site: {err}");
            drop(armed); // crash "happens" here: nothing after the site ran
        }
        let (vol, wal, _) = recover(&dir);
        let expect = if survives { 0xBB } else { 0xAA };
        let page = vol.read_page(pid).expect("read after recovery");
        assert!(
            page.bytes().iter().all(|b| *b == expect),
            "{site}: after crash + replay the page must hold batch {}",
            if survives { "B (committed)" } else { "A (B never committed)" },
        );
        // Replay is idempotent and recovery leaves a writable store.
        wal.replay(&vol).expect("second replay");
        wal.truncate().expect("post-recovery truncate");
        commit_batch(&vol, &wal, pid, 0xCC).expect("store usable after recovery");
        assert!(vol.read_page(pid).unwrap().bytes().iter().all(|b| *b == 0xCC));
    }
}

/// A crash *during* truncate (after the old WAL is unlinked but before
/// its replacement syncs) still recovers: the committed batch already
/// reached the volume, and a fresh WAL accepts the next commit.
#[test]
fn torn_truncate_leaves_replayable_wal() {
    let _g = serial();
    let dir = fresh_dir("torn-truncate");
    let pid;
    {
        let vol = Volume::create(dir.join("vol")).expect("create volume");
        pid = vol.alloc_extent().expect("alloc extent");
        let wal = Wal::open(dir.join("wal")).expect("create wal");
        let bytes = [0xBB; PAGE_SIZE];
        wal.log_commit(&[(pid, &bytes)]).expect("log");
        vol.write_page_bytes(pid, &bytes).expect("write");
        vol.sync().expect("sync");
        // Crash instead of truncating: the WAL keeps the committed batch.
        assert!(!wal.is_empty().unwrap(), "WAL must still hold the batch");
    }
    let (vol, wal, redone) = recover(&dir);
    assert_eq!(redone, 1, "the committed batch replays");
    assert!(vol.read_page(pid).unwrap().bytes().iter().all(|b| *b == 0xBB));
    wal.truncate().expect("recovery truncate");
    assert!(wal.is_empty().unwrap());
}

// ---------------------------------------------------------------------
// Sequoia queries under network fault schedules
// ---------------------------------------------------------------------

fn build_db(tag: &str, world: &World, kind: TransportKind) -> Paradise {
    let mut db = Paradise::create(
        ParadiseConfig::new(fresh_dir(tag), 2)
            .with_grid_tiles(256)
            .with_pool_pages(512)
            .with_transport(kind)
            .with_net(NetConfig::fast_fail()),
    )
    .expect("create cluster");
    db.define_table(raster_table().with_tile_bytes(4096));
    db.define_table(populated_places_table());
    db.define_table(land_cover_table());
    db.load_table("raster", world.rasters.iter().cloned()).expect("load rasters");
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).expect("load places");
    db.load_table("landCover", world.land_cover.iter().cloned()).expect("load landCover");
    db.create_rtree_index("landCover", queries::LC_SHAPE).expect("landCover rtree");
    db.commit().expect("commit");
    db
}

fn encoded_rows(r: &QueryResult) -> Vec<Vec<u8>> {
    r.rows.iter().map(Tuple::encode).collect()
}

/// Every fault schedule, against the two benchmark shapes that stress the
/// wire hardest (Q2: raster clip + tile pulls; Q6: spatial index scan +
/// gather). The acceptance bar: byte-identical results or a clean error,
/// inside 2× the configured fast-fail timeouts, and the database answers
/// the next disarmed query correctly.
#[test]
fn sequoia_queries_under_fault_schedules_never_wrong_never_wedged() {
    let _g = serial();
    let world = World::generate(WorldSpec::tiny(13));
    let us = tables::us_polygon();
    let db = build_db("sequoia", &world, TransportKind::Tcp);
    db.cluster().events().set_enabled(true);

    let q2 = |db: &Paradise| queries::q2(db, QUERY_CHANNEL, &us);
    let q6 = |db: &Paradise| queries::q6(db, &us);
    let q2_base = encoded_rows(&q2(&db).expect("q2 baseline"));
    let q6_base = encoded_rows(&q6(&db).expect("q6 baseline"));
    assert!(!q2_base.is_empty() && !q6_base.is_empty(), "degenerate baseline");

    let schedules: &[(&str, Policy)] = &[
        // Partition: every outgoing frame silently vanishes.
        ("net.write_frame", Policy::drop_op()),
        // Bit rot on the wire, both directions.
        ("net.write_frame", Policy::corrupt()),
        ("net.read_frame", Policy::corrupt()),
        // Peer resets every connection.
        ("net.read_frame", Policy::error("connection reset")),
        // Every credit grant is lost.
        ("net.credit", Policy::drop_op()),
        // Dead data server: no connection ever succeeds.
        ("net.connect", Policy::error("data server down")),
    ];
    // Generous bound ≥ 2× every fast-fail timeout compounded across the
    // retries and per-stream waits a single query can chain.
    let bound = Duration::from_secs(30);
    for (site, policy) in schedules {
        let armed = failpoint::armed(site, policy.clone());
        for (name, base, run) in [
            ("q2", &q2_base, &q2 as &dyn Fn(&Paradise) -> paradise::exec::Result<QueryResult>),
            ("q6", &q6_base, &q6),
        ] {
            let t0 = Instant::now();
            let out = run(&db);
            let elapsed = t0.elapsed();
            assert!(elapsed < bound, "{name} under {site}: wedged for {elapsed:?}");
            match out {
                Ok(r) => assert_eq!(
                    &encoded_rows(&r),
                    base,
                    "{name} under {site}={policy:?}: WRONG results"
                ),
                Err(e) => {
                    let msg = e.to_string();
                    assert!(!msg.is_empty(), "{name} under {site}: empty error");
                }
            }
        }
        drop(armed);
        // The fault plane disarms cleanly: the very next query is exact.
        let again = q6(&db).expect("query after disarm");
        assert_eq!(encoded_rows(&again), q6_base, "db wedged after {site} schedule");
    }
    // The dead-DS schedule exercised the retry loop, and every injected
    // fault left an audit event via the core-installed observer.
    assert!(!db.cluster().events().of_kind("net.retry").is_empty(), "no net.retry events");
    assert!(!db.cluster().events().of_kind("failpoint").is_empty(), "no failpoint events");
}

fn test_tuple(i: i64) -> Tuple {
    Tuple::new(vec![Value::Int(i), Value::Str(format!("row-{i}"))])
}

/// Lost credit grants starve the sender's window: the send fails with the
/// flow-control timeout (never hangs) and emits a `flow.stall` event.
#[test]
fn credit_grant_loss_surfaces_flow_stall_not_a_hang() {
    let _g = serial();
    let mut cluster =
        Cluster::create(&ClusterConfig::for_test(2, "chaos-credit")).expect("cluster");
    let cfg = NetConfig { events: Some(cluster.events().clone()), ..NetConfig::fast_fail() };
    let t = TcpTransport::serve_with(cluster.nodes(), cfg).expect("serve");
    cluster.set_transport(Transport::Tcp(t));
    cluster.events().set_enabled(true);

    let armed = failpoint::armed("net.credit", Policy::drop_op());
    let (tx, mut rx) = cluster.stream(2, 0, 1).expect("open stream");
    // The consumer keeps popping, but every credit it returns is dropped:
    // the window (2) never refills and the sender must time out.
    let consumer = std::thread::spawn(move || {
        let mut n = 0u32;
        while rx.recv().is_some() {
            n += 1;
        }
        n
    });
    let t0 = Instant::now();
    let mut err = None;
    for i in 0..16 {
        if let Err(e) = tx.send(test_tuple(i)) {
            err = Some(e);
            break;
        }
    }
    let elapsed = t0.elapsed();
    let err = err.expect("sender must fail once the starved window empties");
    assert!(err.to_string().contains("flow-control timeout"), "unexpected error: {err}");
    assert!(elapsed < Duration::from_secs(10), "sender wedged for {elapsed:?}");
    drop(tx);
    let _ = consumer.join();
    drop(armed);
    assert!(!cluster.events().of_kind("flow.stall").is_empty(), "no flow.stall event");
    cluster.shutdown_transport();
}

/// A poisoned sender thread fails its phase with a clean error naming the
/// site, and the cluster keeps serving: the next exchange is exact.
#[test]
fn poisoned_sender_fails_phase_cleanly_and_cluster_stays_usable() {
    let _g = serial();
    let world = World::generate(WorldSpec::tiny(17));
    let us = tables::us_polygon();
    let db = build_db("poison", &world, TransportKind::Tcp);
    let base = encoded_rows(&queries::q6(&db, &us).expect("baseline"));

    // Result collection: one poisoned node fails the whole query…
    let armed = failpoint::armed("exec.collect_send", Policy::error_once("node poisoned"));
    let err = queries::q6(&db, &us).expect_err("poisoned collect must fail the query");
    assert!(err.to_string().contains("exec.collect_send"), "unexpected error: {err}");
    drop(armed);
    // …and the database is immediately usable again.
    assert_eq!(encoded_rows(&queries::q6(&db, &us).expect("after poison")), base);

    // Repartition: same contract on the route() exchange.
    let outbox = |n: i64| vec![vec![(1usize, test_tuple(n))], vec![(0usize, test_tuple(n + 1))]];
    let armed = failpoint::armed("exec.route_send", Policy::error("node poisoned"));
    let err = paradise::exec::phase::route(db.cluster(), outbox(1))
        .expect_err("poisoned route must fail the phase");
    assert!(err.to_string().contains("exec.route_send"), "unexpected error: {err}");
    drop(armed);
    let inbox = paradise::exec::phase::route(db.cluster(), outbox(10)).expect("route after poison");
    assert_eq!(inbox[0].len() + inbox[1].len(), 2, "route works again once disarmed");
}

// ---------------------------------------------------------------------
// Disarmed cost
// ---------------------------------------------------------------------

/// The zero-cost claim, as a smoke bound: a disarmed site is one relaxed
/// atomic load, so even an unoptimised build must stay far under a
/// microsecond per check.
#[test]
fn disarmed_failpoint_checks_are_nearly_free() {
    let _g = serial();
    let n = 2_000_000u32;
    let t0 = Instant::now();
    for _ in 0..n {
        assert!(failpoint::trigger("chaos.hot.site").is_none());
    }
    let per_ns = t0.elapsed().as_nanos() / u128::from(n);
    assert!(per_ns < 1_000, "disarmed trigger() costs {per_ns} ns — fast path is broken");
    assert_eq!(failpoint::fired("chaos.hot.site"), 0);
}

/// The env-var arming path used by CI's smoke job: a spec string arms
/// real sites, faults fire, and disarming restores normal service.
#[test]
fn spec_string_arms_and_disarms_sites() {
    let _g = serial();
    let n = failpoint::arm_from_spec("net.connect=error(env fault);wal.truncate=delay(1)")
        .expect("valid spec");
    assert_eq!(n, 2);
    let err = paradise::net::conn::connect_with_retry(
        "127.0.0.1:1".parse().unwrap(),
        &NetConfig::fast_fail(),
    )
    .expect_err("armed net.connect must fail every attempt");
    assert!(err.to_string().contains("injected fault"), "unexpected error: {err}");
    failpoint::disarm_all();
    assert!(failpoint::trigger("net.connect").is_none());
}
