//! Integration tests for the monitoring plane: the `paradise.*` system
//! catalog, the query-history ring and slow-query log, the structured
//! JSONL event log, and the Prometheus `/metrics` endpoint.

use paradise::exec::schema::{DataType, Field, Schema};
use paradise::exec::value::Value;
use paradise::exec::{Decluster, TableDef, Tuple};
use paradise::{Paradise, ParadiseConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("paradise-mon-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A two-node instance with one tiny scalar table to query.
fn build_db(cfg: ParadiseConfig) -> Paradise {
    let mut db = Paradise::create(cfg).expect("create");
    db.define_table(TableDef::new(
        "t",
        Schema::new(vec![Field::new("x", DataType::Int)]),
        Decluster::RoundRobin,
    ));
    db.load_table("t", (0..20).map(|i| Tuple::new(vec![Value::Int(i)]))).expect("load");
    db.commit().expect("commit");
    db
}

fn str_col(t: &Tuple, i: usize) -> String {
    match t.get(i).expect("column") {
        Value::Str(s) => s.clone(),
        other => panic!("expected string column, got {other:?}"),
    }
}

fn int_col(t: &Tuple, i: usize) -> i64 {
    match t.get(i).expect("column") {
        Value::Int(v) => *v,
        other => panic!("expected int column, got {other:?}"),
    }
}

#[test]
fn catalog_metrics_is_node_labelled_and_filters_with_like() {
    let db = build_db(ParadiseConfig::new(fresh_dir("cat"), 2).with_grid_tiles(64));
    let r = db.sql("select * from paradise.metrics").expect("catalog query");
    assert_eq!(r.columns, vec!["name", "node", "value"]);
    let nodes: std::collections::BTreeSet<String> = r.rows.iter().map(|t| str_col(t, 1)).collect();
    assert!(nodes.contains("0") && nodes.contains("1") && nodes.contains("qc"), "{nodes:?}");
    // Per-node rows carry the unprefixed storage metrics…
    assert!(r
        .rows
        .iter()
        .any(|t| str_col(t, 0) == "buffer.capacity" && str_col(t, 1) == "0" && int_col(t, 2) > 0));
    // …and the QC group carries the cluster-wide ones.
    assert!(r.rows.iter().any(|t| str_col(t, 0) == "net.bytes" && str_col(t, 1) == "qc"));

    // LIKE narrows by metric name, per node.
    let r = db.sql("select * from paradise.metrics where name like 'wal%'").expect("like");
    assert!(!r.rows.is_empty());
    assert!(r.rows.iter().all(|t| str_col(t, 0).starts_with("wal")), "LIKE leak");
    let wal_nodes: std::collections::BTreeSet<String> =
        r.rows.iter().map(|t| str_col(t, 1)).collect();
    assert_eq!(wal_nodes.into_iter().collect::<Vec<_>>(), vec!["0", "1"]);

    // The catalog composes with EXPLAIN like any other table.
    let r = db.sql("explain select * from paradise.metrics").expect("explain");
    let text: String = r.rows.iter().map(|t| str_col(t, 0) + "\n").collect();
    assert!(text.contains("CatalogScan paradise.metrics"), "{text}");
    assert!(text.contains("stats pull per node"), "{text}");
}

#[test]
fn catalog_buffer_pool_and_streams_shapes() {
    let db = build_db(ParadiseConfig::new(fresh_dir("bp"), 3).with_grid_tiles(64));
    db.sql("select * from t").expect("warm-up scan");
    let r = db.sql("select * from paradise.buffer_pool order by node").expect("buffer_pool");
    assert_eq!(r.rows.len(), 3, "one row per node");
    assert_eq!(r.columns[0], "node");
    for (i, row) in r.rows.iter().enumerate() {
        assert_eq!(str_col(row, 0), i.to_string());
        assert!(int_col(row, 1) > 0, "capacity");
    }
    // Charge some deterministic cross-node traffic, then read it back.
    db.cluster().net.ship(128);
    let r = db.sql("select * from paradise.streams").expect("streams");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(
        r.columns,
        vec!["streams_opened", "net_bytes", "net_tuples", "wire_bytes_sent", "wire_frames_sent"]
    );
    assert!(int_col(&r.rows[0], 1) >= 128, "net_bytes");
    assert_eq!(int_col(&r.rows[0], 2), 1, "net_tuples");
}

#[test]
fn query_history_records_evicts_and_reports_errors() {
    let db = build_db(
        ParadiseConfig::new(fresh_dir("hist"), 2).with_grid_tiles(64).with_history_capacity(3),
    );
    for i in 0..4 {
        db.sql(&format!("select * from t where x = {i}")).expect("query");
    }
    // Failures are recorded too (with the error as status).
    assert!(db.sql("select * from t where nope = 1").is_err());
    let recs = db.history().records();
    assert_eq!(recs.len(), 3, "ring caps at capacity");
    assert_eq!(recs[2].shape, "error");
    assert!(recs[2].status.contains("column nope"), "{:?}", recs[2].status);
    assert_eq!(recs[1].statement, "select * from t where x = 3");
    assert_eq!(recs[1].status, "ok");
    assert_eq!(recs[1].rows, 1);

    // The history is itself SQL-queryable; the reading statement runs
    // before it is recorded, so it does not see itself.
    let r = db.sql("select * from paradise.queries").expect("queries");
    assert_eq!(r.rows.len(), 3);
    let statements: Vec<String> = r.rows.iter().map(|t| str_col(t, 1)).collect();
    assert!(statements.iter().any(|s| s == "select * from t where x = 3"), "{statements:?}");
    assert!(statements.iter().all(|s| s != "select * from paradise.queries"));
}

#[test]
fn slow_query_log_flags_only_slow_statements() {
    let db = build_db(
        ParadiseConfig::new(fresh_dir("slow"), 2)
            .with_grid_tiles(64)
            .with_slow_query_threshold(Duration::from_micros(1)),
    );
    db.cluster().events().set_enabled(true);
    db.sql("select * from t where x = 7").expect("slow by construction");
    let slow = db.history().slow_queries();
    assert_eq!(slow.len(), 1);
    assert!(slow[0].slow);
    let events = db.cluster().events().of_kind("slow_query");
    assert_eq!(events.len(), 1);
    assert!(events[0].line.contains("select * from t where x = 7"), "{}", events[0].line);

    // Raise the threshold out of reach: nothing new is flagged.
    db.history().set_slow_threshold(Some(Duration::from_secs(3600)));
    db.sql("select * from t where x = 8").expect("fast");
    assert_eq!(db.history().slow_queries().len(), 1);
    assert_eq!(db.cluster().events().of_kind("slow_query").len(), 1);
    // The SQL-visible flag agrees.
    let r = db.sql("select * from paradise.queries").expect("queries");
    let slow_count = r.rows.iter().filter(|t| int_col(t, 8) == 1).count();
    assert_eq!(slow_count, 1);
}

#[test]
fn event_log_file_captures_structured_jsonl() {
    let dir = fresh_dir("events");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("events.jsonl");
    let db = build_db(
        ParadiseConfig::new(dir.join("db"), 2)
            .with_grid_tiles(64)
            .with_slow_query_threshold(Duration::from_micros(1))
            .with_event_log(&path),
    );
    db.sql("select * from t").expect("query");
    let text = std::fs::read_to_string(&path).expect("event log file");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines {
        assert!(line.starts_with("{") && line.ends_with("}"), "not JSONL: {line}");
        assert!(line.contains("\"ts_us\":"), "{line}");
        assert!(line.contains("\"event\":"), "{line}");
    }
    assert!(text.contains("\"event\":\"phase.start\""), "{text}");
    assert!(text.contains("\"event\":\"slow_query\""), "{text}");
    assert!(text.contains("select * from t"), "{text}");
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect exporter");
    conn.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: paradise\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut out = String::new();
    conn.read_to_string(&mut out).expect("read response");
    out
}

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let db = build_db(
        ParadiseConfig::new(fresh_dir("prom"), 2)
            .with_grid_tiles(64)
            .with_metrics_addr("127.0.0.1:0"),
    );
    db.sql("select * from t").expect("traffic");
    let addr = db.metrics_addr().expect("exporter bound");
    let resp = http_get(addr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
    let body = resp.split("\r\n\r\n").nth(1).expect("body");
    assert!(body.contains("# TYPE paradise_buffer_hits_total counter"), "{body}");
    assert!(body.contains("node=\"0\""), "{body}");
    assert!(body.contains("node=\"1\""), "{body}");
    assert!(body.contains("paradise_net_bytes_total{node=\"qc\"}"), "{body}");
    // Every exposition line is either a comment or name{labels} value.
    for line in body.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        assert!(line.contains("{node=\""), "unlabelled sample: {line}");
        let value = line.rsplit(' ').next().unwrap();
        value.parse::<u64>().unwrap_or_else(|_| panic!("bad value in {line}"));
    }
    // Unknown paths 404; the exporter keeps serving afterwards.
    assert!(http_get(addr, "/nope").starts_with("HTTP/1.1 404"), "404 expected");
    assert!(http_get(addr, "/metrics").starts_with("HTTP/1.1 200"), "still serving");
}
