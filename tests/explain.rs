//! EXPLAIN / EXPLAIN ANALYZE integration: the rendered operator trees,
//! the consistency of their annotations with the query's actual result,
//! and the Chrome-trace profile.

use paradise::{match_plan, Paradise, ParadiseConfig, QueryResult};
use paradise_datagen::tables::{
    land_cover_table, populated_places_table, raster_table, World, WorldSpec,
};
use paradise_sql::parse_statement;
use std::path::PathBuf;

const US: &str = "Polygon(-125, 25, -67, 25, -67, 49, -125, 49)";

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("paradise-explain-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn build_db(tag: &str, trace: Option<&PathBuf>) -> Paradise {
    let mut cfg = ParadiseConfig::new(fresh_dir(tag), 2).with_grid_tiles(256).with_pool_pages(512);
    if let Some(t) = trace {
        cfg = cfg.with_trace(t);
    }
    let mut db = Paradise::create(cfg).expect("create cluster");
    let world = World::generate(WorldSpec::tiny(7));
    db.define_table(raster_table().with_tile_bytes(4096));
    db.define_table(populated_places_table());
    db.define_table(land_cover_table());
    db.load_table("raster", world.rasters.iter().cloned()).expect("load rasters");
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).expect("load places");
    db.load_table("landCover", world.land_cover.iter().cloned()).expect("load landCover");
    db.create_rtree_index("landCover", 2).expect("landCover rtree");
    db.commit().expect("commit");
    db
}

fn plan_lines(r: &QueryResult) -> Vec<String> {
    assert_eq!(r.columns, vec!["QUERY PLAN"]);
    r.rows.iter().map(|t| t.get(0).unwrap().as_str().unwrap().to_string()).collect()
}

fn q2_sql(prefix: &str) -> String {
    format!(
        "{prefix}select raster.date, raster.data.clip({US}) \
         from raster where raster.channel = 5 order by date"
    )
}

#[test]
fn explain_renders_plan_without_executing() {
    let db = build_db("plan", None);
    let r = db.sql(&q2_sql("explain ")).expect("explain q2");
    let lines = plan_lines(&r);
    assert!(lines[0].contains("Q2 plan"), "header: {:?}", lines[0]);
    assert!(lines.iter().any(|l| l.contains("SeqScan raster")), "{lines:?}");
    assert!(lines.iter().any(|l| l.contains("Clip + Project")), "{lines:?}");
    // Not executed: no phases were measured and no annotations rendered.
    assert!(r.metrics.phases.is_empty());
    assert!(!lines.iter().any(|l| l.contains("rows=")), "{lines:?}");
}

#[test]
fn explain_analyze_annotations_match_execution() {
    let trace =
        std::env::temp_dir().join(format!("paradise-explain-{}.trace.json", std::process::id()));
    let _ = std::fs::remove_file(&trace);
    let db = build_db("analyze", Some(&trace));

    // Ground truth: run Q2 normally first.
    let plain = db.sql(&q2_sql("")).expect("q2");
    let r = db.sql(&q2_sql("explain analyze ")).expect("explain analyze q2");
    let lines = plan_lines(&r);
    assert!(lines[0].contains("Q2 plan"), "{:?}", lines[0]);

    // The clip operator's row annotation equals the query's result size.
    let clip = lines.iter().find(|l| l.contains("Clip + Project")).expect("clip line");
    assert!(
        clip.contains(&format!("rows={}", plain.rows.len())),
        "clip annotation {clip:?} vs {} result rows",
        plain.rows.len()
    );
    assert!(clip.contains("busy="), "{clip:?}");
    // Rasters come off disk through the buffer pool: non-zero counters.
    assert!(clip.contains("buf="), "{clip:?}");
    // The metrics carried back are the real execution's.
    assert_eq!(r.metrics.phases.len(), plain.metrics.phases.len());
    assert!(lines.iter().any(|l| l.contains("result rows:")), "{lines:?}");

    // Valid, non-empty Chrome trace: one complete event per node per
    // phase, plus lane-name metadata.
    let json = std::fs::read_to_string(&trace).expect("trace written");
    // Chrome's JSON array format.
    assert!(json.trim_start().starts_with('['), "{}", &json[..40.min(json.len())]);
    assert!(json.trim_end().ends_with(']'), "unterminated trace");
    assert!(json.contains("\"ph\":\"X\""), "no complete events");
    assert!(json.contains("\"ph\":\"M\""), "no lane metadata");
    assert!(json.contains("scan + clip rasters"));
    assert!(json.contains("node 0"));
    // Tracing is switched back off after EXPLAIN ANALYZE: a plain query
    // afterwards adds no events.
    let before = db.cluster().trace().len();
    db.sql(&q2_sql("")).expect("q2 again");
    assert_eq!(db.cluster().trace().len(), before, "tracing left enabled");
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn explain_analyze_q6_counts_index_work() {
    let db = build_db("q6", None);
    let sql = format!("select * from landCover where shape overlaps {US}");
    let plain = db.sql(&sql).expect("q6");
    let visits0 = db.obs().get("rtree.node_visits").unwrap_or(0);
    let r = db.sql(&format!("explain analyze {sql}")).expect("explain analyze q6");
    let lines = plan_lines(&r);
    assert!(lines[0].contains("Q6 plan"), "{:?}", lines[0]);
    let scan = lines.iter().find(|l| l.contains("RTreeIndexScan")).expect("index scan line");
    assert!(scan.contains(&format!("rows={}", plain.rows.len())), "{scan:?}");
    // The R-tree visit counter in the registry moved while the index scan
    // ran.
    let visits1 = db.obs().get("rtree.node_visits").unwrap_or(0);
    assert!(visits1 > visits0, "rtree.node_visits did not move: {visits0} -> {visits1}");
}

#[test]
fn plan_matcher_names_the_benchmark_shapes() {
    for (sql, want) in [
        (q2_sql(""), "Q2"),
        (format!("select * from landCover where shape overlaps {US}"), "Q6"),
        ("select * from populatedPlaces where name = \"Phoenix\"".to_string(), "Q5"),
        ("select id from drainage where type = 3".to_string(), "GenericScan"),
        (
            "select * from drainage, roads where drainage.shape overlaps roads.shape".to_string(),
            "Q13",
        ),
    ] {
        let stmt = parse_statement(&sql).expect("parse");
        let plan = match_plan(&stmt.select).expect("match");
        assert_eq!(plan.name(), want, "{sql}");
    }
}
