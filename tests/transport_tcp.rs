//! Loopback integration tests for the TCP transport (`paradise-net`).
//!
//! The contract under test: switching the cluster from `Transport::Local`
//! to `Transport::Tcp` must be invisible to queries — byte-identical
//! results and identical `QueryMetrics` network accounting — while the
//! tuples really do cross sockets (proved by the wire-level counters).
//! Timeout/retry behaviour is covered by stalling a receiver and by
//! killing a data server.

use paradise::exec::cluster::{Cluster, ClusterConfig, Transport};
use paradise::exec::value::Value;
use paradise::exec::{Tuple, WireTransport};
use paradise::net::{NetConfig, TcpTransport};
use paradise::{queries, Paradise, ParadiseConfig, TransportKind};
use paradise_datagen::tables::{
    self, land_cover_table, populated_places_table, raster_table, World, WorldSpec, QUERY_CHANNEL,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("paradise-tcp-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Benchmark-shaped database: rasters (Q2) and landCover with an R-tree
/// (Q6), loaded from the same deterministic tiny world either side.
fn build_db(tag: &str, world: &World, kind: TransportKind) -> Paradise {
    let mut db = Paradise::create(
        ParadiseConfig::new(fresh_dir(tag), 2)
            .with_grid_tiles(256)
            .with_pool_pages(512)
            .with_transport(kind),
    )
    .expect("create cluster");
    db.define_table(raster_table().with_tile_bytes(4096));
    db.define_table(populated_places_table());
    db.define_table(land_cover_table());
    db.load_table("raster", world.rasters.iter().cloned()).expect("load rasters");
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).expect("load places");
    db.load_table("landCover", world.land_cover.iter().cloned()).expect("load landCover");
    db.create_rtree_index("landCover", queries::LC_SHAPE).expect("landCover rtree");
    db.commit().expect("commit");
    db
}

fn encoded_rows(rows: &[Tuple]) -> Vec<Vec<u8>> {
    rows.iter().map(Tuple::encode).collect()
}

/// Q2 and Q6 (raster clip + spatial index scan — the benchmark shapes that
/// stress tuple shipping and remote tile pulls) must return byte-identical
/// rows and identical network accounting under both transports.
#[test]
fn q2_q6_identical_results_and_accounting_across_transports() {
    let world = World::generate(WorldSpec::tiny(7));
    let us = tables::us_polygon();
    let local = build_db("local", &world, TransportKind::Local);
    let tcp = build_db("tcp", &world, TransportKind::Tcp);

    for (name, run) in [
        (
            "q2",
            &(|db: &Paradise| queries::q2(db, QUERY_CHANNEL, &us).expect("q2"))
                as &dyn Fn(&Paradise) -> paradise::QueryResult,
        ),
        ("q6", &|db: &Paradise| queries::q6(db, &us).expect("q6")),
    ] {
        let a = run(&local);
        let b = run(&tcp);
        assert_eq!(a.columns, b.columns, "{name}: column mismatch");
        assert_eq!(
            encoded_rows(&a.rows),
            encoded_rows(&b.rows),
            "{name}: rows differ between Local and Tcp"
        );
        assert!(!a.rows.is_empty(), "{name}: degenerate (empty) result");
        // Satellite: accounting happens at the transport-independent choke
        // point, so both transports must report *identical* traffic.
        assert_eq!(a.metrics.net_bytes, b.metrics.net_bytes, "{name}: net_bytes");
        assert_eq!(a.metrics.net_tuples, b.metrics.net_tuples, "{name}: net_tuples");
        assert_eq!(a.metrics.pulls, b.metrics.pulls, "{name}: pulls");
        assert_eq!(a.metrics.pull_bytes, b.metrics.pull_bytes, "{name}: pull_bytes");
        // Shipping results to the QC is charged, so a non-empty result
        // implies non-zero traffic.
        assert!(a.metrics.net_bytes > 0, "{name}: expected cross-node traffic");
        assert!(a.metrics.net_tuples >= a.rows.len() as u64, "{name}: QC rows under-counted");
        // Per-operator parity: every measured phase must agree on its
        // shape, row counts, and buffer/network activity across
        // transports — the observability pipeline may not see different
        // work just because tuples crossed a socket.
        assert_eq!(a.metrics.phases.len(), b.metrics.phases.len(), "{name}: phase count");
        for (pa, pb) in a.metrics.phases.iter().zip(&b.metrics.phases) {
            assert_eq!(pa.name, pb.name, "{name}: phase name");
            assert_eq!(pa.node_busy.len(), pb.node_busy.len(), "{name}/{}: nodes", pa.name);
            assert_eq!(pa.node_rows, pb.node_rows, "{name}/{}: per-node rows", pa.name);
            assert_eq!(pa.net.bytes, pb.net.bytes, "{name}/{}: phase net bytes", pa.name);
            assert_eq!(pa.net.tuples, pb.net.tuples, "{name}/{}: phase net tuples", pa.name);
            assert_eq!(
                (pa.buffer.hits + pa.buffer.misses),
                (pb.buffer.hits + pb.buffer.misses),
                "{name}/{}: buffer requests",
                pa.name
            );
        }
        // Both registries expose the same logical traffic…
        for key in ["net.bytes", "net.tuples", "net.pulls"] {
            assert_eq!(
                local.obs().get(key),
                tcp.obs().get(key),
                "{name}: registry {key} differs across transports"
            );
        }
    }
    // …while only the TCP side saw wire-level frames.
    assert!(local.obs().get("net.wire.bytes_sent").is_none(), "Local has no wire metrics");
    assert!(tcp.obs().get("net.wire.bytes_sent").unwrap() > 0, "no bytes crossed sockets");
    assert!(tcp.obs().get("net.wire.frames_sent").unwrap() > 0, "no frames crossed sockets");
}

fn test_tuple(i: i64) -> Tuple {
    Tuple::new(vec![Value::Int(i), Value::Str(format!("row-{i}"))])
}

/// Tuples sent through `Transport::Tcp` really cross a socket: the
/// wire-level byte counter must exceed the logical payload.
#[test]
fn tuples_really_flow_over_sockets() {
    let mut cluster = Cluster::create(&ClusterConfig::for_test(2, "wire-proof")).expect("cluster");
    let transport = TcpTransport::serve(cluster.nodes()).expect("serve");
    cluster.set_transport(Transport::Tcp(transport.clone()));

    let (tx, rx) = cluster.stream(4, 0, 1).expect("open stream");
    let payload: usize = (0..32).map(|i| test_tuple(i).wire_size()).sum();
    let sender = std::thread::spawn(move || {
        for i in 0..32 {
            tx.send(test_tuple(i)).expect("send");
        }
    });
    let got = rx.collect();
    sender.join().expect("sender thread");
    assert_eq!(got.len(), 32);
    assert_eq!(got[7], test_tuple(7));

    let wire = transport.wire_stats();
    let bytes = wire.bytes_sent.load(std::sync::atomic::Ordering::Relaxed);
    let frames = wire.frames_sent.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        bytes as usize > payload,
        "wire bytes ({bytes}) must exceed logical payload ({payload})"
    );
    // 32 tuple frames + OpenStream + Eos at minimum.
    assert!(frames >= 34, "expected >= 34 frames, saw {frames}");
    // Logical accounting saw the same traffic the Local path would.
    let d = cluster.net.snapshot();
    assert_eq!(d.tuples, 32);
    assert_eq!(d.bytes, payload as u64);
    cluster.shutdown_transport();
}

/// A stalled consumer (nobody pops the inbox) exhausts the credit window;
/// the sender must fail in bounded time instead of hanging.
#[test]
fn stalled_receiver_times_out_sender_in_bounded_time() {
    let cluster = {
        let mut c = Cluster::create(&ClusterConfig::for_test(2, "stall")).expect("cluster");
        let t = TcpTransport::serve_with(c.nodes(), NetConfig::fast_fail()).expect("serve");
        c.set_transport(Transport::Tcp(t));
        c
    };
    let (tx, rx) = cluster.stream(2, 0, 1).expect("open stream");
    let t0 = Instant::now();
    let mut err = None;
    // Window is 2 and the receiver never pops: the third send (at the
    // latest) must hit the flow-control timeout.
    for i in 0..8 {
        if let Err(e) = tx.send(test_tuple(i)) {
            err = Some(e);
            break;
        }
    }
    let elapsed = t0.elapsed();
    let err = err.expect("sender should fail once the window is exhausted");
    assert!(err.to_string().contains("flow-control timeout"), "unexpected error: {err}");
    assert!(elapsed < Duration::from_secs(10), "sender took {elapsed:?}; timeout is not bounded");
    drop(rx);
    cluster.shutdown_transport();
}

/// Killing the data servers mid-flight: opening a new stream must give up
/// after a bounded number of connect retries, not spin forever.
#[test]
fn killed_data_server_fails_with_bounded_retries() {
    let mut cluster = Cluster::create(&ClusterConfig::for_test(2, "kill")).expect("cluster");
    let transport =
        TcpTransport::serve_with(cluster.nodes(), NetConfig::fast_fail()).expect("serve");
    let victim = transport.addr(1).expect("node 1 address");
    cluster.set_transport(Transport::Tcp(transport.clone()));

    // Kill every data server (the transport-level "pull the plug").
    transport.shutdown();

    let t0 = Instant::now();
    let err = paradise::net::conn::connect_with_retry(victim, &NetConfig::fast_fail())
        .expect_err("connecting to a killed data server must fail");
    assert!(err.to_string().contains("unreachable after"), "unexpected error: {err}");
    assert!(t0.elapsed() < Duration::from_secs(10), "retry loop not bounded");

    // The engine-level path reports the shutdown instead of hanging.
    let open = cluster.stream(4, 0, 1);
    assert!(open.is_err(), "opening a stream on a dead transport must fail");
}

/// Acceptance: `select * from paradise.metrics` on a TCP cluster returns
/// per-node rows pulled over the wire (StatsPull/StatsReply), and the
/// QC's wire-counter rows agree with the transport's own `WireStats`.
#[test]
fn catalog_metrics_over_tcp_reflects_wire_stats() {
    let world = World::generate(WorldSpec::tiny(11));
    let db = build_db("catalog", &world, TransportKind::Tcp);
    // Generate real wire traffic first.
    queries::q2(&db, QUERY_CHANNEL, &tables::us_polygon()).expect("q2");

    let before = db.obs().get("net.wire.bytes_sent").expect("wire counter");
    let r = db.sql("select * from paradise.metrics").expect("catalog over tcp");
    let after = db.obs().get("net.wire.bytes_sent").expect("wire counter");
    assert!(after > before, "the stats pull itself must cross the wire");

    let cell = |t: &Tuple, i: usize| match t.get(i).expect("col") {
        Value::Str(s) => s.clone(),
        other => panic!("expected string, got {other:?}"),
    };
    let val = |t: &Tuple, i: usize| match t.get(i).expect("col") {
        Value::Int(v) => *v as u64,
        other => panic!("expected int, got {other:?}"),
    };
    // Every data node answered with its own registry rows.
    for node in ["0", "1"] {
        let row = r
            .rows
            .iter()
            .find(|t| cell(t, 0) == "buffer.capacity" && cell(t, 1) == node)
            .unwrap_or_else(|| panic!("no buffer.capacity row for node {node}"));
        assert!(val(row, 2) > 0, "node {node} capacity");
    }
    // The QC row for the wire counter is bracketed by the direct
    // before/after readings of the same counter.
    let wire_row = r
        .rows
        .iter()
        .find(|t| cell(t, 0) == "net.wire.bytes_sent" && cell(t, 1) == "qc")
        .expect("wire counter row");
    let v = val(wire_row, 2);
    assert!(v >= before && v <= after, "wire row {v} outside [{before}, {after}]");
}
