//! The paper's SQL texts (§3.1.2), run verbatim through the SQL front end,
//! must produce the same results as the programmatic plans.

use paradise::queries;
use paradise::{Paradise, ParadiseConfig};
use paradise_datagen::tables::{
    self, drainage_table, land_cover_table, populated_places_table, raster_table, roads_table,
    World, WorldSpec, OIL_FIELD, QUERY_CHANNEL,
};
use paradise_geom::Point;

fn load(tag: &str) -> (Paradise, World) {
    let world = World::generate(WorldSpec::paper_ratio(9, 1, 5000));
    let dir = std::env::temp_dir().join(format!("paradise-it-sql-{}-{tag}", std::process::id()));
    let mut db = Paradise::create(ParadiseConfig::new(dir, 4).with_grid_tiles(1024)).unwrap();
    db.define_table(raster_table().with_tile_bytes(4096));
    db.define_table(populated_places_table());
    db.define_table(roads_table());
    db.define_table(drainage_table());
    db.define_table(land_cover_table());
    db.load_table("raster", world.rasters.iter().cloned()).unwrap();
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).unwrap();
    db.load_table("roads", world.roads.iter().cloned()).unwrap();
    db.load_table("drainage", world.drainage.iter().cloned()).unwrap();
    db.load_table("landCover", world.land_cover.iter().cloned()).unwrap();
    db.create_btree_index("populatedPlaces", 4).unwrap();
    db.create_rtree_index("landCover", 2).unwrap();
    db.create_rtree_index("roads", 2).unwrap();
    db.create_rtree_index("drainage", 2).unwrap();
    db.commit().unwrap();
    (db, world)
}

const US: &str = "Polygon(-125, 25, -67, 25, -67, 49, -125, 49)";

#[test]
fn sql_matches_programmatic_plans() {
    let (db, _world) = load("match");
    let us = tables::us_polygon();
    let d = tables::query_date();

    // Q2
    let sql = db
        .sql(&format!(
            "select raster.date, raster.data.clip({US}) from raster \
             where raster.channel = 5 order by date"
        ))
        .unwrap();
    let api = queries::q2(&db, QUERY_CHANNEL, &us).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q2");

    // Q3
    let sql = db
        .sql(&format!(
            "select average(raster.data.clip({US})) from raster \
             where raster.date = Date(\"1988-04-01\")"
        ))
        .unwrap();
    assert_eq!(sql.rows.len(), 1, "Q3");

    // Q4
    let sql = db
        .sql(&format!(
            "select raster.date, raster.channel, \
             raster.data.clip(ClosedPolygon({US})).lower_res(8) from raster \
             where raster.channel = 5 and raster.date = Date(\"1988-04-01\")"
        ))
        .unwrap();
    let api = queries::q4(&db, d, QUERY_CHANNEL, &us, 8).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q4");

    // Q5
    let sql = db.sql("select * from populatedPlaces where name = \"Phoenix\"").unwrap();
    let api = queries::q5(&db, "Phoenix").unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q5");
    assert!(!sql.rows.is_empty());

    // Q6
    let sql = db.sql(&format!("select * from landCover where shape overlaps {US}")).unwrap();
    let api = queries::q6(&db, &us).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q6");

    // Q7 (the paper's LCPYTYPE spelling)
    let sql = db
        .sql(
            "select shape.area(), LCPYTYPE from landCover \
             where shape < Circle(Point(-90, 40), 25) and shape.area() < 3",
        )
        .unwrap();
    let api = queries::q7(&db, Point::new(-90.0, 40.0), 25.0, 3.0).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q7");

    // Q8
    let sql = db
        .sql(
            "select landCover.shape, landCover.LCPYTYPE from landCover, populatedPlaces \
             where populatedPlaces.name = \"Louisville\" and \
             landCover.shape overlaps populatedPlaces.location.makeBox(8)",
        )
        .unwrap();
    let api = queries::q8(&db, "Louisville", 8.0).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q8");

    // Q9
    let sql = db
        .sql(&format!(
            "select landCover.shape, raster.data.clip(landCover.shape) \
             from landCover, raster where landCover.LCPYTYPE = {OIL_FIELD} and \
             raster.channel = 5 and raster.date = Date(\"1988-04-01\")"
        ))
        .unwrap();
    let api = queries::q9(&db, d, QUERY_CHANNEL, OIL_FIELD).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q9");

    // Q10
    let sql = db
        .sql(&format!(
            "select raster.date, raster.channel, raster.data.clip({US}) from raster \
             where raster.data.clip({US}).average() > 25000"
        ))
        .unwrap();
    let api = queries::q10(&db, &us, 25_000.0).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q10");

    // Q11
    let sql =
        db.sql("select closest(shape, Point(-89.4, 43.1)), type from roads group by type").unwrap();
    let api = queries::q11(&db, Point::new(-89.4, 43.1)).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q11");

    // Q12
    let sql = db
        .sql(
            "select closest(drainage.shape, populatedPlaces.location), \
             populatedPlaces.location from drainage, populatedPlaces \
             where populatedPlaces.location overlaps drainage.shape and \
             populatedPlaces.type = 1 group by populatedPlaces.location",
        )
        .unwrap();
    let api = queries::q12(&db, 1, true).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q12");

    // Q13
    let sql =
        db.sql("select * from drainage, roads where drainage.shape overlaps roads.shape").unwrap();
    let api = queries::q13(&db).unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q13");

    // Q14
    let sql = db
        .sql(&format!(
            "select landCover.shape, raster.data.clip(landCover.shape) from landCover, raster \
             where landCover.LCPYTYPE = {OIL_FIELD} and raster.channel = 5 and \
             raster.date >= Date(\"1988-04-01\") and raster.date <= Date(\"1988-12-31\")"
        ))
        .unwrap();
    let api = queries::q14(
        &db,
        d,
        paradise_exec::value::Date::parse("1988-12-31").unwrap(),
        QUERY_CHANNEL,
        OIL_FIELD,
    )
    .unwrap();
    assert_eq!(sql.rows.len(), api.rows.len(), "Q14");
}

#[test]
fn generic_fallback_scan() {
    let (db, world) = load("generic");
    // A query shape the plan matcher does not special-case: generic scan.
    let r = db.sql("select id, type from drainage where type = 3").unwrap();
    let brute = world.drainage.iter().filter(|t| t.get(1).unwrap().as_int().unwrap() == 3).count();
    // Spatial replication may store copies, but the scan visits every copy
    // exactly once per node it lives on; drainage dedup requires distinct
    // ids. Count distinct ids in the result.
    let distinct: std::collections::HashSet<&str> =
        r.rows.iter().map(|t| t.get(0).unwrap().as_str().unwrap()).collect();
    assert_eq!(distinct.len(), brute);
}

#[test]
fn sql_errors_are_reported() {
    let (db, _) = load("err");
    assert!(db.sql("selec nonsense").is_err());
    assert!(db.sql("select * from no_such_table").is_err());
    assert!(db.sql("select * from drainage where type = \"not an int comparison\" and").is_err());
}
