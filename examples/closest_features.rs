//! The `closest` spatial aggregate end to end (paper §2.7.3, Figure 3.1):
//! finds the nearest drainage feature to every large city using the
//! spatial semi-join + join-with-aggregate plan, and shows how much
//! network traffic the semi-join optimisation saves.
//!
//! ```sh
//! cargo run --release --example closest_features
//! ```

use paradise::queries;
use paradise::{Paradise, ParadiseConfig};
use paradise_datagen::tables::{
    drainage_table, populated_places_table, World, WorldSpec, LARGE_CITY,
};

fn main() {
    let world = World::generate(WorldSpec::paper_ratio(11, 1, 2000));
    let dir = std::env::temp_dir().join("paradise-closest-example");
    let mut db =
        Paradise::create(ParadiseConfig::new(dir, 8).with_grid_tiles(1024)).expect("create");
    db.define_table(populated_places_table());
    db.define_table(drainage_table());
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).unwrap();
    db.load_table("drainage", world.drainage.iter().cloned()).unwrap();
    db.commit().unwrap();

    for semi_join in [true, false] {
        db.flush_caches().unwrap();
        let base = db.cluster().net.snapshot();
        let r = queries::q12(&db, LARGE_CITY, semi_join).expect("q12");
        let d = db.cluster().net.since(base);
        println!(
            "semi-join {:<5} {:>4} cities matched, {:>8} tuples shipped, simulated {:?}",
            semi_join,
            r.rows.len(),
            d.tuples,
            r.metrics.simulated_time()
        );
        if semi_join {
            for row in r.rows.iter().take(5) {
                let loc = row.get(1).unwrap();
                let dist = row.get(2).unwrap().as_float().unwrap();
                println!("   city at {loc:?} -> closest drainage at distance {dist:.3}");
            }
        }
    }
    println!("(identical results; the semi-join only cuts replication traffic)");
}
