//! Demonstrates the large-image machinery of paper §2.5–§2.6: tiling with
//! per-tile LZW compression, tile-granular clipping, the pull model for
//! remote tiles, and raster declustering.
//!
//! ```sh
//! cargo run --release --example raster_pipeline
//! ```

use paradise_array::{BitDepth, Raster};
use paradise_exec::cluster::{Cluster, ClusterConfig};
use paradise_exec::raster_store;
use paradise_geom::{Point, Polygon, Rect};

fn main() {
    let cfg = ClusterConfig::for_test(4, "raster-pipeline-example");
    let cluster = Cluster::create(&cfg).expect("cluster");

    // A 720x360 16-bit "satellite composite" with a smooth gradient plus a
    // noisy band (so some tiles compress and some don't).
    let world = Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).unwrap();
    let mut img = Raster::new(720, 360, BitDepth::Sixteen, world).unwrap();
    let mut x: u32 = 1;
    for row in 0..360 {
        for col in 0..720 {
            let base = 400 * (row as u32) / 360 * 100;
            let noise = if (100..140).contains(&row) {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                x >> 18
            } else {
                0
            };
            img.set_pixel(col, row, base + noise).unwrap();
        }
    }
    println!("image: {}x{} = {} KB raw", img.width(), img.height(), img.byte_len() / 1024);

    // Store on node 0 as ~8 KB tiles.
    let sr = raster_store::store_raster(&cluster, 0, &img, false, 8 * 1024).unwrap();
    let compressed = sr.tiles.iter().filter(|t| t.compressed).count();
    println!(
        "stored as {} tiles ({} LZW-compressed, {} raw) of {}x{} pixels",
        sr.tiles.len(),
        compressed,
        sr.tiles.len() - compressed,
        sr.tile_h,
        sr.tile_w
    );

    // Clip by a polygon: only the tiles under its bounding box are read.
    let clip_poly = Polygon::new(vec![
        Point::new(-120.0, 20.0),
        Point::new(-60.0, 25.0),
        Point::new(-70.0, 55.0),
        Point::new(-125.0, 50.0),
    ])
    .unwrap();
    let (clipped, tiles_read) =
        raster_store::clip_stored(&cluster, 0, &sr, &clip_poly).unwrap().unwrap();
    println!(
        "clip: read {tiles_read}/{} tiles; result {}x{} with {} valid pixels; mean {:.0}",
        sr.tiles.len(),
        clipped.width(),
        clipped.height(),
        clipped.valid_count(),
        clipped.average().unwrap_or(0.0)
    );

    // Remote access = pull: node 3 fetching the same clip pulls tiles.
    let before = cluster.net.snapshot();
    let _ = raster_store::clip_stored(&cluster, 3, &sr, &clip_poly).unwrap().unwrap();
    let d = cluster.net.since(before);
    println!("same clip from node 3: {} pulls, {} KB pulled", d.pulls, d.pull_bytes / 1024);

    // Decluster the raster's tiles across nodes (paper §2.6): now every
    // node owns a share and a whole-image operation parallelises.
    let decl = raster_store::store_raster(&cluster, 0, &img, true, 8 * 1024).unwrap();
    let mut per_node = [0usize; 4];
    for t in decl.tiles.iter() {
        per_node[t.node as usize] += 1;
    }
    println!("declustered tile placement per node: {per_node:?}");

    // lower_res (Q4's operation).
    let low = clipped.lower_res(8).unwrap();
    println!("lower_res(8): {}x{} pixels", low.width(), low.height());
}
