//! EXPLAIN ANALYZE end-to-end: build a tiny benchmark world, profile Q2
//! (raster clips) and Q6 (spatial index selection), print the annotated
//! operator trees, and write a Chrome-trace profile
//! (`explain_analyze.trace.json` — load it in `chrome://tracing` or
//! <https://ui.perfetto.dev>).
//!
//! ```sh
//! cargo run --release --example explain_analyze
//! ```
//!
//! Also starts the Prometheus endpoint, scrapes it over plain HTTP, and
//! writes the exposition to `explain_analyze.metrics.prom` — exiting
//! non-zero if the profile comes back empty or the scrape is missing the
//! node-labelled wire counters, so CI can use this as a smoke test of the
//! whole observability pipeline.
//!
//! With `PARADISE_FAILPOINTS` set (e.g.
//! `PARADISE_FAILPOINTS='net.connect=error(ds down)'`) the example turns
//! into the chaos smoke instead: it arms the spec *after* the load, runs
//! Q6 under the fault schedule, and exits non-zero unless the query
//! either succeeded or failed cleanly in bounded time with a `failpoint`
//! audit trail in `explain_analyze.events.jsonl`.

use paradise::{Paradise, ParadiseConfig, QueryResult};
use paradise_datagen::tables::{
    land_cover_table, populated_places_table, raster_table, World, WorldSpec,
};
use std::io::{Read, Write};
use std::path::PathBuf;

const US: &str = "Polygon(-125, 25, -67, 25, -67, 49, -125, 49)";

fn plan_lines(r: &QueryResult) -> Vec<String> {
    r.rows.iter().map(|t| t.get(0).unwrap().as_str().unwrap().to_string()).collect()
}

/// CI's fault-injection smoke: run one Sequoia query under the env-armed
/// schedule and prove "clean error or correct answer, with an audit
/// trail" — never a hang, never a silent nothing.
fn chaos_smoke(db: &Paradise) {
    let events_path = PathBuf::from("explain_analyze.events.jsonl");
    db.cluster().events().attach_file(&events_path).expect("attach events file");
    let armed = paradise_util::failpoint::arm_from_env().expect("valid PARADISE_FAILPOINTS");
    println!("chaos smoke: {armed} failpoint(s) armed from PARADISE_FAILPOINTS");

    let t0 = std::time::Instant::now();
    let out = db.sql(&format!("select * from landCover where shape overlaps {US}"));
    let elapsed = t0.elapsed();
    paradise_util::failpoint::disarm_all();
    match &out {
        Ok(r) => println!("query survived the schedule: {} rows in {elapsed:.2?}", r.rows.len()),
        Err(e) => println!("query failed cleanly in {elapsed:.2?}: {e}"),
    }
    if elapsed > std::time::Duration::from_secs(60) {
        eprintln!("query wedged under the fault schedule ({elapsed:?})");
        std::process::exit(1);
    }

    // The audit trail: every trigger is a `failpoint` event, and a failed
    // query must also have logged `query.error`.
    let log = std::fs::read_to_string(&events_path).expect("events file");
    let has = |kind: &str| log.lines().any(|l| l.contains(&format!("\"event\":\"{kind}\"")));
    if !has("failpoint") {
        eprintln!("no failpoint events in {} — did the schedule fire?", events_path.display());
        std::process::exit(1);
    }
    if out.is_err() && !has("query.error") {
        eprintln!("query failed but no query.error event was logged");
        std::process::exit(1);
    }
    // Sanity-check the plane disarms: the same query must now be exact.
    db.sql(&format!("select * from landCover where shape overlaps {US}")).expect("after disarm");
    println!(
        "wrote {} ({} events: failpoint={} net.retry={} flow.stall={})",
        events_path.display(),
        log.lines().count(),
        log.lines().filter(|l| l.contains("\"event\":\"failpoint\"")).count(),
        log.lines().filter(|l| l.contains("\"event\":\"net.retry\"")).count(),
        log.lines().filter(|l| l.contains("\"event\":\"flow.stall\"")).count(),
    );
}

fn main() {
    let trace_path = PathBuf::from("explain_analyze.trace.json");
    let dir = std::env::temp_dir().join("paradise-explain-analyze");
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Paradise::create(
        ParadiseConfig::new(dir, 4)
            .with_grid_tiles(256)
            .with_pool_pages(512)
            .with_trace(&trace_path)
            .with_transport(paradise::TransportKind::Tcp)
            .with_metrics_addr("127.0.0.1:0"),
    )
    .expect("create cluster");

    let world = World::generate(WorldSpec::tiny(7));
    db.define_table(raster_table().with_tile_bytes(4096));
    db.define_table(populated_places_table());
    db.define_table(land_cover_table());
    db.load_table("raster", world.rasters.iter().cloned()).expect("load rasters");
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).expect("load places");
    db.load_table("landCover", world.land_cover.iter().cloned()).expect("load landCover");
    db.create_rtree_index("landCover", 2).expect("landCover rtree");
    db.commit().expect("commit");

    // Chaos smoke: arm the env spec only after the load is durable, so
    // the injected faults hit query execution, not table building.
    if std::env::var("PARADISE_FAILPOINTS").is_ok() {
        chaos_smoke(&db);
        return;
    }

    let mut annotated = 0;
    for (name, sql) in [
        (
            "Q2",
            format!(
                "explain analyze select raster.date, raster.data.clip({US}) \
                 from raster where raster.channel = 5 order by date"
            ),
        ),
        ("Q6", format!("explain analyze select * from landCover where shape overlaps {US}")),
    ] {
        let r = db.sql(&sql).expect(name);
        println!("=== {name} ===");
        for line in plan_lines(&r) {
            if line.contains("rows=") {
                annotated += 1;
            }
            println!("{line}");
        }
        println!();
    }

    // The profile must actually contain per-operator row counts and a
    // non-empty Chrome trace, or the observability pipeline is broken.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file");
    let registry = db.obs().render();
    println!("--- metrics registry (excerpt) ---");
    for line in registry.lines().filter(|l| l.contains("rtree.") || l.contains("net.")) {
        println!("{line}");
    }
    if annotated == 0 || !trace.contains("\"ph\":\"X\"") {
        eprintln!("empty EXPLAIN ANALYZE profile (annotated={annotated})");
        std::process::exit(1);
    }
    println!("\nwrote {} ({} bytes)", trace_path.display(), trace.len());

    // Scrape our own Prometheus endpoint and keep the exposition as an
    // artifact.
    let scrape_path = PathBuf::from("explain_analyze.metrics.prom");
    let addr = db.metrics_addr().expect("metrics endpoint");
    let mut conn = std::net::TcpStream::connect(addr).expect("connect /metrics");
    write!(conn, "GET /metrics HTTP/1.1\r\nHost: paradise\r\nConnection: close\r\n\r\n")
        .expect("request");
    let mut resp = String::new();
    conn.read_to_string(&mut resp).expect("scrape");
    let body = resp.split("\r\n\r\n").nth(1).unwrap_or_default();
    std::fs::write(&scrape_path, body).expect("write scrape");
    println!("--- /metrics scrape (excerpt) ---");
    for line in body.lines().filter(|l| l.contains("paradise_net")) {
        println!("{line}");
    }
    if !resp.starts_with("HTTP/1.1 200")
        || !body.contains("paradise_net_bytes_total")
        || !body.contains("node=\"0\"")
        || !body.contains("node=\"qc\"")
    {
        eprintln!("bad /metrics scrape from {addr}");
        std::process::exit(1);
    }
    println!("\nwrote {} ({} bytes)", scrape_path.display(), body.len());
}
