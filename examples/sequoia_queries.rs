//! Runs a sample of the global Sequoia 2000 benchmark queries (paper §3.1)
//! over a small synthetic world, through the SQL front end.
//!
//! ```sh
//! cargo run --release --example sequoia_queries
//! ```

use paradise::{Paradise, ParadiseConfig};
use paradise_datagen::tables::{
    drainage_table, land_cover_table, populated_places_table, raster_table, roads_table, World,
    WorldSpec,
};

fn main() {
    // Generate a small world and load it (benchmark Q1).
    let world = World::generate(WorldSpec::paper_ratio(7, 1, 5000));
    let dir = std::env::temp_dir().join("paradise-sequoia-example");
    let mut db =
        Paradise::create(ParadiseConfig::new(dir, 4).with_grid_tiles(1024).with_pool_pages(2048))
            .expect("create");
    db.define_table(raster_table().with_tile_bytes(4096));
    db.define_table(populated_places_table());
    db.define_table(roads_table());
    db.define_table(drainage_table());
    db.define_table(land_cover_table());
    db.load_table("raster", world.rasters.iter().cloned()).unwrap();
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).unwrap();
    db.load_table("roads", world.roads.iter().cloned()).unwrap();
    db.load_table("drainage", world.drainage.iter().cloned()).unwrap();
    db.load_table("landCover", world.land_cover.iter().cloned()).unwrap();
    db.create_btree_index("populatedPlaces", 4).unwrap();
    db.create_rtree_index("landCover", 2).unwrap();
    db.create_rtree_index("roads", 2).unwrap();
    db.create_rtree_index("drainage", 2).unwrap();
    db.commit().unwrap();
    println!("loaded: {:?}", db.table_names());

    // The continental-US clip polygon of the benchmark.
    let us = "Polygon(-125, 25, -67, 25, -67, 49, -125, 49)";

    let statements = [
        (
            "Q2",
            format!(
                "select raster.date, raster.data.clip({us}) from raster \
             where raster.channel = 5 order by date"
            ),
        ),
        ("Q5", "select * from populatedPlaces where name = \"Phoenix\"".to_string()),
        ("Q6", format!("select * from landCover where shape overlaps {us}")),
        (
            "Q7",
            "select shape.area(), type from landCover \
                where shape < Circle(Point(-90, 40), 25) and shape.area() < 3"
                .to_string(),
        ),
        (
            "Q8",
            "select landCover.shape, landCover.type from landCover, populatedPlaces \
                where populatedPlaces.name = \"Louisville\" and \
                landCover.shape overlaps populatedPlaces.location.makeBox(8)"
                .to_string(),
        ),
        (
            "Q11",
            "select closest(shape, Point(-89.4, 43.1)), type from roads group by type".to_string(),
        ),
        (
            "Q12",
            "select closest(drainage.shape, populatedPlaces.location), \
                 populatedPlaces.location from drainage, populatedPlaces \
                 where populatedPlaces.location overlaps drainage.shape and \
                 populatedPlaces.type = 1 group by populatedPlaces.location"
                .to_string(),
        ),
        (
            "Q13",
            "select * from drainage, roads where drainage.shape overlaps roads.shape".to_string(),
        ),
    ];

    println!("\n{:<5}{:>8}{:>14}{:>12}{:>10}", "query", "rows", "simulated", "net KB", "pulls");
    let mut q12_metrics = None;
    for (name, text) in &statements {
        db.flush_caches().unwrap();
        let r = db.sql(text).unwrap_or_else(|e| panic!("{name} failed: {e}"));
        println!(
            "{:<5}{:>8}{:>14.4?}{:>12.1}{:>10}",
            name,
            r.rows.len(),
            r.metrics.simulated_time(),
            r.metrics.net_bytes as f64 / 1024.0,
            r.metrics.pulls
        );
        if *name == "Q12" {
            q12_metrics = Some(r.metrics);
        }
    }

    // The full per-phase cost breakdown of one query (`QueryMetrics`
    // implements `Display`); Q12 is the multi-phase Figure 3.1 plan.
    if let Some(m) = q12_metrics {
        println!("\nQ12 cost breakdown:\n{m}");
    }
}
