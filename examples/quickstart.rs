//! Quickstart: create a 4-node Paradise cluster, define a table with a
//! spatial attribute, load it, and query it with the extended SQL dialect.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use paradise::{Paradise, ParadiseConfig};
use paradise_exec::schema::{DataType, Field, Schema};
use paradise_exec::value::Value;
use paradise_exec::{Decluster, TableDef, Tuple};
use paradise_geom::{Point, Shape};

fn main() {
    let dir = std::env::temp_dir().join("paradise-quickstart");
    let mut db = Paradise::create(ParadiseConfig::new(dir, 4)).expect("create cluster");

    // DDL: a table of cities, spatially declustered on its point column.
    db.define_table(TableDef::new(
        "cities",
        Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("population", DataType::Int),
            Field::new("location", DataType::Point),
        ]),
        Decluster::Spatial { col: 2 },
    ));

    // Load a handful of cities.
    let cities = [
        ("Madison", 270_000, -89.4, 43.1),
        ("Phoenix", 1_600_000, -112.1, 33.4),
        ("Louisville", 620_000, -85.8, 38.3),
        ("Quito", 1_800_000, -78.5, -0.2),
        ("Perth", 2_100_000, 115.9, -31.9),
    ];
    db.load_table(
        "cities",
        cities.iter().map(|&(name, pop, x, y)| {
            Tuple::new(vec![
                Value::Str(name.to_string()),
                Value::Int(pop),
                Value::Shape(Shape::Point(Point::new(x, y))),
            ])
        }),
    )
    .expect("load");
    db.commit().expect("commit");

    // Query with the extended SQL dialect (generic scan-filter-project).
    let result =
        db.sql("select name, population from cities where population > 1000000").expect("query");
    println!("big cities ({} rows):", result.rows.len());
    for row in &result.rows {
        println!(
            "  {:<12} {}",
            row.get(0).unwrap().as_str().unwrap(),
            row.get(1).unwrap().as_int().unwrap()
        );
    }
    // The per-phase cost breakdown (`QueryMetrics` implements `Display`).
    println!("\n{}", result.metrics);
}
