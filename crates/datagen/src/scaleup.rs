//! Resolution scaleup (paper §3.1.3, Figure 3.2).
//!
//! "When a user moves to a data set with a higher resolution, the existing
//! spatial features will be more detailed, and at the same time a number of
//! smaller 'satellite' features that hover around the existing feature will
//! now become visible."
//!
//! * **Polygons** scaled `S×`: the original gains `N·(S-1)/S` points
//!   (randomly chosen edges are broken in two) and `S-1` satellite polygons
//!   appear, each a regularly shaped polygon with `N·(S-1)/S` points
//!   inscribed in a box with sides one tenth of the original's bounding
//!   box, placed randomly near the original.
//! * **Polylines** are scaled the same way.
//! * **Points** gain `S-1` satellite points randomly placed nearby.
//! * **Rasters**: every pixel is over-sampled `S` times (total pixels ×S)
//!   with slight value perturbation "to prevent artificially high
//!   compression ratios"; no new images are added.

use paradise_array::Raster;
use paradise_geom::{Point, Polygon, Polyline, Rect};
use paradise_util::Rng as StdRng;

/// Breaks `extra` randomly chosen edges of a closed ring / open chain in
/// two by inserting the edge midpoint.
fn densify(points: &[Point], extra: usize, closed: bool, rng: &mut StdRng) -> Vec<Point> {
    let n_edges = if closed { points.len() } else { points.len() - 1 };
    // How many midpoints to insert per edge (a multiset of edge picks).
    let mut inserts = vec![0usize; n_edges];
    for _ in 0..extra {
        inserts[rng.gen_range(0..n_edges)] += 1;
    }
    let mut out = Vec::with_capacity(points.len() + extra);
    for i in 0..n_edges {
        let a = points[i];
        let b = points[(i + 1) % points.len()];
        out.push(a);
        // k midpoints subdivide the edge into k+1 equal pieces.
        let k = inserts[i];
        for j in 1..=k {
            let t = j as f64 / (k + 1) as f64;
            out.push(Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)));
        }
    }
    if !closed {
        out.push(points[points.len() - 1]);
    }
    out
}

/// A satellite bounding box: sides one tenth of the original's, placed
/// randomly within one original-bbox-width of the original.
fn satellite_box(bbox: &Rect, rng: &mut StdRng) -> Rect {
    let w = (bbox.width() / 10.0).max(1e-6);
    let h = (bbox.height() / 10.0).max(1e-6);
    let dx = rng.gen_range(-bbox.width()..=bbox.width().max(1e-6));
    let dy = rng.gen_range(-bbox.height()..=bbox.height().max(1e-6));
    let lo = Point::new(bbox.lo.x + dx, bbox.lo.y + dy);
    Rect::from_corners(lo, Point::new(lo.x + w, lo.y + h)).expect("finite satellite box")
}

/// Scales a polygon `s×`: returns the densified original plus `s-1`
/// satellites.
pub fn scale_polygon(poly: &Polygon, s: usize, rng: &mut StdRng) -> (Polygon, Vec<Polygon>) {
    assert!(s >= 1);
    let n = poly.num_points();
    let extra = n * (s - 1) / s;
    let dense = Polygon::new(densify(poly.ring(), extra, true, rng)).expect("densified ring");
    let sat_points = (n * (s - 1) / s).max(3);
    let satellites = (0..s - 1)
        .map(|_| {
            Polygon::regular_in_rect(&satellite_box(&poly.bbox(), rng), sat_points)
                .expect("satellite polygon")
        })
        .collect();
    (dense, satellites)
}

/// Scales a polyline `s×`: densified original plus `s-1` satellite chains.
pub fn scale_polyline(line: &Polyline, s: usize, rng: &mut StdRng) -> (Polyline, Vec<Polyline>) {
    assert!(s >= 1);
    let n = line.num_points();
    let extra = n * (s - 1) / s;
    let dense = Polyline::new(densify(line.points(), extra, false, rng)).expect("densified line");
    let sat_points = (n * (s - 1) / s).max(2);
    let satellites = (0..s - 1)
        .map(|_| {
            // A little zig-zag chain inside the satellite box.
            let b = satellite_box(&line.bbox(), rng);
            let pts: Vec<Point> = (0..sat_points)
                .map(|i| {
                    let t = i as f64 / (sat_points - 1).max(1) as f64;
                    let y = if i % 2 == 0 { b.lo.y } else { b.hi.y };
                    Point::new(b.lo.x + t * b.width(), y)
                })
                .collect();
            Polyline::new(pts).expect("satellite polyline")
        })
        .collect();
    (dense, satellites)
}

/// Scales a point `s×`: the original plus `s-1` satellites within `radius`.
pub fn scale_point(p: &Point, s: usize, radius: f64, rng: &mut StdRng) -> (Point, Vec<Point>) {
    assert!(s >= 1);
    let satellites = (0..s - 1)
        .map(|_| {
            Point::new(p.x + rng.gen_range(-radius..=radius), p.y + rng.gen_range(-radius..=radius))
        })
        .collect();
    (*p, satellites)
}

/// Scales a raster `s×` (total pixels × s): over-samples along the axes by
/// a factor pair `(a, b)` with `a·b = s`, perturbing each over-sampled
/// pixel by ±2 to defeat artificially high compression.
pub fn scale_raster(r: &Raster, s: usize, rng: &mut StdRng) -> Raster {
    assert!(s >= 1);
    // Pick the most square factor pair a*b = s.
    let mut a = (s as f64).sqrt() as usize;
    while a > 1 && !s.is_multiple_of(a) {
        a -= 1;
    }
    let b = s / a.max(1);
    let max = i64::from(r.depth().max_value());
    let mut out =
        Raster::new(r.width() * b, r.height() * a, r.depth(), r.geo()).expect("scaled raster");
    for row in 0..r.height() {
        for col in 0..r.width() {
            let base = r.pixel(col, row).expect("in range") as i64;
            for dr in 0..a {
                for dc in 0..b {
                    let v = (base + rng.gen_range(-2i64..=2)).clamp(0, max) as u32;
                    out.set_pixel(col * b + dc, row * a + dr, v).expect("in range");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use paradise_array::BitDepth;

    fn square(side: f64) -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(side, 0.0),
            Point::new(side, side),
            Point::new(0.0, side),
        ])
        .unwrap()
    }

    #[test]
    fn polygon_scaleup_doubles_points_and_features() {
        let mut rng = rng(1);
        let p = square(10.0);
        let (dense, sats) = scale_polygon(&p, 2, &mut rng);
        // N=4, extra = 4*1/2 = 2 points added; 1 satellite with 2->3 pts min
        assert_eq!(dense.num_points(), 6);
        assert_eq!(sats.len(), 1);
        // Total features double; total points roughly double.
        let total: usize = dense.num_points() + sats.iter().map(|s| s.num_points()).sum::<usize>();
        assert!(total >= 8, "total points {total}");
        // Densified polygon keeps the same area (midpoint insertion).
        assert!((dense.area() - p.area()).abs() < 1e-9);
    }

    #[test]
    fn polygon_scaleup_s4() {
        let mut rng = rng(2);
        // An 8-point polygon scaled 4x, as in Figure 3.2: 6 new points and
        // 3 satellites each with 6 points.
        let octagon = Polygon::regular_in_rect(
            &Rect::from_corners(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap(),
            8,
        )
        .unwrap();
        let (dense, sats) = scale_polygon(&octagon, 4, &mut rng);
        assert_eq!(dense.num_points(), 8 + 6);
        assert_eq!(sats.len(), 3);
        for s in &sats {
            assert_eq!(s.num_points(), 6);
            // satellite bbox sides ~ one tenth of the original's.
            assert!(s.bbox().width() <= octagon.bbox().width() / 9.0);
        }
    }

    #[test]
    fn satellites_stay_near_original() {
        let mut rng = rng(3);
        let p = square(10.0);
        let (_, sats) = scale_polygon(&p, 8, &mut rng);
        assert_eq!(sats.len(), 7);
        let neighbourhood = p.bbox().expand(2.0 * p.bbox().width());
        for s in &sats {
            assert!(neighbourhood.contains_rect(&s.bbox()));
        }
    }

    #[test]
    fn polyline_scaleup() {
        let mut rng = rng(4);
        let line = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(10.0, 0.0),
            Point::new(15.0, 5.0),
        ])
        .unwrap();
        let (dense, sats) = scale_polyline(&line, 4, &mut rng);
        assert_eq!(dense.num_points(), 4 + 3);
        assert_eq!(sats.len(), 3);
        // Densification preserves total length (points on the edges).
        assert!((dense.length() - line.length()).abs() < 1e-9);
        // Endpoints preserved.
        assert_eq!(dense.points()[0], line.points()[0]);
        assert_eq!(*dense.points().last().unwrap(), *line.points().last().unwrap());
    }

    #[test]
    fn point_scaleup() {
        let mut rng = rng(5);
        let p = Point::new(3.0, 4.0);
        let (orig, sats) = scale_point(&p, 4, 0.5, &mut rng);
        assert_eq!(orig, p);
        assert_eq!(sats.len(), 3);
        for s in &sats {
            assert!(p.distance(s) <= 0.5 * 2f64.sqrt() + 1e-12);
        }
    }

    #[test]
    fn raster_scaleup_multiplies_pixels_not_region() {
        let mut rng = rng(6);
        let geo = Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let mut r = Raster::new(8, 8, BitDepth::Sixteen, geo).unwrap();
        for row in 0..8 {
            for col in 0..8 {
                r.set_pixel(col, row, 1000).unwrap();
            }
        }
        let r2 = scale_raster(&r, 2, &mut rng);
        assert_eq!(r2.width() * r2.height(), 128, "pixels x2");
        assert_eq!(r2.geo(), geo, "resolution scaleup keeps the region");
        let r4 = scale_raster(&r, 4, &mut rng);
        assert_eq!(r4.width() * r4.height(), 256);
        assert_eq!(r4.width(), 16);
        assert_eq!(r4.height(), 16);
        // Values perturbed but close.
        for row in 0..r2.height() {
            for col in 0..r2.width() {
                let v = r2.pixel(col, row).unwrap() as i64;
                assert!((v - 1000).abs() <= 2);
            }
        }
    }

    #[test]
    fn scaleup_is_deterministic_per_seed() {
        let p = square(7.0);
        let (a1, s1) = scale_polygon(&p, 3, &mut rng(42));
        let (a2, s2) = scale_polygon(&p, 3, &mut rng(42));
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
    }
}
