//! The five benchmark tables (paper §3.1.1) at a configurable scale.

use crate::scaleup;
use crate::{random_point, rng, world_rect};
use paradise_array::{BitDepth, Raster};
use paradise_exec::schema::{DataType, Field, Schema};
use paradise_exec::value::{Date, RasterValue, Value};
use paradise_exec::{Decluster, TableDef, Tuple};
use paradise_geom::{Point, Polygon, Polyline, Rect, Shape};
use paradise_util::Rng as StdRng;
use std::sync::Arc;

/// `populatedPlaces.type` value meaning "large city" (Q12's filter).
pub const LARGE_CITY: i64 = 1;
/// `landCover.type` value meaning "oil field" (Q9/Q14's filter).
pub const OIL_FIELD: i64 = 7;
/// The raster channel the queries select (`channel = 5`).
pub const QUERY_CHANNEL: i64 = 5;
/// The anchored date used by Q3/Q4/Q9 (`Date("1988-04-01")`).
pub fn query_date() -> Date {
    Date::from_ymd(1988, 4, 1)
}

/// The benchmark's constant POLYGON: "a rectangular region roughly
/// corresponding to the continental United States … approximately 2% of
/// each raster image".
pub fn us_polygon() -> Polygon {
    Polygon::from_rect(
        &Rect::from_corners(Point::new(-125.0, 25.0), Point::new(-67.0, 49.0)).unwrap(),
    )
}

/// Generation parameters. `scale` applies the §3.1.3 resolution scaleup
/// (1, 2, 4 …); the other counts are the scale-1 cardinalities, by default
/// the Table 3.1 cardinalities divided by ~1000.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// RNG seed.
    pub seed: u64,
    /// Resolution-scaleup factor (Table 3.1's rows are 1, 2, 4).
    pub scale: usize,
    /// Number of raster dates (paper: 360 over 10 years).
    pub dates: usize,
    /// Raster channels (paper: 4 channels → 1440 rasters).
    pub channels: Vec<i64>,
    /// Base raster width in pixels.
    pub raster_w: usize,
    /// Base raster height in pixels.
    pub raster_h: usize,
    /// Populated places at scale 1 (paper: 250 K).
    pub populated_places: usize,
    /// Roads at scale 1 (paper: 700 K).
    pub roads: usize,
    /// Drainage features at scale 1 (paper: 1.74 M).
    pub drainage: usize,
    /// Land-cover polygons at scale 1 (paper: 570 K).
    pub land_cover: usize,
}

impl WorldSpec {
    /// Table 3.1 cardinalities shrunk by `shrink` (e.g. 1000 gives 250
    /// places, 700 roads, 1740 drainage features, 570 polygons) at
    /// resolution scale `scale`.
    pub fn paper_ratio(seed: u64, scale: usize, shrink: usize) -> WorldSpec {
        WorldSpec {
            seed,
            scale,
            dates: 36,
            channels: vec![1, 3, QUERY_CHANNEL, 7],
            raster_w: 240,
            raster_h: 120,
            populated_places: 250_000 / shrink,
            roads: 700_000 / shrink,
            drainage: 1_740_000 / shrink,
            land_cover: 570_000 / shrink,
        }
    }

    /// A tiny world for unit tests.
    pub fn tiny(seed: u64) -> WorldSpec {
        WorldSpec {
            seed,
            scale: 1,
            dates: 6,
            channels: vec![1, QUERY_CHANNEL],
            raster_w: 36,
            raster_h: 18,
            populated_places: 60,
            roads: 80,
            drainage: 120,
            land_cover: 60,
        }
    }
}

/// The generated benchmark relation set.
pub struct World {
    /// Generation parameters.
    pub spec: WorldSpec,
    /// `raster(date, channel, data)` tuples.
    pub rasters: Vec<Tuple>,
    /// `populatedPlaces(id, containing_face, type, location, name)`.
    pub populated_places: Vec<Tuple>,
    /// `roads(id, type, shape)`.
    pub roads: Vec<Tuple>,
    /// `drainage(id, type, shape)`.
    pub drainage: Vec<Tuple>,
    /// `landCover(id, type, shape)`.
    pub land_cover: Vec<Tuple>,
}

/// Continents: the land mask creating the paper's spatial skew (features
/// cluster on land, ocean tiles stay nearly empty — the Lake Michigan /
/// Rhinelander discussion of §2.7.1).
pub fn continents() -> Vec<Rect> {
    let r = |x0: f64, y0: f64, x1: f64, y1: f64| {
        Rect::from_corners(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    };
    vec![
        r(-165.0, 15.0, -55.0, 70.0),  // North America
        r(-80.0, -55.0, -35.0, 10.0),  // South America
        r(-15.0, -35.0, 50.0, 35.0),   // Africa
        r(-10.0, 36.0, 60.0, 70.0),    // Europe
        r(60.0, 5.0, 145.0, 65.0),     // Asia
        r(112.0, -40.0, 155.0, -12.0), // Australia
    ]
}

fn random_land_point(rng: &mut StdRng, continents: &[Rect]) -> Point {
    // Weight by area.
    let total: f64 = continents.iter().map(|c| c.area()).sum();
    let mut pick = rng.gen_range(0.0..total);
    for c in continents {
        if pick < c.area() {
            return random_point(rng, c);
        }
        pick -= c.area();
    }
    random_point(rng, continents.last().expect("non-empty"))
}

/// A meandering chain starting at `start` (roads / drainage).
fn random_chain(rng: &mut StdRng, start: Point, segs: usize, step: f64) -> Polyline {
    let mut pts = Vec::with_capacity(segs + 1);
    let mut p = start;
    let mut dir: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    pts.push(p);
    for _ in 0..segs {
        dir += rng.gen_range(-0.8..0.8);
        p = Point::new(
            (p.x + step * dir.cos()).clamp(-179.9, 179.9),
            (p.y + step * dir.sin()).clamp(-89.9, 89.9),
        );
        pts.push(p);
    }
    Polyline::new(pts).expect(">= 2 points")
}

/// A blobby polygon around `center` (land cover).
fn random_blob(rng: &mut StdRng, center: Point, radius: f64, points: usize) -> Polygon {
    let n = points.max(4);
    let ring: Vec<Point> = (0..n)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / n as f64;
            let r = radius * rng.gen_range(0.55..1.0);
            Point::new(
                (center.x + r * a.cos()).clamp(-179.9, 179.9),
                (center.y + r * a.sin()).clamp(-89.9, 89.9),
            )
        })
        .collect();
    Polygon::new(ring).expect(">= 3 points")
}

/// A synthetic AVHRR-like composite: a latitude gradient plus seasonal and
/// per-channel terms plus noise — compresses moderately, like real imagery.
fn make_raster(rng: &mut StdRng, w: usize, h: usize, date_ord: usize, channel: i64) -> Raster {
    let mut r = Raster::new(w, h, BitDepth::Sixteen, world_rect()).expect("raster");
    let season = (date_ord as f64 / 36.0 * std::f64::consts::TAU).sin();
    for row in 0..h {
        let lat = 90.0 - (row as f64 + 0.5) * 180.0 / h as f64;
        let base = 20_000.0 + 15_000.0 * (lat.to_radians().cos()) + 2_000.0 * season;
        for col in 0..w {
            let v = base + channel as f64 * 500.0 + rng.gen_range(-300.0..300.0);
            r.set_pixel(col, row, v.max(0.0) as u32).expect("in range");
        }
    }
    r
}

impl World {
    /// Generates the world for `spec` (deterministic per seed).
    pub fn generate(spec: WorldSpec) -> World {
        let mut rng = rng(spec.seed);
        let continents = continents();
        let s = spec.scale.max(1);

        // --- rasters -------------------------------------------------
        // Dates every 10 days anchored so Q3/Q4/Q9's 1988-04-01 exists and
        // roughly a year of dates falls in 1988 (Q14's range).
        let anchor = query_date().0;
        let mut rasters = Vec::with_capacity(spec.dates * spec.channels.len());
        for di in 0..spec.dates {
            let date = Date(anchor + (di as i64 - (spec.dates as i64 / 4)) * 10);
            for &ch in &spec.channels {
                let base = make_raster(&mut rng, spec.raster_w, spec.raster_h, di, ch);
                let img = if s > 1 { scaleup::scale_raster(&base, s, &mut rng) } else { base };
                rasters.push(Tuple::new(vec![
                    Value::Date(date),
                    Value::Int(ch),
                    Value::Raster(RasterValue::Mem(Arc::new(img))),
                ]));
            }
        }

        // --- populated places -----------------------------------------
        // Places cluster around urban centres (spatial skew).
        let n_centers = (spec.populated_places / 20).max(1);
        let centers: Vec<Point> =
            (0..n_centers).map(|_| random_land_point(&mut rng, &continents)).collect();
        let mut populated_places = Vec::new();
        let mut pp_id = 0usize;
        let push_place = |id: usize, p: Point, name: String, rng: &mut StdRng| {
            // Roughly 2% large cities, with a deterministic floor (one per
            // 40 ids) so even tiny worlds always have Q12 targets.
            let ty =
                if id % 40 == 7 || rng.gen_bool(0.02) { LARGE_CITY } else { 2 + (id as i64 % 4) };
            Tuple::new(vec![
                Value::Str(format!("pp-{id}")),
                Value::Str(format!("face-{}", id % 97)),
                Value::Int(ty),
                Value::Shape(Shape::Point(p)),
                Value::Str(name),
            ])
        };
        for i in 0..spec.populated_places {
            let c = centers[rng.gen_range(0..centers.len())];
            let p = Point::new(
                (c.x + rng.gen_range(-3.0..3.0)).clamp(-179.9, 179.9),
                (c.y + rng.gen_range(-3.0..3.0)).clamp(-89.9, 89.9),
            );
            // Q5 needs a Phoenix; Q8 needs Louisvilles.
            let name = match i {
                0 => "Phoenix".to_string(),
                1 | 2 => "Louisville".to_string(),
                _ => format!("place-{i}"),
            };
            let (orig, sats) = scaleup::scale_point(&p, s, 0.5, &mut rng);
            populated_places.push(push_place(pp_id, orig, name, &mut rng));
            pp_id += 1;
            for sp in sats {
                populated_places.push(push_place(pp_id, sp, format!("place-{pp_id}"), &mut rng));
                pp_id += 1;
            }
        }

        // --- roads & drainage ------------------------------------------
        let mk_lines = |count: usize,
                        types: i64,
                        segs: usize,
                        step: f64,
                        prefix: &str,
                        rng: &mut StdRng|
         -> Vec<Tuple> {
            let mut out = Vec::new();
            let mut id = 0usize;
            let push = |id: usize, line: Polyline, rng: &mut StdRng, out: &mut Vec<Tuple>| {
                out.push(Tuple::new(vec![
                    Value::Str(format!("{prefix}-{id}")),
                    Value::Int(rng.gen_range(0..types)),
                    Value::Shape(Shape::Polyline(line)),
                ]));
            };
            for _ in 0..count {
                let start = random_land_point(rng, &continents);
                let base = random_chain(rng, start, segs, step);
                let (dense, sats) = scaleup::scale_polyline(&base, s, rng);
                push(id, dense, rng, &mut out);
                id += 1;
                for sat in sats {
                    push(id, sat, rng, &mut out);
                    id += 1;
                }
            }
            out
        };
        let roads = mk_lines(spec.roads, 8, 6, 1.2, "rd", &mut rng);
        let drainage = mk_lines(spec.drainage, 21, 8, 0.9, "dr", &mut rng);

        // --- land cover --------------------------------------------------
        let mut land_cover = Vec::new();
        let mut lc_id = 0usize;
        let push_lc = |id: usize, ty: i64, poly: Polygon, out: &mut Vec<Tuple>| {
            out.push(Tuple::new(vec![
                Value::Str(format!("lc-{id}")),
                Value::Int(ty),
                Value::Shape(Shape::Polygon(poly)),
            ]));
        };
        for i in 0..spec.land_cover {
            let center = random_land_point(&mut rng, &continents);
            let radius = rng.gen_range(0.3..2.0);
            let base = random_blob(&mut rng, center, radius, 8);
            // 16 categories (0..16); OIL_FIELD (7) only for every 100th.
            let ty = if i % 100 == 0 {
                OIL_FIELD
            } else {
                let t = i as i64 % 15;
                if t >= OIL_FIELD {
                    t + 1
                } else {
                    t
                }
            };
            let (dense, sats) = scaleup::scale_polygon(&base, s, &mut rng);
            push_lc(lc_id, ty, dense, &mut land_cover);
            lc_id += 1;
            for sat in sats {
                // Satellites get ordinary (non-oil-field) types.
                let t = lc_id as i64 % 15;
                let t = if t >= OIL_FIELD { t + 1 } else { t };
                push_lc(lc_id, t, sat, &mut land_cover);
                lc_id += 1;
            }
        }

        World { spec, rasters, populated_places, roads, drainage, land_cover }
    }

    /// Total raster pixel bytes (for the Table 3.1 size columns).
    pub fn raster_bytes(&self) -> usize {
        self.rasters
            .iter()
            .map(|t| match t.get(2).expect("data col") {
                Value::Raster(RasterValue::Mem(r)) => r.byte_len(),
                _ => 0,
            })
            .sum()
    }
}

/// `raster(date, channel, data)` — round-robin declustered: rasters are
/// large and uniformly queried, so round robin balances them (§2.3).
pub fn raster_table() -> TableDef {
    TableDef::new(
        "raster",
        Schema::new(vec![
            Field::new("date", DataType::Date),
            Field::new("channel", DataType::Int),
            Field::new("data", DataType::Raster),
        ]),
        Decluster::RoundRobin,
    )
}

/// `populatedPlaces(id, containing_face, type, location, name)` —
/// spatially declustered on `location` (Q12 step 2).
pub fn populated_places_table() -> TableDef {
    TableDef::new(
        "populatedPlaces",
        Schema::new(vec![
            Field::new("id", DataType::Str),
            Field::new("containing_face", DataType::Str),
            Field::new("type", DataType::Int),
            Field::new("location", DataType::Point),
            Field::new("name", DataType::Str),
        ]),
        Decluster::Spatial { col: 3 },
    )
}

/// `roads(id, type, shape)` — spatially declustered on `shape`.
pub fn roads_table() -> TableDef {
    TableDef::new(
        "roads",
        Schema::new(vec![
            Field::new("id", DataType::Str),
            Field::new("type", DataType::Int),
            Field::new("shape", DataType::Polyline),
        ]),
        Decluster::Spatial { col: 2 },
    )
}

/// `drainage(id, type, shape)` — spatially declustered on `shape` (Q12
/// step 1).
pub fn drainage_table() -> TableDef {
    TableDef::new(
        "drainage",
        Schema::new(vec![
            Field::new("id", DataType::Str),
            Field::new("type", DataType::Int),
            Field::new("shape", DataType::Polyline),
        ]),
        Decluster::Spatial { col: 2 },
    )
}

/// `landCover(id, type, shape)` — spatially declustered on `shape`.
pub fn land_cover_table() -> TableDef {
    TableDef::new(
        "landCover",
        Schema::new(vec![
            Field::new("id", DataType::Str),
            Field::new("type", DataType::Int),
            Field::new("shape", DataType::Polygon),
        ]),
        Decluster::Spatial { col: 2 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_world_has_expected_shape() {
        let w = World::generate(WorldSpec::tiny(1));
        assert_eq!(w.rasters.len(), 6 * 2);
        assert_eq!(w.populated_places.len(), 60);
        assert_eq!(w.roads.len(), 80);
        assert_eq!(w.drainage.len(), 120);
        assert_eq!(w.land_cover.len(), 60);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldSpec::tiny(7));
        let b = World::generate(WorldSpec::tiny(7));
        assert_eq!(a.populated_places, b.populated_places);
        assert_eq!(a.roads, b.roads);
        assert_eq!(a.land_cover, b.land_cover);
    }

    #[test]
    fn query_constants_exist() {
        let w = World::generate(WorldSpec::tiny(2));
        // Phoenix and Louisville present (Q5/Q8).
        let names: Vec<&str> =
            w.populated_places.iter().map(|t| t.get(4).unwrap().as_str().unwrap()).collect();
        assert!(names.contains(&"Phoenix"));
        assert!(names.iter().filter(|n| **n == "Louisville").count() >= 1);
        // The query date exists on the query channel (Q4/Q9).
        let hit = w.rasters.iter().any(|t| {
            t.get(0).unwrap().as_date().unwrap() == query_date()
                && t.get(1).unwrap().as_int().unwrap() == QUERY_CHANNEL
        });
        assert!(hit, "1988-04-01 channel 5 raster must exist");
        // Some oil fields exist (Q9/Q14).
        assert!(w.land_cover.iter().any(|t| t.get(1).unwrap().as_int().unwrap() == OIL_FIELD));
        // Some large cities exist (Q12).
        assert!(w
            .populated_places
            .iter()
            .any(|t| t.get(2).unwrap().as_int().unwrap() == LARGE_CITY));
    }

    #[test]
    fn scaleup_doubles_vector_tables_and_raster_bytes() {
        let s1 = World::generate(WorldSpec::tiny(3));
        let mut spec2 = WorldSpec::tiny(3);
        spec2.scale = 2;
        let s2 = World::generate(spec2);
        // Feature counts double (original + satellites).
        assert_eq!(s2.land_cover.len(), 2 * s1.land_cover.len());
        assert_eq!(s2.roads.len(), 2 * s1.roads.len());
        assert_eq!(s2.drainage.len(), 2 * s1.drainage.len());
        assert_eq!(s2.populated_places.len(), 2 * s1.populated_places.len());
        // Raster count fixed; bytes double.
        assert_eq!(s2.rasters.len(), s1.rasters.len());
        assert_eq!(s2.raster_bytes(), 2 * s1.raster_bytes());
    }

    #[test]
    fn features_cluster_on_land() {
        let w = World::generate(WorldSpec::tiny(4));
        let land = continents();
        let on_land = w
            .populated_places
            .iter()
            .filter(|t| {
                let p = t.get(3).unwrap().as_shape().unwrap().as_point().unwrap();
                land.iter().any(|c| c.expand(4.0).contains_point(&p))
            })
            .count();
        assert!(
            on_land * 10 >= w.populated_places.len() * 9,
            "{on_land}/{} places on land",
            w.populated_places.len()
        );
    }

    #[test]
    fn table_defs_match_paper_schemas() {
        assert_eq!(raster_table().schema.len(), 3);
        assert_eq!(populated_places_table().schema.len(), 5);
        assert_eq!(roads_table().schema.len(), 3);
        assert_eq!(drainage_table().schema.len(), 3);
        assert_eq!(land_cover_table().schema.len(), 3);
        assert!(matches!(populated_places_table().decluster, Decluster::Spatial { col: 3 }));
        assert!(matches!(raster_table().decluster, Decluster::RoundRobin));
    }
}
