//! # paradise-datagen
//!
//! The *global Sequoia 2000* benchmark data generator (paper §3.1).
//!
//! The paper's data — 10 years of world-wide AVHRR composites plus the DCW
//! global vector data — is not redistributable, so this crate synthesises a
//! geo-registered world with the same *structure*:
//!
//! * [`tables`] — the five benchmark tables (`raster`, `populatedPlaces`,
//!   `roads`, `drainage`, `landCover`) with the paper's schemas, realistic
//!   spatial skew (places cluster around city centres; land cover avoids
//!   "oceans"), and cardinalities proportional to Table 3.1/3.3 at a
//!   configurable scale factor;
//! * [`scaleup`] — the §3.1.3 **resolution scaleup** transformation:
//!   polygons gain points and sprout "satellite" polygons, polylines
//!   likewise, points gain satellite points, rasters are over-sampled with
//!   pixel perturbation.
//!
//! Everything is seeded and deterministic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod scaleup;
pub mod tables;

pub use tables::{World, WorldSpec};

use paradise_geom::{Point, Rect};
use paradise_util::Rng as StdRng;

/// The world rectangle used by the benchmark (longitude × latitude).
pub fn world_rect() -> Rect {
    Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).expect("valid world")
}

/// A seeded RNG for deterministic generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random point in `rect`.
pub fn random_point(rng: &mut StdRng, rect: &Rect) -> Point {
    Point::new(rng.gen_range(rect.lo.x..=rect.hi.x), rng.gen_range(rect.lo.y..=rect.hi.y))
}
