//! Tokenizer for the extended SQL dialect.

use crate::{ParseError, Result};

/// One token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (stored as written; keyword matching is
    /// case-insensitive at the parser level).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal, single- or double-quoted (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

/// A token plus its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Tokenizes `input`.
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                out.push(Spanned { tok: Token::LParen, offset: start });
                i += 1;
            }
            ')' => {
                out.push(Spanned { tok: Token::RParen, offset: start });
                i += 1;
            }
            ',' => {
                out.push(Spanned { tok: Token::Comma, offset: start });
                i += 1;
            }
            '*' => {
                out.push(Spanned { tok: Token::Star, offset: start });
                i += 1;
            }
            ';' => {
                out.push(Spanned { tok: Token::Semi, offset: start });
                i += 1;
            }
            '=' => {
                out.push(Spanned { tok: Token::Eq, offset: start });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Token::Le, offset: start });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Lt, offset: start });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Token::Ge, offset: start });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Gt, offset: start });
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = bytes[i];
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                out.push(Spanned { tok: Token::Str(input[i + 1..j].to_string()), offset: start });
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let mut j = i;
                if bytes[j] == b'-' {
                    j += 1;
                    if j >= bytes.len() || !bytes[j].is_ascii_digit() {
                        return Err(ParseError { message: "dangling '-'".into(), offset: start });
                    }
                }
                let mut is_float = false;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                    if bytes[j] == b'.' {
                        // A dot not followed by a digit is a method call dot.
                        if j + 1 < bytes.len() && bytes[j + 1].is_ascii_digit() {
                            is_float = true;
                        } else {
                            break;
                        }
                    }
                    j += 1;
                }
                let text = &input[i..j];
                let tok = if is_float {
                    Token::Float(text.parse().map_err(|_| ParseError {
                        message: format!("bad float literal {text:?}"),
                        offset: start,
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| ParseError {
                        message: format!("bad int literal {text:?}"),
                        offset: start,
                    })?)
                };
                out.push(Spanned { tok, offset: start });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Spanned { tok: Token::Ident(input[i..j].to_string()), offset: start });
                i = j;
            }
            '.' => {
                out.push(Spanned { tok: Token::Dot, offset: start });
                i += 1;
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("select * from raster;"),
            vec![
                Token::Ident("select".into()),
                Token::Star,
                Token::Ident("from".into()),
                Token::Ident("raster".into()),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            toks("42 -7 3.5 -0.25 \"Phoenix\""),
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.5),
                Token::Float(-0.25),
                Token::Str("Phoenix".into()),
            ]
        );
    }

    #[test]
    fn method_call_dots_vs_float_dots() {
        assert_eq!(
            toks("raster.data.clip(5.0)"),
            vec![
                Token::Ident("raster".into()),
                Token::Dot,
                Token::Ident("data".into()),
                Token::Dot,
                Token::Ident("clip".into()),
                Token::LParen,
                Token::Float(5.0),
                Token::RParen,
            ]
        );
        // "5.clip" must lex the 5 as an int followed by a dot.
        assert_eq!(toks("5.x"), vec![Token::Int(5), Token::Dot, Token::Ident("x".into())]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <= b >= c < d > e = f"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ge,
                Token::Ident("c".into()),
                Token::Lt,
                Token::Ident("d".into()),
                Token::Gt,
                Token::Ident("e".into()),
                Token::Eq,
                Token::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn single_quoted_strings() {
        assert_eq!(
            toks("'wal%' \"x\" 'it'"),
            vec![Token::Str("wal%".into()), Token::Str("x".into()), Token::Str("it".into())]
        );
        assert_eq!(lex("'oops").unwrap_err().offset, 0);
    }

    #[test]
    fn errors_carry_offsets() {
        let e = lex("select \"unterminated").unwrap_err();
        assert_eq!(e.offset, 7);
        let e = lex("a ? b").unwrap_err();
        assert_eq!(e.offset, 2);
    }
}
