//! Recursive-descent parser for the extended SQL dialect.

use crate::ast::{BinOp, ExplainMode, Expr, Projection, SelectStmt, Statement};
use crate::lexer::{lex, Spanned, Token};
use crate::{ParseError, Result};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|s| s.offset).unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(ParseError { message: msg.into(), offset: self.offset() })
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw:?}"))
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    /// primary := literal | ident | ident '(' args ')' | ident '.' ident …
    /// with trailing method calls `.name(args)`.
    fn primary(&mut self) -> Result<Expr> {
        let mut base = match self.bump() {
            Some(Token::Int(v)) => Expr::Int(v),
            Some(Token::Float(v)) => Expr::Float(v),
            Some(Token::Str(s)) => Expr::Str(s),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                e
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let args = self.args()?;
                    Expr::Call { func: name, args }
                } else {
                    Expr::Column { table: None, column: name }
                }
            }
            other => {
                self.pos -= 1;
                return self.err(format!("expected expression, found {other:?}"));
            }
        };
        // Dotted chain: table.column, then method calls.
        while self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let name = self.ident()?;
            if self.peek() == Some(&Token::LParen) {
                self.pos += 1;
                let args = self.args()?;
                base = Expr::Method { recv: Box::new(base), name, args };
            } else {
                // A bare dotted name: promote Column(None, a).b to
                // Column(Some(a), b); anything else is an error.
                base = match base {
                    Expr::Column { table: None, column } => {
                        Expr::Column { table: Some(column), column: name }
                    }
                    _ => return self.err("unexpected '.' after expression"),
                };
            }
        }
        Ok(base)
    }

    fn args(&mut self) -> Result<Vec<Expr>> {
        let mut args = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            self.pos += 1;
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => return Ok(args),
                other => {
                    self.pos -= 1;
                    return self.err(format!("expected ',' or ')', found {other:?}"));
                }
            }
        }
    }

    /// comparison := primary [(= | < | <= | > | >= | overlaps | like) primary]
    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.primary()?;
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("overlaps") => BinOp::Overlaps,
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("like") => BinOp::Like,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.primary()?;
        Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    /// expr := comparison (AND comparison)*
    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.comparison()?;
        while self.keyword("and") {
            let rhs = self.comparison()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    /// A FROM-list entry: `name` or a dotted `schema.name` (the system
    /// catalog lives under the `paradise.` schema).
    fn table_name(&mut self) -> Result<String> {
        let mut name = self.ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            name = format!("{name}.{}", self.ident()?);
        }
        Ok(name)
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("select")?;
        let projection = if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            Projection::Star
        } else {
            let mut exprs = vec![self.expr()?];
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                exprs.push(self.expr()?);
            }
            Projection::Exprs(exprs)
        };
        self.expect_keyword("from")?;
        let mut tables = vec![self.table_name()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            tables.push(self.table_name()?);
        }
        let where_clause = if self.keyword("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.expr()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                group_by.push(self.expr()?);
            }
        }
        let order_by = if self.keyword("order") {
            self.expect_keyword("by")?;
            Some(self.ident()?)
        } else {
            None
        };
        let _ = self.peek() == Some(&Token::Semi) && {
            self.pos += 1;
            true
        };
        if self.pos != self.toks.len() {
            return self.err("trailing tokens after statement");
        }
        Ok(SelectStmt { projection, tables, where_clause, group_by, order_by })
    }

    /// statement := [EXPLAIN [ANALYZE]] select
    fn statement(&mut self) -> Result<Statement> {
        let explain = if self.keyword("explain") {
            if self.keyword("analyze") {
                ExplainMode::Analyze
            } else {
                ExplainMode::Plan
            }
        } else {
            ExplainMode::None
        };
        let select = self.select()?;
        Ok(Statement { explain, select })
    }
}

/// Parses one SELECT statement.
pub fn parse_select(input: &str) -> Result<SelectStmt> {
    let toks = lex(input)?;
    Parser { toks, pos: 0 }.select()
}

/// Parses one statement: a SELECT, optionally prefixed with
/// `EXPLAIN` or `EXPLAIN ANALYZE`.
pub fn parse_statement(input: &str) -> Result<Statement> {
    let toks = lex(input)?;
    Parser { toks, pos: 0 }.statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q5_shape() {
        let s = parse_select("select * from populatedPlaces where name = \"Phoenix\"").unwrap();
        assert_eq!(s.projection, Projection::Star);
        assert_eq!(s.tables, vec!["populatedPlaces"]);
        let w = s.where_clause.unwrap();
        assert_eq!(
            w,
            Expr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(Expr::Column { table: None, column: "name".into() }),
                rhs: Box::new(Expr::Str("Phoenix".into())),
            }
        );
    }

    #[test]
    fn q2_shape() {
        let s = parse_select(
            "select raster.date, raster.data.clip(Polygon(-125, 25, -67, 25, -67, 49, -125, 49)) \
             from raster where raster.channel = 5 order by date",
        )
        .unwrap();
        let Projection::Exprs(exprs) = &s.projection else { panic!() };
        assert_eq!(exprs.len(), 2);
        assert!(exprs[1].mentions_method("clip"));
        assert_eq!(s.order_by.as_deref(), Some("date"));
    }

    #[test]
    fn chained_methods_and_nested_calls() {
        let s = parse_select(
            "select raster.data.clip(Polygon(0, 0, 1, 0, 1, 1)).lower_res(8) from raster \
             where raster.date = Date(\"1988-04-01\") and raster.channel = 5",
        )
        .unwrap();
        let Projection::Exprs(exprs) = &s.projection else { panic!() };
        let Expr::Method { name, recv, args } = &exprs[0] else { panic!() };
        assert_eq!(name, "lower_res");
        assert_eq!(args, &vec![Expr::Int(8)]);
        assert!(recv.mentions_method("clip"));
        assert_eq!(s.conjuncts().len(), 2);
    }

    #[test]
    fn overlaps_and_circle_containment() {
        let s = parse_select(
            "select shape.area(), type from landCover \
             where shape < Circle(Point(3, 4), 10) and shape.area() < 5.5",
        )
        .unwrap();
        let conj = s.conjuncts();
        assert_eq!(conj.len(), 2);
        assert!(matches!(conj[0], Expr::Binary { op: BinOp::Lt, .. }));

        let s =
            parse_select("select * from drainage, roads where drainage.shape overlaps roads.shape")
                .unwrap();
        assert_eq!(s.tables, vec!["drainage", "roads"]);
        assert!(matches!(s.where_clause.unwrap(), Expr::Binary { op: BinOp::Overlaps, .. }));
    }

    #[test]
    fn group_by_closest() {
        let s = parse_select("select closest(shape, Point(5, 6)), type from roads group by type")
            .unwrap();
        let Projection::Exprs(exprs) = &s.projection else { panic!() };
        assert!(exprs[0].is_call("closest"));
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn qualified_columns() {
        let s = parse_select(
            "select landCover.shape from landCover, populatedPlaces \
             where populatedPlaces.name = \"Louisville\" and \
             landCover.shape overlaps populatedPlaces.location.makeBox(2.5)",
        )
        .unwrap();
        let conj_count = s.conjuncts().len();
        assert_eq!(conj_count, 2);
    }

    #[test]
    fn like_operator_and_catalog_tables() {
        let s = parse_select("select * from paradise.metrics where name like 'wal%'").unwrap();
        assert_eq!(s.tables, vec!["paradise.metrics"]);
        let Expr::Binary { op, rhs, .. } = s.where_clause.unwrap() else { panic!() };
        assert_eq!(op, BinOp::Like);
        assert_eq!(*rhs, Expr::Str("wal%".into()));
        // Dotted names compose with plain ones in a FROM list.
        let s = parse_select("select * from paradise.queries, roads").unwrap();
        assert_eq!(s.tables, vec!["paradise.queries", "roads"]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_select("selec * from t").is_err());
        assert!(parse_select("select from t").is_err());
        assert!(parse_select("select * from").is_err());
        assert!(parse_select("select * from t where").is_err());
        assert!(parse_select("select * from t trailing junk").is_err());
        let e = parse_select("select a from t where a = ").unwrap_err();
        assert!(e.message.contains("expected expression"));
    }

    #[test]
    fn explain_prefixes() {
        let s = parse_statement("select * from roads").unwrap();
        assert_eq!(s.explain, ExplainMode::None);
        let s = parse_statement("explain select * from roads").unwrap();
        assert_eq!(s.explain, ExplainMode::Plan);
        let s = parse_statement("EXPLAIN ANALYZE select * from roads where x = 1").unwrap();
        assert_eq!(s.explain, ExplainMode::Analyze);
        assert!(s.select.where_clause.is_some());
        // EXPLAIN needs a statement after it.
        assert!(parse_statement("explain analyze").is_err());
    }

    #[test]
    fn parenthesised_expression() {
        let s = parse_select("select (a) from t where (x = 1) and y = 2").unwrap();
        assert_eq!(s.conjuncts().len(), 2);
    }
}
