//! # paradise-sql
//!
//! The extended-SQL front end of Paradise (paper §2.1): standard
//! SELECT/FROM/WHERE/GROUP BY/ORDER BY plus the spatial extensions the
//! benchmark queries use — ADT method calls (`raster.data.clip(POLYGON)`,
//! `shape.area()`, `location.makeBox(L)`), spatial operators (`overlaps`,
//! circle containment `<`), typed constructors (`Date("1988-04-01")`,
//! `Circle(Point(x, y), r)`, `Polygon(x1, y1, …)`), and spatial aggregates
//! (`closest(shape, point)` with GROUP BY).
//!
//! The crate provides the lexer, the AST, and a recursive-descent parser;
//! plan selection and execution live in the `paradise` crate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{BinOp, ExplainMode, Expr, SelectStmt, Statement};
pub use parser::{parse_select, parse_statement};

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsing.
pub type Result<T> = std::result::Result<T, ParseError>;
