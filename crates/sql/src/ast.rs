//! Abstract syntax for the extended SQL dialect.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<` — also Paradise's circle-containment operator when the left
    /// side is a shape and the right a circle (benchmark Q7).
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `overlaps` — the spatial intersection predicate.
    Overlaps,
    /// `like` — SQL pattern match (`%` any run, `_` any one char).
    Like,
    /// `and`
    And,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `table.column` or bare `column`.
    Column {
        /// Optional table qualifier.
        table: Option<String>,
        /// Column name.
        column: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Function call / typed constructor (`Date("…")`, `Circle(p, r)`,
    /// `Polygon(x1, y1, …)`, `closest(a, b)`, `average(e)`).
    Call {
        /// Function name (case preserved; matched case-insensitively).
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// ADT method call (`expr.clip(p)`, `expr.area()`, …).
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Flattens an AND-tree into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary { op: BinOp::And, lhs, rhs } => {
                let mut v = lhs.conjuncts();
                v.extend(rhs.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// True when the expression mentions a method call named `name`
    /// anywhere (used by plan matching, e.g. spotting `clip`).
    pub fn mentions_method(&self, name: &str) -> bool {
        match self {
            Expr::Method { recv, name: n, args } => {
                n.eq_ignore_ascii_case(name)
                    || recv.mentions_method(name)
                    || args.iter().any(|a| a.mentions_method(name))
            }
            Expr::Call { args, .. } => args.iter().any(|a| a.mentions_method(name)),
            Expr::Binary { lhs, rhs, .. } => lhs.mentions_method(name) || rhs.mentions_method(name),
            _ => false,
        }
    }

    /// True when the expression is (or wraps) a call to function `name`.
    pub fn is_call(&self, name: &str) -> bool {
        matches!(self, Expr::Call { func, .. } if func.eq_ignore_ascii_case(name))
    }
}

/// The projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `select *`
    Star,
    /// `select e1, e2, …`
    Exprs(Vec<Expr>),
}

/// How (whether) the statement asks for its plan instead of its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// Run the query normally.
    #[default]
    None,
    /// `EXPLAIN …` — show the chosen plan without executing it.
    Plan,
    /// `EXPLAIN ANALYZE …` — execute, then show the plan annotated with
    /// per-operator row counts, busy time, and buffer/network activity.
    Analyze,
}

/// A full statement: an optional EXPLAIN prefix around a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// EXPLAIN / EXPLAIN ANALYZE prefix, if any.
    pub explain: ExplainMode,
    /// The SELECT being run (or explained).
    pub select: SelectStmt,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub projection: Projection,
    /// FROM tables, in order.
    pub tables: Vec<String>,
    /// WHERE condition.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY column name.
    pub order_by: Option<String>,
}

impl SelectStmt {
    /// WHERE conjuncts ([] when no WHERE clause).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        self.where_clause.as_ref().map(|w| w.conjuncts()).unwrap_or_default()
    }

    /// Case-insensitive table membership.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.iter().any(|t| t.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_flattening() {
        let a = Expr::Int(1);
        let b = Expr::Int(2);
        let c = Expr::Int(3);
        let tree = Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(a.clone()),
                rhs: Box::new(b.clone()),
            }),
            rhs: Box::new(c.clone()),
        };
        assert_eq!(tree.conjuncts(), vec![&a, &b, &c]);
        assert_eq!(a.conjuncts(), vec![&a]);
    }

    #[test]
    fn method_mention_search() {
        let e = Expr::Method {
            recv: Box::new(Expr::Method {
                recv: Box::new(Expr::Column { table: None, column: "data".into() }),
                name: "clip".into(),
                args: vec![],
            }),
            name: "average".into(),
            args: vec![],
        };
        assert!(e.mentions_method("clip"));
        assert!(e.mentions_method("AVERAGE"));
        assert!(!e.mentions_method("lower_res"));
    }
}
