//! Deterministic fault injection ("failpoints").
//!
//! A failpoint is a *named site* compiled into production code —
//! `failpoint::trigger("wal.commit_point")` — that normally does nothing
//! and costs exactly one relaxed atomic load. Tests (or the
//! `PARADISE_FAILPOINTS` environment variable) *arm* a site with a
//! [`Policy`]: fail with an error, fail once, fail after the first `n`
//! passes, delay, drop the operation, or corrupt its payload. This turns
//! "what happens if the WAL write dies between the page images and the
//! commit record" from a thought experiment into a unit test.
//!
//! Design constraints, in order:
//!
//! 1. **Disarmed is free.** The fast path is a single
//!    `AtomicU64::load(Relaxed)` of a global armed-site counter; no lock,
//!    no map lookup, no string hash. Only when *some* site is armed does
//!    `trigger` take the registry lock.
//! 2. **Deterministic.** Policies are counters, not probabilities: an
//!    `error-after(3)` site passes exactly three times and then fails
//!    every time. Schedules compose with the deterministic test PRNG for
//!    randomized chaos schedules.
//! 3. **Observable.** Every fired trigger invokes the process-wide
//!    observer hook (installed by `paradise-core`, which forwards to the
//!    cluster `EventLog` as `failpoint.trigger` events) so chaos runs
//!    leave an audit trail in the same JSONL stream as `flow.stall` and
//!    `net.retry`.
//!
//! The registry is process-global: concurrent tests that arm sites must
//! serialise on a shared mutex (see `tests/chaos.rs`).
//!
//! Env syntax: `PARADISE_FAILPOINTS="site=policy;site=policy"`, e.g.
//! `wal.commit_point=error-once(disk died);net.write_frame=drop`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Number of currently armed sites. `trigger` is a no-op unless > 0.
static ARMED: AtomicU64 = AtomicU64::new(0);

struct Site {
    policy: Policy,
    /// Evaluations of this site while armed (pass or fire).
    hits: u64,
    /// Evaluations that actually fired the action.
    fired: u64,
    /// Whether a one-shot policy has been spent.
    spent: bool,
}

type Observer = Box<dyn Fn(&str, &str) + Send + Sync>;

struct RegistryState {
    sites: HashMap<String, Site>,
    observer: Option<Observer>,
}

fn registry() -> &'static Mutex<RegistryState> {
    static REGISTRY: OnceLock<Mutex<RegistryState>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(RegistryState { sites: HashMap::new(), observer: None }))
}

fn lock_registry() -> std::sync::MutexGuard<'static, RegistryState> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// What an armed site does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// The site reports failure with this message (mapped by the host
    /// layer into its own error type: `StorageError::Io`, `ExecError`…).
    Error(String),
    /// The site sleeps this long, then proceeds normally.
    Delay(Duration),
    /// The operation is silently skipped (a lost frame, an unsent credit).
    Drop,
    /// The operation proceeds but its payload is corrupted (bit flip).
    Corrupt,
}

/// When an armed site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Fire on every evaluation.
    Always,
    /// Fire on the first evaluation only.
    Once,
    /// Pass `n` evaluations, then fire on every later one.
    AfterN(u64),
}

/// A site's arming: an [`Action`] plus a [`Schedule`] deciding when the
/// action applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// What happens when the site fires.
    pub action: Action,
    /// Which evaluations fire.
    pub schedule: Schedule,
}

impl Policy {
    /// Fail every evaluation with `msg`.
    pub fn error(msg: &str) -> Policy {
        Policy { action: Action::Error(msg.to_string()), schedule: Schedule::Always }
    }

    /// Fail the first evaluation with `msg`, pass afterwards.
    pub fn error_once(msg: &str) -> Policy {
        Policy { action: Action::Error(msg.to_string()), schedule: Schedule::Once }
    }

    /// Pass `n` evaluations, then fail every later one with `msg`.
    pub fn error_after(n: u64, msg: &str) -> Policy {
        Policy { action: Action::Error(msg.to_string()), schedule: Schedule::AfterN(n) }
    }

    /// Sleep `d` on every evaluation, then proceed.
    pub fn delay(d: Duration) -> Policy {
        Policy { action: Action::Delay(d), schedule: Schedule::Always }
    }

    /// Silently skip the operation on every evaluation.
    pub fn drop_op() -> Policy {
        Policy { action: Action::Drop, schedule: Schedule::Always }
    }

    /// Corrupt the operation's payload on every evaluation.
    pub fn corrupt() -> Policy {
        Policy { action: Action::Corrupt, schedule: Schedule::Always }
    }

    /// Parses the env-var policy syntax:
    /// `error(msg)` | `error-once(msg)` | `error-after(N,msg)` |
    /// `delay(MS)` | `drop` | `corrupt`. A bare `error` / `error-once`
    /// uses the message `"injected fault"`.
    pub fn parse(spec: &str) -> std::result::Result<Policy, String> {
        let spec = spec.trim();
        let (head, arg) = match spec.find('(') {
            Some(i) => {
                let Some(stripped) = spec[i..].strip_prefix('(').and_then(|s| s.strip_suffix(')'))
                else {
                    return Err(format!("failpoint policy `{spec}`: unbalanced parentheses"));
                };
                (&spec[..i], Some(stripped))
            }
            None => (spec, None),
        };
        let msg = |a: Option<&str>| a.unwrap_or("injected fault").to_string();
        match head {
            "error" => Ok(Policy { action: Action::Error(msg(arg)), schedule: Schedule::Always }),
            "error-once" => {
                Ok(Policy { action: Action::Error(msg(arg)), schedule: Schedule::Once })
            }
            "error-after" => {
                let arg = arg.ok_or_else(|| "error-after needs (N) or (N,msg)".to_string())?;
                let (n, m) = match arg.split_once(',') {
                    Some((n, m)) => (n, m.to_string()),
                    None => (arg, "injected fault".to_string()),
                };
                let n: u64 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("error-after: bad count `{n}` in `{spec}`"))?;
                Ok(Policy { action: Action::Error(m), schedule: Schedule::AfterN(n) })
            }
            "delay" => {
                let ms: u64 = arg
                    .ok_or_else(|| "delay needs (MS)".to_string())?
                    .trim()
                    .parse()
                    .map_err(|_| format!("delay: bad millis in `{spec}`"))?;
                Ok(Policy::delay(Duration::from_millis(ms)))
            }
            "drop" => Ok(Policy::drop_op()),
            "corrupt" => Ok(Policy::corrupt()),
            other => Err(format!("unknown failpoint policy `{other}`")),
        }
    }
}

/// What a fired site asks its host code to do. `Delay` never reaches the
/// caller — `trigger` sleeps internally and reports a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// Abort the operation with this message.
    Error(String),
    /// Silently skip the operation.
    Drop,
    /// Proceed, but corrupt the payload.
    Corrupt,
}

/// Arms `site` with `policy`. Re-arming an armed site replaces its policy
/// and resets its counters.
pub fn arm(site: &str, policy: Policy) {
    let mut reg = lock_registry();
    let prev = reg.sites.insert(site.to_string(), Site { policy, hits: 0, fired: 0, spent: false });
    if prev.is_none() {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarms `site`; its `trigger` calls go back to the one-load fast path.
pub fn disarm(site: &str) {
    let mut reg = lock_registry();
    if reg.sites.remove(site).is_some() {
        ARMED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Disarms every site.
pub fn disarm_all() {
    let mut reg = lock_registry();
    let n = reg.sites.len() as u64;
    reg.sites.clear();
    ARMED.fetch_sub(n, Ordering::Relaxed);
}

/// Arms `site` and returns a guard that disarms it on drop, so a
/// panicking test cannot leak an armed site into the next one.
pub fn armed(site: &str, policy: Policy) -> ArmedGuard {
    arm(site, policy);
    ArmedGuard { site: site.to_string() }
}

/// RAII guard from [`armed`]: disarms its site when dropped.
pub struct ArmedGuard {
    site: String,
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        disarm(&self.site);
    }
}

/// Evaluations of `site` (pass or fire) since it was last armed.
pub fn hits(site: &str) -> u64 {
    lock_registry().sites.get(site).map_or(0, |s| s.hits)
}

/// Evaluations of `site` that fired its action since it was last armed.
pub fn fired(site: &str) -> u64 {
    lock_registry().sites.get(site).map_or(0, |s| s.fired)
}

/// Installs the process-wide trigger observer, called as
/// `observer(site, action)` for every fired trigger. `paradise-core`
/// installs a forwarder into the cluster `EventLog`; the last installed
/// observer wins.
pub fn set_observer(f: impl Fn(&str, &str) + Send + Sync + 'static) {
    lock_registry().observer = Some(Box::new(f));
}

/// Arms every site listed in the `PARADISE_FAILPOINTS` environment
/// variable (`site=policy;site=policy`). Returns the number of sites
/// armed; unset or empty means zero. Malformed entries are an error —
/// a chaos run with a typo'd schedule must not silently test nothing.
pub fn arm_from_env() -> std::result::Result<usize, String> {
    let Ok(spec) = std::env::var("PARADISE_FAILPOINTS") else { return Ok(0) };
    arm_from_spec(&spec)
}

/// Arms every `site=policy` entry in `spec` (the `PARADISE_FAILPOINTS`
/// syntax). Returns the number of sites armed.
pub fn arm_from_spec(spec: &str) -> std::result::Result<usize, String> {
    let mut n = 0;
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, policy) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint spec `{entry}`: expected site=policy"))?;
        arm(site.trim(), Policy::parse(policy)?);
        n += 1;
    }
    Ok(n)
}

/// Evaluates the failpoint at `site`. Returns `None` when the caller
/// should proceed normally (site disarmed, schedule not yet firing, or a
/// `Delay` that already slept) and `Some(trigger)` when the caller must
/// act. Disarmed cost: one relaxed atomic load.
#[inline]
pub fn trigger(site: &str) -> Option<Trigger> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    trigger_slow(site)
}

#[inline(never)]
fn trigger_slow(site: &str) -> Option<Trigger> {
    let (out, delay) = {
        let mut reg = lock_registry();
        let st = reg.sites.get_mut(site)?;
        st.hits += 1;
        let fire = match st.policy.schedule {
            Schedule::Always => true,
            Schedule::Once => {
                if st.spent {
                    false
                } else {
                    st.spent = true;
                    true
                }
            }
            Schedule::AfterN(n) => st.hits > n,
        };
        if !fire {
            return None;
        }
        st.fired += 1;
        let (out, delay, label) = match &st.policy.action {
            Action::Error(msg) => (Some(Trigger::Error(msg.clone())), None, "error"),
            Action::Delay(d) => (None, Some(*d), "delay"),
            Action::Drop => (Some(Trigger::Drop), None, "drop"),
            Action::Corrupt => (Some(Trigger::Corrupt), None, "corrupt"),
        };
        if let Some(obs) = &reg.observer {
            obs(site, label);
        }
        (out, delay)
    };
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    out
}

/// Shorthand for the commonest host-side pattern: returns `Err(msg)` if
/// the site fires an `Error`, `Ok(false)` if it fires a `Drop` (caller
/// skips the operation and pretends success), and `Ok(true)` to proceed.
/// `Corrupt` is reported as proceed — sites that cannot corrupt their
/// payload treat it as a pass.
pub fn check(site: &str) -> std::result::Result<bool, String> {
    match trigger(site) {
        None | Some(Trigger::Corrupt) => Ok(true),
        Some(Trigger::Drop) => Ok(false),
        Some(Trigger::Error(msg)) => Err(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    // The registry is process-global; unit tests here serialise on one
    // mutex so arming in one test never leaks into another mid-flight.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static M: OnceLock<Mutex<()>> = OnceLock::new();
        M.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_site_is_silent() {
        let _g = guard();
        disarm_all();
        assert_eq!(trigger("nothing.armed"), None);
        assert_eq!(hits("nothing.armed"), 0);
    }

    #[test]
    fn error_once_fires_exactly_once() {
        let _g = guard();
        disarm_all();
        let _fp = armed("t.once", Policy::error_once("boom"));
        assert_eq!(trigger("t.once"), Some(Trigger::Error("boom".into())));
        assert_eq!(trigger("t.once"), None);
        assert_eq!(trigger("t.once"), None);
        assert_eq!(hits("t.once"), 3);
        assert_eq!(fired("t.once"), 1);
    }

    #[test]
    fn error_after_n_passes_then_fires() {
        let _g = guard();
        disarm_all();
        let _fp = armed("t.after", Policy::error_after(2, "late"));
        assert_eq!(trigger("t.after"), None);
        assert_eq!(trigger("t.after"), None);
        assert_eq!(trigger("t.after"), Some(Trigger::Error("late".into())));
        assert_eq!(trigger("t.after"), Some(Trigger::Error("late".into())));
    }

    #[test]
    fn delay_sleeps_then_passes() {
        let _g = guard();
        disarm_all();
        let _fp = armed("t.delay", Policy::delay(Duration::from_millis(30)));
        let t0 = std::time::Instant::now();
        assert_eq!(trigger("t.delay"), None);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _g = guard();
        disarm_all();
        {
            let _fp = armed("t.guard", Policy::drop_op());
            assert_eq!(trigger("t.guard"), Some(Trigger::Drop));
        }
        assert_eq!(trigger("t.guard"), None);
    }

    #[test]
    fn env_spec_parses_every_policy_form() {
        let _g = guard();
        disarm_all();
        let n = arm_from_spec(
            "a=error(dead); b=error-once; c=error-after(2,slow death); d=delay(5); e=drop; f=corrupt",
        )
        .unwrap();
        assert_eq!(n, 6);
        assert_eq!(trigger("a"), Some(Trigger::Error("dead".into())));
        assert_eq!(trigger("b"), Some(Trigger::Error("injected fault".into())));
        assert_eq!(trigger("c"), None);
        assert_eq!(trigger("c"), None);
        assert_eq!(trigger("c"), Some(Trigger::Error("slow death".into())));
        assert_eq!(trigger("d"), None);
        assert_eq!(trigger("e"), Some(Trigger::Drop));
        assert_eq!(trigger("f"), Some(Trigger::Corrupt));
        disarm_all();
        assert_eq!(trigger("a"), None);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = guard();
        disarm_all();
        assert!(arm_from_spec("nosign").is_err());
        assert!(arm_from_spec("x=explode").is_err());
        assert!(arm_from_spec("x=delay(abc)").is_err());
        assert!(arm_from_spec("x=error(unbalanced").is_err());
        assert!(arm_from_spec("x=error-after(,msg)").is_err());
        disarm_all();
    }

    #[test]
    fn observer_sees_fired_triggers_only() {
        let _g = guard();
        disarm_all();
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        set_observer(move |site, action| {
            s2.lock().unwrap().push(format!("{site}:{action}"));
        });
        let _fp = armed("t.obs", Policy::error_after(1, "x"));
        let _ = trigger("t.obs"); // pass — not observed
        let _ = trigger("t.obs"); // fire
        assert_eq!(*seen.lock().unwrap(), vec!["t.obs:error".to_string()]);
        lock_registry().observer = None;
    }

    #[test]
    fn check_maps_actions_to_host_pattern() {
        let _g = guard();
        disarm_all();
        {
            let _fp = armed("t.check", Policy::error("nope"));
            assert_eq!(check("t.check"), Err("nope".to_string()));
        }
        {
            let _fp = armed("t.check", Policy::drop_op());
            assert_eq!(check("t.check"), Ok(false));
        }
        {
            let _fp = armed("t.check", Policy::corrupt());
            assert_eq!(check("t.check"), Ok(true));
        }
        assert_eq!(check("t.check"), Ok(true));
    }
}
