//! Intra-node morsel parallelism: a small, std-only worker pool.
//!
//! The paper's Paradise parallelises *across* data servers (§2.2, §2.7);
//! this module parallelises *inside* one node, in the style of
//! morsel-driven execution: a kernel's input is cut into fixed-size
//! **morsels** (index ranges), workers claim morsels dynamically from a
//! shared atomic counter, and the per-morsel outputs are merged back **in
//! morsel order**.
//!
//! ## Determinism rule
//!
//! Two properties make every pool-driven kernel bit-reproducible:
//!
//! 1. **Morsel boundaries depend only on the input length and the kernel's
//!    fixed morsel size — never on the worker count.** Floating-point
//!    reductions therefore associate identically whether the pool has 1 or
//!    8 workers; only *which thread* runs a morsel varies.
//! 2. **Outputs are merged in morsel index order**, and the first error is
//!    the one from the lowest-numbered failing morsel.
//!
//! Consequently `WorkerPool::new(1)` produces byte-for-byte the output of a
//! plain serial loop, and any worker count produces byte-for-byte the
//! output of any other — the invariant the Local-vs-Tcp byte-identity and
//! chaos suites rely on.
//!
//! ## Measured mode
//!
//! [`WorkerPool::measured`] executes morsels inline while *timing each
//! morsel* and greedily assigning it to the least-loaded of `n` virtual
//! workers — the same list-scheduling a real dynamic pool performs. The
//! resulting [`WorkerPool::critical_path`] is the kernel's simulated
//! parallel time, consistent with the engine's shared-nothing cost model
//! (`simulated_time = Σ_phases max_node(busy)`), and is what the committed
//! benchmarks report on single-core CI hosts.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Fixed morsel size (tuples) for row-shaped kernels (scans, joins,
/// aggregation). Small enough to load-balance, large enough to amortise
/// the claim.
pub const TUPLE_MORSEL: usize = 1024;

/// Fixed morsel size (tiles) for PBSM tile-bucket kernels: one morsel is a
/// run of adjacent tiles in sorted tile order.
pub const TILE_MORSEL: usize = 8;

/// Fixed morsel size for large-blob kernels (LZW tile codecs): one blob
/// per morsel, since a single tile is already thousands of bytes of work.
pub const BLOB_MORSEL: usize = 1;

/// How a [`WorkerPool`] executes morsels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Real OS threads (scoped), dynamic morsel claiming. Falls back to an
    /// inline loop when one worker would run alone.
    Threads,
    /// Inline execution that times each morsel and list-schedules it onto
    /// virtual workers; used by benchmarks to report the parallel
    /// critical path on machines with fewer cores than workers.
    Measured,
}

/// Monotonic counters describing everything a pool has executed.
///
/// Snapshot before and after a region and diff with [`PoolSnapshot::since`]
/// to attribute morsels/busy-time to a phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Number of `run` invocations (one per kernel call).
    pub runs: u64,
    /// Total morsels executed.
    pub morsels: u64,
    /// Total busy nanoseconds summed across all workers.
    pub busy_ns: u64,
}

impl PoolSnapshot {
    /// The counters accumulated since `earlier` was taken.
    pub fn since(&self, earlier: &PoolSnapshot) -> PoolSnapshot {
        PoolSnapshot {
            runs: self.runs.saturating_sub(earlier.runs),
            morsels: self.morsels.saturating_sub(earlier.morsels),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
        }
    }
}

/// A fixed-size intra-node worker pool executing kernels as ordered
/// morsels.
///
/// ```
/// use paradise_util::workers::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let input: Vec<u64> = (0..10_000).collect();
/// // One output per morsel, merged in morsel order.
/// let partial_sums = pool
///     .run(input.len(), 1024, |r| Ok::<u64, ()>(input[r].iter().sum()))
///     .unwrap();
/// assert_eq!(partial_sums.iter().sum::<u64>(), input.iter().sum::<u64>());
/// // Morsel boundaries don't depend on worker count, so any pool size
/// // yields the identical partials.
/// let serial = WorkerPool::new(1)
///     .run(input.len(), 1024, |r| Ok::<u64, ()>(input[r].iter().sum()))
///     .unwrap();
/// assert_eq!(partial_sums, serial);
/// ```
pub struct WorkerPool {
    workers: usize,
    mode: PoolMode,
    runs: AtomicU64,
    morsels: AtomicU64,
    busy_ns: AtomicU64,
    last_busy: Mutex<Vec<Duration>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("mode", &self.mode)
            .finish()
    }
}

/// Number of workers used when a size of `0` ("auto") is requested: the
/// host's available parallelism, or 1 if it cannot be determined.
pub fn default_workers() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl WorkerPool {
    /// A pool of `workers` OS threads (clamped to at least 1). Pass the
    /// result of [`default_workers`] for one worker per core.
    pub fn new(workers: usize) -> Self {
        Self::with_mode(workers, PoolMode::Threads)
    }

    /// A single-worker pool: every kernel runs as a plain inline loop,
    /// byte-identical to pre-pool serial execution.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A pool of `workers` *virtual* workers in [`PoolMode::Measured`]:
    /// morsels run inline but are timed and list-scheduled so
    /// [`WorkerPool::critical_path`] reports the simulated parallel time.
    pub fn measured(workers: usize) -> Self {
        Self::with_mode(workers, PoolMode::Measured)
    }

    fn with_mode(workers: usize, mode: PoolMode) -> Self {
        let workers = workers.max(1);
        WorkerPool {
            workers,
            mode,
            runs: AtomicU64::new(0),
            morsels: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            last_busy: Mutex::new(vec![Duration::ZERO; workers]),
        }
    }

    /// The pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The execution mode.
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// Current values of the pool's monotonic counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            runs: self.runs.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }

    /// Per-worker busy time of the most recent `run`.
    pub fn last_worker_busy(&self) -> Vec<Duration> {
        self.last_busy.lock().expect("pool lock").clone()
    }

    /// Parallel critical path of the most recent `run`: the busy time of
    /// its most loaded (real or virtual) worker.
    pub fn critical_path(&self) -> Duration {
        self.last_worker_busy().into_iter().max().unwrap_or(Duration::ZERO)
    }

    /// Execute a kernel over `0..len` as fixed-size morsels and return one
    /// output per morsel, **in morsel order**.
    ///
    /// `morsel_len` must be the kernel's fixed constant (e.g.
    /// [`TUPLE_MORSEL`]) — never derived from the worker count — so that
    /// morsel boundaries, and therefore all floating-point association
    /// orders, are identical for every pool size. On error the lowest
    /// failing morsel index wins, matching what a serial loop would report
    /// first.
    pub fn run<O, E, F>(&self, len: usize, morsel_len: usize, f: F) -> Result<Vec<O>, E>
    where
        O: Send,
        E: Send,
        F: Fn(Range<usize>) -> Result<O, E> + Sync,
    {
        let morsel_len = morsel_len.max(1);
        let num_morsels = len.div_ceil(morsel_len);
        let morsel_range = |i: usize| i * morsel_len..((i + 1) * morsel_len).min(len);

        self.runs.fetch_add(1, Ordering::Relaxed);
        self.morsels.fetch_add(num_morsels as u64, Ordering::Relaxed);

        let threads = self.workers.min(num_morsels);
        if threads <= 1 || self.mode == PoolMode::Measured {
            self.run_inline(num_morsels, &morsel_range, &f)
        } else {
            self.run_threads(threads, num_morsels, &morsel_range, &f)
        }
    }

    /// Inline execution (single worker, or Measured mode's virtual
    /// list-scheduling).
    fn run_inline<O, E>(
        &self,
        num_morsels: usize,
        morsel_range: &dyn Fn(usize) -> Range<usize>,
        f: &dyn Fn(Range<usize>) -> Result<O, E>,
    ) -> Result<Vec<O>, E> {
        let mut virt = vec![Duration::ZERO; self.workers];
        let mut out = Vec::with_capacity(num_morsels);
        let mut total = Duration::ZERO;
        let mut result = Ok(());
        for m in 0..num_morsels {
            let t0 = Instant::now();
            let r = f(morsel_range(m));
            let took = t0.elapsed();
            total += took;
            // Greedy list scheduling: the next morsel goes to whichever
            // (virtual) worker frees up first — what dynamic claiming does.
            if let Some(w) = virt.iter_mut().min() {
                *w += took;
            }
            match r {
                Ok(o) => out.push(o),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.busy_ns.fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        *self.last_busy.lock().expect("pool lock") = virt;
        result.map(|()| out)
    }

    /// Real scoped threads with dynamic morsel claiming.
    fn run_threads<O, E, F>(
        &self,
        threads: usize,
        num_morsels: usize,
        morsel_range: &(dyn Fn(usize) -> Range<usize> + Sync),
        f: &F,
    ) -> Result<Vec<O>, E>
    where
        O: Send,
        E: Send,
        F: Fn(Range<usize>) -> Result<O, E> + Sync,
    {
        // One entry per worker: its claimed (morsel index, result) pairs
        // plus its total busy time.
        type WorkerOut<O, E> = (Vec<(usize, Result<O, E>)>, Duration);
        let next = AtomicUsize::new(0);
        let per_worker: Vec<WorkerOut<O, E>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        let mut busy = Duration::ZERO;
                        loop {
                            let m = next.fetch_add(1, Ordering::Relaxed);
                            if m >= num_morsels {
                                break;
                            }
                            let t0 = Instant::now();
                            let r = f(morsel_range(m));
                            busy += t0.elapsed();
                            local.push((m, r));
                        }
                        (local, busy)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
        });

        let mut busy_per_worker = vec![Duration::ZERO; self.workers];
        let mut slots: Vec<Option<Result<O, E>>> = (0..num_morsels).map(|_| None).collect();
        let mut total = Duration::ZERO;
        for (w, (local, busy)) in per_worker.into_iter().enumerate() {
            busy_per_worker[w] = busy;
            total += busy;
            for (m, r) in local {
                slots[m] = Some(r);
            }
        }
        self.busy_ns.fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        *self.last_busy.lock().expect("pool lock") = busy_per_worker;

        // Merge in morsel order; the lowest failing morsel reports first.
        let mut out = Vec::with_capacity(num_morsels);
        for slot in slots {
            match slot.expect("all morsels claimed") {
                Ok(o) => out.push(o),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Map a slice through the pool in fixed-size chunks and concatenate
    /// the per-morsel output vectors in morsel order.
    ///
    /// ```
    /// use paradise_util::workers::WorkerPool;
    ///
    /// let pool = WorkerPool::new(2);
    /// let words = ["tile", "sweep", "morsel", "refine"];
    /// let upper = pool
    ///     .map_chunks(&words, 2, |chunk| {
    ///         Ok::<_, ()>(chunk.iter().map(|w| w.to_uppercase()).collect())
    ///     })
    ///     .unwrap();
    /// assert_eq!(upper, ["TILE", "SWEEP", "MORSEL", "REFINE"]);
    /// ```
    pub fn map_chunks<T, O, E, F>(&self, items: &[T], morsel_len: usize, f: F) -> Result<Vec<O>, E>
    where
        T: Sync,
        O: Send,
        E: Send,
        F: Fn(&[T]) -> Result<Vec<O>, E> + Sync,
    {
        let per_morsel = self.run(items.len(), morsel_len, |r| f(&items[r]))?;
        Ok(per_morsel.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_in_morsel_order_across_worker_counts() {
        let input: Vec<usize> = (0..10_007).collect();
        let reference = WorkerPool::new(1)
            .map_chunks(&input, 64, |c| Ok::<_, ()>(c.iter().map(|x| x * 3).collect()))
            .unwrap();
        for workers in [2, 4, 7] {
            let pool = WorkerPool::new(workers);
            let got = pool
                .map_chunks(&input, 64, |c| Ok::<_, ()>(c.iter().map(|x| x * 3).collect()))
                .unwrap();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn error_is_lowest_failing_morsel() {
        // Morsels 3 and 7 fail; every worker count must report morsel 3.
        for workers in [1, 2, 4, 7] {
            let pool = WorkerPool::new(workers);
            let err = pool
                .run(100, 10, |r| {
                    let m = r.start / 10;
                    if m == 3 || m == 7 {
                        Err(m)
                    } else {
                        Ok(m)
                    }
                })
                .unwrap_err();
            assert_eq!(err, 3, "workers={workers}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = WorkerPool::new(4);
        let out = pool.run(0, 16, |_| Ok::<usize, ()>(0)).unwrap();
        assert!(out.is_empty());
        assert_eq!(pool.snapshot().morsels, 0);
        assert_eq!(pool.snapshot().runs, 1);
    }

    #[test]
    fn snapshot_counts_runs_and_morsels() {
        let pool = WorkerPool::new(2);
        let before = pool.snapshot();
        pool.run(100, 10, |_| Ok::<_, ()>(())).unwrap();
        pool.run(5, 10, |_| Ok::<_, ()>(())).unwrap();
        let delta = pool.snapshot().since(&before);
        assert_eq!(delta.runs, 2);
        assert_eq!(delta.morsels, 11);
    }

    #[test]
    fn measured_mode_schedules_virtual_workers() {
        let pool = WorkerPool::measured(4);
        pool.run(64, 1, |_| {
            // A tiny but non-zero amount of work per morsel.
            std::hint::black_box((0..2_000u64).sum::<u64>());
            Ok::<_, ()>(())
        })
        .unwrap();
        let busy = pool.last_worker_busy();
        assert_eq!(busy.len(), 4);
        // All four virtual workers got some share of 64 equal morsels.
        assert!(busy.iter().all(|d| !d.is_zero()));
        let total: Duration = busy.iter().sum();
        let critical = pool.critical_path();
        // Critical path must be well below the serial total: 64 equal
        // morsels over 4 workers should land near total/4.
        assert!(critical < total, "critical {critical:?} vs total {total:?}");
    }

    #[test]
    fn morsel_boundaries_ignore_worker_count() {
        // Float accumulation order is fixed by morsel size, so partial sums
        // are bit-identical across pool sizes.
        let input: Vec<f64> = (0..5_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sums = |workers: usize| -> Vec<f64> {
            WorkerPool::new(workers)
                .run(input.len(), TUPLE_MORSEL, |r| Ok::<_, ()>(input[r].iter().sum::<f64>()))
                .unwrap()
        };
        let reference = sums(1);
        for workers in [2, 4, 7] {
            let got = sums(workers);
            assert_eq!(
                got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }
}
