//! # paradise-util
//!
//! Dependency-free utilities shared across the workspace. The build runs in
//! hermetic environments with no crates.io access, so the few external
//! crates the project would otherwise reach for (lock ergonomics from
//! `parking_lot`, a seedable RNG from `rand`, randomized-test drivers from
//! `proptest`) are replaced by the small, std-only implementations here.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod failpoint;
pub mod rng;
pub mod sync;
pub mod workers;

pub use rng::Rng;
