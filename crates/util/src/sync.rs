//! Poison-free lock wrappers with `parking_lot`-style ergonomics.
//!
//! `std` locks return a `LockResult` so callers can observe panics in other
//! critical sections. Paradise treats a panicked critical section as
//! unrecoverable for the *data*, not the lock: every structure guarded by
//! these locks is rebuilt from the WAL / reloaded from disk on restart, so
//! continuing past a poisoned lock is safe and keeps call sites clean.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_poisoning() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std Mutex would now be poisoned; ours keeps working.
        assert_eq!(*m.lock(), 7);
    }
}
