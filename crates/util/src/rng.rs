//! A small, fast, seedable PRNG (xoshiro256++) with `rand`-flavoured
//! helpers — enough for data generation and randomized tests, with
//! deterministic replay from a seed. Not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random number generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Builds a generator from a 64-bit seed (splitmix64 expansion, the
    /// initialisation recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut st = seed;
        Rng {
            s: [splitmix64(&mut st), splitmix64(&mut st), splitmix64(&mut st), splitmix64(&mut st)],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the standard [0,1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (supports `a..b` and `a..=b` over
    /// the common integer types and `f64`).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform index in `[0, len)`; `len` must be non-zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index() on empty range");
        (self.next_u64() % len as u64) as usize
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// A random byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled element type.
    type Out;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Out;
}

impl SampleRange for Range<f64> {
    type Out = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Out = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range!(i64, u64, i32, u32, u16, u8, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(3usize..=3);
            assert_eq!(u, 3);
            let x = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn range_covers_domain() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.2)).count();
        assert!((1500..2500).contains(&hits), "p=0.2 gave {hits}/10000");
    }

    #[test]
    fn fill_bytes_varies() {
        let mut r = Rng::seed_from_u64(13);
        let a = r.bytes(32);
        let b = r.bytes(32);
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }
}
