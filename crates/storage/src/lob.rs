//! Large objects: byte strings of arbitrary size stored as page chains.
//!
//! "Objects can be arbitrarily large, up to the size of a storage volume"
//! (paper §2.2). Raster tiles, whole rasters being copied on insert, and
//! large attributes created during predicate evaluation are all stored as
//! LOBs. Paper §2.5.2 distinguishes three lifetimes, which the engine maps
//! to which [`crate::volume::ExtentAllocator`] owns the LOB's extents:
//!
//! 1. base-table LOB file — freed when the base table is dropped;
//! 2. temporary-table LOB file — freed when the intermediate table is;
//! 3. operator-scoped LOB file — freed when the operator finishes.
//!
//! LOB page layout (raw, not slotted): `[next: u64][len: u32][payload…]`.

use crate::buffer::BufferPool;
use crate::page::{PageId, NO_PAGE, PAGE_SIZE};
use crate::volume::ExtentAllocator;
use crate::Result;

const LOB_HDR: usize = 12;
/// Payload bytes per LOB page.
pub const LOB_PAYLOAD: usize = PAGE_SIZE - LOB_HDR;

/// Writes `data` as a page chain; returns the first page id (a zero-length
/// LOB still occupies one page so it has an address).
pub fn write_lob(pool: &BufferPool, alloc: &ExtentAllocator, data: &[u8]) -> Result<PageId> {
    let chunks: Vec<&[u8]> =
        if data.is_empty() { vec![&[][..]] } else { data.chunks(LOB_PAYLOAD).collect() };
    // Allocate all pages first so each page can record its successor.
    let pids: Vec<PageId> = chunks.iter().map(|_| alloc.alloc_page()).collect::<Result<_>>()?;
    for (i, chunk) in chunks.iter().enumerate() {
        let g = pool.get_new(pids[i])?;
        let mut page = g.write();
        let buf = page.bytes_mut();
        let next = if i + 1 < pids.len() { pids[i + 1] } else { NO_PAGE };
        buf[0..8].copy_from_slice(&next.to_le_bytes());
        buf[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
        buf[LOB_HDR..LOB_HDR + chunk.len()].copy_from_slice(chunk);
    }
    Ok(pids[0])
}

/// Reads a whole LOB chain starting at `first`.
pub fn read_lob(pool: &BufferPool, first: PageId) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut pid = first;
    while pid != NO_PAGE {
        let g = pool.get(pid)?;
        let page = g.read();
        let buf = page.bytes();
        let next = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        out.extend_from_slice(&buf[LOB_HDR..LOB_HDR + len]);
        pid = next;
    }
    Ok(out)
}

/// Reads bytes `[offset, offset+len)` of a LOB, touching only the pages in
/// range — the "only the subarray itself is fetched" delivery path (§2.2)
/// and the tile-level pull (§2.5.2) rely on this.
///
/// Returns the available prefix when the range pokes past the end.
pub fn read_lob_range(
    pool: &BufferPool,
    first: PageId,
    offset: usize,
    len: usize,
) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(len);
    let mut pid = first;
    let mut pos = 0usize; // byte offset of the current page's payload start
    while pid != NO_PAGE && out.len() < len {
        let g = pool.get(pid)?;
        let page = g.read();
        let buf = page.bytes();
        let next = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let plen = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        let page_start = pos;
        let page_end = pos + plen;
        if page_end > offset {
            let from = offset.max(page_start) - page_start;
            let to = (offset + len).min(page_end) - page_start;
            out.extend_from_slice(&buf[LOB_HDR + from..LOB_HDR + to]);
        }
        pos = page_end;
        pid = next;
        if page_start >= offset + len {
            break;
        }
    }
    Ok(out)
}

/// Total stored length of a LOB.
pub fn lob_len(pool: &BufferPool, first: PageId) -> Result<usize> {
    let mut pid = first;
    let mut total = 0usize;
    while pid != NO_PAGE {
        let g = pool.get(pid)?;
        let page = g.read();
        let buf = page.bytes();
        pid = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        total += u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::Volume;
    use std::sync::Arc;

    fn setup(name: &str) -> (BufferPool, ExtentAllocator) {
        let dir = std::env::temp_dir().join(format!("paradise-lob-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vol = Arc::new(Volume::create(dir.join(name)).unwrap());
        (BufferPool::new(vol.clone(), 64), ExtentAllocator::new(vol))
    }

    #[test]
    fn small_lob_roundtrip() {
        let (pool, alloc) = setup("s.vol");
        let first = write_lob(&pool, &alloc, b"tiny").unwrap();
        assert_eq!(read_lob(&pool, first).unwrap(), b"tiny");
        assert_eq!(lob_len(&pool, first).unwrap(), 4);
    }

    #[test]
    fn empty_lob() {
        let (pool, alloc) = setup("e.vol");
        let first = write_lob(&pool, &alloc, b"").unwrap();
        assert_eq!(read_lob(&pool, first).unwrap(), Vec::<u8>::new());
        assert_eq!(lob_len(&pool, first).unwrap(), 0);
    }

    #[test]
    fn multi_page_lob_roundtrip() {
        let (pool, alloc) = setup("m.vol");
        let data: Vec<u8> = (0..3 * LOB_PAYLOAD + 100).map(|i| (i % 251) as u8).collect();
        let first = write_lob(&pool, &alloc, &data).unwrap();
        assert_eq!(read_lob(&pool, first).unwrap(), data);
        assert_eq!(lob_len(&pool, first).unwrap(), data.len());
        // uses 4 pages
        assert_eq!(alloc.extents().len(), 1);
    }

    #[test]
    fn range_read_touches_middle() {
        let (pool, alloc) = setup("r.vol");
        let data: Vec<u8> = (0..4 * LOB_PAYLOAD).map(|i| (i % 251) as u8).collect();
        let first = write_lob(&pool, &alloc, &data).unwrap();
        pool.flush_and_clear().unwrap();
        pool.reset_stats();
        // A range inside page 2 only.
        let off = 2 * LOB_PAYLOAD + 10;
        let got = read_lob_range(&pool, first, off, 100).unwrap();
        assert_eq!(got, &data[off..off + 100]);
        // Must have read at most pages 0,1,2 headers + payload page — but
        // never page 3.
        let s = pool.stats();
        assert!(s.misses <= 3, "read {} pages", s.misses);
    }

    #[test]
    fn range_read_spanning_pages() {
        let (pool, alloc) = setup("sp.vol");
        let data: Vec<u8> = (0..3 * LOB_PAYLOAD).map(|i| (i % 199) as u8).collect();
        let first = write_lob(&pool, &alloc, &data).unwrap();
        let off = LOB_PAYLOAD - 50;
        let got = read_lob_range(&pool, first, off, 100).unwrap();
        assert_eq!(got, &data[off..off + 100]);
    }

    #[test]
    fn range_read_past_end_truncates() {
        let (pool, alloc) = setup("t.vol");
        let first = write_lob(&pool, &alloc, b"abcdef").unwrap();
        assert_eq!(read_lob_range(&pool, first, 4, 100).unwrap(), b"ef");
        assert_eq!(read_lob_range(&pool, first, 10, 5).unwrap(), b"");
    }

    #[test]
    fn freeing_extents_releases_lob() {
        let (pool, alloc) = setup("f.vol");
        let data = vec![9u8; 2 * LOB_PAYLOAD];
        let _first = write_lob(&pool, &alloc, &data).unwrap();
        pool.flush_and_clear().unwrap();
        let n = alloc.extents().len();
        assert!(n >= 1);
        alloc.free_all().unwrap();
        assert!(alloc.extents().is_empty());
    }
}
