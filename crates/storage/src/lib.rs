//! # paradise-storage
//!
//! A from-scratch storage manager modelled on the SHORE Storage Manager
//! \[Care94\] that Paradise runs on (paper §2.2):
//!
//! > "The SHORE Storage Manager provides storage volumes, files of untyped
//! > objects, B+-trees, and R*-trees. Objects can be arbitrarily large, up
//! > to the size of a storage volume. Allocation of space inside a storage
//! > volume is performed in terms of fixed-size extents."
//!
//! Provided here:
//!
//! * [`page`] — 8 KB slotted pages;
//! * [`volume`] — file-backed storage volumes with **extent** allocation
//!   (8 pages per extent) and a free-extent list;
//! * [`buffer`] — a pin-count + LRU buffer pool with hit/miss/IO statistics
//!   (the experiments flush it between queries, as the paper does);
//! * [`heap`] — files of untyped objects addressed by OID, with automatic
//!   spill of large objects;
//! * [`lob`] — arbitrarily large objects stored as page chains, with the
//!   three lifetime classes of paper §2.5.2 (base table / temporary table /
//!   operator-scoped);
//! * [`wal`] — a redo-only write-ahead log giving atomic commit (full ARIES
//!   \[Moha92\] undo/fuzzy-checkpoint machinery is substituted by
//!   page-image redo logging; see DESIGN.md);
//! * [`btree`] — a page-based B+-tree on byte-string keys;
//! * [`rtree`] — an R*-tree \[Beck90\] with forced reinsertion and
//!   Sort-Tile-Recursive bulk loading, serializable into a large object.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod heap;
pub mod lob;
pub mod page;
pub mod rtree;
pub mod store;
pub mod volume;
pub mod wal;

pub use buffer::{BufferPool, BufferStats};
pub use heap::HeapFile;
pub use page::{Page, PageId, SlotId, PAGE_SIZE};
pub use rtree::RTree;
pub use store::{Oid, Store};
pub use volume::Volume;
pub use wal::WalStats;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Page reference outside the volume.
    BadPageId(PageId),
    /// Slot reference not present on the page.
    BadSlot {
        /// Page searched.
        page: PageId,
        /// Missing slot.
        slot: SlotId,
    },
    /// Object too large for the requested placement.
    ObjectTooLarge(usize),
    /// Buffer pool has no evictable frame (everything pinned).
    PoolExhausted,
    /// Key not found in an index.
    KeyNotFound,
    /// Corrupt on-disk structure.
    Corrupt(&'static str),
    /// Record or key exceeds what a page can hold.
    RecordTooLarge(usize),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::BadPageId(p) => write!(f, "bad page id {p}"),
            StorageError::BadSlot { page, slot } => write!(f, "bad slot {slot} on page {page}"),
            StorageError::ObjectTooLarge(n) => write!(f, "object of {n} bytes too large"),
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted (all pages pinned)"),
            StorageError::KeyNotFound => write!(f, "key not found"),
            StorageError::Corrupt(w) => write!(f, "corrupt structure: {w}"),
            StorageError::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds page"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Evaluates the failpoint at `site` (see `paradise_util::failpoint`),
/// mapped onto storage semantics: `Ok(true)` proceed, `Ok(false)` skip
/// the operation silently (an injected *lost write*), `Err` an injected
/// I/O failure. Costs one relaxed atomic load when nothing is armed.
pub(crate) fn failpoint(site: &str) -> Result<bool> {
    match paradise_util::failpoint::check(site) {
        Ok(proceed) => Ok(proceed),
        Err(msg) => {
            Err(StorageError::Io(std::io::Error::other(format!("injected fault at {site}: {msg}"))))
        }
    }
}

/// Makes a newly created (or renamed) file durable by fsyncing its parent
/// directory — without this, a crash after file creation can lose the
/// directory entry and with it the entire file, even if the file's own
/// contents were synced.
pub(crate) fn fsync_parent_dir(path: &std::path::Path) -> Result<()> {
    if !failpoint("storage.fsync_dir")? {
        return Ok(());
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::File::open(dir)?.sync_all()?;
        }
    }
    Ok(())
}
