//! Slotted pages.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0..8    next_page (PageId, u64::MAX = none) — heap files chain pages
//! 8..10   num_slots (u16)
//! 10..12  free_start (u16)  — end of the slot directory growth area
//! 12..14  free_end   (u16)  — start of the record heap (records grow down)
//! 14..16  flags      (u16)
//! 16..    slot directory: (offset u16, len u16) per slot; len==DEAD marks
//!         a deleted slot whose id may not be reused until compaction
//! ...     free space
//! ...PAGE records, allocated from the end towards the front
//! ```

use crate::{PageId as Pid, Result, SlotId as Sid, StorageError};

/// Size of every page: 8 KB, the classic SHORE/DBMS page size.
pub const PAGE_SIZE: usize = 8192;

/// Page number within a volume.
pub type PageId = u64;

/// Slot number within a page.
pub type SlotId = u16;

const HDR: usize = 16;
const SLOT_SIZE: usize = 4;
const DEAD: u16 = u16::MAX;

/// Sentinel "no page" value for page links.
pub const NO_PAGE: PageId = u64::MAX;

/// An 8 KB slotted page. `Page` is a plain owned buffer; the buffer pool
/// hands out guarded references to pages living in frames.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut p = Page { buf: Box::new([0; PAGE_SIZE]) };
        p.set_next_page(NO_PAGE);
        p.set_u16(10, HDR as u16); // free_start
        p.set_u16(12, PAGE_SIZE as u16); // free_end (8192 fits in u16)
        p
    }

    /// Wraps raw bytes read from disk.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Self {
        Page { buf: Box::new(bytes) }
    }

    /// The raw bytes (for volume writes / WAL page images).
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    /// Mutable raw access for typed overlays (B-tree nodes etc.).
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.buf
    }

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn set_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn get_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[off..off + 8]);
        u64::from_le_bytes(b)
    }

    fn set_u64(&mut self, off: usize, v: u64) {
        self.buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Link to the next page in a file chain ([`NO_PAGE`] when last).
    pub fn next_page(&self) -> PageId {
        self.get_u64(0)
    }

    /// Sets the next-page link.
    pub fn set_next_page(&mut self, pid: PageId) {
        self.set_u64(0, pid);
    }

    /// Number of slots in the directory (live and dead).
    pub fn num_slots(&self) -> u16 {
        self.get_u16(8)
    }

    fn set_num_slots(&mut self, n: u16) {
        self.set_u16(8, n);
    }

    fn free_start(&self) -> usize {
        self.get_u16(10) as usize
    }

    fn free_end(&self) -> usize {
        let v = self.get_u16(12) as usize;
        if v == 0 {
            PAGE_SIZE
        } else {
            v
        }
    }

    /// Contiguous free bytes available for a new record (including its
    /// slot-directory entry).
    pub fn free_space(&self) -> usize {
        self.free_end().saturating_sub(self.free_start())
    }

    /// True when a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    /// Inserts a record, returning its slot id.
    pub fn insert(&mut self, record: &[u8]) -> Result<Sid> {
        if record.len() + SLOT_SIZE > self.free_space() {
            return Err(StorageError::RecordTooLarge(record.len()));
        }
        let slot = self.num_slots();
        let new_end = self.free_end() - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        let dir = HDR + slot as usize * SLOT_SIZE;
        self.set_u16(dir, new_end as u16);
        self.set_u16(dir + 2, record.len() as u16);
        self.set_num_slots(slot + 1);
        self.set_u16(10, (dir + SLOT_SIZE) as u16);
        self.set_u16(12, new_end as u16);
        Ok(slot)
    }

    fn slot_entry(&self, slot: Sid) -> Result<(usize, usize)> {
        if slot >= self.num_slots() {
            return Err(StorageError::BadSlot { page: 0 as Pid, slot });
        }
        let dir = HDR + slot as usize * SLOT_SIZE;
        let off = self.get_u16(dir) as usize;
        let len = self.get_u16(dir + 2);
        if len == DEAD {
            return Err(StorageError::BadSlot { page: 0 as Pid, slot });
        }
        Ok((off, len as usize))
    }

    /// Reads the record in `slot`.
    pub fn get(&self, slot: Sid) -> Result<&[u8]> {
        let (off, len) = self.slot_entry(slot)?;
        Ok(&self.buf[off..off + len])
    }

    /// Marks `slot` deleted. Space is reclaimed by [`Page::compact`].
    pub fn delete(&mut self, slot: Sid) -> Result<()> {
        self.slot_entry(slot)?; // validate
        let dir = HDR + slot as usize * SLOT_SIZE;
        self.set_u16(dir + 2, DEAD);
        Ok(())
    }

    /// Overwrites the record in `slot`. Equal-length updates happen in
    /// place; otherwise the record is re-allocated (old space is reclaimed
    /// on the next compaction). Fails if no room.
    pub fn update(&mut self, slot: Sid, record: &[u8]) -> Result<()> {
        let (off, len) = self.slot_entry(slot)?;
        if record.len() == len {
            self.buf[off..off + len].copy_from_slice(record);
            return Ok(());
        }
        if record.len() + SLOT_SIZE > self.free_space() {
            // Try compaction first: the old copy's space may be enough.
            self.compact();
            let (_, len2) = self.slot_entry(slot)?;
            let _ = len2;
            if record.len() > self.free_space() {
                return Err(StorageError::RecordTooLarge(record.len()));
            }
        }
        let new_end = self.free_end() - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        let dir = HDR + slot as usize * SLOT_SIZE;
        self.set_u16(dir, new_end as u16);
        self.set_u16(dir + 2, record.len() as u16);
        self.set_u16(12, new_end as u16);
        Ok(())
    }

    /// Live slot ids in ascending order.
    pub fn live_slots(&self) -> Vec<Sid> {
        (0..self.num_slots())
            .filter(|&s| {
                let dir = HDR + s as usize * SLOT_SIZE;
                self.get_u16(dir + 2) != DEAD
            })
            .collect()
    }

    /// Rewrites all live records contiguously at the end of the page,
    /// reclaiming dead space. Slot ids are preserved.
    pub fn compact(&mut self) {
        let n = self.num_slots();
        let mut records: Vec<(Sid, Vec<u8>)> = Vec::with_capacity(n as usize);
        for s in 0..n {
            if let Ok((off, len)) = self.slot_entry(s) {
                records.push((s, self.buf[off..off + len].to_vec()));
            }
        }
        let mut end = PAGE_SIZE;
        for (s, rec) in &records {
            end -= rec.len();
            self.buf[end..end + rec.len()].copy_from_slice(rec);
            let dir = HDR + *s as usize * SLOT_SIZE;
            self.set_u16(dir, end as u16);
            self.set_u16(dir + 2, rec.len() as u16);
        }
        self.set_u16(12, end as u16);
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("next", &self.next_page())
            .field("slots", &self.num_slots())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_empty() {
        let p = Page::new();
        assert_eq!(p.num_slots(), 0);
        assert_eq!(p.next_page(), NO_PAGE);
        assert_eq!(p.free_space(), PAGE_SIZE - HDR);
    }

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert_eq!(p.num_slots(), 2);
    }

    #[test]
    fn fill_page_until_full() {
        let mut p = Page::new();
        let rec = [0xABu8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        // 8192 - 16 header over (100 + 4) per record => 78 records
        assert_eq!(n, (PAGE_SIZE - HDR) / 104);
        assert!(p.insert(&rec).is_err());
    }

    #[test]
    fn delete_and_live_slots() {
        let mut p = Page::new();
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b).unwrap();
        assert_eq!(p.live_slots(), vec![a, c]);
        assert!(p.get(b).is_err());
        assert!(p.delete(b).is_err());
        assert_eq!(p.get(c).unwrap(), b"c");
    }

    #[test]
    fn compact_reclaims_space() {
        let mut p = Page::new();
        let big = vec![1u8; 3000];
        let a = p.insert(&big).unwrap();
        let b = p.insert(&big).unwrap();
        let keep = p.insert(b"keep").unwrap();
        assert!(!p.fits(3000));
        p.delete(a).unwrap();
        p.delete(b).unwrap();
        p.compact();
        assert!(p.fits(3000));
        assert_eq!(p.get(keep).unwrap(), b"keep");
    }

    #[test]
    fn update_in_place_and_resized() {
        let mut p = Page::new();
        let s = p.insert(b"12345").unwrap();
        p.update(s, b"abcde").unwrap();
        assert_eq!(p.get(s).unwrap(), b"abcde");
        p.update(s, b"a-longer-record").unwrap();
        assert_eq!(p.get(s).unwrap(), b"a-longer-record");
        p.update(s, b"x").unwrap();
        assert_eq!(p.get(s).unwrap(), b"x");
    }

    #[test]
    fn update_uses_compaction_when_tight() {
        let mut p = Page::new();
        let filler = vec![7u8; 2000];
        let s = p.insert(&filler).unwrap();
        let mut others = Vec::new();
        while p.fits(2000) {
            others.push(p.insert(&filler).unwrap());
        }
        // Delete one other record, then grow s beyond current free space.
        p.delete(others[0]).unwrap();
        let bigger = vec![9u8; 2100];
        p.update(s, &bigger).unwrap();
        assert_eq!(p.get(s).unwrap(), &bigger[..]);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::new();
        p.insert(b"persisted").unwrap();
        p.set_next_page(42);
        let q = Page::from_bytes(*p.bytes());
        assert_eq!(q.get(0).unwrap(), b"persisted");
        assert_eq!(q.next_page(), 42);
    }

    #[test]
    fn record_exactly_filling_page() {
        let mut p = Page::new();
        let max = PAGE_SIZE - HDR - SLOT_SIZE;
        let rec = vec![5u8; max];
        let s = p.insert(&rec).unwrap();
        assert_eq!(p.get(s).unwrap().len(), max);
        assert_eq!(p.free_space(), 0);
    }
}
