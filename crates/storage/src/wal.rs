//! Redo-only write-ahead logging.
//!
//! SHORE uses ARIES \[Moha92\]; Paradise's benchmark workload is
//! load-then-query, so this reproduction substitutes a simpler protocol
//! with the same crash-atomicity guarantee for committed work (the
//! substitution is documented in DESIGN.md):
//!
//! 1. at commit, every dirty page image is appended to the log;
//! 2. a commit record is appended and the log is synced — the commit point;
//! 3. pages are then written to the volume and the log is truncated.
//!
//! On open, a log whose tail contains a commit record is replayed (redo);
//! an unterminated tail (crash before commit) is discarded (implicit undo,
//! since the volume was never touched).
//!
//! Record format: `[kind u8][pid u64][len u32][bytes…]` with a CRC-less
//! framing protected by the trailing commit marker.

use crate::page::{PageId, PAGE_SIZE};
use crate::volume::Volume;
use crate::Result;
use paradise_util::sync::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const KIND_PAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// Cumulative WAL activity counters (published into the metrics registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Commit records synced.
    pub commits: u64,
    /// Page images appended.
    pub pages: u64,
    /// Bytes appended (records + commit markers).
    pub bytes: u64,
}

/// A write-ahead log backing one volume.
pub struct Wal {
    path: PathBuf,
    file: Mutex<File>,
    commits: AtomicU64,
    pages_logged: AtomicU64,
    bytes_logged: AtomicU64,
}

impl Wal {
    /// Opens (or creates) the log at `path`. When the file is newly
    /// created, the parent directory is fsynced as well — the commit
    /// point depends on the log itself surviving a crash, which requires
    /// its directory entry to be durable, not just its contents.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let existed = path.exists();
        let file = OpenOptions::new().read(true).append(true).create(true).open(&path)?;
        if !existed {
            file.sync_all()?;
            crate::fsync_parent_dir(&path)?;
        }
        Ok(Wal {
            path,
            file: Mutex::new(file),
            commits: AtomicU64::new(0),
            pages_logged: AtomicU64::new(0),
            bytes_logged: AtomicU64::new(0),
        })
    }

    /// Appends a batch of page images followed by a commit record and syncs.
    /// Returns after the commit point is durable.
    pub fn log_commit(&self, pages: &[(PageId, &[u8; PAGE_SIZE])]) -> Result<()> {
        if !crate::failpoint("wal.log_commit")? {
            return Ok(());
        }
        let mut f = self.file.lock();
        let mut buf = Vec::with_capacity(pages.len() * (PAGE_SIZE + 13));
        for (pid, bytes) in pages {
            buf.push(KIND_PAGE);
            buf.extend_from_slice(&pid.to_le_bytes());
            buf.extend_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
            buf.extend_from_slice(&bytes[..]);
        }
        f.write_all(&buf)?;
        // The commit point: a crash (or injected fault) here leaves page
        // images with no trailing commit marker, and replay discards them.
        crate::failpoint("wal.commit_point")?;
        let mut commit = [0u8; 13];
        commit[0] = KIND_COMMIT;
        f.write_all(&commit)?;
        f.sync_data()?;
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.pages_logged.fetch_add(pages.len() as u64, Ordering::Relaxed);
        self.bytes_logged.fetch_add((buf.len() + commit.len()) as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot of the activity counters since open.
    pub fn stats(&self) -> WalStats {
        WalStats {
            commits: self.commits.load(Ordering::Relaxed),
            pages: self.pages_logged.load(Ordering::Relaxed),
            bytes: self.bytes_logged.load(Ordering::Relaxed),
        }
    }

    /// Truncates the log after its pages have reached the volume.
    pub fn truncate(&self) -> Result<()> {
        if !crate::failpoint("wal.truncate")? {
            return Ok(());
        }
        let f = self.file.lock();
        f.set_len(0)?;
        f.sync_data()?;
        drop(f);
        // Reopen in append mode positioned at 0, and re-sync the directory
        // entry the reopened handle depends on.
        let file = OpenOptions::new().read(true).append(true).open(&self.path)?;
        crate::fsync_parent_dir(&self.path)?;
        *self.file.lock() = file;
        Ok(())
    }

    /// Replays committed page images into `vol`. Returns the number of
    /// pages redone. An unterminated tail is ignored.
    pub fn replay(&self, vol: &Volume) -> Result<usize> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(0))?;
        let mut data = Vec::new();
        f.read_to_end(&mut data)?;
        drop(f);

        let mut pos = 0usize;
        let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
        let mut redone = 0usize;
        while pos + 13 <= data.len() {
            let kind = data[pos];
            let pid = u64::from_le_bytes(data[pos + 1..pos + 9].try_into().unwrap());
            let len = u32::from_le_bytes(data[pos + 9..pos + 13].try_into().unwrap()) as usize;
            pos += 13;
            match kind {
                KIND_PAGE => {
                    if pos + len > data.len() {
                        break; // torn tail — uncommitted, discard
                    }
                    pending.push((pid, data[pos..pos + len].to_vec()));
                    pos += len;
                }
                KIND_COMMIT => {
                    for (pid, bytes) in pending.drain(..) {
                        let arr: [u8; PAGE_SIZE] = bytes
                            .try_into()
                            .map_err(|_| crate::StorageError::Corrupt("bad page image size"))?;
                        vol.write_page_bytes(pid, &arr)?;
                        redone += 1;
                    }
                }
                _ => break, // garbage — stop replay
            }
        }
        if redone > 0 {
            vol.sync()?;
        }
        Ok(redone)
    }

    /// Current log size in bytes.
    pub fn len(&self) -> Result<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;

    fn setup(name: &str) -> (Wal, Volume, PageId) {
        let dir = std::env::temp_dir().join(format!("paradise-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vol = Volume::create(dir.join(format!("{name}.vol"))).unwrap();
        let pid = vol.alloc_extent().unwrap();
        let wal = Wal::open(dir.join(format!("{name}.wal"))).unwrap();
        (wal, vol, pid)
    }

    #[test]
    fn committed_pages_are_replayed() {
        let (wal, vol, pid) = setup("a");
        let mut p = Page::new();
        p.insert(b"logged").unwrap();
        wal.log_commit(&[(pid, p.bytes())]).unwrap();
        // Simulate crash before the page write: volume still has a blank page.
        assert!(vol.read_page(pid).unwrap().num_slots() == 0);
        let redone = wal.replay(&vol).unwrap();
        assert_eq!(redone, 1);
        assert_eq!(vol.read_page(pid).unwrap().get(0).unwrap(), b"logged");
    }

    #[test]
    fn torn_tail_is_discarded() {
        let (wal, vol, pid) = setup("b");
        let mut p = Page::new();
        p.insert(b"half-written").unwrap();
        wal.log_commit(&[(pid, p.bytes())]).unwrap();
        // Append a torn record with no commit: a page header then garbage.
        {
            let mut f = wal.file.lock();
            f.write_all(&[KIND_PAGE]).unwrap();
            f.write_all(&(pid + 1).to_le_bytes()).unwrap();
            f.write_all(&(PAGE_SIZE as u32).to_le_bytes()).unwrap();
            f.write_all(&[0u8; 100]).unwrap(); // truncated image
        }
        let redone = wal.replay(&vol).unwrap();
        assert_eq!(redone, 1, "only the committed batch is redone");
        assert!(vol.read_page(pid + 1).unwrap().num_slots() == 0);
    }

    #[test]
    fn uncommitted_batch_not_replayed() {
        let (wal, vol, pid) = setup("c");
        // Page image without a commit marker.
        {
            let mut f = wal.file.lock();
            let p = Page::new();
            f.write_all(&[KIND_PAGE]).unwrap();
            f.write_all(&pid.to_le_bytes()).unwrap();
            f.write_all(&(PAGE_SIZE as u32).to_le_bytes()).unwrap();
            f.write_all(p.bytes()).unwrap();
        }
        assert_eq!(wal.replay(&vol).unwrap(), 0);
    }

    #[test]
    fn truncate_empties_log() {
        let (wal, _vol, pid) = setup("d");
        let p = Page::new();
        wal.log_commit(&[(pid, p.bytes())]).unwrap();
        assert!(!wal.is_empty().unwrap());
        wal.truncate().unwrap();
        assert!(wal.is_empty().unwrap());
        // Log still usable after truncation.
        wal.log_commit(&[(pid, p.bytes())]).unwrap();
        assert!(!wal.is_empty().unwrap());
    }

    #[test]
    fn stats_count_commits_pages_and_bytes() {
        let (wal, _vol, pid) = setup("f");
        assert_eq!(wal.stats(), WalStats::default());
        let p = Page::new();
        wal.log_commit(&[(pid, p.bytes()), (pid + 1, p.bytes())]).unwrap();
        wal.log_commit(&[(pid, p.bytes())]).unwrap();
        let s = wal.stats();
        assert_eq!(s.commits, 2);
        assert_eq!(s.pages, 3);
        assert_eq!(s.bytes, wal.len().unwrap());
    }

    #[test]
    fn creation_and_truncate_sync_parent_directory() {
        use paradise_util::failpoint::{self, Policy};
        use std::time::Duration;
        let dir = std::env::temp_dir().join(format!("paradise-wal-dirsync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Observe the fsync-dir site without perturbing it: a zero delay
        // passes through but counts hits.
        let _fp = failpoint::armed("storage.fsync_dir", Policy::delay(Duration::from_millis(0)));
        let base = failpoint::hits("storage.fsync_dir");
        let vol = Volume::create(dir.join("d.vol")).unwrap();
        assert!(failpoint::hits("storage.fsync_dir") > base, "Volume::create must fsync its dir");
        let after_vol = failpoint::hits("storage.fsync_dir");
        let wal = Wal::open(dir.join("d.wal")).unwrap();
        assert!(failpoint::hits("storage.fsync_dir") > after_vol, "new WAL must fsync its dir");
        // Re-opening an existing log must NOT re-sync (nothing was created).
        let after_wal = failpoint::hits("storage.fsync_dir");
        drop(wal);
        let wal = Wal::open(dir.join("d.wal")).unwrap();
        assert_eq!(failpoint::hits("storage.fsync_dir"), after_wal);
        // Truncate reopens the file and re-syncs the directory entry.
        let pid = vol.alloc_extent().unwrap();
        wal.log_commit(&[(pid, Page::new().bytes())]).unwrap();
        wal.truncate().unwrap();
        assert!(failpoint::hits("storage.fsync_dir") > after_wal, "truncate must fsync its dir");
    }

    #[test]
    fn multiple_commits_replay_in_order() {
        let (wal, vol, pid) = setup("e");
        let mut p1 = Page::new();
        p1.insert(b"v1").unwrap();
        wal.log_commit(&[(pid, p1.bytes())]).unwrap();
        let mut p2 = Page::new();
        p2.insert(b"v2-final").unwrap();
        wal.log_commit(&[(pid, p2.bytes())]).unwrap();
        wal.replay(&vol).unwrap();
        assert_eq!(vol.read_page(pid).unwrap().get(0).unwrap(), b"v2-final");
    }
}
