//! Files of untyped objects (SHORE-style heap files).
//!
//! A heap file is a chain of slotted pages. Objects small enough to fit on
//! a page are stored inline; larger ones spill automatically into a LOB
//! chain with a small redirect record left in the heap page, so callers see
//! a uniform "file of arbitrarily-sized objects" exactly as SHORE presents
//! (paper §2.2).

use crate::buffer::BufferPool;
use crate::lob;
use crate::page::{PageId, SlotId, NO_PAGE, PAGE_SIZE};
use crate::store::Oid;
use crate::volume::ExtentAllocator;
use crate::{Result, StorageError};
use paradise_util::sync::Mutex;
use std::sync::Arc;

const TAG_INLINE: u8 = 0;
const TAG_LOB: u8 = 1;
/// Largest record stored inline (tag byte + payload + slot entry on a page).
pub const MAX_INLINE: usize = PAGE_SIZE - 16 - 4 - 1;

struct Chain {
    first: PageId,
    last: PageId,
    count: u64,
}

/// A heap file of untyped objects addressed by [`Oid`].
pub struct HeapFile {
    pool: Arc<BufferPool>,
    alloc: ExtentAllocator,
    chain: Mutex<Chain>,
}

/// Persistable description of a heap file (kept in the store directory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapMeta {
    /// First page of the chain.
    pub first: PageId,
    /// Last page of the chain.
    pub last: PageId,
    /// Number of live objects.
    pub count: u64,
    /// Extents owned by the file (records and LOB spill pages).
    pub extents: Vec<PageId>,
}

impl HeapFile {
    /// Creates an empty heap file.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let alloc = ExtentAllocator::new(pool.volume().clone());
        let first = alloc.alloc_page()?;
        let _ = pool.get_new(first)?; // initialize empty page
        Ok(HeapFile { pool, alloc, chain: Mutex::new(Chain { first, last: first, count: 0 }) })
    }

    /// Reopens a heap file from its persisted metadata.
    pub fn from_meta(pool: Arc<BufferPool>, meta: HeapMeta) -> Self {
        let alloc = ExtentAllocator::from_extents(pool.volume().clone(), meta.extents);
        HeapFile {
            pool,
            alloc,
            chain: Mutex::new(Chain { first: meta.first, last: meta.last, count: meta.count }),
        }
    }

    /// Metadata snapshot for persistence.
    pub fn meta(&self) -> HeapMeta {
        let c = self.chain.lock();
        HeapMeta { first: c.first, last: c.last, count: c.count, extents: self.alloc.extents() }
    }

    /// First page of the chain.
    pub fn first_page(&self) -> PageId {
        self.chain.lock().first
    }

    /// Number of live objects.
    pub fn count(&self) -> u64 {
        self.chain.lock().count
    }

    /// The buffer pool this file lives in.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Inserts an object, returning its OID. Objects larger than
    /// [`MAX_INLINE`] spill to a LOB chain transparently.
    pub fn insert(&self, obj: &[u8]) -> Result<Oid> {
        let mut rec = Vec::with_capacity(obj.len().min(MAX_INLINE) + 17);
        if obj.len() <= MAX_INLINE {
            rec.push(TAG_INLINE);
            rec.extend_from_slice(obj);
        } else {
            let first = lob::write_lob(&self.pool, &self.alloc, obj)?;
            rec.push(TAG_LOB);
            rec.extend_from_slice(&first.to_le_bytes());
            rec.extend_from_slice(&(obj.len() as u64).to_le_bytes());
        }
        let mut chain = self.chain.lock();
        let last = chain.last;
        {
            let g = self.pool.get(last)?;
            let mut page = g.write();
            if page.fits(rec.len()) {
                let slot = page.insert(&rec)?;
                chain.count += 1;
                return Ok(Oid { page: last, slot });
            }
        }
        // Grow the chain.
        let new_pid = self.alloc.alloc_page()?;
        {
            let g = self.pool.get(last)?;
            g.write().set_next_page(new_pid);
        }
        let g = self.pool.get_new(new_pid)?;
        let slot = g.write().insert(&rec)?;
        chain.last = new_pid;
        chain.count += 1;
        Ok(Oid { page: new_pid, slot })
    }

    fn decode(&self, rec: &[u8], oid: Oid) -> Result<Vec<u8>> {
        match rec.first() {
            Some(&TAG_INLINE) => Ok(rec[1..].to_vec()),
            Some(&TAG_LOB) => {
                if rec.len() != 17 {
                    return Err(StorageError::Corrupt("bad LOB redirect"));
                }
                let first = u64::from_le_bytes(rec[1..9].try_into().unwrap());
                lob::read_lob(&self.pool, first)
            }
            _ => Err(StorageError::BadSlot { page: oid.page, slot: oid.slot }),
        }
    }

    /// Reads the object at `oid`.
    pub fn read(&self, oid: Oid) -> Result<Vec<u8>> {
        let g = self.pool.get(oid.page)?;
        let page = g.read();
        let rec = page
            .get(oid.slot)
            .map_err(|_| StorageError::BadSlot { page: oid.page, slot: oid.slot })?;
        let rec = rec.to_vec();
        drop(page);
        self.decode(&rec, oid)
    }

    /// Reads only bytes `[offset, offset+len)` of the object at `oid` — for
    /// large objects this touches only the LOB pages in range (the partial
    /// fetch of §2.2); inline objects are sliced in memory.
    pub fn read_range(&self, oid: Oid, offset: usize, len: usize) -> Result<Vec<u8>> {
        let g = self.pool.get(oid.page)?;
        let page = g.read();
        let rec = page
            .get(oid.slot)
            .map_err(|_| StorageError::BadSlot { page: oid.page, slot: oid.slot })?
            .to_vec();
        drop(page);
        match rec.first() {
            Some(&TAG_INLINE) => {
                let body = &rec[1..];
                let from = offset.min(body.len());
                let to = (offset + len).min(body.len());
                Ok(body[from..to].to_vec())
            }
            Some(&TAG_LOB) => {
                let first = u64::from_le_bytes(rec[1..9].try_into().unwrap());
                lob::read_lob_range(&self.pool, first, offset, len)
            }
            _ => Err(StorageError::BadSlot { page: oid.page, slot: oid.slot }),
        }
    }

    /// Deletes the object at `oid`. LOB spill pages are reclaimed when the
    /// whole file is freed (extent-granularity reclamation, §2.5.2).
    pub fn delete(&self, oid: Oid) -> Result<()> {
        let g = self.pool.get(oid.page)?;
        let mut page = g.write();
        page.delete(oid.slot)
            .map_err(|_| StorageError::BadSlot { page: oid.page, slot: oid.slot })?;
        self.chain.lock().count -= 1;
        Ok(())
    }

    /// Calls `f(oid, object)` for every live object, in chain order.
    pub fn for_each<F: FnMut(Oid, Vec<u8>) -> Result<()>>(&self, mut f: F) -> Result<()> {
        let mut pid = self.first_page();
        while pid != NO_PAGE {
            let (next, slots): (PageId, Vec<(SlotId, Vec<u8>)>) = {
                let g = self.pool.get(pid)?;
                let page = g.read();
                let slots = page
                    .live_slots()
                    .into_iter()
                    .map(|s| (s, page.get(s).expect("live slot").to_vec()))
                    .collect();
                (page.next_page(), slots)
            };
            for (slot, rec) in slots {
                let oid = Oid { page: pid, slot };
                f(oid, self.decode(&rec, oid)?)?;
            }
            pid = next;
        }
        Ok(())
    }

    /// All live objects (materialised; use [`HeapFile::for_each`] to stream).
    pub fn scan(&self) -> Result<Vec<(Oid, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each(|oid, obj| {
            out.push((oid, obj));
            Ok(())
        })?;
        Ok(out)
    }

    /// Frees every extent owned by the file (records and LOBs).
    pub fn free(&self) -> Result<()> {
        self.alloc.free_all()
    }

    /// The file's extent allocator (shared for operator-scoped LOBs).
    pub fn allocator(&self) -> &ExtentAllocator {
        &self.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::Volume;

    fn file(name: &str) -> HeapFile {
        let dir = std::env::temp_dir().join(format!("paradise-heap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vol = Arc::new(Volume::create(dir.join(name)).unwrap());
        let pool = Arc::new(BufferPool::new(vol, 128));
        HeapFile::create(pool).unwrap()
    }

    #[test]
    fn insert_read_roundtrip() {
        let f = file("a.vol");
        let oid = f.insert(b"record one").unwrap();
        assert_eq!(f.read(oid).unwrap(), b"record one");
        assert_eq!(f.count(), 1);
    }

    #[test]
    fn many_records_span_pages() {
        let f = file("b.vol");
        let rec = vec![3u8; 1000];
        let oids: Vec<_> = (0..50).map(|_| f.insert(&rec).unwrap()).collect();
        // 1000-byte records, ~8 per page => several pages
        let distinct_pages: std::collections::HashSet<_> = oids.iter().map(|o| o.page).collect();
        assert!(distinct_pages.len() > 3);
        for oid in &oids {
            assert_eq!(f.read(*oid).unwrap(), rec);
        }
        assert_eq!(f.count(), 50);
    }

    #[test]
    fn large_object_spills_to_lob() {
        let f = file("c.vol");
        let big: Vec<u8> = (0..100_000).map(|i| (i % 253) as u8).collect();
        let oid = f.insert(&big).unwrap();
        assert_eq!(f.read(oid).unwrap(), big);
        // Partial read touches only part of the chain.
        assert_eq!(f.read_range(oid, 50_000, 10).unwrap(), &big[50_000..50_010]);
    }

    #[test]
    fn inline_range_read() {
        let f = file("d.vol");
        let oid = f.insert(b"0123456789").unwrap();
        assert_eq!(f.read_range(oid, 3, 4).unwrap(), b"3456");
        assert_eq!(f.read_range(oid, 8, 10).unwrap(), b"89");
    }

    #[test]
    fn delete_hides_record() {
        let f = file("e.vol");
        let a = f.insert(b"a").unwrap();
        let b = f.insert(b"b").unwrap();
        f.delete(a).unwrap();
        assert!(f.read(a).is_err());
        assert_eq!(f.read(b).unwrap(), b"b");
        assert_eq!(f.count(), 1);
        let scanned = f.scan().unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1, b"b");
    }

    #[test]
    fn scan_preserves_insertion_order_within_chain() {
        let f = file("f.vol");
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes()).unwrap();
        }
        let scanned = f.scan().unwrap();
        assert_eq!(scanned.len(), 100);
        for (i, (_, obj)) in scanned.iter().enumerate() {
            assert_eq!(u32::from_le_bytes(obj[..4].try_into().unwrap()), i as u32);
        }
    }

    #[test]
    fn mixed_inline_and_lob_scan() {
        let f = file("g.vol");
        f.insert(b"small").unwrap();
        let big = vec![7u8; 50_000];
        f.insert(&big).unwrap();
        f.insert(b"small2").unwrap();
        let scanned = f.scan().unwrap();
        assert_eq!(scanned.len(), 3);
        assert_eq!(scanned[0].1, b"small");
        assert_eq!(scanned[1].1.len(), 50_000);
        assert_eq!(scanned[2].1, b"small2");
    }

    #[test]
    fn meta_roundtrip_reopen() {
        let dir = std::env::temp_dir().join(format!("paradise-heap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vol = Arc::new(Volume::create(dir.join("h.vol")).unwrap());
        let pool = Arc::new(BufferPool::new(vol, 128));
        let f = HeapFile::create(pool.clone()).unwrap();
        let oid = f.insert(b"persisted").unwrap();
        let meta = f.meta();
        drop(f);
        let f2 = HeapFile::from_meta(pool, meta);
        assert_eq!(f2.read(oid).unwrap(), b"persisted");
        assert_eq!(f2.count(), 1);
        // New inserts after reopen still work (fresh extent).
        let oid2 = f2.insert(b"new").unwrap();
        assert_eq!(f2.read(oid2).unwrap(), b"new");
    }

    #[test]
    fn concurrent_inserts() {
        let dir = std::env::temp_dir().join(format!("paradise-heap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vol = Arc::new(Volume::create(dir.join("i.vol")).unwrap());
        let pool = Arc::new(BufferPool::new(vol, 256));
        let f = Arc::new(HeapFile::create(pool).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let f = f.clone();
            handles.push(std::thread::spawn(move || {
                (0..200).map(|i| f.insert(&[t, i as u8]).unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(f.count(), 800);
        let unique: std::collections::HashSet<_> = all.iter().map(|o| (o.page, o.slot)).collect();
        assert_eq!(unique.len(), 800, "OIDs must be distinct");
    }
}
