//! An R*-tree \[Beck90\] over bounding boxes.
//!
//! SHORE provides R*-trees as its spatial access method (paper §2.2);
//! Paradise uses them for spatial selections (Q6–Q8), indexed-nested-loops
//! spatial joins (§2.4), and the on-the-fly local indexes built per node
//! after spatial redeclustering (Q12 step 3). The tree lives in memory and
//! serializes to a byte string so it can be persisted as a large object —
//! on-the-fly indexes are rebuilt per query exactly as in the paper.
//!
//! Implemented: R* ChooseSubtree (overlap-minimising at the leaf level),
//! R* split (margin-driven axis choice, overlap-driven distribution),
//! forced reinsertion (30% of entries, once per level per insertion), STR
//! (Sort-Tile-Recursive) bulk loading, window search, circle search, and
//! best-first nearest-neighbour.

use crate::{Result, StorageError};
use paradise_geom::{Circle, Point, Rect};
use paradise_obs::Counter;
use std::cmp::Ordering as CmpOrd;
use std::collections::BinaryHeap;

/// Maximum entries per node.
const MAX_ENTRIES: usize = 16;
/// Minimum entries per node (40% of max, per the R* paper).
const MIN_ENTRIES: usize = 6;
/// Entries removed on forced reinsertion (30% of max).
const REINSERT: usize = 5;

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<(Rect, u64)>),
    Inner(Vec<(Rect, Box<Node>)>),
}

impl Node {
    fn bbox(&self) -> Rect {
        let mut it: Box<dyn Iterator<Item = Rect>> = match self {
            Node::Leaf(v) => Box::new(v.iter().map(|(r, _)| *r)),
            Node::Inner(v) => Box::new(v.iter().map(|(r, _)| *r)),
        };
        let first = it.next().expect("bbox of empty node");
        it.fold(first, |acc, r| acc.union(&r))
    }
}

/// An in-memory R*-tree mapping rectangles to `u64` payloads.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Node,
    height: usize, // 1 = root is a leaf
    len: usize,
    /// Optional observability hook: counts tree nodes touched by searches.
    /// `Counter` clones share the underlying atomic, so cloned trees keep
    /// publishing into the same metric.
    visits: Option<Counter>,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// An empty tree.
    pub fn new() -> Self {
        RTree { root: Node::Leaf(Vec::new()), height: 1, len: 0, visits: None }
    }

    /// Attach a counter that is bumped once per tree node touched by
    /// `search`/`visit`/`search_circle`/`nearest` (R*-tree node visits,
    /// the classic index-selectivity metric).
    pub fn set_visit_counter(&mut self, counter: Counter) {
        self.visits = Some(counter);
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Bounding box of everything in the tree.
    pub fn bbox(&self) -> Option<Rect> {
        if self.is_empty() {
            None
        } else {
            Some(self.root.bbox())
        }
    }

    /// Inserts `(rect, value)`.
    pub fn insert(&mut self, rect: Rect, value: u64) {
        self.len += 1;
        // Forced reinsertion: entries evicted from an overflowing node are
        // re-inserted from the top (without further reinsertion).
        let mut pending = vec![(rect, value)];
        let mut allow_reinsert = true;
        while let Some((r, v)) = pending.pop() {
            let mut reinserted = Vec::new();
            if let Some((left, right)) =
                Self::insert_rec(&mut self.root, self.height, r, v, allow_reinsert, &mut reinserted)
            {
                // Root split: grow the tree.
                let old = std::mem::replace(&mut self.root, Node::Inner(Vec::new()));
                let _ = old; // replaced below
                self.root = Node::Inner(vec![
                    (left.bbox(), Box::new(left)),
                    (right.bbox(), Box::new(right)),
                ]);
                self.height += 1;
            }
            pending.extend(reinserted);
            allow_reinsert = false;
        }
    }

    /// Recursive insert at `level` (root has level == height; leaves 1).
    /// Returns `Some((left, right))` when this node split.
    fn insert_rec(
        node: &mut Node,
        level: usize,
        rect: Rect,
        value: u64,
        allow_reinsert: bool,
        reinserted: &mut Vec<(Rect, u64)>,
    ) -> Option<(Node, Node)> {
        match node {
            Node::Leaf(entries) => {
                entries.push((rect, value));
                if entries.len() <= MAX_ENTRIES {
                    return None;
                }
                if allow_reinsert {
                    Self::evict_farthest(entries, reinserted);
                    return None;
                }
                let (l, r) = split_entries(std::mem::take(entries));
                Some((Node::Leaf(l), Node::Leaf(r)))
            }
            Node::Inner(children) => {
                let idx = choose_subtree(children, &rect, level == 2);
                let split = Self::insert_rec(
                    &mut children[idx].1,
                    level - 1,
                    rect,
                    value,
                    allow_reinsert,
                    reinserted,
                );
                match split {
                    Some((l, r)) => {
                        children[idx] = (l.bbox(), Box::new(l));
                        children.push((r.bbox(), Box::new(r)));
                    }
                    None => children[idx].0 = children[idx].1.bbox(),
                }
                if children.len() <= MAX_ENTRIES {
                    return None;
                }
                let (l, r) = split_children(std::mem::take(children));
                Some((Node::Inner(l), Node::Inner(r)))
            }
        }
    }

    /// Removes the `REINSERT` entries farthest from the node centroid and
    /// queues them for reinsertion.
    fn evict_farthest(entries: &mut Vec<(Rect, u64)>, reinserted: &mut Vec<(Rect, u64)>) {
        let center = entries
            .iter()
            .fold(Rect::hull_of(&[entries[0].0.center()]).unwrap(), |acc, (r, _)| {
                acc.union(&r.center().bbox())
            })
            .center();
        entries.sort_by(|a, b| {
            let da = a.0.center().distance_sq(&center);
            let db = b.0.center().distance_sq(&center);
            da.partial_cmp(&db).unwrap_or(CmpOrd::Equal)
        });
        let keep = entries.len() - REINSERT;
        reinserted.extend(entries.drain(keep..));
    }

    /// All `(rect, value)` entries whose rectangle intersects `window`.
    pub fn search(&self, window: &Rect) -> Vec<(Rect, u64)> {
        let mut out = Vec::new();
        self.visit(window, &mut |r, v| out.push((r, v)));
        out
    }

    /// Visitor-style window search (avoids materialising results).
    pub fn visit<F: FnMut(Rect, u64)>(&self, window: &Rect, f: &mut F) {
        fn rec<F: FnMut(Rect, u64)>(node: &Node, w: &Rect, f: &mut F, touched: &mut u64) {
            *touched += 1;
            match node {
                Node::Leaf(entries) => {
                    for (r, v) in entries {
                        if r.intersects(w) {
                            f(*r, *v);
                        }
                    }
                }
                Node::Inner(children) => {
                    for (r, c) in children {
                        if r.intersects(w) {
                            rec(c, w, f, touched);
                        }
                    }
                }
            }
        }
        if !self.is_empty() {
            let mut touched = 0u64;
            rec(&self.root, window, f, &mut touched);
            if let Some(c) = &self.visits {
                c.add(touched);
            }
        }
    }

    /// Entries whose rectangle intersects `circle` — the probe shape of the
    /// expanding-circle closest search (§2.7.3).
    pub fn search_circle(&self, circle: &Circle) -> Vec<(Rect, u64)> {
        let window = circle.bbox();
        let mut out = Vec::new();
        self.visit(&window, &mut |r, v| {
            if circle.intersects_rect(&r) {
                out.push((r, v));
            }
        });
        out
    }

    /// Best-first nearest entry to `p` by rectangle distance. Returns
    /// `(rect, value, distance)`.
    pub fn nearest(&self, p: &Point) -> Option<(Rect, u64, f64)> {
        if self.is_empty() {
            return None;
        }
        struct Item<'a> {
            dist: f64,
            payload: ItemKind<'a>,
        }
        enum ItemKind<'a> {
            Node(&'a Node),
            Entry(Rect, u64),
        }
        impl PartialEq for Item<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl Eq for Item<'_> {}
        impl PartialOrd for Item<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<CmpOrd> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item<'_> {
            fn cmp(&self, other: &Self) -> CmpOrd {
                // min-heap via reversed compare
                other.dist.partial_cmp(&self.dist).unwrap_or(CmpOrd::Equal)
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Item { dist: 0.0, payload: ItemKind::Node(&self.root) });
        let mut touched = 0u64;
        let result = loop {
            let Some(item) = heap.pop() else { break None };
            match item.payload {
                ItemKind::Entry(r, v) => break Some((r, v, item.dist)),
                ItemKind::Node(Node::Leaf(entries)) => {
                    touched += 1;
                    for (r, v) in entries {
                        heap.push(Item {
                            dist: r.distance_to_point(p),
                            payload: ItemKind::Entry(*r, *v),
                        });
                    }
                }
                ItemKind::Node(Node::Inner(children)) => {
                    touched += 1;
                    for (r, c) in children {
                        heap.push(Item {
                            dist: r.distance_to_point(p),
                            payload: ItemKind::Node(c),
                        });
                    }
                }
            }
        };
        if let Some(c) = &self.visits {
            c.add(touched);
        }
        result
    }

    /// Bulk-loads entries with Sort-Tile-Recursive packing. Replaces the
    /// tree contents. This is the "index built on the fly" of Q12.
    pub fn bulk_load(entries: Vec<(Rect, u64)>) -> RTree {
        if entries.is_empty() {
            return RTree::new();
        }
        let len = entries.len();
        // STR: sort by center x, cut into vertical slices of
        // ceil(sqrt(n/M)) groups, sort each slice by center y, pack runs
        // of M into leaves.
        let mut entries = entries;
        entries
            .sort_by(|a, b| a.0.center().x.partial_cmp(&b.0.center().x).unwrap_or(CmpOrd::Equal));
        let n_leaves = len.div_ceil(MAX_ENTRIES);
        let n_slices = (n_leaves as f64).sqrt().ceil() as usize;
        let slice_size = len.div_ceil(n_slices);
        let mut leaves: Vec<Node> = Vec::with_capacity(n_leaves);
        for slice in entries.chunks_mut(slice_size.max(1)) {
            slice.sort_by(|a, b| {
                a.0.center().y.partial_cmp(&b.0.center().y).unwrap_or(CmpOrd::Equal)
            });
            for run in slice.chunks(MAX_ENTRIES) {
                leaves.push(Node::Leaf(run.to_vec()));
            }
        }
        // Pack upper levels.
        let mut level = leaves;
        let mut height = 1;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            for run in level.chunks(MAX_ENTRIES) {
                let children: Vec<(Rect, Box<Node>)> =
                    run.iter().map(|n| (n.bbox(), Box::new(n.clone()))).collect();
                next.push(Node::Inner(children));
            }
            level = next;
            height += 1;
        }
        RTree { root: level.pop().expect("non-empty"), height, len, visits: None }
    }

    /// Serializes the tree to bytes (persistable as a large object).
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_rect(out: &mut Vec<u8>, r: &Rect) {
            for v in [r.lo.x, r.lo.y, r.hi.x, r.hi.y] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        fn rec(node: &Node, out: &mut Vec<u8>) {
            match node {
                Node::Leaf(entries) => {
                    out.push(1);
                    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                    for (r, v) in entries {
                        put_rect(out, r);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Node::Inner(children) => {
                    out.push(0);
                    out.extend_from_slice(&(children.len() as u16).to_le_bytes());
                    for (_, c) in children {
                        rec(c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&(self.height as u16).to_le_bytes());
        rec(&self.root, &mut out);
        out
    }

    /// Reconstructs a tree serialized by [`RTree::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<RTree> {
        fn get_rect(b: &[u8], pos: &mut usize) -> Result<Rect> {
            if *pos + 32 > b.len() {
                return Err(StorageError::Corrupt("rtree: truncated rect"));
            }
            let mut vals = [0f64; 4];
            for v in &mut vals {
                *v = f64::from_le_bytes(b[*pos..*pos + 8].try_into().unwrap());
                *pos += 8;
            }
            Rect::new(Point::new(vals[0], vals[1]), Point::new(vals[2], vals[3]))
                .map_err(|_| StorageError::Corrupt("rtree: invalid rect"))
        }
        fn rec(b: &[u8], pos: &mut usize) -> Result<Node> {
            if *pos + 3 > b.len() {
                return Err(StorageError::Corrupt("rtree: truncated node"));
            }
            let is_leaf = b[*pos] == 1;
            let n = u16::from_le_bytes(b[*pos + 1..*pos + 3].try_into().unwrap()) as usize;
            *pos += 3;
            if is_leaf {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let r = get_rect(b, pos)?;
                    if *pos + 8 > b.len() {
                        return Err(StorageError::Corrupt("rtree: truncated value"));
                    }
                    let v = u64::from_le_bytes(b[*pos..*pos + 8].try_into().unwrap());
                    *pos += 8;
                    entries.push((r, v));
                }
                Ok(Node::Leaf(entries))
            } else {
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    let c = rec(b, pos)?;
                    children.push((c.bbox(), Box::new(c)));
                }
                Ok(Node::Inner(children))
            }
        }
        if bytes.len() < 10 {
            return Err(StorageError::Corrupt("rtree: too short"));
        }
        let len = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        let height = u16::from_le_bytes(bytes[8..10].try_into().unwrap()) as usize;
        let mut pos = 10;
        let root = rec(bytes, &mut pos)?;
        Ok(RTree { root, height, len, visits: None })
    }
}

/// R* ChooseSubtree: at the level just above the leaves minimise overlap
/// enlargement; higher up minimise area enlargement (ties: smaller area).
fn choose_subtree(children: &[(Rect, Box<Node>)], rect: &Rect, above_leaf: bool) -> usize {
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, (r, _)) in children.iter().enumerate() {
        let enlarged = r.union(rect);
        let key = if above_leaf {
            let overlap_now: f64 = children
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, (o, _))| r.overlap_area(o))
                .sum();
            let overlap_then: f64 = children
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, (o, _))| enlarged.overlap_area(o))
                .sum();
            (overlap_then - overlap_now, r.enlargement(rect), r.area())
        } else {
            (r.enlargement(rect), r.area(), 0.0)
        };
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// A leaf's entries: each payload id with its bounding rectangle.
type Entries = Vec<(Rect, u64)>;

/// R* split for leaf entries.
fn split_entries(entries: Entries) -> (Entries, Entries) {
    let rects: Vec<Rect> = entries.iter().map(|(r, _)| *r).collect();
    let (axis_is_x, split_at) = rstar_split_position(&rects);
    let mut entries = entries;
    sort_by_axis(&mut entries, |e| e.0, axis_is_x);
    let right = entries.split_off(split_at);
    (entries, right)
}

/// A node's children, each with its bounding rectangle.
type Children = Vec<(Rect, Box<Node>)>;

/// R* split for inner children.
fn split_children(children: Children) -> (Children, Children) {
    let rects: Vec<Rect> = children.iter().map(|(r, _)| *r).collect();
    let (axis_is_x, split_at) = rstar_split_position(&rects);
    let mut children = children;
    sort_by_axis(&mut children, |e| e.0, axis_is_x);
    let right = children.split_off(split_at);
    (children, right)
}

fn sort_by_axis<T>(items: &mut [T], rect_of: impl Fn(&T) -> Rect, axis_is_x: bool) {
    items.sort_by(|a, b| {
        let (ra, rb) = (rect_of(a), rect_of(b));
        let ka = if axis_is_x { (ra.lo.x, ra.hi.x) } else { (ra.lo.y, ra.hi.y) };
        let kb = if axis_is_x { (rb.lo.x, rb.hi.x) } else { (rb.lo.y, rb.hi.y) };
        ka.partial_cmp(&kb).unwrap_or(CmpOrd::Equal)
    });
}

/// Chooses the split axis (minimum total margin over all distributions) and
/// the distribution (minimum overlap, ties by combined area). Returns
/// `(axis_is_x, index of the first right entry after axis sort)`.
fn rstar_split_position(rects: &[Rect]) -> (bool, usize) {
    let n = rects.len();
    let mut best_axis = true;
    let mut best_margin = f64::INFINITY;
    for axis_is_x in [true, false] {
        let mut sorted = rects.to_vec();
        sort_by_axis(&mut sorted, |r| *r, axis_is_x);
        let mut margin = 0.0;
        for k in MIN_ENTRIES..=(n - MIN_ENTRIES) {
            let left = sorted[..k].iter().fold(sorted[0], |a, r| a.union(r));
            let right = sorted[k..].iter().fold(sorted[k], |a, r| a.union(r));
            margin += left.margin() + right.margin();
        }
        if margin < best_margin {
            best_margin = margin;
            best_axis = axis_is_x;
        }
    }
    let mut sorted = rects.to_vec();
    sort_by_axis(&mut sorted, |r| *r, best_axis);
    let mut best_k = MIN_ENTRIES;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for k in MIN_ENTRIES..=(n - MIN_ENTRIES) {
        let left = sorted[..k].iter().fold(sorted[0], |a, r| a.union(r));
        let right = sorted[k..].iter().fold(sorted[k], |a, r| a.union(r));
        let key = (left.overlap_area(&right), left.area() + right.area());
        if key < best_key {
            best_key = key;
            best_k = k;
        }
    }
    (best_axis, best_k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_corners(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    fn pt_rect(x: f64, y: f64) -> Rect {
        r(x, y, x, y)
    }

    /// Deterministic pseudo-random rect in [0,1000)^2.
    fn rnd_rects(n: usize) -> Vec<(Rect, u64)> {
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 10_000) as f64 / 10.0
        };
        (0..n)
            .map(|i| {
                let cx = next();
                let cy = next();
                let w = next() / 100.0;
                let h = next() / 100.0;
                (r(cx, cy, cx + w, cy + h), i as u64)
            })
            .collect()
    }

    fn brute_search(data: &[(Rect, u64)], w: &Rect) -> Vec<u64> {
        let mut v: Vec<u64> =
            data.iter().filter(|(r, _)| r.intersects(w)).map(|(_, id)| *id).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert!(t.search(&r(0.0, 0.0, 100.0, 100.0)).is_empty());
        assert_eq!(t.nearest(&Point::new(0.0, 0.0)), None);
        assert_eq!(t.bbox(), None);
    }

    #[test]
    fn insert_search_matches_brute_force() {
        let data = rnd_rects(500);
        let mut t = RTree::new();
        for (rect, v) in &data {
            t.insert(*rect, *v);
        }
        assert_eq!(t.len(), 500);
        for window in [
            r(0.0, 0.0, 100.0, 100.0),
            r(400.0, 400.0, 600.0, 600.0),
            r(0.0, 0.0, 1000.0, 1000.0),
            r(999.0, 999.0, 1000.0, 1000.0),
        ] {
            let mut got: Vec<u64> = t.search(&window).iter().map(|(_, v)| *v).collect();
            got.sort_unstable();
            assert_eq!(got, brute_search(&data, &window), "window {window}");
        }
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let data = rnd_rects(2000);
        let t = RTree::bulk_load(data.clone());
        assert_eq!(t.len(), 2000);
        let window = r(200.0, 300.0, 450.0, 520.0);
        let mut got: Vec<u64> = t.search(&window).iter().map(|(_, v)| *v).collect();
        got.sort_unstable();
        assert_eq!(got, brute_search(&data, &window));
    }

    #[test]
    fn nearest_matches_brute_force() {
        let data = rnd_rects(300);
        let t = RTree::bulk_load(data.clone());
        for probe in [Point::new(0.0, 0.0), Point::new(500.0, 500.0), Point::new(1200.0, -50.0)] {
            let (_, _, d) = t.nearest(&probe).unwrap();
            let brute =
                data.iter().map(|(r, _)| r.distance_to_point(&probe)).fold(f64::INFINITY, f64::min);
            assert!((d - brute).abs() < 1e-9, "probe {probe}: {d} vs {brute}");
        }
    }

    #[test]
    fn search_circle_filters_by_distance() {
        let mut t = RTree::new();
        t.insert(pt_rect(0.0, 0.0), 1);
        t.insert(pt_rect(10.0, 0.0), 2);
        t.insert(pt_rect(7.0, 7.0), 3); // dist ~9.9 from origin
        let c = Circle::new(Point::new(0.0, 0.0), 9.95).unwrap();
        let mut ids: Vec<u64> = t.search_circle(&c).iter().map(|(_, v)| *v).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn tree_grows_in_height() {
        let mut t = RTree::new();
        for (rect, v) in rnd_rects(1000) {
            t.insert(rect, v);
        }
        assert!(t.height() >= 3, "height = {}", t.height());
        // bbox covers everything
        let bb = t.bbox().unwrap();
        for (rect, _) in t.search(&r(-1e9, -1e9, 1e9, 1e9)) {
            assert!(bb.contains_rect(&rect));
        }
    }

    #[test]
    fn duplicate_rects_all_found() {
        let mut t = RTree::new();
        for i in 0..50 {
            t.insert(pt_rect(5.0, 5.0), i);
        }
        let hits = t.search(&r(5.0, 5.0, 5.0, 5.0));
        assert_eq!(hits.len(), 50);
    }

    #[test]
    fn serialization_roundtrip() {
        let data = rnd_rects(700);
        let t = RTree::bulk_load(data.clone());
        let bytes = t.to_bytes();
        let t2 = RTree::from_bytes(&bytes).unwrap();
        assert_eq!(t2.len(), t.len());
        assert_eq!(t2.height(), t.height());
        let w = r(100.0, 100.0, 400.0, 400.0);
        let mut a: Vec<u64> = t.search(&w).iter().map(|(_, v)| *v).collect();
        let mut b: Vec<u64> = t2.search(&w).iter().map(|(_, v)| *v).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // corrupt data rejected
        assert!(RTree::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(RTree::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn visitor_early_accumulation() {
        let t = RTree::bulk_load(rnd_rects(100));
        let mut count = 0usize;
        t.visit(&r(0.0, 0.0, 1000.0, 1000.0), &mut |_, _| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    fn visit_counter_counts_touched_nodes() {
        let mut t = RTree::bulk_load(rnd_rects(1000));
        let visits = Counter::new();
        t.set_visit_counter(visits.clone());
        // Full-window search touches every node: root + inner + leaves.
        t.search(&r(-1e9, -1e9, 1e9, 1e9));
        let full = visits.get();
        assert!(full > 1000 / MAX_ENTRIES as u64, "full scan touched only {full} nodes");
        // A tiny window must touch far fewer nodes than the full scan —
        // this is the index-selectivity signal the metric exists for.
        let before = visits.get();
        t.search(&r(0.0, 0.0, 1.0, 1.0));
        let narrow = visits.get() - before;
        assert!(narrow > 0 && narrow < full / 4, "narrow {narrow} vs full {full}");
        // nearest() also reports traversal work.
        let before = visits.get();
        t.nearest(&Point::new(500.0, 500.0)).unwrap();
        assert!(visits.get() > before);
        // Clones share the counter.
        let t2 = t.clone();
        let before = visits.get();
        t2.search(&r(0.0, 0.0, 1.0, 1.0));
        assert!(visits.get() > before);
    }

    #[test]
    fn str_bulk_load_is_well_packed() {
        // For uniformly spread points, STR leaves should be near-full:
        // tree height should be close to log_M(n).
        let t = RTree::bulk_load(rnd_rects(4000));
        assert!(t.height() <= 4, "height = {}", t.height());
    }
}
