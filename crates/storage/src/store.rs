//! The per-disk storage manager facade.
//!
//! A [`Store`] bundles one volume, its buffer pool, its write-ahead log and
//! a small persistent directory of named heap files and B+-trees. Every
//! simulated Paradise node owns one `Store` per disk (paper §3.2: four
//! database disks per node).

use crate::btree::{BTree, BTreeMeta};
use crate::buffer::BufferPool;
use crate::heap::{HeapFile, HeapMeta};
use crate::page::{PageId, SlotId};
use crate::volume::Volume;
use crate::wal::Wal;
use crate::{Result, StorageError};
use paradise_util::sync::Mutex;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Object identifier: (page, slot) within a store's volume — SHORE's OID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    /// Page holding the object (or its LOB redirect).
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl Oid {
    /// Packs the OID into 10 bytes for embedding in tuples.
    pub fn to_bytes(self) -> [u8; 10] {
        let mut b = [0u8; 10];
        b[0..8].copy_from_slice(&self.page.to_le_bytes());
        b[8..10].copy_from_slice(&self.slot.to_le_bytes());
        b
    }

    /// Unpacks an OID produced by [`Oid::to_bytes`].
    pub fn from_bytes(b: &[u8]) -> Option<Oid> {
        if b.len() < 10 {
            return None;
        }
        Some(Oid {
            page: u64::from_le_bytes(b[0..8].try_into().ok()?),
            slot: u16::from_le_bytes(b[8..10].try_into().ok()?),
        })
    }
}

enum Entry {
    Heap(Arc<HeapFile>),
    BTree(Arc<BTree>),
}

/// One disk's storage manager: volume + buffer pool + WAL + directory.
pub struct Store {
    vol: Arc<Volume>,
    pool: Arc<BufferPool>,
    wal: Wal,
    dir_page: PageId,
    entries: Mutex<HashMap<String, Entry>>,
}

impl Store {
    /// Creates a fresh store: `<base>.vol` and `<base>.wal`.
    pub fn create<P: AsRef<Path>>(base: P, pool_pages: usize) -> Result<Self> {
        let base = base.as_ref();
        let vol = Arc::new(Volume::create(with_ext(base, "vol"))?);
        let pool = Arc::new(BufferPool::new(vol.clone(), pool_pages));
        let wal = Wal::open(with_ext(base, "wal"))?;
        let dir_page = vol.alloc_extent()?; // first extent, first page
        {
            let g = pool.get_new(dir_page)?;
            g.write().insert(&encode_dir(&[])?)?;
        }
        let store = Store { vol, pool, wal, dir_page, entries: Mutex::new(HashMap::new()) };
        store.commit()?;
        Ok(store)
    }

    /// Opens an existing store, replaying any committed WAL tail first.
    pub fn open<P: AsRef<Path>>(base: P, pool_pages: usize) -> Result<Self> {
        let base = base.as_ref();
        let vol = Arc::new(Volume::open(with_ext(base, "vol"))?);
        let wal = Wal::open(with_ext(base, "wal"))?;
        wal.replay(&vol)?;
        wal.truncate()?;
        let pool = Arc::new(BufferPool::new(vol.clone(), pool_pages));
        let dir_page: PageId = 1; // first page of the first extent
        let mut entries = HashMap::new();
        {
            let g = pool.get(dir_page)?;
            let page = g.read();
            let raw = page.get(0).map_err(|_| StorageError::Corrupt("missing directory"))?;
            for (name, meta) in decode_dir(raw)? {
                let e = match meta {
                    DirMeta::Heap(m) => Entry::Heap(Arc::new(HeapFile::from_meta(pool.clone(), m))),
                    DirMeta::BTree(m) => Entry::BTree(Arc::new(BTree::from_meta(pool.clone(), m))),
                };
                entries.insert(name, e);
            }
        }
        Ok(Store { vol, pool, wal, dir_page, entries: Mutex::new(entries) })
    }

    /// The buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The volume.
    pub fn volume(&self) -> &Arc<Volume> {
        &self.vol
    }

    /// WAL activity counters (for the metrics registry).
    pub fn wal_stats(&self) -> crate::wal::WalStats {
        self.wal.stats()
    }

    /// Creates (or returns the existing) named heap file.
    pub fn create_file(&self, name: &str) -> Result<Arc<HeapFile>> {
        let mut entries = self.entries.lock();
        if let Some(Entry::Heap(f)) = entries.get(name) {
            return Ok(f.clone());
        }
        let f = Arc::new(HeapFile::create(self.pool.clone())?);
        entries.insert(name.to_string(), Entry::Heap(f.clone()));
        Ok(f)
    }

    /// Looks up a named heap file.
    pub fn file(&self, name: &str) -> Option<Arc<HeapFile>> {
        match self.entries.lock().get(name) {
            Some(Entry::Heap(f)) => Some(f.clone()),
            _ => None,
        }
    }

    /// Creates (or returns the existing) named B+-tree.
    pub fn create_btree(&self, name: &str) -> Result<Arc<BTree>> {
        let mut entries = self.entries.lock();
        if let Some(Entry::BTree(t)) = entries.get(name) {
            return Ok(t.clone());
        }
        let t = Arc::new(BTree::create(self.pool.clone())?);
        entries.insert(name.to_string(), Entry::BTree(t.clone()));
        Ok(t)
    }

    /// Looks up a named B+-tree.
    pub fn btree(&self, name: &str) -> Option<Arc<BTree>> {
        match self.entries.lock().get(name) {
            Some(Entry::BTree(t)) => Some(t.clone()),
            _ => None,
        }
    }

    /// Drops a named file or index, returning its extents to the volume —
    /// how temporary tables and their LOB files disappear (§2.5.2).
    ///
    /// Cached pages of the freed extents are discarded first (not written
    /// back): a stale dirty frame flushed later would overwrite the free
    /// list link the volume threads through each freed extent's first page.
    pub fn drop_entry(&self, name: &str) -> Result<()> {
        let e = self.entries.lock().remove(name);
        let extents = match &e {
            Some(Entry::Heap(f)) => f.meta().extents,
            Some(Entry::BTree(t)) => t.meta().extents,
            None => Vec::new(),
        };
        self.pool.discard_pages(
            extents.iter().flat_map(|&first| first..first + crate::volume::EXTENT_PAGES),
        );
        match e {
            Some(Entry::Heap(f)) => f.free(),
            Some(Entry::BTree(t)) => t.free(),
            None => Ok(()),
        }
    }

    /// Names of all directory entries.
    pub fn names(&self) -> Vec<String> {
        self.entries.lock().keys().cloned().collect()
    }

    fn write_directory(&self) -> Result<()> {
        let entries = self.entries.lock();
        let mut list: Vec<(String, DirMeta)> = entries
            .iter()
            .map(|(n, e)| {
                let m = match e {
                    Entry::Heap(f) => DirMeta::Heap(f.meta()),
                    Entry::BTree(t) => DirMeta::BTree(t.meta()),
                };
                (n.clone(), m)
            })
            .collect();
        list.sort_by(|a, b| a.0.cmp(&b.0));
        let raw = encode_dir(&list)?;
        let g = self.pool.get(self.dir_page)?;
        let res = g.write().update(0, &raw);
        res.map_err(|_| StorageError::Corrupt("directory page overflow (too many files per store)"))
    }

    /// Durably commits all work: directory + dirty pages go through the WAL
    /// (commit point), then to the volume; the WAL is then truncated.
    pub fn commit(&self) -> Result<()> {
        self.write_directory()?;
        let dirty = self.pool.dirty_pages();
        let refs: Vec<(PageId, &[u8; crate::page::PAGE_SIZE])> =
            dirty.iter().map(|(pid, p)| (*pid, p.bytes())).collect();
        self.wal.log_commit(&refs)?;
        self.pool.flush_all()?;
        self.vol.sync()?;
        self.wal.truncate()
    }

    /// Flushes and empties the buffer pool (the benchmark's between-query
    /// cache flush).
    pub fn flush_cache(&self) -> Result<()> {
        self.pool.flush_and_clear()
    }
}

enum DirMeta {
    Heap(HeapMeta),
    BTree(BTreeMeta),
}

fn with_ext(base: &Path, ext: &str) -> std::path::PathBuf {
    let mut p = base.to_path_buf().into_os_string();
    p.push(".");
    p.push(ext);
    std::path::PathBuf::from(p)
}

fn encode_dir(entries: &[(String, DirMeta)]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, meta) in entries {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        match meta {
            DirMeta::Heap(m) => {
                out.push(0);
                out.extend_from_slice(&m.first.to_le_bytes());
                out.extend_from_slice(&m.last.to_le_bytes());
                out.extend_from_slice(&m.count.to_le_bytes());
                out.extend_from_slice(&(m.extents.len() as u32).to_le_bytes());
                for e in &m.extents {
                    out.extend_from_slice(&e.to_le_bytes());
                }
            }
            DirMeta::BTree(m) => {
                out.push(1);
                out.extend_from_slice(&m.root.to_le_bytes());
                out.extend_from_slice(&(m.extents.len() as u32).to_le_bytes());
                for e in &m.extents {
                    out.extend_from_slice(&e.to_le_bytes());
                }
            }
        }
    }
    Ok(out)
}

fn decode_dir(raw: &[u8]) -> Result<Vec<(String, DirMeta)>> {
    let corrupt = || StorageError::Corrupt("bad directory encoding");
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        if *pos + n > raw.len() {
            return Err(corrupt());
        }
        let s = &raw[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).map_err(|_| corrupt())?;
        let kind = take(&mut pos, 1)?[0];
        let meta = match kind {
            0 => {
                let first = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
                let last = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
                let count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
                let ne = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                let mut extents = Vec::with_capacity(ne);
                for _ in 0..ne {
                    extents.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
                }
                DirMeta::Heap(HeapMeta { first, last, count, extents })
            }
            1 => {
                let root = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
                let ne = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                let mut extents = Vec::with_capacity(ne);
                for _ in 0..ne {
                    extents.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
                }
                DirMeta::BTree(BTreeMeta { root, extents })
            }
            _ => return Err(corrupt()),
        };
        out.push((name, meta));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("paradise-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn oid_bytes_roundtrip() {
        let oid = Oid { page: 0x1234_5678_9ABC, slot: 77 };
        assert_eq!(Oid::from_bytes(&oid.to_bytes()), Some(oid));
        assert_eq!(Oid::from_bytes(&[1, 2, 3]), None);
    }

    #[test]
    fn create_insert_commit_reopen() {
        let b = base("s1");
        let oid = {
            let store = Store::create(&b, 64).unwrap();
            let f = store.create_file("cities").unwrap();
            let oid = f.insert(b"madison").unwrap();
            store.commit().unwrap();
            oid
        };
        let store = Store::open(&b, 64).unwrap();
        let f = store.file("cities").expect("file survives reopen");
        assert_eq!(f.read(oid).unwrap(), b"madison");
        assert!(store.file("missing").is_none());
    }

    #[test]
    fn uncommitted_work_lost_on_reopen() {
        let b = base("s2");
        {
            let store = Store::create(&b, 64).unwrap();
            store.create_file("t").unwrap();
            store.commit().unwrap();
            let f = store.file("t").unwrap();
            f.insert(b"never committed").unwrap();
            // no commit; pool dropped without flush
        }
        let store = Store::open(&b, 64).unwrap();
        let f = store.file("t").unwrap();
        assert_eq!(f.scan().unwrap().len(), 0);
    }

    #[test]
    fn wal_recovers_committed_pages() {
        let b = base("s3");
        // Commit writes the WAL first; simulate a crash after WAL sync but
        // before the volume write by replaying the intact WAL manually.
        let store = Store::create(&b, 64).unwrap();
        let f = store.create_file("t").unwrap();
        f.insert(b"durable").unwrap();
        // Manually do the WAL half of commit only.
        store.write_directory().unwrap();
        let dirty = store.pool.dirty_pages();
        let refs: Vec<_> = dirty.iter().map(|(p, pg)| (*p, pg.bytes())).collect();
        store.wal.log_commit(&refs).unwrap();
        drop(store); // volume never saw the pages
        let store = Store::open(&b, 64).unwrap();
        let f = store.file("t").expect("directory recovered from WAL");
        let rows = f.scan().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, b"durable");
    }

    #[test]
    fn drop_entry_frees_space() {
        let b = base("s4");
        let store = Store::create(&b, 64).unwrap();
        let f = store.create_file("temp").unwrap();
        for _ in 0..100 {
            f.insert(&[0u8; 1000]).unwrap();
        }
        store.commit().unwrap();
        let pages_before = store.volume().num_pages();
        store.drop_entry("temp").unwrap();
        store.commit().unwrap();
        // Extents are recycled: creating a new file must not grow the volume.
        let f2 = store.create_file("next").unwrap();
        for _ in 0..100 {
            f2.insert(&[0u8; 1000]).unwrap();
        }
        store.commit().unwrap();
        assert_eq!(store.volume().num_pages(), pages_before);
    }

    #[test]
    fn multiple_files_coexist() {
        let b = base("s5");
        let store = Store::create(&b, 128).unwrap();
        let a = store.create_file("a").unwrap();
        let c = store.create_file("c").unwrap();
        let oa = a.insert(b"in a").unwrap();
        let oc = c.insert(b"in c").unwrap();
        store.commit().unwrap();
        assert_eq!(a.read(oa).unwrap(), b"in a");
        assert_eq!(c.read(oc).unwrap(), b"in c");
        let mut names = store.names();
        names.sort();
        assert_eq!(names, vec!["a", "c"]);
    }

    #[test]
    fn drop_with_dirty_cache_does_not_corrupt_free_list() {
        // Regression: dirty pages of a dropped file must not be flushed
        // over the freed extents' free-list links.
        let b = base("s7");
        let store = Store::create(&b, 256).unwrap();
        let f = store.create_file("victim").unwrap();
        for _ in 0..200 {
            f.insert(&[7u8; 3000]).unwrap(); // several extents, all dirty
        }
        // Drop WITHOUT committing: pages are still dirty in the pool.
        store.drop_entry("victim").unwrap();
        // Commit flushes whatever is left dirty; the freed extents' link
        // pages must survive.
        store.commit().unwrap();
        // Drain the free list: every recycled extent must be a valid page.
        let g = store.create_file("next").unwrap();
        for _ in 0..400 {
            g.insert(&[9u8; 3000]).unwrap();
        }
        store.commit().unwrap();
        assert_eq!(g.scan().unwrap().len(), 400);
    }

    #[test]
    fn btree_survives_reopen() {
        let b = base("s6");
        {
            let store = Store::create(&b, 64).unwrap();
            let t = store.create_btree("idx").unwrap();
            t.insert(b"key1", 11).unwrap();
            t.insert(b"key2", 22).unwrap();
            store.commit().unwrap();
        }
        let store = Store::open(&b, 64).unwrap();
        let t = store.btree("idx").unwrap();
        assert_eq!(t.get(b"key1").unwrap(), Some(11));
        assert_eq!(t.get(b"key2").unwrap(), Some(22));
    }
}
