//! The buffer pool.
//!
//! Paper §3.2: "Paradise was configured to use a 32 MByte buffer pool …
//! The buffer pool was flushed between queries" — so the pool tracks
//! hit/miss/IO statistics and supports a full flush-and-clear, which the
//! benchmark harness invokes before every query to measure cold-cache
//! behaviour.
//!
//! Pages are pinned while referenced; eviction is LRU over unpinned frames.

use crate::page::{Page, PageId};
use crate::volume::Volume;
use crate::{Result, StorageError};
use paradise_obs::Gauge;
use paradise_util::sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Cumulative buffer-pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Requests satisfied from the pool.
    pub hits: u64,
    /// Requests that had to read from the volume.
    pub misses: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
    /// Evictions performed.
    pub evictions: u64,
}

impl BufferStats {
    /// Component-wise delta against an earlier snapshot of the same pool
    /// (saturating, so a `reset_stats` in between degrades to zeros
    /// instead of wrapping).
    pub fn since(&self, base: BufferStats) -> BufferStats {
        BufferStats {
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
            writebacks: self.writebacks.saturating_sub(base.writebacks),
            evictions: self.evictions.saturating_sub(base.evictions),
        }
    }

    /// Component-wise sum (for aggregating across the pools of a cluster).
    pub fn merge(&self, other: BufferStats) -> BufferStats {
        BufferStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            writebacks: self.writebacks + other.writebacks,
            evictions: self.evictions + other.evictions,
        }
    }

    /// Hit rate in percent (100 when there were no requests at all).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            100.0
        } else {
            self.hits as f64 * 100.0 / total as f64
        }
    }
}

struct Frame {
    pid: PageId,
    page: RwLock<Page>,
    dirty: AtomicBool,
    pins: AtomicUsize,
    /// LRU timestamp (monotone counter at last unpin/use).
    stamp: AtomicU64,
}

/// A pinned reference to a buffered page. The pin is released on drop;
/// writes go through [`PageGuard::write`], which marks the frame dirty.
pub struct PageGuard {
    frame: Arc<Frame>,
    clock: Arc<AtomicU64>,
}

impl PageGuard {
    /// Page id of the pinned page.
    pub fn pid(&self) -> PageId {
        self.frame.pid
    }

    /// Shared read access to the page.
    pub fn read(&self) -> paradise_util::sync::RwLockReadGuard<'_, Page> {
        self.frame.page.read()
    }

    /// Exclusive write access; marks the page dirty.
    pub fn write(&self) -> paradise_util::sync::RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.page.write()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame.stamp.store(self.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        self.frame.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

/// An LRU buffer pool over one volume.
pub struct BufferPool {
    vol: Arc<Volume>,
    capacity: usize,
    frames: Mutex<HashMap<PageId, Arc<Frame>>>,
    clock: Arc<AtomicU64>,
    hits: AtomicU64,
    misses: AtomicU64,
    writebacks: AtomicU64,
    evictions: AtomicU64,
    /// Live frame count, maintained with `add`/`sub` deltas at every
    /// insert/remove (all under the `frames` lock) so snapshots never race
    /// a recompute-then-`set` cycle. Cloned out via [`Self::frames_gauge`]
    /// for registry publication.
    frames_cached: Gauge,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `vol`.
    pub fn new(vol: Arc<Volume>, capacity: usize) -> Self {
        BufferPool {
            vol,
            capacity: capacity.max(1),
            frames: Mutex::new(HashMap::new()),
            clock: Arc::new(AtomicU64::new(0)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            frames_cached: Gauge::new(),
        }
    }

    /// The underlying volume.
    pub fn volume(&self) -> &Arc<Volume> {
        &self.vol
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Handle on the live cached-frame gauge (shares the atomic — register
    /// it into a [`paradise_obs::MetricsRegistry`] to publish it).
    pub fn frames_gauge(&self) -> Gauge {
        self.frames_cached.clone()
    }

    /// Number of frames currently cached.
    pub fn cached_frames(&self) -> u64 {
        self.frames_cached.get()
    }

    fn pin(&self, frame: &Arc<Frame>) -> PageGuard {
        frame.pins.fetch_add(1, Ordering::AcqRel);
        PageGuard { frame: frame.clone(), clock: self.clock.clone() }
    }

    /// Fetches page `pid`, reading it from the volume on a miss.
    pub fn get(&self, pid: PageId) -> Result<PageGuard> {
        let mut frames = self.frames.lock();
        if let Some(f) = frames.get(&pid) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(self.pin(f));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.make_room(&mut frames)?;
        let page = self.vol.read_page(pid)?;
        let frame = Arc::new(Frame {
            pid,
            page: RwLock::new(page),
            dirty: AtomicBool::new(false),
            pins: AtomicUsize::new(0),
            stamp: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
        });
        let guard = self.pin(&frame);
        frames.insert(pid, frame);
        self.frames_cached.add(1);
        Ok(guard)
    }

    /// Registers a brand-new page (already allocated in the volume) without
    /// reading it from disk, e.g. right after `alloc_page`.
    pub fn get_new(&self, pid: PageId) -> Result<PageGuard> {
        let mut frames = self.frames.lock();
        if let Some(f) = frames.get(&pid) {
            // Already cached (recycled extent): reset it.
            let g = self.pin(f);
            *g.write() = Page::new();
            return Ok(g);
        }
        self.make_room(&mut frames)?;
        let frame = Arc::new(Frame {
            pid,
            page: RwLock::new(Page::new()),
            dirty: AtomicBool::new(true),
            pins: AtomicUsize::new(0),
            stamp: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
        });
        let guard = self.pin(&frame);
        frames.insert(pid, frame);
        self.frames_cached.add(1);
        Ok(guard)
    }

    /// Evicts the LRU unpinned frame if the pool is full.
    fn make_room(&self, frames: &mut HashMap<PageId, Arc<Frame>>) -> Result<()> {
        while frames.len() >= self.capacity {
            let victim = frames
                .values()
                .filter(|f| f.pins.load(Ordering::Acquire) == 0)
                .min_by_key(|f| f.stamp.load(Ordering::Relaxed))
                .map(|f| f.pid);
            let Some(pid) = victim else {
                return Err(StorageError::PoolExhausted);
            };
            let frame = frames.remove(&pid).expect("victim present");
            self.frames_cached.sub(1);
            if frame.dirty.load(Ordering::Acquire) {
                self.vol.write_page(pid, &frame.page.read())?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Writes back every dirty page, keeping the cache warm.
    pub fn flush_all(&self) -> Result<()> {
        let frames = self.frames.lock();
        for (pid, frame) in frames.iter() {
            if frame.dirty.swap(false, Ordering::AcqRel) {
                self.vol.write_page(*pid, &frame.page.read())?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// The dirty pages currently cached (pid + image), for WAL commits.
    pub fn dirty_pages(&self) -> Vec<(PageId, Page)> {
        let frames = self.frames.lock();
        frames
            .iter()
            .filter(|(_, f)| f.dirty.load(Ordering::Acquire))
            .map(|(pid, f)| (*pid, f.page.read().clone()))
            .collect()
    }

    /// Flushes all dirty pages and drops every unpinned frame — the
    /// "buffer pool flushed between queries" knob of the benchmark.
    pub fn flush_and_clear(&self) -> Result<()> {
        let mut frames = self.frames.lock();
        let before = frames.len() as u64;
        let mut kept = HashMap::new();
        for (pid, frame) in frames.drain() {
            if frame.dirty.swap(false, Ordering::AcqRel) {
                self.vol.write_page(pid, &frame.page.read())?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            if frame.pins.load(Ordering::Acquire) > 0 {
                kept.insert(pid, frame);
            }
        }
        self.frames_cached.sub(before - kept.len() as u64);
        *frames = kept;
        Ok(())
    }

    /// Drops cached frames for `pids` without writing them back — used when
    /// their extents are freed: a freed extent's first page holds the
    /// volume free-list link, and flushing a stale dirty frame over it
    /// would corrupt the allocator.
    pub fn discard_pages(&self, pids: impl IntoIterator<Item = PageId>) {
        let mut frames = self.frames.lock();
        for pid in pids {
            if let Some(f) = frames.get(&pid) {
                if f.pins.load(Ordering::Acquire) == 0 {
                    frames.remove(&pid);
                    self.frames_cached.sub(1);
                }
            }
        }
    }

    /// Snapshot of the statistics.
    ///
    /// Every counter mutation happens while the `frames` mutex is held
    /// (`get`/`make_room`/`flush_*` all update under it), so taking the
    /// same lock here yields an internally *consistent* snapshot: a
    /// concurrent `get` can never be half-counted (hit recorded, miss
    /// missing) between the individual loads.
    pub fn stats(&self) -> BufferStats {
        let _frames = self.frames.lock();
        self.stats_locked()
    }

    /// Resets the statistics (between benchmark queries). Holds the
    /// `frames` lock so the reset is atomic with respect to in-flight
    /// requests — no increment lands between clearing `hits` and
    /// clearing `misses`.
    pub fn reset_stats(&self) {
        let _frames = self.frames.lock();
        self.reset_stats_locked();
    }

    /// Atomically snapshot **and** reset — the lost-update-free way to
    /// accumulate deltas while a query is running concurrently.
    pub fn take_stats(&self) -> BufferStats {
        let _frames = self.frames.lock();
        let s = self.stats_locked();
        self.reset_stats_locked();
        s
    }

    fn stats_locked(&self) -> BufferStats {
        BufferStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn reset_stats_locked(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize, name: &str) -> (BufferPool, Arc<Volume>) {
        let dir = std::env::temp_dir().join(format!("paradise-buf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vol = Arc::new(Volume::create(dir.join(name)).unwrap());
        (BufferPool::new(vol.clone(), cap), vol)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let (pool, vol) = pool(4, "a.vol");
        let pid = vol.alloc_extent().unwrap();
        {
            let g = pool.get_new(pid).unwrap();
            g.write().insert(b"x").unwrap();
        }
        let _ = pool.get(pid).unwrap();
        let _ = pool.get(pid).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, vol) = pool(2, "b.vol");
        let e = vol.alloc_extent().unwrap();
        // Dirty page e, then touch enough other pages to evict it.
        {
            let g = pool.get_new(e).unwrap();
            g.write().insert(b"dirty data").unwrap();
        }
        for i in 1..4 {
            let _ = pool.get_new(e + i).unwrap();
        }
        assert!(pool.stats().evictions >= 1);
        // Reading it back must see the data (written back on eviction).
        let g = pool.get(e).unwrap();
        assert_eq!(g.read().get(0).unwrap(), b"dirty data");
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (pool, vol) = pool(2, "c.vol");
        let e = vol.alloc_extent().unwrap();
        let g0 = pool.get_new(e).unwrap();
        let g1 = pool.get_new(e + 1).unwrap();
        // Pool full of pinned pages: next fetch must fail, not evict.
        assert!(matches!(pool.get_new(e + 2), Err(StorageError::PoolExhausted)));
        drop(g0);
        drop(g1);
        assert!(pool.get_new(e + 2).is_ok());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (pool, vol) = pool(2, "d.vol");
        let e = vol.alloc_extent().unwrap();
        {
            let a = pool.get_new(e).unwrap();
            a.write().insert(b"a").unwrap();
        }
        {
            let b = pool.get_new(e + 1).unwrap();
            b.write().insert(b"b").unwrap();
        }
        // Touch a again so b is LRU.
        let _ = pool.get(e).unwrap();
        let _ = pool.get_new(e + 2).unwrap(); // evicts b
        pool.reset_stats();
        let _ = pool.get(e).unwrap();
        assert_eq!(pool.stats().hits, 1, "page a should still be cached");
        let _ = pool.get(e + 1).unwrap();
        assert_eq!(pool.stats().misses, 1, "page b should have been evicted");
    }

    #[test]
    fn flush_and_clear_cools_the_cache() {
        let (pool, vol) = pool(8, "e.vol");
        let e = vol.alloc_extent().unwrap();
        {
            let g = pool.get_new(e).unwrap();
            g.write().insert(b"cold").unwrap();
        }
        pool.flush_and_clear().unwrap();
        pool.reset_stats();
        let g = pool.get(e).unwrap();
        assert_eq!(g.read().get(0).unwrap(), b"cold");
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 0);
    }

    /// Regression (ISSUE 2 satellite): snapshots taken while a query is
    /// hammering the pool must be internally consistent and must not lose
    /// updates. With the old unlocked read-then-reset, increments landing
    /// between the load and the store vanished, so the accumulated total
    /// undercounted; `take_stats` holds the frames lock, making
    /// snapshot+reset atomic against in-flight requests.
    #[test]
    fn stats_snapshots_are_coherent_under_concurrency() {
        let (pool, vol) = pool(16, "g.vol");
        let e = vol.alloc_extent().unwrap();
        {
            let g = pool.get_new(e).unwrap();
            g.write().insert(b"hot").unwrap();
        }
        pool.reset_stats();
        let pool = Arc::new(pool);
        const THREADS: usize = 4;
        const GETS: u64 = 2000;
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let p = pool.clone();
                std::thread::spawn(move || {
                    for _ in 0..GETS {
                        let _ = p.get(e).unwrap();
                    }
                })
            })
            .collect();
        // Concurrently drain snapshots the whole time the workers run.
        let mut acc = BufferStats::default();
        while workers.iter().any(|w| !w.is_finished()) {
            acc = acc.merge(pool.take_stats());
        }
        for w in workers {
            w.join().unwrap();
        }
        acc = acc.merge(pool.take_stats());
        let total = acc.hits + acc.misses;
        assert_eq!(total, THREADS as u64 * GETS, "snapshot accumulation lost updates: {acc:?}");
    }

    #[test]
    fn frames_gauge_tracks_cache_population() {
        let (pool, vol) = pool(2, "h.vol");
        let e = vol.alloc_extent().unwrap();
        assert_eq!(pool.cached_frames(), 0);
        let _ = pool.get_new(e).unwrap();
        let _ = pool.get_new(e + 1).unwrap();
        assert_eq!(pool.cached_frames(), 2);
        // Eviction decrements.
        let _ = pool.get_new(e + 2).unwrap();
        assert_eq!(pool.cached_frames(), 2);
        // Clearing drops unpinned frames and the gauge follows.
        pool.flush_and_clear().unwrap();
        assert_eq!(pool.cached_frames(), 0);
        // The registered handle shares the atomic.
        let g = pool.frames_gauge();
        let _ = pool.get(e).unwrap();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn concurrent_readers() {
        let (pool, vol) = pool(16, "f.vol");
        let e = vol.alloc_extent().unwrap();
        {
            let g = pool.get_new(e).unwrap();
            g.write().insert(b"shared").unwrap();
        }
        let pool = Arc::new(pool);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = pool.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let g = p.get(e).unwrap();
                    assert_eq!(g.read().get(0).unwrap(), b"shared");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
