//! A page-based B+-tree on byte-string keys (SHORE provides B+-trees;
//! paper §2.2). Values are `u64` — typically a packed [`crate::Oid`] or a
//! tuple ordinal. Duplicate keys are allowed (secondary indexes need them).
//!
//! Node representation: each node occupies one slotted page. Record 0 is
//! the node header `[is_leaf u8][extra u64]` where `extra` is the next-leaf
//! link for leaves and the leftmost child for inner nodes; records 1..=n
//! are the sorted entries `[key…][value u64]` (the key length is implied by
//! the record length). Nodes are rewritten wholesale on modification —
//! simple, and the buffer pool absorbs the cost.
//!
//! Deletion is by tombstone-free entry removal without rebalancing
//! (underfull nodes persist); the benchmark workload is insert/scan heavy,
//! and SHORE-era systems commonly deferred merge as well.

use crate::buffer::BufferPool;
use crate::page::{Page, PageId, NO_PAGE, PAGE_SIZE};
use crate::volume::ExtentAllocator;
use crate::Result;
use paradise_util::sync::Mutex;
use std::sync::Arc;

/// Serialized node must stay under this budget (page minus header/slots
/// slack) before a split is forced.
const NODE_BUDGET: usize = PAGE_SIZE - 512;

/// Persistable description of a B+-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BTreeMeta {
    /// Root page.
    pub root: PageId,
    /// Extents owned by the tree.
    pub extents: Vec<PageId>,
}

struct Node {
    is_leaf: bool,
    /// Leaves: next-leaf page id ([`NO_PAGE`] at the end).
    /// Inner nodes: leftmost child page id.
    extra: u64,
    /// Sorted by key (then value). Inner nodes: (separator key, child);
    /// child covers keys `>=` its separator.
    entries: Vec<(Vec<u8>, u64)>,
}

impl Node {
    fn serialized_size(&self) -> usize {
        // header record 9 + slot 4; each entry: key + 8 + slot 4
        13 + self.entries.iter().map(|(k, _)| k.len() + 12).sum::<usize>()
    }
}

/// A B+-tree over `(Vec<u8>, u64)` pairs.
pub struct BTree {
    pool: Arc<BufferPool>,
    alloc: ExtentAllocator,
    root: Mutex<PageId>,
    /// Serialises writers; readers go through the buffer pool latches.
    write_lock: Mutex<()>,
}

impl BTree {
    /// Creates an empty tree.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let alloc = ExtentAllocator::new(pool.volume().clone());
        let root = alloc.alloc_page()?;
        let t = BTree { pool, alloc, root: Mutex::new(root), write_lock: Mutex::new(()) };
        t.write_node(root, &Node { is_leaf: true, extra: NO_PAGE, entries: Vec::new() }, true)?;
        Ok(t)
    }

    /// Reopens a tree from persisted metadata.
    pub fn from_meta(pool: Arc<BufferPool>, meta: BTreeMeta) -> Self {
        let alloc = ExtentAllocator::from_extents(pool.volume().clone(), meta.extents);
        BTree { pool, alloc, root: Mutex::new(meta.root), write_lock: Mutex::new(()) }
    }

    /// Metadata snapshot for persistence.
    pub fn meta(&self) -> BTreeMeta {
        BTreeMeta { root: *self.root.lock(), extents: self.alloc.extents() }
    }

    /// Frees all extents.
    pub fn free(&self) -> Result<()> {
        self.alloc.free_all()
    }

    fn read_node(&self, pid: PageId) -> Result<Node> {
        let g = self.pool.get(pid)?;
        let page = g.read();
        let hdr = page.get(0)?;
        let is_leaf = hdr[0] == 1;
        let extra = u64::from_le_bytes(hdr[1..9].try_into().unwrap());
        let mut entries = Vec::with_capacity(page.num_slots() as usize - 1);
        for s in 1..page.num_slots() {
            let rec = page.get(s)?;
            let (key, val) = rec.split_at(rec.len() - 8);
            entries.push((key.to_vec(), u64::from_le_bytes(val.try_into().unwrap())));
        }
        Ok(Node { is_leaf, extra, entries })
    }

    fn write_node(&self, pid: PageId, node: &Node, fresh: bool) -> Result<()> {
        let g = if fresh { self.pool.get_new(pid)? } else { self.pool.get(pid)? };
        let mut page = g.write();
        *page = Page::new();
        let mut hdr = [0u8; 9];
        hdr[0] = node.is_leaf as u8;
        hdr[1..9].copy_from_slice(&node.extra.to_le_bytes());
        page.insert(&hdr)?;
        let mut rec = Vec::new();
        for (k, v) in &node.entries {
            rec.clear();
            rec.extend_from_slice(k);
            rec.extend_from_slice(&v.to_le_bytes());
            page.insert(&rec)?;
        }
        Ok(())
    }

    /// Which child of an inner node covers `key`.
    fn child_for(node: &Node, key: &[u8]) -> u64 {
        // entries[i].0 is the smallest key in child entries[i].1
        match node.entries.partition_point(|(k, _)| k.as_slice() <= key) {
            0 => node.extra,
            i => node.entries[i - 1].1,
        }
    }

    /// Inserts a `(key, value)` pair (duplicates allowed).
    pub fn insert(&self, key: &[u8], value: u64) -> Result<()> {
        let _w = self.write_lock.lock();
        let root = *self.root.lock();
        if let Some((sep, right)) = self.insert_rec(root, key, value)? {
            // Root split: allocate a new root.
            let old_root_copy = self.read_node(root)?;
            let left_pid = self.alloc.alloc_page()?;
            self.write_node(left_pid, &old_root_copy, true)?;
            let new_root = Node { is_leaf: false, extra: left_pid, entries: vec![(sep, right)] };
            self.write_node(root, &new_root, false)?;
        }
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, new_right_pid))` when the
    /// child split.
    fn insert_rec(&self, pid: PageId, key: &[u8], value: u64) -> Result<Option<(Vec<u8>, u64)>> {
        let mut node = self.read_node(pid)?;
        if node.is_leaf {
            let at = node.entries.partition_point(|(k, v)| (k.as_slice(), *v) < (key, value));
            node.entries.insert(at, (key.to_vec(), value));
        } else {
            let child = Self::child_for(&node, key);
            if let Some((sep, right)) = self.insert_rec(child, key, value)? {
                let at = node.entries.partition_point(|(k, _)| k.as_slice() <= &sep[..]);
                node.entries.insert(at, (sep, right));
            } else {
                return Ok(None);
            }
        }
        if node.serialized_size() <= NODE_BUDGET {
            self.write_node(pid, &node, false)?;
            return Ok(None);
        }
        // Split: move the upper half to a new right sibling.
        let mid = node.entries.len() / 2;
        let right_entries = node.entries.split_off(mid);
        let right_pid = self.alloc.alloc_page()?;
        let (sep, right_node) = if node.is_leaf {
            let sep = right_entries[0].0.clone();
            let right_node = Node {
                is_leaf: true,
                extra: node.extra, // old next-leaf
                entries: right_entries,
            };
            node.extra = right_pid;
            (sep, right_node)
        } else {
            // The first right entry's key becomes the separator; its child
            // becomes the right node's leftmost child.
            let mut it = right_entries.into_iter();
            let (sep, leftmost) = it.next().expect("non-empty split");
            let right_node = Node { is_leaf: false, extra: leftmost, entries: it.collect() };
            (sep, right_node)
        };
        self.write_node(right_pid, &right_node, true)?;
        self.write_node(pid, &node, false)?;
        Ok(Some((sep, right_pid)))
    }

    fn find_leaf(&self, key: &[u8]) -> Result<PageId> {
        let mut pid = *self.root.lock();
        loop {
            let node = self.read_node(pid)?;
            if node.is_leaf {
                return Ok(pid);
            }
            pid = Self::child_for(&node, key);
        }
    }

    /// First value stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Result<Option<u64>> {
        Ok(self.get_all(key)?.into_iter().next())
    }

    /// All values stored under `key` (duplicates), in value order.
    pub fn get_all(&self, key: &[u8]) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        let mut pid = self.find_leaf(key)?;
        loop {
            let node = self.read_node(pid)?;
            let start = node.entries.partition_point(|(k, _)| k.as_slice() < key);
            for (k, v) in &node.entries[start..] {
                if k.as_slice() != key {
                    return Ok(out);
                }
                out.push(*v);
            }
            if node.extra == NO_PAGE {
                return Ok(out);
            }
            pid = node.extra; // duplicates may continue on the next leaf
        }
    }

    /// All `(key, value)` pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, u64)>> {
        let mut out = Vec::new();
        let mut pid = self.find_leaf(lo)?;
        loop {
            let node = self.read_node(pid)?;
            for (k, v) in &node.entries {
                if k.as_slice() < lo {
                    continue;
                }
                if k.as_slice() > hi {
                    return Ok(out);
                }
                out.push((k.clone(), *v));
            }
            if node.extra == NO_PAGE {
                return Ok(out);
            }
            pid = node.extra;
        }
    }

    /// Every `(key, value)` pair in key order (full index scan).
    pub fn scan_all(&self) -> Result<Vec<(Vec<u8>, u64)>> {
        // Walk down the leftmost spine, then the leaf chain.
        let mut pid = *self.root.lock();
        loop {
            let node = self.read_node(pid)?;
            if node.is_leaf {
                break;
            }
            pid = node.extra;
        }
        let mut out = Vec::new();
        loop {
            let node = self.read_node(pid)?;
            out.extend(node.entries.iter().cloned());
            if node.extra == NO_PAGE {
                return Ok(out);
            }
            pid = node.extra;
        }
    }

    /// Removes one `(key, value)` pair. Returns whether a pair was removed.
    /// No rebalancing is performed.
    pub fn delete(&self, key: &[u8], value: u64) -> Result<bool> {
        let _w = self.write_lock.lock();
        let pid = self.find_leaf(key)?;
        let mut p = pid;
        loop {
            let mut node = self.read_node(p)?;
            if let Some(at) =
                node.entries.iter().position(|(k, v)| k.as_slice() == key && *v == value)
            {
                node.entries.remove(at);
                self.write_node(p, &node, false)?;
                return Ok(true);
            }
            if node.entries.last().is_some_and(|(k, _)| k.as_slice() > key) || node.extra == NO_PAGE
            {
                return Ok(false);
            }
            p = node.extra;
        }
    }

    /// Bulk-loads `pairs` (must be sorted by key) into an empty tree,
    /// packing leaves tightly — the fast path the benchmark's Q1 index
    /// build uses (cf. \[DeWi94\] bulk loading).
    pub fn bulk_load(&self, pairs: &[(Vec<u8>, u64)]) -> Result<()> {
        let _w = self.write_lock.lock();
        debug_assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0), "input not sorted");
        if pairs.is_empty() {
            return Ok(());
        }
        // Build leaf level.
        let mut level: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, pid)
        let mut cur = Node { is_leaf: true, extra: NO_PAGE, entries: Vec::new() };
        let mut cur_pid = self.alloc.alloc_page()?;
        let mut pending: Vec<(PageId, Node)> = Vec::new();
        for (k, v) in pairs {
            if cur.serialized_size() + k.len() + 12 > NODE_BUDGET && !cur.entries.is_empty() {
                let next_pid = self.alloc.alloc_page()?;
                cur.extra = next_pid;
                level.push((cur.entries[0].0.clone(), cur_pid));
                pending.push((
                    cur_pid,
                    std::mem::replace(
                        &mut cur,
                        Node { is_leaf: true, extra: NO_PAGE, entries: Vec::new() },
                    ),
                ));
                cur_pid = next_pid;
            }
            cur.entries.push((k.clone(), *v));
        }
        level.push((cur.entries[0].0.clone(), cur_pid));
        pending.push((cur_pid, cur));
        for (pid, node) in &pending {
            self.write_node(*pid, node, true)?;
        }
        // Build inner levels bottom-up.
        while level.len() > 1 {
            let mut next_level: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut i = 0;
            while i < level.len() {
                let pid = self.alloc.alloc_page()?;
                let first_key = level[i].0.clone();
                let mut node = Node { is_leaf: false, extra: level[i].1, entries: Vec::new() };
                i += 1;
                while i < level.len()
                    && node.serialized_size() + level[i].0.len() + 12 <= NODE_BUDGET
                {
                    node.entries.push((level[i].0.clone(), level[i].1));
                    i += 1;
                }
                self.write_node(pid, &node, true)?;
                next_level.push((first_key, pid));
            }
            level = next_level;
        }
        // Install the built tree under the existing root page id.
        let built_root = self.read_node(level[0].1)?;
        let root = *self.root.lock();
        self.write_node(root, &built_root, false)?;
        Ok(())
    }

    /// Number of entries (full scan; used by tests and statistics).
    pub fn len(&self) -> Result<usize> {
        Ok(self.scan_all()?.len())
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::Volume;

    fn tree(name: &str) -> BTree {
        let dir = std::env::temp_dir().join(format!("paradise-btree-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vol = Arc::new(Volume::create(dir.join(name)).unwrap());
        let pool = Arc::new(BufferPool::new(vol, 256));
        BTree::create(pool).unwrap()
    }

    fn key(i: u32) -> Vec<u8> {
        // big-endian so byte order == numeric order
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn empty_tree() {
        let t = tree("a.vol");
        assert_eq!(t.get(b"x").unwrap(), None);
        assert!(t.is_empty().unwrap());
        assert!(t.range(b"a", b"z").unwrap().is_empty());
    }

    #[test]
    fn insert_and_get() {
        let t = tree("b.vol");
        t.insert(b"wisconsin", 1).unwrap();
        t.insert(b"madison", 2).unwrap();
        assert_eq!(t.get(b"wisconsin").unwrap(), Some(1));
        assert_eq!(t.get(b"madison").unwrap(), Some(2));
        assert_eq!(t.get(b"phoenix").unwrap(), None);
    }

    #[test]
    fn many_inserts_force_splits() {
        let t = tree("c.vol");
        let n = 20_000u32;
        for i in 0..n {
            // Insert in a scrambled order to exercise interior splits.
            // The odd multiplier is coprime to n, so (in u64 arithmetic)
            // this is a bijection on 0..n.
            let k = ((u64::from(i) * 2_654_435_761) % u64::from(n)) as u32;
            t.insert(&key(k), u64::from(k)).unwrap();
        }
        for probe in [0u32, 1, 17, 999, n - 1] {
            assert_eq!(t.get(&key(probe)).unwrap(), Some(u64::from(probe)), "probe {probe}");
        }
        // Full scan is sorted and complete (each key inserted exactly once).
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn duplicates_supported() {
        let t = tree("d.vol");
        for v in 0..100 {
            t.insert(b"dup", v).unwrap();
        }
        t.insert(b"other", 1).unwrap();
        let all = t.get_all(b"dup").unwrap();
        assert_eq!(all.len(), 100);
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan() {
        let t = tree("e.vol");
        for i in 0..1000u32 {
            t.insert(&key(i), u64::from(i) * 10).unwrap();
        }
        let r = t.range(&key(100), &key(110)).unwrap();
        assert_eq!(r.len(), 11);
        assert_eq!(r[0], (key(100), 1000));
        assert_eq!(r[10], (key(110), 1100));
        // empty range
        assert!(t.range(&key(2000), &key(3000)).unwrap().is_empty());
    }

    #[test]
    fn delete_removes_one_pair() {
        let t = tree("f.vol");
        t.insert(b"k", 1).unwrap();
        t.insert(b"k", 2).unwrap();
        assert!(t.delete(b"k", 1).unwrap());
        assert_eq!(t.get_all(b"k").unwrap(), vec![2]);
        assert!(!t.delete(b"k", 99).unwrap());
        assert!(t.delete(b"k", 2).unwrap());
        assert_eq!(t.get(b"k").unwrap(), None);
    }

    #[test]
    fn variable_length_keys() {
        let t = tree("g.vol");
        let keys: Vec<Vec<u8>> = (0..2000)
            .map(|i| format!("feature-{:0width$}", i, width = (i % 40) + 5).into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k).unwrap(), Some(i as u64));
        }
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let t = tree("h.vol");
        let pairs: Vec<(Vec<u8>, u64)> = (0..50_000u32).map(|i| (key(i), u64::from(i))).collect();
        t.bulk_load(&pairs).unwrap();
        assert_eq!(t.len().unwrap(), 50_000);
        assert_eq!(t.get(&key(0)).unwrap(), Some(0));
        assert_eq!(t.get(&key(49_999)).unwrap(), Some(49_999));
        assert_eq!(t.get(&key(31_337)).unwrap(), Some(31_337));
        let r = t.range(&key(1000), &key(1004)).unwrap();
        assert_eq!(r.len(), 5);
        // inserts still work after a bulk load
        t.insert(&key(50_000), 50_000).unwrap();
        assert_eq!(t.get(&key(50_000)).unwrap(), Some(50_000));
    }

    #[test]
    fn sequential_inserts() {
        let t = tree("i.vol");
        for i in 0..5000u32 {
            t.insert(&key(i), u64::from(i)).unwrap();
        }
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), 5000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
