//! File-backed storage volumes with extent allocation.
//!
//! "Allocation of space inside a storage volume is performed in terms of
//! fixed-size extents" (paper §2.2). An extent here is 8 contiguous pages
//! (64 KB). Structures (heap files, indexes, large objects) allocate whole
//! extents and return them wholesale when dropped — which is exactly how
//! Paradise reclaims temporary-table and operator-scoped large-attribute
//! files (§2.5.2).

use crate::page::{Page, PageId, NO_PAGE, PAGE_SIZE};
use crate::{Result, StorageError};
use paradise_util::sync::Mutex;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pages per extent.
pub const EXTENT_PAGES: u64 = 8;

const MAGIC: u64 = 0x5041_5241_4449_5345; // "PARADISE"

/// A file-backed volume of 8 KB pages.
///
/// Page 0 is the volume header: `[magic][num_pages][free_extent_head]`.
/// Freed extents form a linked list threaded through the first 8 bytes of
/// each extent's first page.
pub struct Volume {
    file: File,
    /// Total pages in the volume (including header).
    num_pages: AtomicU64,
    /// Guards the free-list manipulation and file growth.
    alloc_lock: Mutex<()>,
    /// Head of the free extent list.
    free_head: AtomicU64,
    /// I/O counters (physical page reads/writes), for the experiments.
    reads: AtomicU64,
    writes: AtomicU64,
}

impl Volume {
    /// Creates a new volume at `path` (truncating any existing file). The
    /// parent directory is fsynced so the new file's directory entry — and
    /// with it the volume — survives a crash right after creation.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref();
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let vol = Volume {
            file,
            num_pages: AtomicU64::new(1),
            alloc_lock: Mutex::new(()),
            free_head: AtomicU64::new(NO_PAGE),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        };
        vol.write_header()?;
        vol.file.sync_all()?;
        crate::fsync_parent_dir(path)?;
        Ok(vol)
    }

    /// Opens an existing volume.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut hdr = [0u8; PAGE_SIZE];
        file.read_exact_at(&mut hdr, 0)?;
        let magic = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
        if magic != MAGIC {
            return Err(StorageError::Corrupt("bad volume magic"));
        }
        let num_pages = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
        let free_head = u64::from_le_bytes(hdr[16..24].try_into().unwrap());
        Ok(Volume {
            file,
            num_pages: AtomicU64::new(num_pages),
            alloc_lock: Mutex::new(()),
            free_head: AtomicU64::new(free_head),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    fn write_header(&self) -> Result<()> {
        let mut hdr = [0u8; PAGE_SIZE];
        hdr[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        hdr[8..16].copy_from_slice(&self.num_pages.load(Ordering::SeqCst).to_le_bytes());
        hdr[16..24].copy_from_slice(&self.free_head.load(Ordering::SeqCst).to_le_bytes());
        self.file.write_all_at(&hdr, 0)?;
        Ok(())
    }

    /// Total pages, including the header page.
    pub fn num_pages(&self) -> u64 {
        self.num_pages.load(Ordering::SeqCst)
    }

    /// Physical (read, write) page counts since creation/open.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads.load(Ordering::Relaxed), self.writes.load(Ordering::Relaxed))
    }

    /// Reads page `pid` from disk.
    pub fn read_page(&self, pid: PageId) -> Result<Page> {
        if pid == 0 || pid >= self.num_pages() {
            return Err(StorageError::BadPageId(pid));
        }
        let mut buf = [0u8; PAGE_SIZE];
        self.file.read_exact_at(&mut buf, pid * PAGE_SIZE as u64)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(Page::from_bytes(buf))
    }

    /// Writes page `pid` to disk.
    pub fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        if pid == 0 || pid >= self.num_pages() {
            return Err(StorageError::BadPageId(pid));
        }
        if !crate::failpoint("volume.write_page")? {
            return Ok(());
        }
        self.file.write_all_at(page.bytes(), pid * PAGE_SIZE as u64)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes raw bytes to page `pid` (used by WAL replay).
    pub fn write_page_bytes(&self, pid: PageId, bytes: &[u8; PAGE_SIZE]) -> Result<()> {
        if pid == 0 || pid >= self.num_pages() {
            return Err(StorageError::BadPageId(pid));
        }
        if !crate::failpoint("volume.write_page_bytes")? {
            return Ok(());
        }
        self.file.write_all_at(bytes, pid * PAGE_SIZE as u64)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Allocates an extent of [`EXTENT_PAGES`] contiguous pages and returns
    /// the first page id. Reuses a freed extent when one exists.
    pub fn alloc_extent(&self) -> Result<PageId> {
        let _g = self.alloc_lock.lock();
        let head = self.free_head.load(Ordering::SeqCst);
        if head != NO_PAGE {
            // Pop the free list: the next pointer lives in the first 8
            // bytes of the extent's first page.
            let page = self.read_page(head)?;
            let next = u64::from_le_bytes(page.bytes()[0..8].try_into().unwrap());
            self.free_head.store(next, Ordering::SeqCst);
            self.write_header()?;
            // Return the pages zeroed.
            let blank = Page::new();
            for i in 0..EXTENT_PAGES {
                self.write_page(head + i, &blank)?;
            }
            return Ok(head);
        }
        // Grow the file by one extent.
        let first = self.num_pages.fetch_add(EXTENT_PAGES, Ordering::SeqCst);
        let new_len = (first + EXTENT_PAGES) * PAGE_SIZE as u64;
        self.file.set_len(new_len)?;
        self.write_header()?;
        Ok(first)
    }

    /// Returns an extent (identified by its first page) to the free list.
    pub fn free_extent(&self, first: PageId) -> Result<()> {
        let _g = self.alloc_lock.lock();
        let mut page = Page::new();
        let head = self.free_head.load(Ordering::SeqCst);
        page.bytes_mut()[0..8].copy_from_slice(&head.to_le_bytes());
        self.write_page(first, &page)?;
        self.free_head.store(first, Ordering::SeqCst);
        self.write_header()?;
        Ok(())
    }

    /// Forces all file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        if !crate::failpoint("volume.sync")? {
            return Ok(());
        }
        self.file.sync_data()?;
        Ok(())
    }
}

/// Doles out single pages from extents and remembers every extent it
/// allocated so the whole structure can be freed at once.
pub struct ExtentAllocator {
    vol: std::sync::Arc<Volume>,
    state: Mutex<AllocState>,
}

struct AllocState {
    extents: Vec<PageId>,
    /// Next unused page within the last extent (0..EXTENT_PAGES).
    used_in_last: u64,
}

impl ExtentAllocator {
    /// Creates an allocator on `vol` owning no extents yet.
    pub fn new(vol: std::sync::Arc<Volume>) -> Self {
        ExtentAllocator {
            vol,
            state: Mutex::new(AllocState { extents: Vec::new(), used_in_last: EXTENT_PAGES }),
        }
    }

    /// Rebuilds an allocator from a persisted extent list (for reopening
    /// files). `used_in_last` is conservatively set to "full", so reopened
    /// files allocate a fresh extent on the next insert.
    pub fn from_extents(vol: std::sync::Arc<Volume>, extents: Vec<PageId>) -> Self {
        ExtentAllocator {
            vol,
            state: Mutex::new(AllocState { extents, used_in_last: EXTENT_PAGES }),
        }
    }

    /// Allocates one page.
    pub fn alloc_page(&self) -> Result<PageId> {
        let mut st = self.state.lock();
        if st.used_in_last >= EXTENT_PAGES {
            let first = self.vol.alloc_extent()?;
            st.extents.push(first);
            st.used_in_last = 0;
        }
        let first = *st.extents.last().expect("just pushed");
        let pid = first + st.used_in_last;
        st.used_in_last += 1;
        Ok(pid)
    }

    /// The extents currently owned (for persistence).
    pub fn extents(&self) -> Vec<PageId> {
        self.state.lock().extents.clone()
    }

    /// The underlying volume.
    pub fn volume(&self) -> &std::sync::Arc<Volume> {
        &self.vol
    }

    /// Frees every owned extent back to the volume.
    pub fn free_all(&self) -> Result<()> {
        let mut st = self.state.lock();
        for &e in &st.extents {
            self.vol.free_extent(e)?;
        }
        st.extents.clear();
        st.used_in_last = EXTENT_PAGES;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "paradise-vol-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn create_write_read_roundtrip() {
        let path = tmpdir().join("v1.vol");
        let vol = Volume::create(&path).unwrap();
        let first = vol.alloc_extent().unwrap();
        let mut p = Page::new();
        p.insert(b"page data").unwrap();
        vol.write_page(first, &p).unwrap();
        let q = vol.read_page(first).unwrap();
        assert_eq!(q.get(0).unwrap(), b"page data");
        let (r, w) = vol.io_counts();
        assert!(r >= 1 && w >= 1);
    }

    #[test]
    fn header_page_protected() {
        let path = tmpdir().join("v2.vol");
        let vol = Volume::create(&path).unwrap();
        assert!(matches!(vol.read_page(0), Err(StorageError::BadPageId(0))));
        assert!(matches!(vol.write_page(0, &Page::new()), Err(StorageError::BadPageId(0))));
        assert!(matches!(vol.read_page(999), Err(StorageError::BadPageId(999))));
    }

    #[test]
    fn extents_are_contiguous_and_aligned() {
        let path = tmpdir().join("v3.vol");
        let vol = Volume::create(&path).unwrap();
        let a = vol.alloc_extent().unwrap();
        let b = vol.alloc_extent().unwrap();
        assert_eq!(b, a + EXTENT_PAGES);
        assert_eq!(vol.num_pages(), 1 + 2 * EXTENT_PAGES);
    }

    #[test]
    fn freed_extent_is_reused() {
        let path = tmpdir().join("v4.vol");
        let vol = Volume::create(&path).unwrap();
        let a = vol.alloc_extent().unwrap();
        let _b = vol.alloc_extent().unwrap();
        vol.free_extent(a).unwrap();
        let c = vol.alloc_extent().unwrap();
        assert_eq!(c, a, "freed extent should be recycled");
        // Recycled pages come back zeroed.
        let p = vol.read_page(c).unwrap();
        assert_eq!(p.num_slots(), 0);
    }

    #[test]
    fn reopen_preserves_allocation_state() {
        let path = tmpdir().join("v5.vol");
        let (a, freed) = {
            let vol = Volume::create(&path).unwrap();
            let a = vol.alloc_extent().unwrap();
            let b = vol.alloc_extent().unwrap();
            vol.free_extent(b).unwrap();
            let mut p = Page::new();
            p.insert(b"survives").unwrap();
            vol.write_page(a, &p).unwrap();
            vol.sync().unwrap();
            (a, b)
        };
        let vol = Volume::open(&path).unwrap();
        assert_eq!(vol.read_page(a).unwrap().get(0).unwrap(), b"survives");
        // The freed extent is still on the free list.
        assert_eq!(vol.alloc_extent().unwrap(), freed);
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmpdir().join("v6.vol");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(matches!(Volume::open(&path), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn extent_allocator_tracks_and_frees() {
        let path = tmpdir().join("v7.vol");
        let vol = Arc::new(Volume::create(&path).unwrap());
        let alloc = ExtentAllocator::new(vol.clone());
        let pages: Vec<_> = (0..20).map(|_| alloc.alloc_page().unwrap()).collect();
        // 20 pages => 3 extents
        assert_eq!(alloc.extents().len(), 3);
        // pages within an extent are consecutive
        assert_eq!(pages[1], pages[0] + 1);
        alloc.free_all().unwrap();
        assert!(alloc.extents().is_empty());
        // the freed extents are reusable
        let again = vol.alloc_extent().unwrap();
        assert!(pages.contains(&again));
    }
}
