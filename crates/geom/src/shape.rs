//! A dynamic union over all spatial ADTs.

use crate::circle::Circle;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::polyline::Polyline;
use crate::rect::Rect;
use crate::swiss_cheese::SwissCheese;

/// Any Paradise spatial value. Tuples carry spatial attributes as `Shape`s;
/// operators dispatch on the concrete kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// A point.
    Point(Point),
    /// An open polyline.
    Polyline(Polyline),
    /// A simple polygon.
    Polygon(Polygon),
    /// A polygon with holes.
    SwissCheese(SwissCheese),
    /// A circle.
    Circle(Circle),
    /// An axis-aligned rectangle.
    Rect(Rect),
}

impl Shape {
    /// Bounding box of the shape. Declustering, R*-tree insertion and the
    /// PBSM filter phase all operate on this box.
    pub fn bbox(&self) -> Rect {
        match self {
            Shape::Point(p) => p.bbox(),
            Shape::Polyline(l) => l.bbox(),
            Shape::Polygon(p) => p.bbox(),
            Shape::SwissCheese(s) => s.bbox(),
            Shape::Circle(c) => c.bbox(),
            Shape::Rect(r) => *r,
        }
    }

    /// Number of defining points (used by the scaleup bookkeeping and as a
    /// proxy for CPU cost of refinement, which the paper's Q11 discussion
    /// leans on).
    pub fn num_points(&self) -> usize {
        match self {
            Shape::Point(_) => 1,
            Shape::Polyline(l) => l.num_points(),
            Shape::Polygon(p) => p.num_points(),
            Shape::SwissCheese(s) => s.num_points(),
            Shape::Circle(_) => 1,
            Shape::Rect(_) => 2,
        }
    }

    /// Exact `overlaps` predicate between any two shapes (closed-region
    /// semantics). This is the refinement step run after the bounding-box
    /// filter; callers should have already checked `bbox` intersection.
    ///
    /// ```
    /// use paradise_geom::{Point, Polyline, Shape};
    ///
    /// let line = |pts: &[(f64, f64)]| {
    ///     Shape::Polyline(
    ///         Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap(),
    ///     )
    /// };
    /// let river = line(&[(-10.0, -10.0), (10.0, 10.0)]);
    /// let road = line(&[(-10.0, 10.0), (10.0, -10.0)]); // crosses at the origin
    /// let canal = line(&[(20.0, 0.0), (30.0, 0.0)]); // far away
    /// assert!(river.overlaps(&road));
    /// assert!(!river.overlaps(&canal));
    /// ```
    pub fn overlaps(&self, other: &Shape) -> bool {
        use Shape::*;
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        match (self, other) {
            (Point(a), Point(b)) => a.distance_sq(b) < crate::EPSILON * crate::EPSILON,
            (Point(p), Polyline(l)) | (Polyline(l), Point(p)) => {
                l.distance_to_point(p) < crate::EPSILON
            }
            (Point(p), Polygon(g)) | (Polygon(g), Point(p)) => g.contains_point(p),
            (Point(p), SwissCheese(s)) | (SwissCheese(s), Point(p)) => s.contains_point(p),
            (Point(p), Circle(c)) | (Circle(c), Point(p)) => c.contains_point(p),
            (Point(p), Rect(r)) | (Rect(r), Point(p)) => r.contains_point(p),

            (Polyline(a), Polyline(b)) => a.crosses(b),
            (Polyline(l), Polygon(g)) | (Polygon(g), Polyline(l)) => g.overlaps_polyline(l),
            (Polyline(l), SwissCheese(s)) | (SwissCheese(s), Polyline(l)) => {
                s.shell().overlaps_polyline(l)
            }
            (Polyline(l), Rect(r)) | (Rect(r), Polyline(l)) => l.intersects_rect(r),
            (Polyline(l), Circle(c)) | (Circle(c), Polyline(l)) => {
                l.distance_to_point(&c.center) <= c.radius
            }

            (Polygon(a), Polygon(b)) => a.overlaps(b),
            (Polygon(g), SwissCheese(s)) | (SwissCheese(s), Polygon(g)) => s.overlaps(g),
            (Polygon(g), Rect(r)) | (Rect(r), Polygon(g)) => g.overlaps_rect(r),
            (Polygon(g), Circle(c)) | (Circle(c), Polygon(g)) => {
                g.distance_to_point(&c.center) <= c.radius
            }

            (SwissCheese(a), SwissCheese(b)) => a.overlaps(b.shell()),
            (SwissCheese(s), Rect(r)) | (Rect(r), SwissCheese(s)) => {
                s.overlaps(&crate::polygon::Polygon::from_rect(r))
            }
            (SwissCheese(s), Circle(c)) | (Circle(c), SwissCheese(s)) => {
                s.shell().distance_to_point(&c.center) <= c.radius
            }

            (Circle(a), Circle(b)) => a.intersects_circle(b),
            (Circle(c), Rect(r)) | (Rect(r), Circle(c)) => c.intersects_rect(r),

            (Rect(a), Rect(b)) => a.intersects(b),
        }
    }

    /// Distance from the shape to a point (0 if the point is on/in the
    /// shape). This is the kernel of the `closest` spatial aggregate.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        match self {
            Shape::Point(q) => q.distance(p),
            Shape::Polyline(l) => l.distance_to_point(p),
            Shape::Polygon(g) => g.distance_to_point(p),
            Shape::SwissCheese(s) => {
                if s.contains_point(p) {
                    0.0
                } else if s.shell().contains_point(p) {
                    // inside a hole: distance to the hole boundary
                    s.holes().iter().map(|h| h.boundary_distance(p)).fold(f64::INFINITY, f64::min)
                } else {
                    s.shell().distance_to_point(p)
                }
            }
            Shape::Circle(c) => (c.center.distance(p) - c.radius).max(0.0),
            Shape::Rect(r) => r.distance_to_point(p),
        }
    }

    /// Convenience accessor for point shapes.
    pub fn as_point(&self) -> Option<Point> {
        match self {
            Shape::Point(p) => Some(*p),
            _ => None,
        }
    }

    /// Short lowercase kind name for catalogs and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Shape::Point(_) => "point",
            Shape::Polyline(_) => "polyline",
            Shape::Polygon(_) => "polygon",
            Shape::SwissCheese(_) => "swiss_cheese",
            Shape::Circle(_) => "circle",
            Shape::Rect(_) => "rect",
        }
    }
}

impl From<Point> for Shape {
    fn from(p: Point) -> Self {
        Shape::Point(p)
    }
}
impl From<Polyline> for Shape {
    fn from(l: Polyline) -> Self {
        Shape::Polyline(l)
    }
}
impl From<Polygon> for Shape {
    fn from(p: Polygon) -> Self {
        Shape::Polygon(p)
    }
}
impl From<SwissCheese> for Shape {
    fn from(s: SwissCheese) -> Self {
        Shape::SwissCheese(s)
    }
}
impl From<Circle> for Shape {
    fn from(c: Circle) -> Self {
        Shape::Circle(c)
    }
}
impl From<Rect> for Shape {
    fn from(r: Rect) -> Self {
        Shape::Rect(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::from_rect(&Rect::from_corners(Point::new(x0, y0), Point::new(x1, y1)).unwrap())
    }

    #[test]
    fn overlaps_is_symmetric_across_kinds() {
        let cases: Vec<(Shape, Shape, bool)> = vec![
            (Shape::Point(Point::new(0.5, 0.5)), Shape::Polygon(sq(0.0, 0.0, 1.0, 1.0)), true),
            (
                Shape::Polyline(
                    Polyline::new(vec![Point::new(-1.0, 0.5), Point::new(2.0, 0.5)]).unwrap(),
                ),
                Shape::Polygon(sq(0.0, 0.0, 1.0, 1.0)),
                true,
            ),
            (
                Shape::Circle(Circle::new(Point::new(3.0, 0.5), 1.0).unwrap()),
                Shape::Polygon(sq(0.0, 0.0, 1.0, 1.0)),
                false,
            ),
            (
                Shape::Rect(
                    Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap(),
                ),
                Shape::Polygon(sq(0.5, 0.5, 2.0, 2.0)),
                true,
            ),
        ];
        for (a, b, want) in cases {
            assert_eq!(a.overlaps(&b), want, "{a:?} vs {b:?}");
            assert_eq!(b.overlaps(&a), want, "symmetry {a:?} vs {b:?}");
        }
    }

    #[test]
    fn circle_polygon_uses_true_distance_not_bbox() {
        // Circle near the corner of a square: bboxes intersect but the
        // true region distance exceeds the radius.
        let g = sq(0.0, 0.0, 1.0, 1.0);
        let c = Circle::new(Point::new(1.7, 1.7), 0.9).unwrap();
        assert!(c.bbox().intersects(&g.bbox()));
        assert!(!Shape::Circle(c).overlaps(&Shape::Polygon(g)));
    }

    #[test]
    fn distance_to_point_kinds() {
        assert_eq!(
            Shape::Point(Point::new(3.0, 4.0)).distance_to_point(&Point::new(0.0, 0.0)),
            5.0
        );
        assert_eq!(
            Shape::Circle(Circle::new(Point::new(0.0, 0.0), 1.0).unwrap())
                .distance_to_point(&Point::new(3.0, 0.0)),
            2.0
        );
        assert_eq!(
            Shape::Polygon(sq(0.0, 0.0, 1.0, 1.0)).distance_to_point(&Point::new(0.5, 0.5)),
            0.0
        );
    }

    #[test]
    fn swiss_cheese_hole_distance() {
        let shell = sq(0.0, 0.0, 10.0, 10.0);
        let hole = sq(4.0, 4.0, 6.0, 6.0);
        let s = SwissCheese::new(shell, vec![hole]).unwrap();
        let d = Shape::SwissCheese(s).distance_to_point(&Point::new(5.0, 5.0));
        assert_eq!(d, 1.0); // center of the 2x2 hole
    }

    #[test]
    fn kind_names() {
        assert_eq!(Shape::Point(Point::new(0.0, 0.0)).kind(), "point");
        assert_eq!(Shape::Polygon(sq(0.0, 0.0, 1.0, 1.0)).kind(), "polygon");
    }
}
