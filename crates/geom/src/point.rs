//! The `point` spatial ADT.

use crate::rect::Rect;

/// A point in the 2-D plane.
///
/// Paradise's `populatedPlaces` table stores the location of every populated
/// place as a `Point`; the benchmark's Q8 builds a search box around a city
/// with [`Point::make_box`] and Q11/Q12 evaluate the `closest` spatial
/// aggregate relative to points.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate (longitude in the benchmark's geo-registration).
    pub x: f64,
    /// Y coordinate (latitude in the benchmark's geo-registration).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the `sqrt` on hot comparison
    /// paths such as R-tree nearest-neighbour pruning).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The square of side `len` centred on this point.
    ///
    /// This is the `location.makeBox(LENGTH)` method used by benchmark
    /// query 8 ("polygons nearby any city named Louisville").
    pub fn make_box(&self, len: f64) -> Rect {
        let h = len.abs() / 2.0;
        Rect::new(Point::new(self.x - h, self.y - h), Point::new(self.x + h, self.y + h))
            .expect("centered box is never inverted")
    }

    /// Component-wise addition.
    #[inline]
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Tight bounding box of the point (a degenerate rectangle).
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::new(*self, *self).expect("degenerate rect is valid")
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(7.25, -3.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn make_box_is_centered_square() {
        let p = Point::new(10.0, -4.0);
        let r = p.make_box(6.0);
        assert_eq!(r.lo, Point::new(7.0, -7.0));
        assert_eq!(r.hi, Point::new(13.0, -1.0));
        assert_eq!(r.width(), r.height());
        assert_eq!(r.center(), p);
    }

    #[test]
    fn make_box_negative_len_treated_as_abs() {
        let p = Point::new(0.0, 0.0);
        assert_eq!(p.make_box(-2.0), p.make_box(2.0));
    }

    #[test]
    fn bbox_is_degenerate() {
        let p = Point::new(1.0, 2.0);
        let b = p.bbox();
        assert_eq!(b.lo, p);
        assert_eq!(b.hi, p);
        assert_eq!(b.area(), 0.0);
    }
}
