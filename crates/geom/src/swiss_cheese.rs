//! The `swiss-cheese polygon` spatial ADT: a polygon with holes.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;
use crate::{GeomError, Result};

/// A polygon with zero or more holes ("swiss-cheese polygon", paper §2.1).
///
/// Land-cover features such as a lake with islands are naturally
/// swiss-cheese polygons: the shell is the lake boundary, the holes are the
/// islands. A point is *inside* the feature when it is inside the shell and
/// outside every hole.
#[derive(Debug, Clone, PartialEq)]
pub struct SwissCheese {
    shell: Polygon,
    holes: Vec<Polygon>,
}

impl SwissCheese {
    /// Creates a swiss-cheese polygon. Every hole's bounding box must lie
    /// inside the shell's bounding box and the hole's first vertex inside
    /// the shell (a cheap, practical validity check; full ring-nesting
    /// verification is O(n²) and unnecessary for the benchmark data).
    pub fn new(shell: Polygon, holes: Vec<Polygon>) -> Result<Self> {
        for h in &holes {
            if !shell.bbox().contains_rect(&h.bbox()) || !shell.contains_point(&h.ring()[0]) {
                return Err(GeomError::HoleOutsideShell);
            }
        }
        Ok(SwissCheese { shell, holes })
    }

    /// A swiss-cheese polygon with no holes.
    pub fn solid(shell: Polygon) -> Self {
        SwissCheese { shell, holes: Vec::new() }
    }

    /// The outer shell.
    #[inline]
    pub fn shell(&self) -> &Polygon {
        &self.shell
    }

    /// The holes.
    #[inline]
    pub fn holes(&self) -> &[Polygon] {
        &self.holes
    }

    /// Bounding box (the shell's).
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.shell.bbox()
    }

    /// Area of shell minus total hole area.
    pub fn area(&self) -> f64 {
        let holes: f64 = self.holes.iter().map(|h| h.area()).sum();
        (self.shell.area() - holes).max(0.0)
    }

    /// Inside the shell and outside every hole. Hole boundaries count as
    /// inside the feature (closed-region semantics).
    pub fn contains_point(&self, p: &Point) -> bool {
        if !self.shell.contains_point(p) {
            return false;
        }
        !self.holes.iter().any(|h| h.contains_point(p) && h.boundary_distance(p) > crate::EPSILON)
    }

    /// Overlap with a plain polygon: the regions share at least one point.
    ///
    /// The shell overlap test is necessary; if the other polygon lies
    /// entirely within one hole it does *not* overlap.
    pub fn overlaps(&self, other: &Polygon) -> bool {
        if !self.shell.overlaps(other) {
            return false;
        }
        // If other's boundary crosses the shell or any hole boundary the
        // regions definitely share points.
        for h in &self.holes {
            // entirely inside a hole, with no boundary crossing => disjoint
            if hole_swallows(h, other) {
                return false;
            }
        }
        true
    }

    /// Total number of vertices (shell + holes) — a proxy for storage size.
    pub fn num_points(&self) -> usize {
        self.shell.num_points() + self.holes.iter().map(|h| h.num_points()).sum::<usize>()
    }
}

/// True when `poly` lies strictly inside `hole` with no boundary contact.
fn hole_swallows(hole: &Polygon, poly: &Polygon) -> bool {
    if !hole.bbox().contains_rect(&poly.bbox()) {
        return false;
    }
    // any edge crossing means contact with the hole boundary
    for a in poly.edges() {
        for b in hole.edges() {
            if crate::algorithms::segment::segments_intersect(&a, &b) {
                return false;
            }
        }
    }
    poly.ring().iter().all(|p| hole.contains_point(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(pts: &[(f64, f64)]) -> Polygon {
        Polygon::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn donut() -> SwissCheese {
        let shell = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let hole = poly(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]);
        SwissCheese::new(shell, vec![hole]).unwrap()
    }

    #[test]
    fn area_subtracts_holes() {
        assert_eq!(donut().area(), 96.0);
        let solid = SwissCheese::solid(poly(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]));
        assert_eq!(solid.area(), 4.0);
    }

    #[test]
    fn rejects_hole_outside_shell() {
        let shell = poly(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let hole = poly(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)]);
        assert_eq!(SwissCheese::new(shell, vec![hole]), Err(GeomError::HoleOutsideShell));
    }

    #[test]
    fn contains_point_respects_holes() {
        let d = donut();
        assert!(d.contains_point(&Point::new(1.0, 1.0)));
        assert!(!d.contains_point(&Point::new(5.0, 5.0))); // in the hole
        assert!(!d.contains_point(&Point::new(11.0, 5.0))); // outside shell
                                                            // on the hole boundary counts as inside the feature
        assert!(d.contains_point(&Point::new(4.0, 5.0)));
    }

    #[test]
    fn overlap_with_polygon() {
        let d = donut();
        let crossing = poly(&[(-1.0, 4.5), (5.0, 4.5), (5.0, 5.5), (-1.0, 5.5)]);
        assert!(d.overlaps(&crossing));
        let in_hole = poly(&[(4.5, 4.5), (5.5, 4.5), (5.5, 5.5), (4.5, 5.5)]);
        assert!(!d.overlaps(&in_hole));
        let outside = poly(&[(20.0, 20.0), (21.0, 20.0), (21.0, 21.0), (20.0, 21.0)]);
        assert!(!d.overlaps(&outside));
    }

    #[test]
    fn num_points_counts_everything() {
        assert_eq!(donut().num_points(), 8);
    }
}
