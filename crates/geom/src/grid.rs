//! The spatial-universe grid used for declustering and PBSM.
//!
//! Paper §3.1.2 (Q12 description): *"The spatial region in which all the
//! drainage features lie (the 'universe') is broken up into 10,000 tiles.
//! The tiles are then numbered in a row-major order starting at the
//! upper-left corner. Each tile is mapped to one of the nodes by hashing on
//! tile number."* This module implements that decomposition, including the
//! shape→tile mapping (with replication for shapes spanning several tiles,
//! Figure 2.4).

use crate::point::Point;
use crate::rect::Rect;
use crate::shape::Shape;
use crate::{GeomError, Result};

/// Identifier of one grid tile: row-major index from the **upper-left**
/// corner, as in the paper.
pub type TileId = u32;

/// The inclusive rectangle of tile columns/rows a bounding box covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRange {
    /// First (leftmost) column.
    pub col0: u32,
    /// Last column, inclusive.
    pub col1: u32,
    /// First (topmost) row.
    pub row0: u32,
    /// Last row, inclusive.
    pub row1: u32,
}

impl TileRange {
    /// Number of tiles in the range.
    pub fn len(&self) -> usize {
        ((self.col1 - self.col0 + 1) as usize) * ((self.row1 - self.row0 + 1) as usize)
    }

    /// True when the range is a single tile (the common, non-replicated case).
    pub fn is_single(&self) -> bool {
        self.col0 == self.col1 && self.row0 == self.row1
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A regular decomposition of a rectangular universe into `cols × rows`
/// tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    universe: Rect,
    cols: u32,
    rows: u32,
    tile_w: f64,
    tile_h: f64,
}

impl Grid {
    /// Creates a grid over `universe` with `cols × rows` tiles.
    pub fn new(universe: Rect, cols: u32, rows: u32) -> Result<Self> {
        if cols == 0 || rows == 0 {
            return Err(GeomError::EmptyGrid);
        }
        Ok(Grid {
            universe,
            cols,
            rows,
            tile_w: universe.width() / cols as f64,
            tile_h: universe.height() / rows as f64,
        })
    }

    /// A grid of roughly `n` tiles with square-ish tiles, the paper's
    /// "about 10,000 tiles" default.
    pub fn with_tile_count(universe: Rect, n: u32) -> Result<Self> {
        let n = n.max(1);
        let aspect =
            if universe.height() > 0.0 { universe.width() / universe.height() } else { 1.0 };
        let rows = ((n as f64 / aspect.max(1e-9)).sqrt().round() as u32).max(1);
        let cols = n.div_ceil(rows).max(1);
        Grid::new(universe, cols, rows)
    }

    /// The universe rectangle.
    #[inline]
    pub fn universe(&self) -> Rect {
        self.universe
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of tiles.
    #[inline]
    pub fn num_tiles(&self) -> u32 {
        self.cols * self.rows
    }

    /// Tile id for (col, row) with row 0 at the **top**.
    #[inline]
    pub fn tile_id(&self, col: u32, row: u32) -> TileId {
        debug_assert!(col < self.cols && row < self.rows);
        row * self.cols + col
    }

    /// The column of a point, clamped into range.
    fn col_of(&self, x: f64) -> u32 {
        if self.tile_w <= 0.0 {
            return 0;
        }
        let c = ((x - self.universe.lo.x) / self.tile_w).floor();
        (c.max(0.0) as u32).min(self.cols - 1)
    }

    /// The row of a point, clamped into range; row 0 is the top row.
    fn row_of(&self, y: f64) -> u32 {
        if self.tile_h <= 0.0 {
            return 0;
        }
        let r = ((self.universe.hi.y - y) / self.tile_h).floor();
        (r.max(0.0) as u32).min(self.rows - 1)
    }

    /// Tile containing a point (points exactly on a shared boundary go to
    /// the tile on the greater-x / lower-y side, consistently).
    pub fn tile_of_point(&self, p: &Point) -> TileId {
        self.tile_id(self.col_of(p.x), self.row_of(p.y))
    }

    /// Rectangle of a tile.
    pub fn tile_rect(&self, id: TileId) -> Rect {
        let col = id % self.cols;
        let row = id / self.cols;
        let x0 = self.universe.lo.x + col as f64 * self.tile_w;
        let y1 = self.universe.hi.y - row as f64 * self.tile_h;
        Rect::from_corners(Point::new(x0, y1 - self.tile_h), Point::new(x0 + self.tile_w, y1))
            .expect("tile rect is valid")
    }

    /// The inclusive range of tiles a bounding box covers. Boxes outside the
    /// universe are clamped to the border tiles (matching the paper's
    /// universe definition: every shape lies inside it at load time, but
    /// query constants may poke outside).
    pub fn tiles_for_rect(&self, r: &Rect) -> TileRange {
        TileRange {
            col0: self.col_of(r.lo.x),
            col1: self.col_of(r.hi.x),
            row0: self.row_of(r.hi.y), // top edge -> smallest row
            row1: self.row_of(r.lo.y),
        }
    }

    /// All tile ids a bounding box covers, in row-major order. A shape whose
    /// range has more than one tile must be **replicated** to every covering
    /// tile during spatial declustering (Figure 2.4).
    pub fn tile_ids_for_rect(&self, r: &Rect) -> Vec<TileId> {
        let tr = self.tiles_for_rect(r);
        let mut out = Vec::with_capacity(tr.len());
        for row in tr.row0..=tr.row1 {
            for col in tr.col0..=tr.col1 {
                out.push(self.tile_id(col, row));
            }
        }
        out
    }

    /// Tiles covered by a shape's bounding box.
    pub fn tile_ids_for_shape(&self, s: &Shape) -> Vec<TileId> {
        self.tile_ids_for_rect(&s.bbox())
    }

    /// The tile ids of the 8-neighbourhood of `id` (fewer at the border).
    /// Used by the closest-search expansion of Figure 2.5.
    pub fn neighbors(&self, id: TileId) -> Vec<TileId> {
        let col = (id % self.cols) as i64;
        let row = (id / self.cols) as i64;
        let mut out = Vec::with_capacity(8);
        for dr in -1..=1i64 {
            for dc in -1..=1i64 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let (nc, nr) = (col + dc, row + dr);
                if nc >= 0 && nr >= 0 && (nc as u32) < self.cols && (nr as u32) < self.rows {
                    out.push(self.tile_id(nc as u32, nr as u32));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap()
    }

    #[test]
    fn tile_numbering_starts_upper_left() {
        let g = Grid::new(world(), 10, 10).unwrap();
        // Upper-left corner point is in tile 0.
        assert_eq!(g.tile_of_point(&Point::new(0.5, 99.5)), 0);
        // Lower-right corner point is in the last tile.
        assert_eq!(g.tile_of_point(&Point::new(99.5, 0.5)), 99);
        // One tile to the right of upper-left is tile 1 (row-major).
        assert_eq!(g.tile_of_point(&Point::new(10.5, 99.5)), 1);
        // One tile down is tile 10.
        assert_eq!(g.tile_of_point(&Point::new(0.5, 89.5)), 10);
    }

    #[test]
    fn tile_rect_roundtrip() {
        let g = Grid::new(world(), 4, 5).unwrap();
        for id in 0..g.num_tiles() {
            let r = g.tile_rect(id);
            assert_eq!(g.tile_of_point(&r.center()), id);
        }
    }

    #[test]
    fn rect_spanning_tiles_is_replicated() {
        let g = Grid::new(world(), 10, 10).unwrap();
        let r = Rect::from_corners(Point::new(5.0, 5.0), Point::new(25.0, 15.0)).unwrap();
        let ids = g.tile_ids_for_rect(&r);
        // spans cols 0..2 and rows 8..9 => 3 x 2 = 6 tiles
        assert_eq!(ids.len(), 6);
        // all returned tiles must intersect the rect
        for id in ids {
            assert!(g.tile_rect(id).intersects(&r));
        }
    }

    #[test]
    fn single_tile_shape_not_replicated() {
        let g = Grid::new(world(), 10, 10).unwrap();
        let r = Rect::from_corners(Point::new(11.0, 11.0), Point::new(12.0, 12.0)).unwrap();
        let tr = g.tiles_for_rect(&r);
        assert!(tr.is_single());
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn out_of_universe_clamps() {
        let g = Grid::new(world(), 10, 10).unwrap();
        assert_eq!(g.tile_of_point(&Point::new(-5.0, 105.0)), 0);
        assert_eq!(g.tile_of_point(&Point::new(200.0, -50.0)), 99);
    }

    #[test]
    fn with_tile_count_approximates_n() {
        let g = Grid::with_tile_count(world(), 10_000).unwrap();
        let n = g.num_tiles();
        assert!((9_000..=11_000).contains(&n), "n = {n}");
        // wide universe gets more columns than rows
        let wide = Rect::from_corners(Point::new(0.0, 0.0), Point::new(400.0, 100.0)).unwrap();
        let gw = Grid::with_tile_count(wide, 100).unwrap();
        assert!(gw.cols() > gw.rows());
    }

    #[test]
    fn rejects_empty_grid() {
        assert_eq!(Grid::new(world(), 0, 5), Err(GeomError::EmptyGrid));
    }

    #[test]
    fn neighbors_interior_and_corner() {
        let g = Grid::new(world(), 10, 10).unwrap();
        assert_eq!(g.neighbors(55).len(), 8);
        assert_eq!(g.neighbors(0).len(), 3);
        assert_eq!(g.neighbors(9).len(), 3);
        let n = g.neighbors(11);
        assert!(n.contains(&0) && n.contains(&12) && n.contains(&22));
    }
}
