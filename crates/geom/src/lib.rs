//! # paradise-geom
//!
//! Spatial abstract data types (ADTs) and computational-geometry algorithms
//! for the Paradise parallel geo-spatial DBMS (SIGMOD 1997).
//!
//! Paradise's data model (paper §2.1) provides `point`, `polygon`,
//! `polyline`, `swiss-cheese polygon` and `circle` attribute types together
//! with a rich set of spatial operators accessible from an extended SQL.
//! This crate implements those types from scratch along with every geometric
//! primitive the rest of the system needs:
//!
//! * predicates: `overlaps`, containment, point-in-polygon, crossing tests;
//! * measures: length, area, perimeter, centroid, distances between any two
//!   shape kinds;
//! * constructions: bounding boxes, [`Point::make_box`], rectangle clipping
//!   (Sutherland–Hodgman), largest inscribed circle (used by the spatial
//!   semi-join of paper §3.1.2 / Figure 3.1);
//! * the [`grid::Grid`] spatial-universe decomposition shared by spatial
//!   declustering (§2.7.1) and the PBSM spatial join (§2.4).
//!
//! All coordinates are `f64` in an arbitrary planar coordinate system; the
//! benchmark generator geo-registers everything to one world rectangle,
//! mirroring the paper's geo-registration of AVHRR rasters and DCW vectors.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod algorithms;
pub mod circle;
pub mod grid;
pub mod point;
pub mod polygon;
pub mod polyline;
pub mod rect;
pub mod shape;
pub mod swiss_cheese;

pub use circle::Circle;
pub use grid::{Grid, TileId, TileRange};
pub use point::Point;
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use rect::Rect;
pub use shape::Shape;
pub use swiss_cheese::SwissCheese;

/// Errors produced when constructing or operating on spatial values.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A polygon needs at least three distinct vertices.
    DegeneratePolygon {
        /// Number of vertices supplied.
        got: usize,
    },
    /// A polyline needs at least two vertices.
    DegeneratePolyline {
        /// Number of vertices supplied.
        got: usize,
    },
    /// A circle radius must be non-negative and finite.
    BadRadius(
        /// The offending radius.
        f64,
    ),
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A rectangle's low corner must not exceed its high corner.
    InvertedRect,
    /// A swiss-cheese hole must lie inside the shell.
    HoleOutsideShell,
    /// A grid must have at least one tile on each axis.
    EmptyGrid,
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::DegeneratePolygon { got } => {
                write!(f, "polygon requires >= 3 vertices, got {got}")
            }
            GeomError::DegeneratePolyline { got } => {
                write!(f, "polyline requires >= 2 vertices, got {got}")
            }
            GeomError::BadRadius(r) => write!(f, "invalid circle radius {r}"),
            GeomError::NonFiniteCoordinate => write!(f, "coordinate is NaN or infinite"),
            GeomError::InvertedRect => write!(f, "rectangle low corner exceeds high corner"),
            GeomError::HoleOutsideShell => {
                write!(f, "swiss-cheese hole lies outside its shell")
            }
            GeomError::EmptyGrid => write!(f, "grid must have at least 1x1 tiles"),
        }
    }
}

impl std::error::Error for GeomError {}

/// Result alias for geometry operations.
pub type Result<T> = std::result::Result<T, GeomError>;

/// Absolute tolerance used by robust predicates when classifying
/// nearly-collinear configurations. Coordinates in the benchmark universe
/// are O(100), so 1e-9 is ~12 decimal digits of slack.
pub const EPSILON: f64 = 1e-9;

pub(crate) fn check_finite(points: &[Point]) -> Result<()> {
    if points.iter().all(|p| p.x.is_finite() && p.y.is_finite()) {
        Ok(())
    } else {
        Err(GeomError::NonFiniteCoordinate)
    }
}
