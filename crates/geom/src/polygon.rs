//! The `polygon` spatial ADT (simple polygon, one ring).

use crate::algorithms::segment::{segments_intersect, Segment};
use crate::point::Point;
use crate::polyline::{rect_edges, Polyline};
use crate::rect::Rect;
use crate::{GeomError, Result};

/// A simple polygon described by one ring of vertices.
///
/// The ring is stored *open* (the closing edge from last back to first vertex
/// is implicit). Vertex order may be clockwise or counter-clockwise; measures
/// like [`Polygon::area`] are orientation-independent.
///
/// The benchmark's `landCover` table stores water-body / land-use / oil-field
/// boundaries as polygons; Q6 performs a spatial selection (`overlaps`), Q7 a
/// combined circle + area selection, Q9/Q14 clip rasters by polygons.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    ring: Vec<Point>,
    bbox: Rect,
}

impl Polygon {
    /// Creates a polygon from at least three vertices. A closing duplicate
    /// of the first vertex, if supplied, is dropped.
    pub fn new(mut ring: Vec<Point>) -> Result<Self> {
        if ring.len() >= 2 && ring.first() == ring.last() {
            ring.pop();
        }
        if ring.len() < 3 {
            return Err(GeomError::DegeneratePolygon { got: ring.len() });
        }
        crate::check_finite(&ring)?;
        let bbox = Rect::hull_of(&ring).expect("non-empty");
        Ok(Polygon { ring, bbox })
    }

    /// A rectangle as a polygon (used for the benchmark's constant clip
    /// POLYGON, "roughly the continental United States").
    pub fn from_rect(rect: &Rect) -> Polygon {
        Polygon::new(rect.corners().to_vec()).expect("rect has 4 corners")
    }

    /// A regular `n`-gon inscribed in `rect` (used by the resolution-scaleup
    /// scheme's "satellite" polygons, paper §3.1.3).
    pub fn regular_in_rect(rect: &Rect, n: usize) -> Result<Polygon> {
        let n = n.max(3);
        let c = rect.center();
        let rx = rect.width() / 2.0;
        let ry = rect.height() / 2.0;
        let ring = (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * (i as f64) / (n as f64);
                Point::new(c.x + rx * t.cos(), c.y + ry * t.sin())
            })
            .collect();
        Polygon::new(ring)
    }

    /// The vertices of the ring (open; the closing edge is implicit).
    #[inline]
    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Number of vertices.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.ring.len()
    }

    /// Cached tight bounding box.
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Iterator over the ring's edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.ring.len();
        (0..n).map(move |i| Segment::new(self.ring[i], self.ring[(i + 1) % n]))
    }

    /// Unsigned area via the shoelace formula. This is the `shape.area()`
    /// method of benchmark Q7.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Signed shoelace area (positive for counter-clockwise rings).
    pub fn signed_area(&self) -> f64 {
        let n = self.ring.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.ring[i];
            let b = self.ring[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Perimeter of the ring.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Area centroid. Falls back to the vertex mean for zero-area rings.
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        if a.abs() < crate::EPSILON {
            let n = self.ring.len() as f64;
            let (sx, sy) = self.ring.iter().fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            return Point::new(sx / n, sy / n);
        }
        let n = self.ring.len();
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Point-in-polygon by the crossing-number (even–odd) rule. Boundary
    /// points count as inside.
    pub fn contains_point(&self, p: &Point) -> bool {
        if !self.bbox.contains_point(p) {
            return false;
        }
        // Boundary check first: the ray test is unreliable exactly on edges.
        for e in self.edges() {
            if e.distance_to_point(p) < crate::EPSILON {
                return true;
            }
        }
        let mut inside = false;
        let n = self.ring.len();
        let mut j = n - 1;
        for i in 0..n {
            let a = self.ring[i];
            let b = self.ring[j];
            if ((a.y > p.y) != (b.y > p.y)) && (p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// The `overlaps` predicate for polygon×polygon: true when the regions
    /// share any point (edge crossing, containment either way, or touching).
    pub fn overlaps(&self, other: &Polygon) -> bool {
        if !self.bbox.intersects(&other.bbox) {
            return false;
        }
        for a in self.edges() {
            let ab = a.bbox();
            if !ab.intersects(&other.bbox) {
                continue;
            }
            for b in other.edges() {
                if ab.intersects(&b.bbox()) && segments_intersect(&a, &b) {
                    return true;
                }
            }
        }
        // No edge crossings: one may contain the other entirely.
        self.contains_point(&other.ring[0]) || other.contains_point(&self.ring[0])
    }

    /// The `overlaps` predicate for polygon×rectangle.
    pub fn overlaps_rect(&self, rect: &Rect) -> bool {
        if !self.bbox.intersects(rect) {
            return false;
        }
        if self.ring.iter().any(|p| rect.contains_point(p)) {
            return true;
        }
        if self.contains_point(&rect.lo) {
            return true;
        }
        let edges = rect_edges(rect);
        self.edges().any(|s| edges.iter().any(|e| segments_intersect(&s, e)))
    }

    /// The `overlaps` predicate for polygon×polyline: any chain segment
    /// crossing the boundary, or the chain lying wholly inside.
    pub fn overlaps_polyline(&self, line: &Polyline) -> bool {
        if !self.bbox.intersects(&line.bbox()) {
            return false;
        }
        for s in line.segments() {
            let sb = s.bbox();
            if !sb.intersects(&self.bbox) {
                continue;
            }
            for e in self.edges() {
                if sb.intersects(&e.bbox()) && segments_intersect(&s, &e) {
                    return true;
                }
            }
        }
        self.contains_point(&line.points()[0])
    }

    /// True if the whole polygon lies inside `circle` (benchmark Q7's
    /// `shape < Circle(POINT, RADIUS)` containment predicate).
    pub fn within_circle(&self, circle: &crate::circle::Circle) -> bool {
        self.ring.iter().all(|p| circle.contains_point(p))
    }

    /// Minimum distance from `p` to the polygon (0 if `p` is inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        if self.contains_point(p) {
            return 0.0;
        }
        self.boundary_distance(p)
    }

    /// Minimum distance from `p` to the ring *boundary*, regardless of
    /// whether `p` is inside. Swiss-cheese hole tests need this distinction.
    pub fn boundary_distance(&self, p: &Point) -> f64 {
        self.edges().map(|e| e.distance_to_point(p)).fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circle::Circle;

    fn poly(pts: &[(f64, f64)]) -> Polygon {
        Polygon::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn unit_square() -> Polygon {
        poly(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
    }

    #[test]
    fn rejects_degenerate() {
        assert_eq!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]),
            Err(GeomError::DegeneratePolygon { got: 2 })
        );
    }

    #[test]
    fn closing_vertex_dropped() {
        let closed = poly(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (0.0, 0.0)]);
        assert_eq!(closed.num_points(), 3);
    }

    #[test]
    fn area_orientation_independent() {
        let ccw = unit_square();
        let cw = poly(&[(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)]);
        assert_eq!(ccw.area(), 1.0);
        assert_eq!(cw.area(), 1.0);
        assert!(ccw.signed_area() > 0.0);
        assert!(cw.signed_area() < 0.0);
    }

    #[test]
    fn perimeter_and_centroid() {
        let sq = unit_square();
        assert_eq!(sq.perimeter(), 4.0);
        assert_eq!(sq.centroid(), Point::new(0.5, 0.5));
    }

    #[test]
    fn point_in_polygon() {
        let sq = unit_square();
        assert!(sq.contains_point(&Point::new(0.5, 0.5)));
        assert!(!sq.contains_point(&Point::new(1.5, 0.5)));
        // boundary and vertex are inside
        assert!(sq.contains_point(&Point::new(1.0, 0.5)));
        assert!(sq.contains_point(&Point::new(0.0, 0.0)));
    }

    #[test]
    fn point_in_concave_polygon() {
        // L-shape: the notch must be outside.
        let l = poly(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (3.0, 4.0), (3.0, 1.0), (0.0, 1.0)]);
        assert!(l.contains_point(&Point::new(2.0, 0.5)));
        assert!(l.contains_point(&Point::new(3.5, 3.0)));
        assert!(!l.contains_point(&Point::new(1.0, 2.0))); // in the notch
    }

    #[test]
    fn overlap_by_edge_crossing() {
        let a = unit_square();
        let b = poly(&[(0.5, 0.5), (2.0, 0.5), (2.0, 2.0), (0.5, 2.0)]);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn overlap_by_containment() {
        let outer = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let inner = poly(&[(4.0, 4.0), (5.0, 4.0), (5.0, 5.0), (4.0, 5.0)]);
        assert!(outer.overlaps(&inner));
        assert!(inner.overlaps(&outer));
    }

    #[test]
    fn disjoint_polygons() {
        let a = unit_square();
        let b = poly(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)]);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn overlaps_rect_cases() {
        let sq = unit_square();
        let crossing = Rect::from_corners(Point::new(0.5, -1.0), Point::new(0.7, 2.0)).unwrap();
        assert!(sq.overlaps_rect(&crossing));
        let containing = Rect::from_corners(Point::new(-1.0, -1.0), Point::new(2.0, 2.0)).unwrap();
        assert!(sq.overlaps_rect(&containing));
        let contained = Rect::from_corners(Point::new(0.4, 0.4), Point::new(0.6, 0.6)).unwrap();
        assert!(sq.overlaps_rect(&contained));
        let far = Rect::from_corners(Point::new(5.0, 5.0), Point::new(6.0, 6.0)).unwrap();
        assert!(!sq.overlaps_rect(&far));
    }

    #[test]
    fn overlaps_polyline_cases() {
        let sq = unit_square();
        let through = Polyline::new(vec![Point::new(-1.0, 0.5), Point::new(2.0, 0.5)]).unwrap();
        assert!(sq.overlaps_polyline(&through));
        let inside = Polyline::new(vec![Point::new(0.2, 0.2), Point::new(0.8, 0.8)]).unwrap();
        assert!(sq.overlaps_polyline(&inside));
        let outside = Polyline::new(vec![Point::new(2.0, 2.0), Point::new(3.0, 3.0)]).unwrap();
        assert!(!sq.overlaps_polyline(&outside));
    }

    #[test]
    fn within_circle() {
        let sq = unit_square();
        let big = Circle::new(Point::new(0.5, 0.5), 1.0).unwrap();
        let small = Circle::new(Point::new(0.5, 0.5), 0.5).unwrap();
        assert!(sq.within_circle(&big));
        assert!(!sq.within_circle(&small)); // corners poke out
    }

    #[test]
    fn distance_to_point() {
        let sq = unit_square();
        assert_eq!(sq.distance_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(sq.distance_to_point(&Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn regular_polygon_inscribed() {
        let rect = Rect::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0)).unwrap();
        let hex = Polygon::regular_in_rect(&rect, 6).unwrap();
        assert_eq!(hex.num_points(), 6);
        assert!(rect.expand(crate::EPSILON).contains_rect(&hex.bbox()));
        // area of a regular hexagon inscribed in unit circle ~ 2.598
        assert!((hex.area() - 2.598).abs() < 0.01);
    }

    #[test]
    fn from_rect_roundtrip() {
        let rect = Rect::from_corners(Point::new(1.0, 2.0), Point::new(3.0, 5.0)).unwrap();
        let p = Polygon::from_rect(&rect);
        assert_eq!(p.area(), rect.area());
        assert_eq!(p.bbox(), rect);
    }
}
