//! Axis-aligned rectangles (bounding boxes).

use crate::point::Point;
use crate::{GeomError, Result};

/// An axis-aligned rectangle, the workhorse bounding-box type.
///
/// Rectangles are the currency of the R*-tree, of spatial declustering
/// (shapes are mapped to grid tiles by their bounding box, paper §2.7.1),
/// and of the PBSM spatial join's filter phase. The paper notes that one can
/// "simply replicate the bounding box of the spatial feature (which
/// complicates query processing)" — our declustering replicates full tuples,
/// but bounding boxes still drive all filter steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner (minimum x and y).
    pub lo: Point,
    /// Upper-right corner (maximum x and y).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// Returns [`GeomError::InvertedRect`] if `lo` exceeds `hi` on either
    /// axis, and [`GeomError::NonFiniteCoordinate`] for NaN/infinite corners.
    pub fn new(lo: Point, hi: Point) -> Result<Self> {
        crate::check_finite(&[lo, hi])?;
        if lo.x > hi.x || lo.y > hi.y {
            return Err(GeomError::InvertedRect);
        }
        Ok(Rect { lo, hi })
    }

    /// Creates a rectangle from any two opposite corners, swapping
    /// coordinates as needed.
    pub fn from_corners(a: Point, b: Point) -> Result<Self> {
        Rect::new(Point::new(a.x.min(b.x), a.y.min(b.y)), Point::new(a.x.max(b.x), a.y.max(b.y)))
    }

    /// The smallest rectangle enclosing all `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn hull_of(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut lo = *first;
        let mut hi = *first;
        for p in &points[1..] {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
        }
        Some(Rect { lo, hi })
    }

    /// Width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter (margin), used by the R*-tree split heuristic.
    #[inline]
    pub fn margin(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Geometric center.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2.0, (self.lo.y + self.hi.y) / 2.0)
    }

    /// True if the rectangles share any area or boundary (closed-set
    /// semantics: touching rectangles intersect).
    ///
    /// ```
    /// use paradise_geom::{Point, Rect};
    ///
    /// let r = |x0, y0, x1, y1| Rect::from_corners(Point::new(x0, y0), Point::new(x1, y1)).unwrap();
    /// assert!(r(0.0, 0.0, 2.0, 2.0).intersects(&r(1.0, 1.0, 3.0, 3.0)));
    /// assert!(r(0.0, 0.0, 1.0, 1.0).intersects(&r(1.0, 1.0, 2.0, 2.0))); // touching corners
    /// assert!(!r(0.0, 0.0, 1.0, 1.0).intersects(&r(2.0, 2.0, 3.0, 3.0)));
    /// ```
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// True if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// True if `other` lies entirely inside (or on the boundary of) `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// The intersection rectangle, or `None` when disjoint.
    ///
    /// The lower-left corner of this rectangle is the PBSM *reference
    /// point* used by the spatial join to report each candidate pair
    /// exactly once (see `paradise_exec::ops::spatial_join`).
    ///
    /// ```
    /// use paradise_geom::{Point, Rect};
    ///
    /// let a = Rect::from_corners(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap();
    /// let b = Rect::from_corners(Point::new(2.0, 1.0), Point::new(6.0, 3.0)).unwrap();
    /// let ix = a.intersection(&b).unwrap();
    /// assert_eq!((ix.lo.x, ix.lo.y, ix.hi.x, ix.hi.y), (2.0, 1.0, 4.0, 3.0));
    /// let far = Rect::from_corners(Point::new(9.0, 9.0), Point::new(10.0, 10.0)).unwrap();
    /// assert!(a.intersection(&far).is_none());
    /// ```
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lo: Point::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            hi: Point::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        })
    }

    /// Smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Area of overlap with `other` (0 when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        match self.intersection(other) {
            Some(r) => r.area(),
            None => 0.0,
        }
    }

    /// How much `self`'s area grows if enlarged to cover `other`
    /// (the R*-tree `ChooseSubtree` cost).
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum distance from `p` to this rectangle (0 if inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum distance between two rectangles (0 if they intersect).
    pub fn distance_to_rect(&self, other: &Rect) -> f64 {
        let dx = (self.lo.x - other.hi.x).max(0.0).max(other.lo.x - self.hi.x);
        let dy = (self.lo.y - other.hi.y).max(0.0).max(other.lo.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// The four corners, counter-clockwise starting at `lo`.
    pub fn corners(&self) -> [Point; 4] {
        [self.lo, Point::new(self.hi.x, self.lo.y), self.hi, Point::new(self.lo.x, self.hi.y)]
    }

    /// Expands the rectangle by `pad` on every side.
    pub fn expand(&self, pad: f64) -> Rect {
        Rect {
            lo: Point::new(self.lo.x - pad, self.lo.y - pad),
            hi: Point::new(self.hi.x + pad, self.hi.y + pad),
        }
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    #[test]
    fn rejects_inverted() {
        assert_eq!(
            Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0)),
            Err(GeomError::InvertedRect)
        );
    }

    #[test]
    fn rejects_nan() {
        assert_eq!(
            Rect::new(Point::new(f64::NAN, 0.0), Point::new(1.0, 1.0)),
            Err(GeomError::NonFiniteCoordinate)
        );
    }

    #[test]
    fn from_corners_normalizes() {
        let a = Rect::from_corners(Point::new(5.0, -1.0), Point::new(2.0, 3.0)).unwrap();
        assert_eq!(a, r(2.0, -1.0, 5.0, 3.0));
    }

    #[test]
    fn hull_of_points() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 0.0), Point::new(4.0, 2.0)];
        assert_eq!(Rect::hull_of(&pts).unwrap(), r(-2.0, 0.0, 4.0, 5.0));
        assert_eq!(Rect::hull_of(&[]), None);
    }

    #[test]
    fn intersection_and_union() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 6.0, 6.0);
        assert_eq!(a.intersection(&b).unwrap(), r(2.0, 2.0, 4.0, 4.0));
        assert_eq!(a.union(&b), r(0.0, 0.0, 6.0, 6.0));
        assert_eq!(a.overlap_area(&b), 4.0);
    }

    #[test]
    fn disjoint_rects() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn touching_rects_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(outer.contains_point(&Point::new(0.0, 10.0)));
        assert!(!outer.contains_point(&Point::new(-0.1, 5.0)));
    }

    #[test]
    fn distances() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.distance_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(a.distance_to_point(&Point::new(4.0, 5.0)), 5.0);
        let b = r(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.distance_to_rect(&b), 5.0);
        assert_eq!(a.distance_to_rect(&a), 0.0);
    }

    #[test]
    fn enlargement_cost() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(3.0, 0.0, 4.0, 2.0);
        // union is 4x2 = 8, a is 4 => enlargement 4
        assert_eq!(a.enlargement(&b), 4.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn margin_and_expand() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.margin(), 10.0);
        assert_eq!(a.expand(1.0), r(-1.0, -1.0, 3.0, 4.0));
    }
}
