//! The `polyline` spatial ADT.

use crate::algorithms::segment::{segments_intersect, Segment};
use crate::point::Point;
use crate::rect::Rect;
use crate::{GeomError, Result};

/// An open chain of line segments.
///
/// The benchmark's `roads` and `drainage` tables store their shapes as
/// polylines; Q13 joins two large polyline relations on `overlaps`
/// (segment crossing), and Q11/Q12 compute the closest polyline to a point.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    points: Vec<Point>,
    bbox: Rect,
}

impl Polyline {
    /// Creates a polyline from at least two vertices.
    pub fn new(points: Vec<Point>) -> Result<Self> {
        if points.len() < 2 {
            return Err(GeomError::DegeneratePolyline { got: points.len() });
        }
        crate::check_finite(&points)?;
        let bbox = Rect::hull_of(&points).expect("non-empty");
        Ok(Polyline { points, bbox })
    }

    /// The vertices in order.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of vertices.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Cached tight bounding box.
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Iterator over the line segments of the chain.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total length of the chain.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }

    /// Minimum distance from `p` to the polyline.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.segments().map(|s| s.distance_to_point(p)).fold(f64::INFINITY, f64::min)
    }

    /// True if any segment of `self` crosses or touches any segment of
    /// `other`. This is the `overlaps` predicate for polyline×polyline
    /// (benchmark Q13, "drainage features which cross a road").
    pub fn crosses(&self, other: &Polyline) -> bool {
        if !self.bbox.intersects(&other.bbox) {
            return false;
        }
        for a in self.segments() {
            // Per-segment bbox filter keeps the common disjoint case cheap.
            let ab = a.bbox();
            if !ab.intersects(&other.bbox) {
                continue;
            }
            for b in other.segments() {
                if ab.intersects(&b.bbox()) && segments_intersect(&a, &b) {
                    return true;
                }
            }
        }
        false
    }

    /// True if any part of the polyline lies within `rect` (a vertex inside,
    /// or a segment crossing the rectangle boundary).
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        if !self.bbox.intersects(rect) {
            return false;
        }
        if self.points.iter().any(|p| rect.contains_point(p)) {
            return true;
        }
        let edges = rect_edges(rect);
        self.segments().any(|s| edges.iter().any(|e| segments_intersect(&s, e)))
    }

    /// Minimum distance between two polylines (0 if they cross).
    pub fn distance_to_polyline(&self, other: &Polyline) -> f64 {
        if self.crosses(other) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for a in self.segments() {
            for b in other.segments() {
                best = best.min(a.distance_to_segment(&b));
            }
        }
        best
    }
}

pub(crate) fn rect_edges(rect: &Rect) -> [Segment; 4] {
    let c = rect.corners();
    [
        Segment::new(c[0], c[1]),
        Segment::new(c[1], c[2]),
        Segment::new(c[2], c[3]),
        Segment::new(c[3], c[0]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(pts: &[(f64, f64)]) -> Polyline {
        Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn rejects_single_point() {
        assert_eq!(
            Polyline::new(vec![Point::new(0.0, 0.0)]),
            Err(GeomError::DegeneratePolyline { got: 1 })
        );
    }

    #[test]
    fn length_sums_segments() {
        let line = pl(&[(0.0, 0.0), (3.0, 4.0), (3.0, 8.0)]);
        assert_eq!(line.length(), 9.0);
        assert_eq!(line.num_points(), 3);
    }

    #[test]
    fn bbox_covers_all_vertices() {
        let line = pl(&[(0.0, 5.0), (-2.0, 1.0), (7.0, 3.0)]);
        assert_eq!(line.bbox().lo, Point::new(-2.0, 1.0));
        assert_eq!(line.bbox().hi, Point::new(7.0, 5.0));
    }

    #[test]
    fn crossing_polylines() {
        let a = pl(&[(0.0, 0.0), (10.0, 10.0)]);
        let b = pl(&[(0.0, 10.0), (10.0, 0.0)]);
        assert!(a.crosses(&b));
        assert!(b.crosses(&a));
    }

    #[test]
    fn parallel_polylines_do_not_cross() {
        let a = pl(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = pl(&[(0.0, 1.0), (10.0, 1.0)]);
        assert!(!a.crosses(&b));
        assert_eq!(a.distance_to_polyline(&b), 1.0);
    }

    #[test]
    fn touching_endpoint_counts_as_cross() {
        let a = pl(&[(0.0, 0.0), (5.0, 5.0)]);
        let b = pl(&[(5.0, 5.0), (9.0, 2.0)]);
        assert!(a.crosses(&b));
        assert_eq!(a.distance_to_polyline(&b), 0.0);
    }

    #[test]
    fn multi_crossing_like_wisconsin_river_and_us90() {
        // The paper's example: a river and a road crossing in two places.
        let river = pl(&[(0.0, 0.0), (4.0, 4.0), (8.0, 0.0)]);
        let road = pl(&[(0.0, 2.0), (8.0, 2.0)]);
        assert!(river.crosses(&road));
    }

    #[test]
    fn distance_to_point() {
        let line = pl(&[(0.0, 0.0), (10.0, 0.0)]);
        assert_eq!(line.distance_to_point(&Point::new(5.0, 3.0)), 3.0);
        assert_eq!(line.distance_to_point(&Point::new(-3.0, 4.0)), 5.0);
        assert_eq!(line.distance_to_point(&Point::new(7.0, 0.0)), 0.0);
    }

    #[test]
    fn rect_intersection_detects_pass_through() {
        // Polyline passes straight through the rect without a vertex inside.
        let line = pl(&[(-5.0, 0.5), (5.0, 0.5)]);
        let rect = Rect::from_corners(Point::new(-1.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        assert!(line.intersects_rect(&rect));
        let rect_far = Rect::from_corners(Point::new(-1.0, 2.0), Point::new(1.0, 3.0)).unwrap();
        assert!(!line.intersects_rect(&rect_far));
    }
}
