//! The `circle` spatial ADT.

use crate::point::Point;
use crate::rect::Rect;
use crate::{GeomError, Result};

/// A circle, used by Paradise for radius ("within distance") selections and
/// as the expanding probe region of the `closest` spatial aggregate
/// (paper §2.7.3): the system starts with a tiny circle and doubles its area
/// until a candidate is found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius (non-negative, finite).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; rejects negative, NaN or infinite radii.
    pub fn new(center: Point, radius: f64) -> Result<Self> {
        crate::check_finite(&[center])?;
        if !radius.is_finite() || radius < 0.0 {
            return Err(GeomError::BadRadius(radius));
        }
        Ok(Circle { center, radius })
    }

    /// Area of the circle.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Tight bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::new(
            self.center.offset(-self.radius, -self.radius),
            self.center.offset(self.radius, self.radius),
        )
        .expect("circle bbox is never inverted")
    }

    /// True if `p` lies inside or on the circle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// True if the whole rectangle lies inside the circle (all four corners
    /// are within the radius — sufficient and necessary for a convex region).
    pub fn contains_rect(&self, r: &Rect) -> bool {
        r.corners().iter().all(|c| self.contains_point(c))
    }

    /// True if the circle and rectangle share any point.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        r.distance_to_point(&self.center) <= self.radius
    }

    /// True if two circles share any point.
    pub fn intersects_circle(&self, other: &Circle) -> bool {
        let rr = self.radius + other.radius;
        self.center.distance_sq(&other.center) <= rr * rr
    }

    /// The circle with the same center whose **area** is `factor` times
    /// larger. The closest-join operator uses `scale_area(2.0)` to double the
    /// probe area each round, exactly as described in paper §3.1.2.
    pub fn scale_area(&self, factor: f64) -> Circle {
        Circle { center: self.center, radius: self.radius * factor.sqrt() }
    }

    /// The largest circle centred at `p` completely contained in `rect`,
    /// i.e. radius = distance from `p` to the nearest rectangle side.
    ///
    /// This is the test of the **spatial semi-join** (paper §3.1.2): if any
    /// drainage feature falls inside this circle, the closest feature is
    /// guaranteed to be local to the node owning the tile, so the city tuple
    /// need not be broadcast. Returns `None` when `p` is outside `rect`.
    pub fn largest_inscribed(p: Point, rect: &Rect) -> Option<Circle> {
        if !rect.contains_point(&p) {
            return None;
        }
        let r = (p.x - rect.lo.x).min(rect.hi.x - p.x).min(p.y - rect.lo.y).min(rect.hi.y - p.y);
        Some(Circle { center: p, radius: r })
    }
}

impl std::fmt::Display for Circle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Circle({}, r={})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r).unwrap()
    }

    #[test]
    fn rejects_bad_radius() {
        assert!(matches!(Circle::new(Point::new(0.0, 0.0), -1.0), Err(GeomError::BadRadius(_))));
        assert!(matches!(
            Circle::new(Point::new(0.0, 0.0), f64::NAN),
            Err(GeomError::BadRadius(_))
        ));
    }

    #[test]
    fn contains_point_boundary_inclusive() {
        let circle = c(0.0, 0.0, 5.0);
        assert!(circle.contains_point(&Point::new(3.0, 4.0)));
        assert!(circle.contains_point(&Point::new(0.0, 0.0)));
        assert!(!circle.contains_point(&Point::new(3.1, 4.0)));
    }

    #[test]
    fn bbox_is_tight() {
        let circle = c(1.0, 2.0, 3.0);
        let b = circle.bbox();
        assert_eq!(b.lo, Point::new(-2.0, -1.0));
        assert_eq!(b.hi, Point::new(4.0, 5.0));
    }

    #[test]
    fn rect_intersection() {
        let circle = c(0.0, 0.0, 1.0);
        let near = Rect::from_corners(Point::new(0.5, 0.5), Point::new(2.0, 2.0)).unwrap();
        let far = Rect::from_corners(Point::new(2.0, 2.0), Point::new(3.0, 3.0)).unwrap();
        assert!(circle.intersects_rect(&near));
        assert!(!circle.intersects_rect(&far));
        // Rect whose corner just grazes the circle.
        let graze = Rect::from_corners(Point::new(1.0, 0.0), Point::new(2.0, 1.0)).unwrap();
        assert!(circle.intersects_rect(&graze));
    }

    #[test]
    fn contains_rect_requires_all_corners() {
        let circle = c(0.0, 0.0, 2.0);
        let inside = Rect::from_corners(Point::new(-1.0, -1.0), Point::new(1.0, 1.0)).unwrap();
        let poking = Rect::from_corners(Point::new(-1.0, -1.0), Point::new(2.0, 2.0)).unwrap();
        assert!(circle.contains_rect(&inside));
        assert!(!circle.contains_rect(&poking));
    }

    #[test]
    fn circle_circle() {
        assert!(c(0.0, 0.0, 1.0).intersects_circle(&c(1.5, 0.0, 1.0)));
        assert!(!c(0.0, 0.0, 1.0).intersects_circle(&c(3.0, 0.0, 1.0)));
        // tangent
        assert!(c(0.0, 0.0, 1.0).intersects_circle(&c(2.0, 0.0, 1.0)));
    }

    #[test]
    fn scale_area_doubles_area() {
        let circle = c(0.0, 0.0, 1.0);
        let doubled = circle.scale_area(2.0);
        let ratio = doubled.area() / circle.area();
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn largest_inscribed_circle() {
        let rect = Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 4.0)).unwrap();
        let inner = Circle::largest_inscribed(Point::new(3.0, 2.0), &rect).unwrap();
        assert_eq!(inner.radius, 2.0); // nearest side is y = 0 or y = 4
        let edge = Circle::largest_inscribed(Point::new(0.0, 2.0), &rect).unwrap();
        assert_eq!(edge.radius, 0.0);
        assert!(Circle::largest_inscribed(Point::new(-1.0, 2.0), &rect).is_none());
    }
}
