//! Computational-geometry primitives shared by the spatial ADTs.
//!
//! The algorithms here follow standard references (Preparata & Shamos,
//! *Computational Geometry*, which the paper cites as \[Prep88\]):
//! orientation-based segment intersection, Sutherland–Hodgman clipping,
//! and point/segment distance kernels.

pub mod clip;
pub mod segment;
