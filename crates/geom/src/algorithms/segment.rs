//! Line segments and robust-enough intersection / distance kernels.

use crate::point::Point;
use crate::rect::Rect;
use crate::EPSILON;

/// A directed line segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

/// Orientation of the ordered triple (p, q, r).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    Ccw,
    /// Clockwise turn.
    Cw,
    /// Collinear within [`EPSILON`] tolerance.
    Collinear,
}

/// Classifies the turn made at `q` when walking p → q → r.
pub fn orientation(p: &Point, q: &Point, r: &Point) -> Orientation {
    let v = (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x);
    if v > EPSILON {
        Orientation::Ccw
    } else if v < -EPSILON {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

impl Segment {
    /// Creates a segment.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Tight bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::from_corners(self.a, self.b).expect("finite corners")
    }

    /// Minimum distance from `p` to the segment.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.closest_point_to(p).distance(p)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point_to(&self, p: &Point) -> Point {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let len_sq = dx * dx + dy * dy;
        if len_sq == 0.0 {
            return self.a;
        }
        let t = (((p.x - self.a.x) * dx + (p.y - self.a.y) * dy) / len_sq).clamp(0.0, 1.0);
        Point::new(self.a.x + t * dx, self.a.y + t * dy)
    }

    /// Minimum distance between two segments (0 if they intersect).
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if segments_intersect(self, other) {
            return 0.0;
        }
        self.distance_to_point(&other.a)
            .min(self.distance_to_point(&other.b))
            .min(other.distance_to_point(&self.a))
            .min(other.distance_to_point(&self.b))
    }
}

/// True when `p` lies on segment `s` (assuming the three points are
/// collinear): the on-box test of the classic intersection routine.
fn on_segment(s: &Segment, p: &Point) -> bool {
    p.x >= s.a.x.min(s.b.x) - EPSILON
        && p.x <= s.a.x.max(s.b.x) + EPSILON
        && p.y >= s.a.y.min(s.b.y) - EPSILON
        && p.y <= s.a.y.max(s.b.y) + EPSILON
}

/// Closed-set segment intersection: shared endpoints, T-junctions and
/// collinear overlaps all count as intersecting.
pub fn segments_intersect(s1: &Segment, s2: &Segment) -> bool {
    let o1 = orientation(&s1.a, &s1.b, &s2.a);
    let o2 = orientation(&s1.a, &s1.b, &s2.b);
    let o3 = orientation(&s2.a, &s2.b, &s1.a);
    let o4 = orientation(&s2.a, &s2.b, &s1.b);

    if o1 != o2 && o3 != o4 && o1 != Orientation::Collinear && o2 != Orientation::Collinear {
        return true;
    }
    // General case with collinear endpoints or fully collinear overlap.
    (o1 == Orientation::Collinear && on_segment(s1, &s2.a))
        || (o2 == Orientation::Collinear && on_segment(s1, &s2.b))
        || (o3 == Orientation::Collinear && on_segment(s2, &s1.a))
        || (o4 == Orientation::Collinear && on_segment(s2, &s1.b))
        || (o1 != o2 && o3 != o4)
}

/// The intersection point of two properly-crossing segments, if any.
/// Collinear overlaps return `None` (no unique point).
pub fn intersection_point(s1: &Segment, s2: &Segment) -> Option<Point> {
    let d1x = s1.b.x - s1.a.x;
    let d1y = s1.b.y - s1.a.y;
    let d2x = s2.b.x - s2.a.x;
    let d2y = s2.b.y - s2.a.y;
    let denom = d1x * d2y - d1y * d2x;
    if denom.abs() < EPSILON {
        return None; // parallel or collinear
    }
    let t = ((s2.a.x - s1.a.x) * d2y - (s2.a.y - s1.a.y) * d2x) / denom;
    let u = ((s2.a.x - s1.a.x) * d1y - (s2.a.y - s1.a.y) * d1x) / denom;
    if (-EPSILON..=1.0 + EPSILON).contains(&t) && (-EPSILON..=1.0 + EPSILON).contains(&u) {
        Some(Point::new(s1.a.x + t * d1x, s1.a.y + t * d1y))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn orientation_basic() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(1.0, 0.0);
        assert_eq!(orientation(&p, &q, &Point::new(1.0, 1.0)), Orientation::Ccw);
        assert_eq!(orientation(&p, &q, &Point::new(1.0, -1.0)), Orientation::Cw);
        assert_eq!(orientation(&p, &q, &Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn proper_crossing() {
        assert!(segments_intersect(&seg(0.0, 0.0, 2.0, 2.0), &seg(0.0, 2.0, 2.0, 0.0)));
    }

    #[test]
    fn disjoint_segments() {
        assert!(!segments_intersect(&seg(0.0, 0.0, 1.0, 0.0), &seg(0.0, 1.0, 1.0, 1.0)));
    }

    #[test]
    fn shared_endpoint_intersects() {
        assert!(segments_intersect(&seg(0.0, 0.0, 1.0, 1.0), &seg(1.0, 1.0, 2.0, 0.0)));
    }

    #[test]
    fn t_junction_intersects() {
        assert!(segments_intersect(&seg(0.0, 0.0, 2.0, 0.0), &seg(1.0, -1.0, 1.0, 0.0)));
    }

    #[test]
    fn collinear_overlap_intersects() {
        assert!(segments_intersect(&seg(0.0, 0.0, 2.0, 0.0), &seg(1.0, 0.0, 3.0, 0.0)));
    }

    #[test]
    fn collinear_disjoint_does_not() {
        assert!(!segments_intersect(&seg(0.0, 0.0, 1.0, 0.0), &seg(2.0, 0.0, 3.0, 0.0)));
    }

    #[test]
    fn near_miss_does_not_intersect() {
        assert!(!segments_intersect(&seg(0.0, 0.0, 1.0, 0.0), &seg(0.5, 0.001, 1.5, 1.0)));
    }

    #[test]
    fn intersection_point_of_cross() {
        let p = intersection_point(&seg(0.0, 0.0, 2.0, 2.0), &seg(0.0, 2.0, 2.0, 0.0)).unwrap();
        assert!((p.x - 1.0).abs() < 1e-12);
        assert!((p.y - 1.0).abs() < 1e-12);
        assert_eq!(intersection_point(&seg(0.0, 0.0, 1.0, 0.0), &seg(0.0, 1.0, 1.0, 1.0)), None);
    }

    #[test]
    fn point_distance_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.distance_to_point(&Point::new(5.0, 2.0)), 2.0);
        assert_eq!(s.distance_to_point(&Point::new(-3.0, 4.0)), 5.0);
        assert_eq!(s.distance_to_point(&Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn zero_length_segment_distance() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.distance_to_point(&Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn segment_segment_distance() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(0.0, 2.0, 1.0, 2.0);
        assert_eq!(a.distance_to_segment(&b), 2.0);
        let crossing = seg(0.5, -1.0, 0.5, 1.0);
        assert_eq!(a.distance_to_segment(&crossing), 0.0);
    }
}
