//! Polygon clipping (Sutherland–Hodgman against a rectangle).
//!
//! Raster clipping (benchmark Q2–Q4, Q9, Q10, Q14) needs the region of a
//! polygon restricted to a tile's rectangle; Sutherland–Hodgman against an
//! axis-aligned window is exact for that purpose (the clip window is convex).

use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;

#[derive(Clone, Copy)]
enum Side {
    Left(f64),
    Right(f64),
    Bottom(f64),
    Top(f64),
}

impl Side {
    fn inside(&self, p: &Point) -> bool {
        match *self {
            Side::Left(x) => p.x >= x,
            Side::Right(x) => p.x <= x,
            Side::Bottom(y) => p.y >= y,
            Side::Top(y) => p.y <= y,
        }
    }

    /// Intersection of edge (a, b) with this boundary line.
    fn intersect(&self, a: &Point, b: &Point) -> Point {
        match *self {
            Side::Left(x) | Side::Right(x) => {
                let t = (x - a.x) / (b.x - a.x);
                Point::new(x, a.y + t * (b.y - a.y))
            }
            Side::Bottom(y) | Side::Top(y) => {
                let t = (y - a.y) / (b.y - a.y);
                Point::new(a.x + t * (b.x - a.x), y)
            }
        }
    }
}

/// Clips `poly` to the axis-aligned window `window`.
///
/// Returns `None` when the intersection is empty (or degenerates to a point
/// or line). For a convex window the result of Sutherland–Hodgman is the
/// exact intersection region of a *convex or concave* subject polygon,
/// except that concave subjects crossing the window several times may gain
/// zero-width bridges — harmless for area/rasterisation purposes.
pub fn clip_polygon_to_rect(poly: &Polygon, window: &Rect) -> Option<Polygon> {
    if !poly.bbox().intersects(window) {
        return None;
    }
    if window.contains_rect(&poly.bbox()) {
        return Some(poly.clone());
    }
    let sides = [
        Side::Left(window.lo.x),
        Side::Right(window.hi.x),
        Side::Bottom(window.lo.y),
        Side::Top(window.hi.y),
    ];
    let mut subject: Vec<Point> = poly.ring().to_vec();
    let mut output: Vec<Point> = Vec::with_capacity(subject.len() + 4);
    for side in sides {
        if subject.is_empty() {
            return None;
        }
        output.clear();
        let n = subject.len();
        for i in 0..n {
            let cur = subject[i];
            let prev = subject[(i + n - 1) % n];
            let cur_in = side.inside(&cur);
            let prev_in = side.inside(&prev);
            if cur_in {
                if !prev_in {
                    output.push(side.intersect(&prev, &cur));
                }
                output.push(cur);
            } else if prev_in {
                output.push(side.intersect(&prev, &cur));
            }
        }
        std::mem::swap(&mut subject, &mut output);
    }
    dedup_ring(&mut subject);
    Polygon::new(subject).ok()
}

/// Removes consecutive (near-)duplicate vertices produced by clipping.
fn dedup_ring(ring: &mut Vec<Point>) {
    ring.dedup_by(|a, b| a.distance_sq(b) < crate::EPSILON * crate::EPSILON);
    if ring.len() >= 2 {
        let first = ring[0];
        if ring.last().unwrap().distance_sq(&first) < crate::EPSILON * crate::EPSILON {
            ring.pop();
        }
    }
}

/// Area of `poly ∩ window` — the quantity the raster clip uses to decide
/// which tiles matter and the Q10 average needs for weighting.
pub fn clipped_area(poly: &Polygon, window: &Rect) -> f64 {
    clip_polygon_to_rect(poly, window).map_or(0.0, |p| p.area())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(pts: &[(f64, f64)]) -> Polygon {
        Polygon::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn window(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_corners(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    #[test]
    fn fully_inside_is_unchanged() {
        let p = poly(&[(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)]);
        let w = window(0.0, 0.0, 10.0, 10.0);
        assert_eq!(clip_polygon_to_rect(&p, &w).unwrap(), p);
    }

    #[test]
    fn fully_outside_is_none() {
        let p = poly(&[(20.0, 20.0), (21.0, 20.0), (21.0, 21.0), (20.0, 21.0)]);
        let w = window(0.0, 0.0, 10.0, 10.0);
        assert!(clip_polygon_to_rect(&p, &w).is_none());
    }

    #[test]
    fn half_overlapping_square() {
        let p = poly(&[(-1.0, 0.0), (1.0, 0.0), (1.0, 2.0), (-1.0, 2.0)]);
        let w = window(0.0, 0.0, 10.0, 10.0);
        let clipped = clip_polygon_to_rect(&p, &w).unwrap();
        assert!((clipped.area() - 2.0).abs() < 1e-9);
        assert!(w.contains_rect(&clipped.bbox()));
    }

    #[test]
    fn window_inside_polygon_yields_window() {
        let p = poly(&[(-10.0, -10.0), (10.0, -10.0), (10.0, 10.0), (-10.0, 10.0)]);
        let w = window(-1.0, -1.0, 1.0, 1.0);
        let clipped = clip_polygon_to_rect(&p, &w).unwrap();
        assert!((clipped.area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_corner_clip() {
        let tri = poly(&[(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)]);
        let w = window(0.0, 0.0, 2.0, 2.0);
        let clipped = clip_polygon_to_rect(&tri, &w).unwrap();
        // triangle area 8; the clip window keeps the unit corner square
        // region minus nothing: region = {x>=0,y>=0,x<=2,y<=2,x+y<=4} = 4 - 0 = ...
        // x+y<=4 cuts nothing inside the 2x2 window, so area = 4 - corner above line
        // the line x+y=4 passes through (2,2), so the full 2x2 square is inside.
        assert!((clipped.area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn concave_polygon_clip_area() {
        // L-shape of area 7 clipped to a window covering its lower bar.
        let l = poly(&[(0.0, 0.0), (4.0, 0.0), (4.0, 1.0), (1.0, 1.0), (1.0, 4.0), (0.0, 4.0)]);
        let w = window(0.0, 0.0, 4.0, 1.0);
        let clipped = clip_polygon_to_rect(&l, &w).unwrap();
        assert!((clipped.area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn clipped_area_zero_for_touching_edge() {
        let p = poly(&[(10.0, 0.0), (12.0, 0.0), (12.0, 2.0), (10.0, 2.0)]);
        let w = window(0.0, 0.0, 10.0, 10.0);
        // shares only the boundary line x=10 — degenerate, area 0
        assert_eq!(clipped_area(&p, &w), 0.0);
    }

    #[test]
    fn diamond_clip_produces_octagon() {
        let diamond = poly(&[(0.0, -3.0), (3.0, 0.0), (0.0, 3.0), (-3.0, 0.0)]);
        let w = window(-2.0, -2.0, 2.0, 2.0);
        let clipped = clip_polygon_to_rect(&diamond, &w).unwrap();
        assert_eq!(clipped.num_points(), 8);
        // diamond area 18; each of 4 clipped corners removes a triangle of area 1
        assert!((clipped.area() - 14.0).abs() < 1e-9);
    }
}
