//! Randomized property tests for the computational-geometry kernels,
//! driven by the deterministic in-repo PRNG (same cases every run).

use paradise_geom::algorithms::segment::{segments_intersect, Segment};
use paradise_geom::{algorithms::clip, Circle, Grid, Point, Polygon, Polyline, Rect};
use paradise_util::Rng;

const CASES: usize = 128;

fn point(rng: &mut Rng) -> Point {
    Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0))
}

fn segment(rng: &mut Rng) -> Segment {
    Segment::new(point(rng), point(rng))
}

/// Star polygon around a center — always simple (non-self-intersecting).
fn polygon(rng: &mut Rng) -> Polygon {
    let c = point(rng);
    let n = rng.gen_range(3usize..16);
    Polygon::new(
        (0..n)
            .map(|i| {
                let r = rng.gen_range(0.5f64..20.0);
                let a = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(c.x + r * a.cos(), c.y + r * a.sin())
            })
            .collect(),
    )
    .unwrap()
}

#[test]
fn segment_intersection_is_symmetric() {
    let mut rng = Rng::seed_from_u64(11);
    for _ in 0..CASES {
        let (a, b) = (segment(&mut rng), segment(&mut rng));
        assert_eq!(segments_intersect(&a, &b), segments_intersect(&b, &a));
    }
}

#[test]
fn segment_intersects_itself_and_reverse() {
    let mut rng = Rng::seed_from_u64(12);
    for _ in 0..CASES {
        let a = segment(&mut rng);
        assert!(segments_intersect(&a, &a));
        let rev = Segment::new(a.b, a.a);
        assert!(segments_intersect(&a, &rev));
    }
}

#[test]
fn segment_distance_zero_iff_intersecting() {
    let mut rng = Rng::seed_from_u64(13);
    for _ in 0..CASES {
        let (a, b) = (segment(&mut rng), segment(&mut rng));
        let d = a.distance_to_segment(&b);
        if segments_intersect(&a, &b) {
            assert!(d == 0.0);
        } else {
            assert!(d > 0.0);
        }
    }
}

#[test]
fn point_distance_respects_containment() {
    let mut rng = Rng::seed_from_u64(14);
    for _ in 0..CASES {
        let poly = polygon(&mut rng);
        let p = point(&mut rng);
        let d = poly.distance_to_point(&p);
        assert!(d >= 0.0);
        if poly.contains_point(&p) {
            assert!(d == 0.0);
        }
    }
}

#[test]
fn polygon_centroid_inside_bbox() {
    let mut rng = Rng::seed_from_u64(15);
    for _ in 0..CASES {
        // (For star-shaped polygons the area centroid lies in the bbox.)
        let poly = polygon(&mut rng);
        assert!(poly.bbox().expand(1e-9).contains_point(&poly.centroid()));
    }
}

#[test]
fn polygon_area_invariant_under_rotation_of_vertices() {
    let mut rng = Rng::seed_from_u64(16);
    for _ in 0..CASES {
        let poly = polygon(&mut rng);
        let k = rng.index(16);
        let ring = poly.ring();
        let n = ring.len();
        let rotated: Vec<Point> = (0..n).map(|i| ring[(i + k % n) % n]).collect();
        let rot = Polygon::new(rotated).unwrap();
        assert!((rot.area() - poly.area()).abs() < 1e-9 * poly.area().max(1.0));
        assert_eq!(rot.bbox(), poly.bbox());
    }
}

#[test]
fn overlaps_is_symmetric() {
    let mut rng = Rng::seed_from_u64(17);
    for _ in 0..CASES {
        let (a, b) = (polygon(&mut rng), polygon(&mut rng));
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }
}

#[test]
fn polygon_overlaps_itself_and_its_bbox() {
    let mut rng = Rng::seed_from_u64(18);
    for _ in 0..CASES {
        let a = polygon(&mut rng);
        assert!(a.overlaps(&a));
        assert!(a.overlaps_rect(&a.bbox()));
    }
}

#[test]
fn bbox_vertices_inside() {
    let mut rng = Rng::seed_from_u64(19);
    for _ in 0..CASES {
        let a = polygon(&mut rng);
        for p in a.ring() {
            assert!(a.bbox().contains_point(p));
        }
    }
}

#[test]
fn clip_commutes_with_area_monotonicity() {
    let mut rng = Rng::seed_from_u64(20);
    for _ in 0..CASES {
        let a = polygon(&mut rng);
        let w = Rect::from_corners(point(&mut rng), point(&mut rng)).unwrap();
        let grow = rng.gen_range(0.1f64..10.0);
        let bigger = w.expand(grow);
        let inner = clip::clipped_area(&a, &w);
        let outer = clip::clipped_area(&a, &bigger);
        assert!(outer + 1e-9 >= inner, "growing the window cannot shrink the clip");
    }
}

#[test]
fn polyline_length_additive_under_densification() {
    let mut rng = Rng::seed_from_u64(21);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..10);
        let pts: Vec<Point> = (0..n).map(|_| point(&mut rng)).collect();
        let line = Polyline::new(pts).unwrap();
        // Inserting each segment midpoint must not change the length.
        let mut dense = Vec::new();
        let points = line.points();
        for w in points.windows(2) {
            dense.push(w[0]);
            dense.push(Point::new((w[0].x + w[1].x) / 2.0, (w[0].y + w[1].y) / 2.0));
        }
        dense.push(*points.last().unwrap());
        let dl = Polyline::new(dense).unwrap();
        assert!((dl.length() - line.length()).abs() < 1e-9 * line.length().max(1.0));
    }
}

#[test]
fn circle_bbox_contains_circle_points() {
    let mut rng = Rng::seed_from_u64(22);
    for _ in 0..CASES {
        let c = point(&mut rng);
        let r = rng.gen_range(0.0f64..50.0);
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let circle = Circle::new(c, r).unwrap();
        let on_circle = Point::new(c.x + r * angle.cos(), c.y + r * angle.sin());
        assert!(circle.bbox().expand(1e-9).contains_point(&on_circle));
        // On-circle points are contained up to numeric slack at the boundary.
        let contained = circle.contains_point(&on_circle) || c.distance(&on_circle) <= r + 1e-9;
        assert!(contained);
    }
}

#[test]
fn grid_point_tile_is_in_covering_set() {
    let mut rng = Rng::seed_from_u64(23);
    for _ in 0..CASES {
        let p = point(&mut rng);
        let tiles = rng.gen_range(4u32..5000);
        let world =
            Rect::from_corners(Point::new(-100.0, -100.0), Point::new(100.0, 100.0)).unwrap();
        let grid = Grid::with_tile_count(world, tiles).unwrap();
        let tile = grid.tile_of_point(&p);
        assert!(grid.tile_rect(tile).expand(1e-9).contains_point(&p));
        let ids = grid.tile_ids_for_rect(&p.bbox());
        assert!(ids.contains(&tile));
    }
}

#[test]
fn make_box_contains_its_center() {
    let mut rng = Rng::seed_from_u64(24);
    for _ in 0..CASES {
        let p = point(&mut rng);
        let len = rng.gen_range(0.1f64..40.0);
        let b = p.make_box(len);
        assert!(b.contains_point(&p));
        assert!((b.area() - len * len).abs() < 1e-9 * len * len);
    }
}
