//! Property-based tests for the computational-geometry kernels.

use paradise_geom::algorithms::segment::{segments_intersect, Segment};
use paradise_geom::{algorithms::clip, Circle, Grid, Point, Polygon, Polyline, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Segment::new(a, b))
}

/// Star polygon around a center — always simple (non-self-intersecting).
fn arb_polygon() -> impl Strategy<Value = Polygon> {
    (arb_point(), proptest::collection::vec(0.5f64..20.0, 3..16)).prop_map(|(c, radii)| {
        let n = radii.len();
        Polygon::new(
            radii
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    let a = std::f64::consts::TAU * i as f64 / n as f64;
                    Point::new(c.x + r * a.cos(), c.y + r * a.sin())
                })
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn segment_intersection_is_symmetric(a in arb_segment(), b in arb_segment()) {
        prop_assert_eq!(segments_intersect(&a, &b), segments_intersect(&b, &a));
    }

    #[test]
    fn segment_intersects_itself_and_reverse(a in arb_segment()) {
        prop_assert!(segments_intersect(&a, &a));
        let rev = Segment::new(a.b, a.a);
        prop_assert!(segments_intersect(&a, &rev));
    }

    #[test]
    fn segment_distance_zero_iff_intersecting(a in arb_segment(), b in arb_segment()) {
        let d = a.distance_to_segment(&b);
        if segments_intersect(&a, &b) {
            prop_assert!(d == 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn point_distance_respects_containment(poly in arb_polygon(), p in arb_point()) {
        let d = poly.distance_to_point(&p);
        prop_assert!(d >= 0.0);
        if poly.contains_point(&p) {
            prop_assert!(d == 0.0);
        }
    }

    #[test]
    fn polygon_centroid_inside_bbox(poly in arb_polygon()) {
        // (For star-shaped polygons the area centroid lies in the bbox.)
        prop_assert!(poly.bbox().expand(1e-9).contains_point(&poly.centroid()));
    }

    #[test]
    fn polygon_area_invariant_under_rotation_of_vertices(poly in arb_polygon(), k in 0usize..16) {
        let ring = poly.ring();
        let n = ring.len();
        let rotated: Vec<Point> = (0..n).map(|i| ring[(i + k % n) % n]).collect();
        let rot = Polygon::new(rotated).unwrap();
        prop_assert!((rot.area() - poly.area()).abs() < 1e-9 * poly.area().max(1.0));
        prop_assert_eq!(rot.bbox(), poly.bbox());
    }

    #[test]
    fn overlaps_is_symmetric(a in arb_polygon(), b in arb_polygon()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn polygon_overlaps_itself_and_its_bbox(a in arb_polygon()) {
        prop_assert!(a.overlaps(&a));
        prop_assert!(a.overlaps_rect(&a.bbox()));
    }

    #[test]
    fn bbox_vertices_inside(a in arb_polygon()) {
        for p in a.ring() {
            prop_assert!(a.bbox().contains_point(p));
        }
    }

    #[test]
    fn clip_commutes_with_area_monotonicity(a in arb_polygon(), w1 in (arb_point(), arb_point()), grow in 0.1f64..10.0) {
        let w = Rect::from_corners(w1.0, w1.1).unwrap();
        let bigger = w.expand(grow);
        let inner = clip::clipped_area(&a, &w);
        let outer = clip::clipped_area(&a, &bigger);
        prop_assert!(outer + 1e-9 >= inner, "growing the window cannot shrink the clip");
    }

    #[test]
    fn polyline_length_additive_under_densification(pts in proptest::collection::vec(arb_point(), 2..10)) {
        let line = Polyline::new(pts).unwrap();
        // Inserting each segment midpoint must not change the length.
        let mut dense = Vec::new();
        let points = line.points();
        for w in points.windows(2) {
            dense.push(w[0]);
            dense.push(Point::new((w[0].x + w[1].x) / 2.0, (w[0].y + w[1].y) / 2.0));
        }
        dense.push(*points.last().unwrap());
        let dl = Polyline::new(dense).unwrap();
        prop_assert!((dl.length() - line.length()).abs() < 1e-9 * line.length().max(1.0));
    }

    #[test]
    fn circle_bbox_contains_circle_points(c in arb_point(), r in 0.0f64..50.0, angle in 0.0f64..std::f64::consts::TAU) {
        let circle = Circle::new(c, r).unwrap();
        let on_circle = Point::new(c.x + r * angle.cos(), c.y + r * angle.sin());
        prop_assert!(circle.bbox().expand(1e-9).contains_point(&on_circle));
        // On-circle points are contained up to numeric slack at the boundary.
        let contained =
            circle.contains_point(&on_circle) || c.distance(&on_circle) <= r + 1e-9;
        prop_assert!(contained);
    }

    #[test]
    fn grid_point_tile_is_in_covering_set(p in arb_point(), tiles in 4u32..5000) {
        let world = Rect::from_corners(Point::new(-100.0, -100.0), Point::new(100.0, 100.0)).unwrap();
        let grid = Grid::with_tile_count(world, tiles).unwrap();
        let tile = grid.tile_of_point(&p);
        prop_assert!(grid.tile_rect(tile).expand(1e-9).contains_point(&p));
        let ids = grid.tile_ids_for_rect(&p.bbox());
        prop_assert!(ids.contains(&tile));
    }

    #[test]
    fn make_box_contains_its_center(p in arb_point(), len in 0.1f64..40.0) {
        let b = p.make_box(len);
        prop_assert!(b.contains_point(&p));
        prop_assert!((b.area() - len * len).abs() < 1e-9 * len * len);
    }
}
