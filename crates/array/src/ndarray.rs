//! The N-dimensional array ADT (paper §2.1, §2.5.1).
//!
//! *"An N-dimensional array data type is also provided in which one of the N
//! dimensions can be varied. For example, four dimensional data of the form
//! latitude, longitude, and measured precipitation as a function of time
//! might be stored in such an array."*

use crate::{ArrayError, Result};

/// Element type of an array. Rasters use the unsigned integer widths
/// (8/16/24-bit pixels); scientific arrays use `F64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 8-bit unsigned.
    U8,
    /// 16-bit unsigned, little-endian.
    U16,
    /// 24-bit unsigned, little-endian (satellite composite channels).
    U24,
    /// 64-bit IEEE float, little-endian.
    F64,
}

impl ElemType {
    /// Bytes per element.
    #[inline]
    pub const fn size(&self) -> usize {
        match self {
            ElemType::U8 => 1,
            ElemType::U16 => 2,
            ElemType::U24 => 3,
            ElemType::F64 => 8,
        }
    }
}

/// A dense, row-major N-dimensional array.
///
/// Dimension 0 is the outermost (slowest-varying). If the array is declared
/// *unbounded*, dimension 0 may grow by [`NdArray::append_slab`]; appended
/// data stays contiguous because dimension 0 is the slowest-varying one.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray {
    dims: Vec<usize>,
    elem: ElemType,
    unbounded: bool,
    data: Vec<u8>,
}

impl NdArray {
    /// Creates an array from raw little-endian `data`.
    pub fn new(dims: Vec<usize>, elem: ElemType, data: Vec<u8>) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(ArrayError::BadShape(dims));
        }
        let expected = dims.iter().product::<usize>() * elem.size();
        if data.len() != expected {
            return Err(ArrayError::DataSizeMismatch { expected, got: data.len() });
        }
        Ok(NdArray { dims, elem, unbounded: false, data })
    }

    /// Creates a zero-filled array.
    pub fn zeros(dims: Vec<usize>, elem: ElemType) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(ArrayError::BadShape(dims));
        }
        let len = dims.iter().product::<usize>() * elem.size();
        Ok(NdArray { dims, elem, unbounded: false, data: vec![0; len] })
    }

    /// Marks dimension 0 as unbounded, enabling [`NdArray::append_slab`].
    pub fn with_unbounded_dim0(mut self) -> Self {
        self.unbounded = true;
        self
    }

    /// The dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The element type.
    #[inline]
    pub fn elem_type(&self) -> ElemType {
        self.elem
    }

    /// Total number of elements.
    #[inline]
    pub fn num_elems(&self) -> usize {
        self.dims.iter().product()
    }

    /// Total payload size in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Raw little-endian payload.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Whether the array exceeds the inline-storage threshold for a page of
    /// `page_size` bytes. Paper §2.5.1: arrays larger than 70% of a SHORE
    /// page become separate objects; smaller ones are inlined in the tuple.
    pub fn is_large(&self, page_size: usize) -> bool {
        self.data.len() * 10 > page_size * 7
    }

    /// Linear element index for a multi-index (row-major).
    pub fn linear_index(&self, idx: &[usize]) -> Result<usize> {
        if idx.len() != self.dims.len() {
            return Err(ArrayError::OutOfBounds);
        }
        let mut lin = 0usize;
        for (i, (&x, &d)) in idx.iter().zip(&self.dims).enumerate() {
            if x >= d {
                return Err(ArrayError::OutOfBounds);
            }
            let _ = i;
            lin = lin * d + x;
        }
        Ok(lin)
    }

    /// Reads the element at `idx` as an unsigned integer (floats are
    /// bit-reinterpreted; use [`NdArray::get_f64`] for those).
    pub fn get(&self, idx: &[usize]) -> Result<u64> {
        let lin = self.linear_index(idx)?;
        Ok(self.get_linear(lin))
    }

    /// Reads element `lin` (already linearised) as an unsigned integer.
    pub fn get_linear(&self, lin: usize) -> u64 {
        let sz = self.elem.size();
        let off = lin * sz;
        let mut v = 0u64;
        for (i, &b) in self.data[off..off + sz].iter().enumerate() {
            v |= u64::from(b) << (8 * i);
        }
        v
    }

    /// Writes the element at `idx` from an unsigned integer (truncating to
    /// the element width).
    pub fn set(&mut self, idx: &[usize], value: u64) -> Result<()> {
        let lin = self.linear_index(idx)?;
        self.set_linear(lin, value);
        Ok(())
    }

    /// Writes element `lin` (already linearised).
    pub fn set_linear(&mut self, lin: usize, value: u64) {
        let sz = self.elem.size();
        let off = lin * sz;
        for i in 0..sz {
            self.data[off + i] = (value >> (8 * i)) as u8;
        }
    }

    /// Reads an `F64` element.
    pub fn get_f64(&self, idx: &[usize]) -> Result<f64> {
        debug_assert_eq!(self.elem, ElemType::F64);
        Ok(f64::from_bits(self.get(idx)?))
    }

    /// Writes an `F64` element.
    pub fn set_f64(&mut self, idx: &[usize], value: f64) -> Result<()> {
        debug_assert_eq!(self.elem, ElemType::F64);
        self.set(idx, value.to_bits())
    }

    /// Appends a slab along dimension 0. The slab must have the same shape
    /// as `self` with any dimension-0 size, and the array must be unbounded.
    ///
    /// This is how time-series arrays grow: e.g. appending one day of
    /// (lat, lon, precipitation) readings to a (time, lat, lon) array.
    pub fn append_slab(&mut self, slab: &NdArray) -> Result<()> {
        if !self.unbounded
            || slab.elem != self.elem
            || slab.dims.len() != self.dims.len()
            || slab.dims[1..] != self.dims[1..]
        {
            return Err(ArrayError::BadAppend);
        }
        self.dims[0] += slab.dims[0];
        self.data.extend_from_slice(&slab.data);
        Ok(())
    }

    /// Copies out the hyper-rectangular region `[lo[i], lo[i]+shape[i])` in
    /// every dimension as a new (bounded) array.
    ///
    /// Q2's "only the subarray itself is fetched" result delivery and the
    /// per-tile extraction of the tiling module both reduce to this.
    pub fn subarray(&self, lo: &[usize], shape: &[usize]) -> Result<NdArray> {
        check_bounds(lo, shape, &self.dims)?;
        let sz = self.elem.size();
        let out_len = shape.iter().product::<usize>() * sz;
        let mut out = Vec::with_capacity(out_len);
        // Copy contiguous runs along the innermost dimension.
        let inner = *shape.last().unwrap();
        let n_rows = shape[..shape.len() - 1].iter().product::<usize>();
        let mut idx = lo.to_vec();
        for _ in 0..n_rows {
            let start = self.linear_index(&idx)? * sz;
            out.extend_from_slice(&self.data[start..start + inner * sz]);
            // Advance the multi-index over the outer dims (odometer).
            for d in (0..shape.len() - 1).rev() {
                idx[d] += 1;
                if idx[d] < lo[d] + shape[d] {
                    break;
                }
                idx[d] = lo[d];
            }
        }
        NdArray::new(shape.to_vec(), self.elem, out)
    }

    /// Writes `patch` into the region starting at `lo` (inverse of
    /// [`NdArray::subarray`]; used when reassembling an array from tiles).
    pub fn write_subarray(&mut self, lo: &[usize], patch: &NdArray) -> Result<()> {
        check_bounds(lo, &patch.dims, &self.dims)?;
        let sz = self.elem.size();
        let inner = *patch.dims.last().unwrap();
        let n_rows = patch.dims[..patch.dims.len() - 1].iter().product::<usize>();
        let mut idx = lo.to_vec();
        let mut src = 0usize;
        for _ in 0..n_rows {
            let start = self.linear_index(&idx)? * sz;
            let run = inner * sz;
            self.data[start..start + run].copy_from_slice(&patch.data[src..src + run]);
            src += run;
            for d in (0..patch.dims.len() - 1).rev() {
                idx[d] += 1;
                if idx[d] < lo[d] + patch.dims[d] {
                    break;
                }
                idx[d] = lo[d];
            }
        }
        Ok(())
    }
}

/// Validates that region `[lo, lo+shape)` fits inside `dims` and that the
/// rank matches; zero-size regions are rejected.
fn check_bounds(lo: &[usize], shape: &[usize], dims: &[usize]) -> Result<()> {
    if lo.len() != dims.len() || shape.len() != dims.len() {
        return Err(ArrayError::OutOfBounds);
    }
    for ((&l, &s), &d) in lo.iter().zip(shape).zip(dims) {
        if s == 0 || l + s > d {
            return Err(ArrayError::OutOfBounds);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(dims: Vec<usize>, elem: ElemType) -> NdArray {
        let mut a = NdArray::zeros(dims, elem).unwrap();
        for i in 0..a.num_elems() {
            a.set_linear(i, i as u64);
        }
        a
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(NdArray::zeros(vec![], ElemType::U8), Err(ArrayError::BadShape(_))));
        assert!(matches!(NdArray::zeros(vec![4, 0], ElemType::U8), Err(ArrayError::BadShape(_))));
        assert!(matches!(
            NdArray::new(vec![2, 2], ElemType::U16, vec![0; 7]),
            Err(ArrayError::DataSizeMismatch { expected: 8, got: 7 })
        ));
    }

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemType::U8.size(), 1);
        assert_eq!(ElemType::U16.size(), 2);
        assert_eq!(ElemType::U24.size(), 3);
        assert_eq!(ElemType::F64.size(), 8);
    }

    #[test]
    fn get_set_roundtrip_all_widths() {
        for elem in [ElemType::U8, ElemType::U16, ElemType::U24] {
            let mut a = NdArray::zeros(vec![3, 4], elem).unwrap();
            let max = (1u64 << (8 * elem.size())) - 1;
            a.set(&[2, 3], max).unwrap();
            a.set(&[0, 0], 1).unwrap();
            assert_eq!(a.get(&[2, 3]).unwrap(), max);
            assert_eq!(a.get(&[0, 0]).unwrap(), 1);
            assert_eq!(a.get(&[1, 1]).unwrap(), 0);
        }
    }

    #[test]
    fn f64_roundtrip() {
        let mut a = NdArray::zeros(vec![2, 2], ElemType::F64).unwrap();
        a.set_f64(&[1, 0], -2.5).unwrap();
        assert_eq!(a.get_f64(&[1, 0]).unwrap(), -2.5);
    }

    #[test]
    fn row_major_layout() {
        let a = iota(vec![2, 3], ElemType::U8);
        // [[0,1,2],[3,4,5]]
        assert_eq!(a.get(&[0, 2]).unwrap(), 2);
        assert_eq!(a.get(&[1, 0]).unwrap(), 3);
        assert_eq!(a.data(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let a = iota(vec![2, 3], ElemType::U8);
        assert_eq!(a.get(&[2, 0]), Err(ArrayError::OutOfBounds));
        assert_eq!(a.get(&[0, 3]), Err(ArrayError::OutOfBounds));
        assert_eq!(a.get(&[0]), Err(ArrayError::OutOfBounds));
    }

    #[test]
    fn subarray_2d() {
        let a = iota(vec![4, 5], ElemType::U16);
        let s = a.subarray(&[1, 2], &[2, 3]).unwrap();
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.get(&[0, 0]).unwrap(), 7); // (1,2) of 4x5 = 1*5+2
        assert_eq!(s.get(&[1, 2]).unwrap(), 14); // (2,4) = 2*5+4
    }

    #[test]
    fn subarray_1d_and_3d() {
        let a = iota(vec![10], ElemType::U8);
        let s = a.subarray(&[3], &[4]).unwrap();
        assert_eq!(s.data(), &[3, 4, 5, 6]);

        let b = iota(vec![2, 3, 4], ElemType::U8);
        let t = b.subarray(&[1, 1, 1], &[1, 2, 2]).unwrap();
        // (1,1,1) = 12+4+1 = 17; (1,1,2)=18; (1,2,1)=21; (1,2,2)=22
        assert_eq!(t.data(), &[17, 18, 21, 22]);
    }

    #[test]
    fn subarray_full_is_identity() {
        let a = iota(vec![3, 3], ElemType::U24);
        let s = a.subarray(&[0, 0], &[3, 3]).unwrap();
        assert_eq!(s, a);
    }

    #[test]
    fn subarray_out_of_bounds() {
        let a = iota(vec![4, 4], ElemType::U8);
        assert!(a.subarray(&[2, 2], &[3, 1]).is_err());
        assert!(a.subarray(&[0, 0], &[0, 1]).is_err());
    }

    #[test]
    fn write_subarray_roundtrip() {
        let mut a = NdArray::zeros(vec![4, 4], ElemType::U8).unwrap();
        let patch = iota(vec![2, 2], ElemType::U8); // [[0,1],[2,3]]
        a.write_subarray(&[1, 1], &patch).unwrap();
        assert_eq!(a.get(&[1, 1]).unwrap(), 0);
        assert_eq!(a.get(&[1, 2]).unwrap(), 1);
        assert_eq!(a.get(&[2, 1]).unwrap(), 2);
        assert_eq!(a.get(&[2, 2]).unwrap(), 3);
        assert_eq!(a.get(&[0, 0]).unwrap(), 0);
        let back = a.subarray(&[1, 1], &[2, 2]).unwrap();
        assert_eq!(back.data(), patch.data());
    }

    #[test]
    fn append_slab_grows_dim0() {
        let mut a = iota(vec![2, 3], ElemType::U8).with_unbounded_dim0();
        let slab = iota(vec![1, 3], ElemType::U8);
        a.append_slab(&slab).unwrap();
        assert_eq!(a.dims(), &[3, 3]);
        assert_eq!(a.get(&[2, 1]).unwrap(), 1);
    }

    #[test]
    fn append_rejected_when_bounded_or_mismatched() {
        let mut bounded = iota(vec![2, 3], ElemType::U8);
        let slab = iota(vec![1, 3], ElemType::U8);
        assert_eq!(bounded.append_slab(&slab), Err(ArrayError::BadAppend));

        let mut a = iota(vec![2, 3], ElemType::U8).with_unbounded_dim0();
        let bad_shape = iota(vec![1, 4], ElemType::U8);
        assert_eq!(a.append_slab(&bad_shape), Err(ArrayError::BadAppend));
        let bad_elem = iota(vec![1, 3], ElemType::U16);
        assert_eq!(a.append_slab(&bad_elem), Err(ArrayError::BadAppend));
    }

    #[test]
    fn is_large_threshold() {
        // 70% of an 8192-byte page = 5734.4
        let small = NdArray::zeros(vec![5734], ElemType::U8).unwrap();
        let large = NdArray::zeros(vec![5735], ElemType::U8).unwrap();
        assert!(!small.is_large(8192));
        assert!(large.is_large(8192));
    }
}
