//! LZW lossless compression (Welch 1984).
//!
//! Paper §2.5.1: *"when a tile is written to disk it is compressed using a
//! lossless compression algorithm (LZW). To handle the unpredictability of
//! the compression algorithm, the array ADT examines the size reduction
//! achieved by compression. If compression does not reduce the size of the
//! tile significantly, the tile is stored in its uncompressed form."*
//!
//! This is a from-scratch variable-width LZW (TIFF/GIF style): codes start
//! at 9 bits, the dictionary holds 256 literals plus `CLEAR` (256) and
//! `END` (257); the width grows to 12 bits, after which the encoder emits
//! `CLEAR` and resets. [`maybe_compress`] implements the adaptive flag.

use crate::{ArrayError, Result};

const CLEAR: u16 = 256;
const END: u16 = 257;
const FIRST_FREE: u16 = 258;
const MAX_WIDTH: u32 = 12;
const MAX_CODES: usize = 1 << MAX_WIDTH;

/// Bit-level writer packing codes MSB-first.
struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { out: Vec::new(), acc: 0, nbits: 0 }
    }

    fn put(&mut self, code: u16, width: u32) {
        self.acc = (self.acc << width) | u32::from(code);
        self.nbits += width;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.out
    }
}

/// Bit-level reader yielding codes MSB-first.
struct BitReader<'a> {
    input: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(input: &'a [u8]) -> Self {
        BitReader { input, pos: 0, acc: 0, nbits: 0 }
    }

    fn get(&mut self, width: u32) -> Option<u16> {
        while self.nbits < width {
            let byte = *self.input.get(self.pos)?;
            self.pos += 1;
            self.acc = (self.acc << 8) | u32::from(byte);
            self.nbits += 8;
        }
        self.nbits -= width;
        Some(((self.acc >> self.nbits) & ((1 << width) - 1)) as u16)
    }
}

/// Encoder dictionary: maps (prefix code, next byte) -> code using a flat
/// hash-free table keyed by `prefix * 256 + byte` in a sorted-probe vector
/// would be slow; instead use an array of per-prefix first-child plus
/// sibling links (the classic trie encoding, O(1) amortised).
struct EncDict {
    /// first_child[code] = code of (code, some byte) chain head or u16::MAX
    first_child: Vec<u16>,
    /// sibling[code] = next entry with the same prefix or u16::MAX
    sibling: Vec<u16>,
    /// suffix byte of each code
    suffix: Vec<u8>,
    next_code: u16,
}

impl EncDict {
    fn new() -> Self {
        let mut d = EncDict {
            first_child: Vec::with_capacity(MAX_CODES),
            sibling: Vec::with_capacity(MAX_CODES),
            suffix: Vec::with_capacity(MAX_CODES),
            next_code: FIRST_FREE,
        };
        d.reset();
        d
    }

    fn reset(&mut self) {
        self.first_child.clear();
        self.sibling.clear();
        self.suffix.clear();
        self.first_child.resize(MAX_CODES, u16::MAX);
        self.sibling.resize(MAX_CODES, u16::MAX);
        self.suffix.resize(MAX_CODES, 0);
        self.next_code = FIRST_FREE;
    }

    /// Looks up (prefix, byte); returns its code if present.
    fn find(&self, prefix: u16, byte: u8) -> Option<u16> {
        let mut c = self.first_child[prefix as usize];
        while c != u16::MAX {
            if self.suffix[c as usize] == byte {
                return Some(c);
            }
            c = self.sibling[c as usize];
        }
        None
    }

    /// Inserts (prefix, byte) as the next free code. Returns false when full.
    fn insert(&mut self, prefix: u16, byte: u8) -> bool {
        if (self.next_code as usize) >= MAX_CODES {
            return false;
        }
        let code = self.next_code;
        self.next_code += 1;
        self.suffix[code as usize] = byte;
        self.sibling[code as usize] = self.first_child[prefix as usize];
        self.first_child[prefix as usize] = code;
        true
    }

    fn code_width(&self) -> u32 {
        // Width must cover next_code (the decoder is one entry behind).
        let mut w = 9;
        while (1u32 << w) < u32::from(self.next_code) + 1 {
            w += 1;
        }
        w.min(MAX_WIDTH)
    }
}

/// Compresses `data` with LZW. Empty input yields an empty stream.
pub fn compress(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut dict = EncDict::new();
    let mut w = BitWriter::new();
    w.put(CLEAR, dict.code_width());
    let mut prefix = u16::from(data[0]);
    for &byte in &data[1..] {
        match dict.find(prefix, byte) {
            Some(code) => prefix = code,
            None => {
                w.put(prefix, dict.code_width());
                if !dict.insert(prefix, byte) {
                    w.put(CLEAR, dict.code_width());
                    dict.reset();
                }
                prefix = u16::from(byte);
            }
        }
    }
    w.put(prefix, dict.code_width());
    w.put(END, dict.code_width());
    w.finish()
}

/// Decompresses an LZW stream produced by [`compress`].
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>> {
    if stream.is_empty() {
        return Ok(Vec::new());
    }
    // Decoder dictionary: prefix link + suffix byte per code.
    let mut prefix_of = vec![u16::MAX; MAX_CODES];
    let mut suffix_of = vec![0u8; MAX_CODES];
    let mut next_code: u16 = FIRST_FREE;
    let mut width: u32 = 9;

    let mut r = BitReader::new(stream);
    let mut out = Vec::with_capacity(stream.len() * 3);
    let mut prev: Option<u16> = None;
    let mut entry_buf = Vec::with_capacity(64);

    loop {
        let code = match r.get(width) {
            Some(c) => c,
            None => return Err(ArrayError::CorruptStream("truncated stream")),
        };
        if code == END {
            return Ok(out);
        }
        if code == CLEAR {
            next_code = FIRST_FREE;
            width = 9;
            prev = None;
            continue;
        }
        if code > next_code || (code == next_code && prev.is_none()) {
            return Err(ArrayError::CorruptStream("code beyond dictionary"));
        }

        // Expand `code` (or the KwKwK special case) into entry_buf.
        entry_buf.clear();
        let expand = |c: u16, buf: &mut Vec<u8>, prefix_of: &[u16], suffix_of: &[u8]| {
            let mut c = c;
            loop {
                if c < 256 {
                    buf.push(c as u8);
                    break;
                }
                buf.push(suffix_of[c as usize]);
                c = prefix_of[c as usize];
            }
            buf.reverse();
        };
        if code == next_code {
            // KwKwK: entry = prev expansion + its first byte.
            let p = prev.expect("checked above");
            expand(p, &mut entry_buf, &prefix_of, &suffix_of);
            let first = entry_buf[0];
            entry_buf.push(first);
        } else {
            expand(code, &mut entry_buf, &prefix_of, &suffix_of);
        }
        out.extend_from_slice(&entry_buf);

        if let Some(p) = prev {
            if (next_code as usize) < MAX_CODES {
                prefix_of[next_code as usize] = p;
                suffix_of[next_code as usize] = entry_buf[0];
                next_code += 1;
            }
        }
        prev = Some(code);
        // Grow width exactly as the encoder does: it must cover next_code+1.
        while width < MAX_WIDTH && (1u32 << width) < u32::from(next_code) + 2 {
            width += 1;
        }
    }
}

/// Minimum fraction of the original a compressed tile must shave off to be
/// stored compressed (paper: "if compression does not reduce the size of
/// the tile significantly, the tile is stored in its uncompressed form").
pub const MIN_SAVINGS: f64 = 0.10;

/// Compresses `data`; returns `(bytes, compressed_flag)` — the flag records
/// whether the bytes are LZW or raw, mirroring the mapping-table flag bit.
pub fn maybe_compress(data: &[u8]) -> (Vec<u8>, bool) {
    let packed = compress(data);
    if (packed.len() as f64) <= (data.len() as f64) * (1.0 - MIN_SAVINGS) {
        (packed, true)
    } else {
        (data.to_vec(), false)
    }
}

/// Inverse of [`maybe_compress`].
pub fn maybe_decompress(bytes: &[u8], compressed: bool) -> Result<Vec<u8>> {
    if compressed {
        decompress(bytes)
    } else {
        Ok(bytes.to_vec())
    }
}

/// [`maybe_compress`] over a batch of tiles on a worker pool, one tile per
/// morsel (a tile is already thousands of bytes of codec work). Outputs
/// are returned in input order regardless of the pool size — the codec is
/// a pure per-tile function, so the batch is trivially deterministic.
pub fn maybe_compress_batch(
    pool: &paradise_util::workers::WorkerPool,
    tiles: &[Vec<u8>],
) -> Vec<(Vec<u8>, bool)> {
    pool.map_chunks(tiles, paradise_util::workers::BLOB_MORSEL, |chunk| {
        Ok::<_, std::convert::Infallible>(chunk.iter().map(|t| maybe_compress(t)).collect())
    })
    .unwrap_or_else(|e| match e {})
}

/// [`maybe_decompress`] over a batch of `(bytes, compressed_flag)` tiles
/// on a worker pool, one tile per morsel, outputs in input order. The
/// first failing tile (lowest index) reports the error, exactly as a
/// serial loop would.
pub fn maybe_decompress_batch(
    pool: &paradise_util::workers::WorkerPool,
    tiles: &[(Vec<u8>, bool)],
) -> Result<Vec<Vec<u8>>> {
    pool.map_chunks(tiles, paradise_util::workers::BLOB_MORSEL, |chunk| {
        chunk.iter().map(|(bytes, compressed)| maybe_decompress(bytes, *compressed)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed).expect("valid stream");
        assert_eq!(unpacked, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_roundtrip() {
        roundtrip(&[]);
        assert!(compress(&[]).is_empty());
        assert_eq!(decompress(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_byte() {
        roundtrip(&[42]);
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = vec![7u8; 10_000];
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 4, "{} vs {}", packed.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn kwkwk_case() {
        // "ababab..." exercises the code == next_code special case.
        let data: Vec<u8> = (0..1000).map(|i| if i % 2 == 0 { b'a' } else { b'b' }).collect();
        roundtrip(&data);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data);
    }

    #[test]
    fn pseudo_random_data_roundtrips() {
        // xorshift-ish deterministic noise — incompressible but must roundtrip.
        let mut x: u32 = 0x1234_5678;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn dictionary_overflow_resets() {
        // Long sequence with enough variety to fill the 12-bit dictionary.
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn maybe_compress_flags() {
        let smooth = vec![0u8; 4096];
        let (bytes, flag) = maybe_compress(&smooth);
        assert!(flag);
        assert!(bytes.len() < smooth.len());
        assert_eq!(maybe_decompress(&bytes, flag).unwrap(), smooth);

        let mut x: u32 = 99;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let (bytes, flag) = maybe_compress(&noise);
        assert!(!flag, "noise should be stored raw");
        assert_eq!(bytes, noise);
        assert_eq!(maybe_decompress(&bytes, flag).unwrap(), noise);
    }

    #[test]
    fn corrupt_stream_detected() {
        let packed = compress(b"hello hello hello");
        // Truncate mid-stream: should error, not panic.
        let cut = &packed[..packed.len() / 2];
        assert!(decompress(cut).is_err());
    }

    #[test]
    fn text_compresses() {
        let text = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        let packed = compress(&text);
        assert!(packed.len() < text.len() / 2);
        roundtrip(&text);
    }
}
