//! # paradise-array
//!
//! The array and raster-image ADTs of the Paradise geo-spatial DBMS
//! (paper §2.5, "Dealing with Large Satellite Images").
//!
//! Paradise stores satellite images *inside* the database. This crate
//! provides, from scratch:
//!
//! * [`ndarray::NdArray`] — an N-dimensional array ADT in which one dimension
//!   may be unbounded (grown by appending slabs);
//! * [`tiling`] — decomposition of large arrays into ~128 KB *tiles* with
//!   proportional per-dimension chunking (after Sarawagi \[Suni94\]) plus the
//!   mapping table that tracks tile objects (Figure 2.3);
//! * [`lzw`] — the LZW lossless compressor \[Welch 84\] applied per tile, with
//!   the paper's adaptive "store uncompressed if compression doesn't help"
//!   flag;
//! * [`raster`] — geo-located 2-D raster images (8-, 16-, and 24-bit pixels)
//!   derived from the array ADT, with the `clip(polygon)`, `lower_res(f)` and
//!   `average()` methods the benchmark queries call.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lzw;
pub mod ndarray;
pub mod raster;
pub mod tiling;

pub use ndarray::{ElemType, NdArray};
pub use raster::{BitDepth, Raster};
pub use tiling::{TileData, TileMap, TilingScheme, DEFAULT_TILE_BYTES};

/// Errors for array construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// Dimension list empty or a dimension is zero.
    BadShape(
        /// The offending dimensions.
        Vec<usize>,
    ),
    /// Data length does not match the product of dimensions × element size.
    DataSizeMismatch {
        /// Expected byte length.
        expected: usize,
        /// Supplied byte length.
        got: usize,
    },
    /// Index outside the array bounds.
    OutOfBounds,
    /// Appending to a bounded array, or a slab of the wrong shape.
    BadAppend,
    /// LZW stream was corrupt.
    CorruptStream(
        /// Human-readable reason.
        &'static str,
    ),
    /// Raster operation got an empty clip region.
    EmptyClip,
    /// Lower-resolution factor must be >= 1.
    BadFactor(
        /// The offending factor.
        usize,
    ),
}

impl std::fmt::Display for ArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayError::BadShape(d) => write!(f, "invalid array shape {d:?}"),
            ArrayError::DataSizeMismatch { expected, got } => {
                write!(f, "data size mismatch: expected {expected} bytes, got {got}")
            }
            ArrayError::OutOfBounds => write!(f, "array index out of bounds"),
            ArrayError::BadAppend => write!(f, "invalid append to array"),
            ArrayError::CorruptStream(why) => write!(f, "corrupt LZW stream: {why}"),
            ArrayError::EmptyClip => write!(f, "clip region does not overlap the raster"),
            ArrayError::BadFactor(k) => write!(f, "lower_res factor must be >= 1, got {k}"),
        }
    }
}

impl std::error::Error for ArrayError {}

/// Result alias for array operations.
pub type Result<T> = std::result::Result<T, ArrayError>;
