//! Geo-located 2-D raster images (paper §2.1, §2.5).
//!
//! A raster is derived from the array ADT: dims are `[height, width]`,
//! row 0 is the **north** (top) edge, and a world rectangle geo-registers
//! the pixels. `clip`, `lower_res` and `average` are the methods invoked by
//! benchmark queries 2, 3, 4, 9, 10 and 14.

use crate::ndarray::{ElemType, NdArray};
use crate::{ArrayError, Result};
use paradise_geom::{Point, Polygon, Rect};

/// Pixel depth of a raster (paper: "Three types of 2-D raster images are
/// supported: 8 bit, 16 bit, and 24 bit").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitDepth {
    /// 8 bits per pixel.
    Eight,
    /// 16 bits per pixel (AVHRR channels).
    Sixteen,
    /// 24 bits per pixel (composite colour).
    TwentyFour,
}

impl BitDepth {
    /// Matching array element type.
    pub const fn elem_type(&self) -> ElemType {
        match self {
            BitDepth::Eight => ElemType::U8,
            BitDepth::Sixteen => ElemType::U16,
            BitDepth::TwentyFour => ElemType::U24,
        }
    }

    /// Largest representable pixel value.
    pub const fn max_value(&self) -> u32 {
        match self {
            BitDepth::Eight => 0xFF,
            BitDepth::Sixteen => 0xFFFF,
            BitDepth::TwentyFour => 0xFF_FFFF,
        }
    }

    /// Bytes per pixel.
    pub const fn bytes(&self) -> usize {
        self.elem_type().size()
    }
}

/// A geo-located 2-D raster image, optionally with a validity mask.
///
/// The mask exists so `clip(polygon)` can return a rectangular pixel block
/// while excluding pixels outside the polygon; `average()` then ranges over
/// valid pixels only.
#[derive(Debug, Clone, PartialEq)]
pub struct Raster {
    depth: BitDepth,
    geo: Rect,
    array: NdArray,
    /// None = every pixel valid; Some(bits) = bitset, row-major, 1 = valid.
    mask: Option<Vec<u8>>,
}

impl Raster {
    /// Creates a zero-filled raster of `width × height` pixels covering the
    /// world rectangle `geo`.
    pub fn new(width: usize, height: usize, depth: BitDepth, geo: Rect) -> Result<Self> {
        let array = NdArray::zeros(vec![height, width], depth.elem_type())?;
        Ok(Raster { depth, geo, array, mask: None })
    }

    /// Wraps an existing `[height, width]` array.
    pub fn from_array(array: NdArray, depth: BitDepth, geo: Rect) -> Result<Self> {
        if array.dims().len() != 2 || array.elem_type() != depth.elem_type() {
            return Err(ArrayError::BadShape(array.dims().to_vec()));
        }
        Ok(Raster { depth, geo, array, mask: None })
    }

    /// Pixel columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.array.dims()[1]
    }

    /// Pixel rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.array.dims()[0]
    }

    /// Pixel depth.
    #[inline]
    pub fn depth(&self) -> BitDepth {
        self.depth
    }

    /// World rectangle covered by the raster.
    #[inline]
    pub fn geo(&self) -> Rect {
        self.geo
    }

    /// Underlying array (dims `[height, width]`).
    #[inline]
    pub fn array(&self) -> &NdArray {
        &self.array
    }

    /// Payload size in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.array.byte_len()
    }

    /// Reads pixel (col, row); row 0 is the top row.
    #[inline]
    pub fn pixel(&self, col: usize, row: usize) -> Result<u32> {
        Ok(self.array.get(&[row, col])? as u32)
    }

    /// Writes pixel (col, row), truncating to the bit depth.
    #[inline]
    pub fn set_pixel(&mut self, col: usize, row: usize, value: u32) -> Result<()> {
        self.array.set(&[row, col], u64::from(value & self.depth.max_value()))
    }

    /// World coordinates of the center of pixel (col, row).
    pub fn pixel_center(&self, col: usize, row: usize) -> Point {
        let px_w = self.geo.width() / self.width() as f64;
        let px_h = self.geo.height() / self.height() as f64;
        Point::new(
            self.geo.lo.x + (col as f64 + 0.5) * px_w,
            self.geo.hi.y - (row as f64 + 0.5) * px_h,
        )
    }

    /// Pixel containing a world point, or `None` when outside the raster.
    pub fn world_to_pixel(&self, p: &Point) -> Option<(usize, usize)> {
        if !self.geo.contains_point(p) {
            return None;
        }
        let px_w = self.geo.width() / self.width() as f64;
        let px_h = self.geo.height() / self.height() as f64;
        let col = (((p.x - self.geo.lo.x) / px_w) as usize).min(self.width() - 1);
        let row = (((self.geo.hi.y - p.y) / px_h) as usize).min(self.height() - 1);
        Some((col, row))
    }

    fn mask_bit(&self, col: usize, row: usize) -> bool {
        match &self.mask {
            None => true,
            Some(bits) => {
                let i = row * self.width() + col;
                bits[i / 8] & (1 << (i % 8)) != 0
            }
        }
    }

    /// Whether the pixel is valid (inside the clip region that produced
    /// this raster).
    pub fn is_valid(&self, col: usize, row: usize) -> bool {
        self.mask_bit(col, row)
    }

    /// Number of valid pixels.
    pub fn valid_count(&self) -> usize {
        match &self.mask {
            None => self.width() * self.height(),
            Some(bits) => bits.iter().map(|b| b.count_ones() as usize).sum(),
        }
    }

    /// Clips the raster to the world rectangle `window` — the subarray
    /// fetch path ("only the subarray itself is fetched", §2.2). The result
    /// covers `window ∩ geo`, snapped outward to pixel boundaries.
    pub fn clip_rect(&self, window: &Rect) -> Result<Raster> {
        let region = self.geo.intersection(window).ok_or(ArrayError::EmptyClip)?;
        let px_w = self.geo.width() / self.width() as f64;
        let px_h = self.geo.height() / self.height() as f64;
        let col0 = (((region.lo.x - self.geo.lo.x) / px_w).floor() as usize).min(self.width() - 1);
        let col1 =
            (((region.hi.x - self.geo.lo.x) / px_w).ceil() as usize).clamp(col0 + 1, self.width());
        let row0 = (((self.geo.hi.y - region.hi.y) / px_h).floor() as usize).min(self.height() - 1);
        let row1 =
            (((self.geo.hi.y - region.lo.y) / px_h).ceil() as usize).clamp(row0 + 1, self.height());
        let sub = self.array.subarray(&[row0, col0], &[row1 - row0, col1 - col0])?;
        let geo = Rect::from_corners(
            Point::new(self.geo.lo.x + col0 as f64 * px_w, self.geo.hi.y - row1 as f64 * px_h),
            Point::new(self.geo.lo.x + col1 as f64 * px_w, self.geo.hi.y - row0 as f64 * px_h),
        )
        .expect("pixel-aligned geo rect");
        Ok(Raster { depth: self.depth, geo, array: sub, mask: None })
    }

    /// Clips the raster by a polygon (queries 2–4, 9, 10, 14): the result
    /// covers the polygon's bounding box intersected with the raster, with
    /// pixels masked out unless their pixel rectangle overlaps the polygon
    /// (so a polygon smaller than one pixel still clips that pixel — oil
    /// fields stay visible on coarse composites).
    ///
    /// A polygon that *is* its bounding box (the benchmark's rectangular
    /// POLYGON constant) skips the per-pixel test.
    pub fn clip(&self, poly: &Polygon) -> Result<Raster> {
        let mut out = self.clip_rect(&poly.bbox())?;
        let rectangular = (poly.area() - poly.bbox().area()).abs()
            < paradise_geom::EPSILON * poly.bbox().area().max(1.0);
        if rectangular {
            return Ok(out);
        }
        let (w, h) = (out.width(), out.height());
        let px_w = out.geo.width() / w as f64;
        let px_h = out.geo.height() / h as f64;
        let mut bits = vec![0u8; (w * h).div_ceil(8)];
        let mut any_valid = false;
        for row in 0..h {
            for col in 0..w {
                // Cheap test first: center containment; otherwise exact
                // pixel-rectangle overlap (boundary pixels, tiny polygons).
                let valid = poly.contains_point(&out.pixel_center(col, row)) || {
                    let x0 = out.geo.lo.x + col as f64 * px_w;
                    let y1 = out.geo.hi.y - row as f64 * px_h;
                    let prect =
                        Rect::from_corners(Point::new(x0, y1 - px_h), Point::new(x0 + px_w, y1))
                            .expect("pixel rect");
                    poly.overlaps_rect(&prect)
                };
                if valid {
                    let i = row * w + col;
                    bits[i / 8] |= 1 << (i % 8);
                    any_valid = true;
                }
            }
        }
        if !any_valid {
            return Err(ArrayError::EmptyClip);
        }
        out.mask = Some(bits);
        Ok(out)
    }

    /// Mean of the valid pixel values (`raster.data.clip(POLY).average()`,
    /// query 10). `None` when no pixel is valid.
    pub fn average(&self) -> Option<f64> {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for row in 0..self.height() {
            for col in 0..self.width() {
                if self.mask_bit(col, row) {
                    sum += self.array.get(&[row, col]).expect("in range") as f64;
                    n += 1;
                }
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Reduces resolution by an integer factor `k` (query 4's
    /// `lower_res(8)`): each output pixel is the mean of a `k × k` block of
    /// valid input pixels.
    pub fn lower_res(&self, k: usize) -> Result<Raster> {
        if k == 0 {
            return Err(ArrayError::BadFactor(k));
        }
        let w = self.width().div_ceil(k).max(1);
        let h = self.height().div_ceil(k).max(1);
        let mut out = Raster::new(w, h, self.depth, self.geo)?;
        for orow in 0..h {
            for ocol in 0..w {
                let mut sum = 0u64;
                let mut n = 0u64;
                for row in orow * k..((orow + 1) * k).min(self.height()) {
                    for col in ocol * k..((ocol + 1) * k).min(self.width()) {
                        if self.mask_bit(col, row) {
                            sum += self.array.get(&[row, col]).expect("in range");
                            n += 1;
                        }
                    }
                }
                let v = sum.checked_div(n).unwrap_or(0) as u32;
                out.set_pixel(ocol, orow, v)?;
            }
        }
        Ok(out)
    }

    /// Pixel-by-pixel average of several same-shaped rasters (query 3).
    pub fn average_of(rasters: &[&Raster]) -> Result<Raster> {
        let first = rasters.first().ok_or(ArrayError::EmptyClip)?;
        let (w, h) = (first.width(), first.height());
        for r in rasters {
            if r.width() != w || r.height() != h || r.depth != first.depth {
                return Err(ArrayError::BadShape(vec![r.height(), r.width()]));
            }
        }
        let mut out = Raster::new(w, h, first.depth, first.geo)?;
        for row in 0..h {
            for col in 0..w {
                let mut sum = 0u64;
                let mut n = 0u64;
                for r in rasters {
                    if r.mask_bit(col, row) {
                        sum += r.array.get(&[row, col]).expect("in range");
                        n += 1;
                    }
                }
                let v = sum.checked_div(n).unwrap_or(0) as u32;
                out.set_pixel(col, row, v)?;
            }
        }
        Ok(out)
    }

    /// Resolution scaleup (paper §3.1.3): every pixel is over-sampled `s`
    /// times along each axis, with `perturb` adding a small signed offset to
    /// each over-sampled pixel "to prevent artificially high compression
    /// ratios". Values are clamped to the bit depth.
    pub fn oversample(&self, s: usize, mut perturb: impl FnMut() -> i64) -> Result<Raster> {
        if s == 0 {
            return Err(ArrayError::BadFactor(s));
        }
        let mut out = Raster::new(self.width() * s, self.height() * s, self.depth, self.geo)?;
        let max = i64::from(self.depth.max_value());
        for row in 0..self.height() {
            for col in 0..self.width() {
                let base = self.array.get(&[row, col]).expect("in range") as i64;
                for dr in 0..s {
                    for dc in 0..s {
                        let v = (base + perturb()).clamp(0, max) as u32;
                        out.set_pixel(col * s + dc, row * s + dr, v)?;
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap()
    }

    /// 10x10 raster over [0,100]^2, pixel (c, r) = r*10 + c.
    fn gradient() -> Raster {
        let mut r = Raster::new(10, 10, BitDepth::Sixteen, world()).unwrap();
        for row in 0..10 {
            for col in 0..10 {
                r.set_pixel(col, row, (row * 10 + col) as u32).unwrap();
            }
        }
        r
    }

    #[test]
    fn pixel_roundtrip_and_clamp() {
        let mut r = Raster::new(4, 4, BitDepth::Eight, world()).unwrap();
        r.set_pixel(1, 2, 0x1FF).unwrap(); // truncates to 8 bits
        assert_eq!(r.pixel(1, 2).unwrap(), 0xFF);
        assert_eq!(r.pixel(0, 0).unwrap(), 0);
    }

    #[test]
    fn geo_registration_row0_is_north() {
        let r = gradient();
        // top-left pixel center: x=5, y=95
        assert_eq!(r.pixel_center(0, 0), Point::new(5.0, 95.0));
        // bottom-right: x=95, y=5
        assert_eq!(r.pixel_center(9, 9), Point::new(95.0, 5.0));
        assert_eq!(r.world_to_pixel(&Point::new(5.0, 95.0)), Some((0, 0)));
        assert_eq!(r.world_to_pixel(&Point::new(95.0, 5.0)), Some((9, 9)));
        assert_eq!(r.world_to_pixel(&Point::new(200.0, 5.0)), None);
    }

    #[test]
    fn clip_rect_extracts_subraster() {
        let r = gradient();
        // window covering columns 2..5, rows 1..4 in pixel space:
        // x in [20,50), y in [60,90)
        let w = Rect::from_corners(Point::new(20.0, 60.0), Point::new(50.0, 90.0)).unwrap();
        let c = r.clip_rect(&w).unwrap();
        assert_eq!(c.width(), 3);
        assert_eq!(c.height(), 3);
        assert_eq!(c.pixel(0, 0).unwrap(), 12); // row 1, col 2
        assert_eq!(c.geo(), w);
    }

    #[test]
    fn clip_rect_partial_pixels_snap_outward() {
        let r = gradient();
        let w = Rect::from_corners(Point::new(25.0, 65.0), Point::new(44.0, 89.0)).unwrap();
        let c = r.clip_rect(&w).unwrap();
        // x 25..44 covers pixel cols 2..4 (centers 25,35,45->no), snapped cols 2..5
        assert_eq!(c.width(), 3);
        assert_eq!(c.height(), 3);
    }

    #[test]
    fn clip_rect_disjoint_errors() {
        let r = gradient();
        let w = Rect::from_corners(Point::new(200.0, 200.0), Point::new(300.0, 300.0)).unwrap();
        assert_eq!(r.clip_rect(&w).unwrap_err(), ArrayError::EmptyClip);
    }

    #[test]
    fn polygon_clip_masks_outside_pixels() {
        let r = gradient();
        // Triangle over the lower-left quadrant.
        let tri =
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0), Point::new(0.0, 50.0)])
                .unwrap();
        let c = r.clip(&tri).unwrap();
        assert_eq!(c.width(), 5);
        assert_eq!(c.height(), 5);
        // Valid pixels: all whose pixel rectangle touches the triangle —
        // a bit over half the 5x5 block.
        let valid = c.valid_count();
        assert!(valid > 5 && valid < 25, "valid = {valid}");
        // The far corner pixel (x 40..50, y 40..50) lies fully beyond the
        // hypotenuse x + y = 50.
        assert!(!c.is_valid(4, 0));
        // The origin corner is inside.
        assert!(c.is_valid(0, 4));
    }

    #[test]
    fn rectangular_polygon_clip_has_no_mask() {
        let r = gradient();
        let rect_poly = Polygon::from_rect(
            &Rect::from_corners(Point::new(0.0, 0.0), Point::new(50.0, 50.0)).unwrap(),
        );
        let c = r.clip(&rect_poly).unwrap();
        assert_eq!(c.valid_count(), 25);
    }

    #[test]
    fn average_respects_mask() {
        let mut r = Raster::new(2, 2, BitDepth::Eight, world()).unwrap();
        r.set_pixel(0, 0, 10).unwrap();
        r.set_pixel(1, 0, 20).unwrap();
        r.set_pixel(0, 1, 30).unwrap();
        r.set_pixel(1, 1, 40).unwrap();
        assert_eq!(r.average(), Some(25.0));
        // Clip by a small triangle that only touches the top-left pixel
        // rectangle (x 0..50, y 50..100): exactly one valid pixel.
        let tri = Polygon::new(vec![
            Point::new(0.0, 99.0),
            Point::new(40.0, 99.0),
            Point::new(0.0, 60.0),
        ])
        .unwrap();
        let c = r.clip(&tri).unwrap();
        assert_eq!(c.valid_count(), 1);
        assert_eq!(c.average(), Some(10.0)); // pixel (0, 0) holds 10
    }

    #[test]
    fn lower_res_averages_blocks() {
        let r = gradient();
        let half = r.lower_res(2).unwrap();
        assert_eq!(half.width(), 5);
        assert_eq!(half.height(), 5);
        // block (0,0) = pixels {0,1,10,11} -> mean 5 (integer division 22/4)
        assert_eq!(half.pixel(0, 0).unwrap(), 5);
        // identity factor
        let same = r.lower_res(1).unwrap();
        assert_eq!(same.pixel(3, 7).unwrap(), r.pixel(3, 7).unwrap());
        assert!(r.lower_res(0).is_err());
    }

    #[test]
    fn average_of_rasters() {
        let mut a = Raster::new(2, 1, BitDepth::Sixteen, world()).unwrap();
        let mut b = Raster::new(2, 1, BitDepth::Sixteen, world()).unwrap();
        a.set_pixel(0, 0, 100).unwrap();
        b.set_pixel(0, 0, 300).unwrap();
        a.set_pixel(1, 0, 7).unwrap();
        b.set_pixel(1, 0, 9).unwrap();
        let avg = Raster::average_of(&[&a, &b]).unwrap();
        assert_eq!(avg.pixel(0, 0).unwrap(), 200);
        assert_eq!(avg.pixel(1, 0).unwrap(), 8);
        // mismatched shapes rejected
        let c = Raster::new(3, 1, BitDepth::Sixteen, world()).unwrap();
        assert!(Raster::average_of(&[&a, &c]).is_err());
    }

    #[test]
    fn oversample_scales_dims_and_perturbs() {
        let r = gradient();
        let mut flip = 0i64;
        let big = r
            .oversample(2, move || {
                flip = 1 - flip;
                flip
            })
            .unwrap();
        assert_eq!(big.width(), 20);
        assert_eq!(big.height(), 20);
        // Values stay near the source pixel.
        let src = r.pixel(3, 4).unwrap() as i64;
        for (dc, dr) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            let v = big.pixel(6 + dc, 8 + dr).unwrap() as i64;
            assert!((v - src).abs() <= 1, "v={v} src={src}");
        }
        // Same geo (resolution scaleup keeps the region constant).
        assert_eq!(big.geo(), r.geo());
    }

    #[test]
    fn oversample_clamps_to_depth() {
        let mut r = Raster::new(1, 1, BitDepth::Eight, world()).unwrap();
        r.set_pixel(0, 0, 255).unwrap();
        let big = r.oversample(2, || 100).unwrap();
        assert_eq!(big.pixel(1, 1).unwrap(), 255);
    }
}
