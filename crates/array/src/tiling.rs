//! Array tiling: chunking large arrays into ~128 KB tiles (Figure 2.3).
//!
//! Paper §2.5.1: *"For very large arrays the array ADT code chunks the array
//! into subarrays called tiles such that the size of each tile is
//! approximately 128 Kbytes. Each tile is stored as a separate SHORE object
//! as is a mapping table that keeps track of the objects used to store the
//! subarrays. Each subarray has the same dimensionality as the original
//! array and the size of each dimension is proportional to the size of each
//! dimension in the original array"* (the Sarawagi \[Suni94\] scheme).
//!
//! The decomposition lets Paradise *"fetch only those portions that are
//! required to execute an operation. For example, when clipping a satellite
//! image by one or more polygons only the relevant tiles will be read from
//! disk or tape."*

use crate::lzw;
use crate::ndarray::{ElemType, NdArray};
use crate::{ArrayError, Result};

/// Paradise's default tile payload target: 128 KB.
pub const DEFAULT_TILE_BYTES: usize = 128 * 1024;

/// How an array of a given shape is cut into tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilingScheme {
    dims: Vec<usize>,
    elem: ElemType,
    /// Tile extent along each dimension.
    tile_shape: Vec<usize>,
    /// Number of tiles along each dimension: `ceil(dims[i] / tile_shape[i])`.
    tiles_per_dim: Vec<usize>,
}

impl TilingScheme {
    /// Computes a proportional chunking of `dims` targeting roughly
    /// `target_bytes` per tile.
    ///
    /// Every dimension's tile extent is proportional to the dimension's
    /// size: `t_i ≈ d_i · (target_elems / total_elems)^(1/N)`, clamped to
    /// `1..=d_i`.
    pub fn new(dims: &[usize], elem: ElemType, target_bytes: usize) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(ArrayError::BadShape(dims.to_vec()));
        }
        let total_elems: usize = dims.iter().product();
        let target_elems = (target_bytes.max(1) / elem.size()).max(1);
        let scale = if target_elems >= total_elems {
            1.0
        } else {
            (target_elems as f64 / total_elems as f64).powf(1.0 / dims.len() as f64)
        };
        let tile_shape: Vec<usize> =
            dims.iter().map(|&d| (((d as f64) * scale).round() as usize).clamp(1, d)).collect();
        let tiles_per_dim: Vec<usize> =
            dims.iter().zip(&tile_shape).map(|(&d, &t)| d.div_ceil(t)).collect();
        Ok(TilingScheme { dims: dims.to_vec(), elem, tile_shape, tiles_per_dim })
    }

    /// Array shape being tiled.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The per-dimension tile extents.
    pub fn tile_shape(&self) -> &[usize] {
        &self.tile_shape
    }

    /// Tiles along each dimension.
    pub fn tiles_per_dim(&self) -> &[usize] {
        &self.tiles_per_dim
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles_per_dim.iter().product()
    }

    /// Element type.
    pub fn elem_type(&self) -> ElemType {
        self.elem
    }

    /// Converts a per-dimension tile coordinate to a linear tile index
    /// (row-major over tile coordinates).
    pub fn tile_index(&self, coord: &[usize]) -> Result<usize> {
        if coord.len() != self.dims.len() {
            return Err(ArrayError::OutOfBounds);
        }
        let mut lin = 0;
        for (&c, &n) in coord.iter().zip(&self.tiles_per_dim) {
            if c >= n {
                return Err(ArrayError::OutOfBounds);
            }
            lin = lin * n + c;
        }
        Ok(lin)
    }

    /// Inverse of [`TilingScheme::tile_index`].
    pub fn tile_coord(&self, mut index: usize) -> Vec<usize> {
        let mut coord = vec![0; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            coord[d] = index % self.tiles_per_dim[d];
            index /= self.tiles_per_dim[d];
        }
        coord
    }

    /// The element-space origin and shape of tile `index` (edge tiles are
    /// smaller when the dimension is not divisible).
    pub fn tile_region(&self, index: usize) -> (Vec<usize>, Vec<usize>) {
        let coord = self.tile_coord(index);
        let lo: Vec<usize> = coord.iter().zip(&self.tile_shape).map(|(&c, &t)| c * t).collect();
        let shape: Vec<usize> = lo
            .iter()
            .zip(&self.tile_shape)
            .zip(&self.dims)
            .map(|((&l, &t), &d)| t.min(d - l))
            .collect();
        (lo, shape)
    }

    /// Linear indices of all tiles whose region intersects
    /// `[lo, lo+shape)`. This is the tile filter a `clip` uses to read only
    /// the relevant tiles.
    pub fn tiles_overlapping(&self, lo: &[usize], shape: &[usize]) -> Result<Vec<usize>> {
        if lo.len() != self.dims.len() || shape.len() != self.dims.len() {
            return Err(ArrayError::OutOfBounds);
        }
        // Clamp the query region to the array bounds.
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(self.dims.len());
        for ((&l, &s), (&d, &t)) in lo.iter().zip(shape).zip(self.dims.iter().zip(&self.tile_shape))
        {
            if s == 0 || l >= d {
                return Ok(Vec::new());
            }
            let hi = (l + s).min(d); // exclusive
            ranges.push((l / t, (hi - 1) / t));
        }
        // Cartesian product of per-dim tile ranges, in row-major order.
        let mut out = Vec::new();
        let mut coord: Vec<usize> = ranges.iter().map(|&(a, _)| a).collect();
        loop {
            out.push(self.tile_index(&coord)?);
            let mut d = self.dims.len();
            loop {
                if d == 0 {
                    return Ok(out);
                }
                d -= 1;
                coord[d] += 1;
                if coord[d] <= ranges[d].1 {
                    break;
                }
                coord[d] = ranges[d].0;
            }
        }
    }
}

/// One stored tile: its (possibly compressed) bytes plus the compression
/// flag from the mapping table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileData {
    /// Tile payload (LZW stream when `compressed`, raw little-endian
    /// elements otherwise).
    pub bytes: Vec<u8>,
    /// Whether `bytes` is LZW-compressed (the paper's per-tile flag).
    pub compressed: bool,
}

impl TileData {
    /// Decodes the tile back to raw element bytes.
    pub fn decode(&self) -> Result<Vec<u8>> {
        lzw::maybe_decompress(&self.bytes, self.compressed)
    }
}

/// An in-memory tiled array: the mapping table (scheme + per-tile payloads).
///
/// The execution engine stores each [`TileData`] as a separate storage
/// object and keeps OIDs in its own mapping table; this type is the
/// self-contained equivalent used for computation and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct TileMap {
    scheme: TilingScheme,
    tiles: Vec<TileData>,
}

impl TileMap {
    /// Tiles (and per-tile compresses) a whole array.
    pub fn build(array: &NdArray, target_bytes: usize) -> Result<Self> {
        let scheme = TilingScheme::new(array.dims(), array.elem_type(), target_bytes)?;
        let mut tiles = Vec::with_capacity(scheme.num_tiles());
        for i in 0..scheme.num_tiles() {
            let (lo, shape) = scheme.tile_region(i);
            let sub = array.subarray(&lo, &shape)?;
            let (bytes, compressed) = lzw::maybe_compress(sub.data());
            tiles.push(TileData { bytes, compressed });
        }
        Ok(TileMap { scheme, tiles })
    }

    /// The tiling scheme (mapping-table metadata).
    pub fn scheme(&self) -> &TilingScheme {
        &self.scheme
    }

    /// Stored tiles in linear order.
    pub fn tiles(&self) -> &[TileData] {
        &self.tiles
    }

    /// Bytes actually stored (compressed sizes), i.e. what would hit disk.
    pub fn stored_bytes(&self) -> usize {
        self.tiles.iter().map(|t| t.bytes.len()).sum()
    }

    /// How many tiles are stored compressed.
    pub fn num_compressed(&self) -> usize {
        self.tiles.iter().filter(|t| t.compressed).count()
    }

    /// Reassembles the full array from all tiles.
    pub fn assemble(&self) -> Result<NdArray> {
        let mut out = NdArray::zeros(self.scheme.dims.to_vec(), self.scheme.elem)?;
        for (i, tile) in self.tiles.iter().enumerate() {
            let (lo, shape) = self.scheme.tile_region(i);
            let patch = NdArray::new(shape, self.scheme.elem, tile.decode()?)?;
            out.write_subarray(&lo, &patch)?;
        }
        Ok(out)
    }

    /// Extracts the region `[lo, lo+shape)` touching **only** the tiles that
    /// overlap it — the access path a clip query takes. Returns the region
    /// and the number of tiles read (for I/O accounting).
    pub fn read_region(&self, lo: &[usize], shape: &[usize]) -> Result<(NdArray, usize)> {
        let needed = self.scheme.tiles_overlapping(lo, shape)?;
        let mut out = NdArray::zeros(shape.to_vec(), self.scheme.elem)?;
        for &ti in &needed {
            let (tlo, tshape) = self.scheme.tile_region(ti);
            let tile = NdArray::new(tshape.clone(), self.scheme.elem, self.tiles[ti].decode()?)?;
            // Intersect [lo, lo+shape) with [tlo, tlo+tshape) per dimension.
            let mut src_lo = Vec::with_capacity(lo.len());
            let mut dst_lo = Vec::with_capacity(lo.len());
            let mut cut = Vec::with_capacity(lo.len());
            for d in 0..lo.len() {
                let a = lo[d].max(tlo[d]);
                let b = (lo[d] + shape[d]).min(tlo[d] + tshape[d]);
                debug_assert!(a < b, "tile filter returned a non-overlapping tile");
                src_lo.push(a - tlo[d]);
                dst_lo.push(a - lo[d]);
                cut.push(b - a);
            }
            let piece = tile.subarray(&src_lo, &cut)?;
            out.write_subarray(&dst_lo, &piece)?;
        }
        Ok((out, needed.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(dims: Vec<usize>) -> NdArray {
        let mut a = NdArray::zeros(dims, ElemType::U16).unwrap();
        for i in 0..a.num_elems() {
            a.set_linear(i, (i % 65_536) as u64);
        }
        a
    }

    #[test]
    fn scheme_respects_target_size() {
        // 1000x1000 u16 = 2 MB; 128 KB target => ~16 tiles
        let s = TilingScheme::new(&[1000, 1000], ElemType::U16, DEFAULT_TILE_BYTES).unwrap();
        let tile_elems: usize = s.tile_shape().iter().product();
        let tile_bytes = tile_elems * 2;
        assert!(
            (DEFAULT_TILE_BYTES / 2..=DEFAULT_TILE_BYTES * 2).contains(&tile_bytes),
            "tile_bytes = {tile_bytes}"
        );
        // proportional: square array gets square tiles
        assert_eq!(s.tile_shape()[0], s.tile_shape()[1]);
    }

    #[test]
    fn scheme_proportional_for_skewed_dims() {
        let s = TilingScheme::new(&[4000, 250], ElemType::U8, 64 * 1024).unwrap();
        let ratio = s.tile_shape()[0] as f64 / s.tile_shape()[1] as f64;
        assert!((ratio - 16.0).abs() < 4.0, "ratio = {ratio}");
    }

    #[test]
    fn small_array_is_one_tile() {
        let s = TilingScheme::new(&[10, 10], ElemType::U8, DEFAULT_TILE_BYTES).unwrap();
        assert_eq!(s.num_tiles(), 1);
        assert_eq!(s.tile_shape(), &[10, 10]);
    }

    #[test]
    fn tile_index_roundtrip() {
        let s = TilingScheme::new(&[100, 90, 80], ElemType::U8, 1024).unwrap();
        for i in 0..s.num_tiles() {
            assert_eq!(s.tile_index(&s.tile_coord(i)).unwrap(), i);
        }
    }

    #[test]
    fn tile_regions_partition_the_array() {
        let s = TilingScheme::new(&[37, 23], ElemType::U8, 64).unwrap();
        let mut covered = vec![false; 37 * 23];
        for i in 0..s.num_tiles() {
            let (lo, shape) = s.tile_region(i);
            for r in lo[0]..lo[0] + shape[0] {
                for c in lo[1]..lo[1] + shape[1] {
                    let cell = &mut covered[r * 23 + c];
                    assert!(!*cell, "cell ({r},{c}) covered twice");
                    *cell = true;
                }
            }
        }
        assert!(covered.iter().all(|&b| b), "some cells uncovered");
    }

    #[test]
    fn build_and_assemble_roundtrip() {
        let a = iota(vec![120, 75]);
        let map = TileMap::build(&a, 1024).unwrap();
        assert!(map.scheme().num_tiles() > 1);
        assert_eq!(map.assemble().unwrap(), a);
    }

    #[test]
    fn read_region_touches_only_needed_tiles() {
        let a = iota(vec![100, 100]); // 20 KB
        let map = TileMap::build(&a, 1000).unwrap(); // ~500 elems per tile
        let total = map.scheme().num_tiles();
        assert!(total >= 16, "want many tiles, got {total}");
        // A small corner region must touch far fewer tiles than the total.
        let (region, read) = map.read_region(&[5, 5], &[10, 10]).unwrap();
        assert!(read < total / 2, "read {read} of {total}");
        assert_eq!(region, a.subarray(&[5, 5], &[10, 10]).unwrap());
    }

    #[test]
    fn read_region_across_tile_boundaries() {
        let a = iota(vec![64, 64]);
        let map = TileMap::build(&a, 512).unwrap();
        let (region, read) = map.read_region(&[10, 10], &[40, 40]).unwrap();
        assert_eq!(region, a.subarray(&[10, 10], &[40, 40]).unwrap());
        assert!(read > 1);
    }

    #[test]
    fn smooth_tiles_compress_noisy_tiles_do_not() {
        // Left half constant (compressible), right half noise.
        let mut a = NdArray::zeros(vec![64, 64], ElemType::U8).unwrap();
        let mut x: u32 = 7;
        for r in 0..64 {
            for c in 32..64 {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                a.set(&[r, c], u64::from(x >> 24)).unwrap();
            }
        }
        let map = TileMap::build(&a, 512).unwrap();
        let n = map.num_compressed();
        assert!(n > 0, "no tiles compressed");
        assert!(n < map.scheme().num_tiles(), "all tiles compressed");
        assert_eq!(map.assemble().unwrap(), a);
        assert!(map.stored_bytes() < a.byte_len());
    }

    #[test]
    fn tiles_overlapping_empty_and_oob() {
        let s = TilingScheme::new(&[10, 10], ElemType::U8, 16).unwrap();
        assert!(s.tiles_overlapping(&[0, 0], &[0, 5]).unwrap().is_empty());
        assert!(s.tiles_overlapping(&[20, 0], &[5, 5]).unwrap().is_empty());
        // Region poking past the edge is clamped, not an error.
        let ids = s.tiles_overlapping(&[8, 8], &[10, 10]).unwrap();
        assert!(!ids.is_empty());
    }

    #[test]
    fn one_dimensional_tiling() {
        let a = iota(vec![5000]);
        let map = TileMap::build(&a, 1024).unwrap();
        assert!(map.scheme().num_tiles() >= 5);
        assert_eq!(map.assemble().unwrap(), a);
        let (r, _) = map.read_region(&[100], &[200]).unwrap();
        assert_eq!(r, a.subarray(&[100], &[200]).unwrap());
    }
}
