//! Shared benchmark harness: builds the global-Sequoia world, loads it
//! into a Paradise cluster (benchmark Q1), and runs the fourteen-query
//! suite, producing the rows of the paper's Tables 3.2/3.4/3.5.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod harness;

use paradise::queries;
use paradise::{Paradise, ParadiseConfig, QueryResult};
use paradise_datagen::tables::{
    self, drainage_table, land_cover_table, populated_places_table, raster_table, roads_table,
    World, WorldSpec, LARGE_CITY, OIL_FIELD, QUERY_CHANNEL,
};
use paradise_exec::value::Date;
use paradise_geom::Point;
use std::path::PathBuf;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Nodes in the simulated cluster.
    pub nodes: usize,
    /// Resolution-scaleup factor of the data set (Table 3.1: 1, 2, 4).
    pub scale: usize,
    /// Cardinality shrink vs the paper's Table 3.1 (e.g. 2000).
    pub shrink: usize,
    /// RNG seed.
    pub seed: u64,
    /// Spatially decluster each raster's tiles (§2.6 / Table 3.5).
    pub decluster_rasters: bool,
    /// Where to put the cluster volumes.
    pub base_dir: PathBuf,
}

impl BenchConfig {
    /// Default configuration for `nodes` nodes at scale factor `scale`.
    pub fn new(nodes: usize, scale: usize) -> BenchConfig {
        BenchConfig {
            nodes,
            scale,
            shrink: 2000,
            seed: 42,
            decluster_rasters: false,
            base_dir: std::env::temp_dir()
                .join(format!("paradise-bench-{}-n{nodes}-s{scale}", std::process::id())),
        }
    }
}

/// One measured query.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// Query name ("Query 2" ... "Query 14", "Query 3'").
    pub name: String,
    /// Simulated parallel execution time in seconds.
    pub simulated: f64,
    /// Wall-clock seconds (single host, all nodes serialised).
    pub wall: f64,
    /// Network bytes shipped.
    pub net_bytes: u64,
    /// Remote tile pulls.
    pub pulls: u64,
    /// Result cardinality.
    pub rows: usize,
    /// Full cost record of the median run (per-phase rows / busy /
    /// buffer / network — `Display` renders the breakdown table).
    pub metrics: paradise_exec::QueryMetrics,
}

/// Generates the world for a configuration.
pub fn build_world(cfg: &BenchConfig) -> World {
    World::generate(WorldSpec::paper_ratio(cfg.seed, cfg.scale, cfg.shrink))
}

/// Benchmark Q1: create the cluster, define the five tables, load them and
/// build the indexes, then commit. Returns the loaded DBMS.
pub fn setup_db(cfg: &BenchConfig, world: &World) -> Paradise {
    let mut db = Paradise::create(
        ParadiseConfig::new(cfg.base_dir.clone(), cfg.nodes)
            .with_grid_tiles(1024)
            .with_pool_pages(4096),
    )
    .expect("create cluster");
    db.define_table(
        raster_table().with_tile_bytes(4096).with_raster_decluster(cfg.decluster_rasters),
    );
    db.define_table(populated_places_table());
    db.define_table(roads_table());
    db.define_table(drainage_table());
    db.define_table(land_cover_table());

    db.load_table("raster", world.rasters.iter().cloned()).expect("load rasters");
    db.load_table("populatedPlaces", world.populated_places.iter().cloned()).expect("load places");
    db.load_table("roads", world.roads.iter().cloned()).expect("load roads");
    db.load_table("drainage", world.drainage.iter().cloned()).expect("load drainage");
    db.load_table("landCover", world.land_cover.iter().cloned()).expect("load landCover");

    // Q1's index builds.
    db.create_btree_index("populatedPlaces", queries::PP_NAME).expect("name index");
    db.create_rtree_index("landCover", queries::LC_SHAPE).expect("landCover rtree");
    db.create_rtree_index("roads", queries::LINE_SHAPE).expect("roads rtree");
    db.create_rtree_index("drainage", queries::LINE_SHAPE).expect("drainage rtree");
    db.commit().expect("commit load");
    db
}

fn measure(db: &Paradise, name: &str, mut f: impl FnMut() -> QueryResult) -> QueryRow {
    // Median of three cold runs (the pool is flushed before each, paper
    // section 3.2) to keep sub-millisecond queries stable.
    let mut runs: Vec<QueryRow> = (0..3)
        .map(|_| {
            db.flush_caches().expect("cold cache");
            let r = f();
            QueryRow {
                name: name.to_string(),
                simulated: r.metrics.simulated_time().as_secs_f64(),
                wall: r.metrics.wall.as_secs_f64(),
                net_bytes: r.metrics.net_bytes + r.metrics.pull_bytes,
                pulls: r.metrics.pulls,
                rows: r.rows.len(),
                metrics: r.metrics,
            }
        })
        .collect();
    runs.sort_by(|a, b| a.simulated.partial_cmp(&b.simulated).unwrap());
    runs.swap_remove(1)
}

/// Runs queries 2-14 (the Table 3.2 / 3.4 row set).
pub fn run_suite(db: &Paradise, cfg: &BenchConfig) -> Vec<QueryRow> {
    let us = tables::us_polygon();
    let d = tables::query_date();
    let mut rows = Vec::new();
    rows.push(measure(db, "Query 2", || queries::q2(db, QUERY_CHANNEL, &us).expect("q2")));
    rows.push(measure(db, "Query 3", || {
        queries::q3(db, d, &us, cfg.decluster_rasters).expect("q3")
    }));
    rows.push(measure(db, "Query 4", || queries::q4(db, d, QUERY_CHANNEL, &us, 8).expect("q4")));
    rows.push(measure(db, "Query 5", || queries::q5(db, "Phoenix").expect("q5")));
    rows.push(measure(db, "Query 6", || queries::q6(db, &us).expect("q6")));
    rows.push(measure(db, "Query 7", || {
        queries::q7(db, Point::new(-90.0, 40.0), 25.0, 3.0).expect("q7")
    }));
    rows.push(measure(db, "Query 8", || queries::q8(db, "Louisville", 8.0).expect("q8")));
    rows.push(measure(db, "Query 9", || queries::q9(db, d, QUERY_CHANNEL, OIL_FIELD).expect("q9")));
    rows.push(measure(db, "Query 10", || queries::q10(db, &us, 25_000.0).expect("q10")));
    rows.push(measure(db, "Query 11", || queries::q11(db, Point::new(-89.4, 43.1)).expect("q11")));
    rows.push(measure(db, "Query 12", || queries::q12(db, LARGE_CITY, true).expect("q12")));
    rows.push(measure(db, "Query 13", || queries::q13(db).expect("q13")));
    rows.push(measure(db, "Query 14", || {
        let lo = d;
        let hi = Date(d.0 + 270);
        queries::q14(db, lo, hi, QUERY_CHANNEL, OIL_FIELD).expect("q14")
    }));
    rows
}

/// Runs the Table 3.5 trio: Q2, Q3 and Q3' (whole-raster clip).
pub fn run_decluster_suite(db: &Paradise, cfg: &BenchConfig) -> Vec<QueryRow> {
    let us = tables::us_polygon();
    let d = tables::query_date();
    vec![
        measure(db, "Query 2", || queries::q2(db, QUERY_CHANNEL, &us).expect("q2")),
        measure(db, "Query 3", || queries::q3(db, d, &us, cfg.decluster_rasters).expect("q3")),
        measure(db, "Query 3'", || queries::q3_prime(db, d, cfg.decluster_rasters).expect("q3'")),
    ]
}
