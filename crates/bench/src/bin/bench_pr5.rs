//! PR 5 baseline: serial vs 4-worker timings for every morsel-parallel
//! operator kernel, on a Sequoia-scale vector workload.
//!
//! Run from the repository root with
//! `cargo run --release -p paradise-bench --bin bench_pr5`; the results
//! land in `BENCH_PR5.json`.
//!
//! The container this baseline ships from has a single CPU, so a 4-thread
//! pool cannot show wall-clock speedup. The pool's *measured* mode
//! ([`paradise_exec::workers::PoolMode::Measured`]) therefore executes
//! every morsel inline, times it, and list-schedules the morsels onto N
//! virtual workers; the reported per-kernel time is the critical path
//! (the busiest virtual worker) — the same simulated-time model
//! `QueryMetrics::simulated_time` uses for cross-node parallelism. Real
//! wall-clock numbers are reported alongside for transparency.

use paradise_datagen::tables::{World, WorldSpec};
use paradise_exec::cluster::{Cluster, ClusterConfig};
use paradise_exec::ops::aggregate::{local_aggregate_with, AggRegistry};
use paradise_exec::ops::basic::par_select;
use paradise_exec::ops::join::hash_join_with;
use paradise_exec::ops::spatial_join::{local_tile_join, local_tile_join_quadratic};
use paradise_exec::value::Value;
use paradise_exec::workers::WorkerPool;
use paradise_exec::Tuple;
use paradise_geom::Rect;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape column of `roads` / `drainage`.
const SHAPE: usize = 2;
/// Timed repetitions per kernel; the minimum is reported.
const REPS: usize = 3;

/// One kernel's serial-vs-parallel measurement.
struct KernelRow {
    name: &'static str,
    serial: Duration,
    four: Duration,
    four_busy: Duration,
    serial_wall: Duration,
    four_wall: Duration,
    morsels: u64,
    rows: usize,
}

impl KernelRow {
    /// Speedup of the 4-worker schedule over running the *same* morsel
    /// timings serially: total morsel busy time over the critical path of
    /// the busiest virtual worker. Comparing within one run keeps the
    /// ratio honest (it can never exceed the worker count); run-to-run
    /// cache variance shows up in `serial` vs `four_busy` instead.
    fn speedup(&self) -> f64 {
        self.four_busy.as_secs_f64() / self.four.as_secs_f64().max(1e-12)
    }
}

/// Times `run` under a 1-worker and a 4-worker measured pool. The
/// 1-worker kernel time is the sum of all morsel times (the serial kernel
/// minus orchestration); the 4-worker time is the critical path of the
/// list-scheduled virtual workers from the rep with the lowest critical
/// path, together with that same rep's total morsel busy time.
fn bench_kernel(name: &'static str, run: impl Fn(Arc<WorkerPool>) -> usize) -> KernelRow {
    let mut row = KernelRow {
        name,
        serial: Duration::MAX,
        four: Duration::MAX,
        four_busy: Duration::ZERO,
        serial_wall: Duration::MAX,
        four_wall: Duration::MAX,
        morsels: 0,
        rows: 0,
    };
    // One untimed warm-up pass (page cache, allocator free lists).
    run(Arc::new(WorkerPool::measured(1)));
    for (workers, serial_leg) in [(1usize, true), (4, false)] {
        for _ in 0..REPS {
            let pool = Arc::new(WorkerPool::measured(workers));
            let before = pool.snapshot();
            let t0 = Instant::now();
            row.rows = run(pool.clone());
            let elapsed = t0.elapsed();
            let delta = pool.snapshot().since(&before);
            row.morsels = delta.morsels;
            if serial_leg {
                row.serial = row.serial.min(pool.critical_path());
                row.serial_wall = row.serial_wall.min(elapsed);
            } else {
                if pool.critical_path() < row.four {
                    row.four = pool.critical_path();
                    row.four_busy = Duration::from_nanos(delta.busy_ns);
                }
                row.four_wall = row.four_wall.min(elapsed);
            }
        }
    }
    println!(
        "{name:<22} serial {:>10.3?}  4-worker {:>10.3?}  speedup {:>5.2}x  morsels {:>4}  rows {}",
        row.serial,
        row.four,
        row.speedup(),
        row.morsels,
        row.rows
    );
    row
}

fn bbox_area(t: &Tuple) -> f64 {
    let b = t.get(SHAPE).unwrap().as_shape().unwrap().bbox();
    (b.hi.x - b.lo.x) * (b.hi.y - b.lo.y)
}

fn main() {
    // Sequoia-scale vector data: Table 3.1 cardinalities shrunk 250×
    // (2,800 roads / 6,960 drainage features / 2,280 polygons).
    let shrink = 250;
    let world = World::generate(WorldSpec::paper_ratio(42, 1, shrink));
    let roads = world.roads.clone();
    let drainage = world.drainage.clone();
    println!(
        "world: {} roads, {} drainage, {} landCover (shrink {shrink})",
        roads.len(),
        drainage.len(),
        world.land_cover.len()
    );

    // A single-node cluster owning the whole 4,096-tile grid: the PBSM
    // kernel then sees every tile bucket, exactly like one data server's
    // share of the parallel join.
    let mut cfg = ClusterConfig::for_test(1, "bench-pr5");
    cfg.grid_tiles = 4096;
    let cluster = Cluster::create(&cfg).expect("create cluster");

    let mut kernels: Vec<KernelRow> = Vec::new();

    // PBSM local join (plane-sweep filter + refine), the tentpole kernel.
    kernels.push(bench_kernel("pbsm_local_join", |pool| {
        cluster.set_workers(pool);
        local_tile_join(&cluster, 0, &roads, SHAPE, &drainage, SHAPE).expect("join").len()
    }));

    // Grace hash join: roads self-join on `id` (1:1 matches).
    kernels.push(bench_kernel("hash_join", |pool| {
        hash_join_with(&pool, &roads, 0, &roads, 0, 4096).expect("hash join").len()
    }));

    // Partial aggregation: sum of bbox area per road/drainage type.
    let agg_input: Vec<Tuple> = roads
        .iter()
        .chain(&drainage)
        .map(|t| Tuple::new(vec![Value::Float(bbox_area(t)), t.get(1).unwrap().clone()]))
        .collect();
    let registry = AggRegistry::with_builtins();
    let sum = registry.get("sum").expect("sum registered").clone();
    kernels.push(bench_kernel("local_aggregate", |pool| {
        local_aggregate_with(&pool, &agg_input, &[1], &sum).expect("aggregate").len()
    }));

    // Predicate scan: window selection over all vector features.
    let window = Rect::from_corners(
        paradise_geom::Point::new(-110.0, 20.0),
        paradise_geom::Point::new(-60.0, 50.0),
    )
    .unwrap();
    let scan_input: Vec<Tuple> = roads.iter().chain(&drainage).cloned().collect();
    kernels.push(bench_kernel("predicate_scan", |pool| {
        par_select(&pool, scan_input.clone(), |t| {
            Ok(t.get(SHAPE)?.as_shape()?.bbox().intersection(&window).is_some())
        })
        .expect("scan")
        .len()
    }));

    // LZW tile codec over AMeS-style raster tiles (32 KiB each, run
    // patterned like classified land-cover imagery).
    let tiles: Vec<Vec<u8>> = (0..64u8)
        .map(|t| {
            (0..32 * 1024)
                .map(|i| (((i / 37) as u8).wrapping_mul(7)).wrapping_add(t) % 97)
                .collect()
        })
        .collect();
    kernels.push(bench_kernel("lzw_compress", |pool| {
        paradise_array::lzw::maybe_compress_batch(&pool, &tiles).len()
    }));
    let packed = paradise_array::lzw::maybe_compress_batch(&WorkerPool::serial(), &tiles);
    kernels.push(bench_kernel("lzw_decompress", |pool| {
        paradise_array::lzw::maybe_decompress_batch(&pool, &packed).expect("decompress").len()
    }));

    // Ablation: the old quadratic per-tile filter vs the plane sweep
    // (serial pools, wall clock — same outputs, different filter cost).
    let quad_wall = (0..REPS)
        .map(|_| {
            cluster.set_workers(Arc::new(WorkerPool::serial()));
            let t0 = Instant::now();
            let n = local_tile_join_quadratic(&cluster, 0, &roads, SHAPE, &drainage, SHAPE)
                .expect("quadratic join")
                .len();
            (t0.elapsed(), n)
        })
        .min()
        .unwrap();
    let sweep_wall = (0..REPS)
        .map(|_| {
            cluster.set_workers(Arc::new(WorkerPool::serial()));
            let t0 = Instant::now();
            let n = local_tile_join(&cluster, 0, &roads, SHAPE, &drainage, SHAPE)
                .expect("sweep join")
                .len();
            (t0.elapsed(), n)
        })
        .min()
        .unwrap();
    assert_eq!(quad_wall.1, sweep_wall.1, "sweep and quadratic must agree");
    println!(
        "ablation: quadratic {:?} vs plane-sweep {:?} ({:.2}x)",
        quad_wall.0,
        sweep_wall.0,
        quad_wall.0.as_secs_f64() / sweep_wall.0.as_secs_f64().max(1e-12)
    );

    // Determinism: the PBSM output must be byte-identical across pool
    // sizes (the property the whole morsel design hangs on).
    let mut identical = true;
    cluster.set_workers(Arc::new(WorkerPool::new(1)));
    let reference = local_tile_join(&cluster, 0, &roads, SHAPE, &drainage, SHAPE).unwrap();
    for w in [2usize, 4, 7] {
        cluster.set_workers(Arc::new(WorkerPool::new(w)));
        identical &=
            local_tile_join(&cluster, 0, &roads, SHAPE, &drainage, SHAPE).unwrap() == reference;
    }
    println!("pool-size identity: {identical}");

    let pbsm = &kernels[0];
    if pbsm.speedup() < 1.8 {
        eprintln!("WARNING: PBSM speedup {:.2}x below the 1.8x target", pbsm.speedup());
    }

    // Hand-rolled JSON (the build is hermetic: no serde).
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"BENCH_PR5\",\n");
    out.push_str("  \"command\": \"cargo run --release -p paradise-bench --bin bench_pr5\",\n");
    out.push_str(&format!(
        "  \"machine\": {{\"host_cpus\": {}, \"timing_model\": \"measured-pool critical path (virtual workers); wall clock alongside\"}},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"spec\": \"paper_ratio seed=42 scale=1 shrink={shrink}\", \"roads\": {}, \"drainage\": {}, \"grid_tiles\": {}, \"lzw_tiles\": {}, \"lzw_tile_bytes\": {}}},\n",
        roads.len(),
        drainage.len(),
        cfg.grid_tiles,
        tiles.len(),
        32 * 1024
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"serial_s\": {:.6}, \"four_worker_s\": {:.6}, \"four_worker_busy_s\": {:.6}, \"speedup\": {:.3}, \"serial_wall_s\": {:.6}, \"four_worker_wall_s\": {:.6}, \"morsels\": {}, \"output_rows\": {}}}{}\n",
            k.name,
            k.serial.as_secs_f64(),
            k.four.as_secs_f64(),
            k.four_busy.as_secs_f64(),
            k.speedup(),
            k.serial_wall.as_secs_f64(),
            k.four_wall.as_secs_f64(),
            k.morsels,
            k.rows,
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"ablation\": {{\"filter\": \"pbsm tile filter\", \"quadratic_wall_s\": {:.6}, \"plane_sweep_wall_s\": {:.6}, \"speedup\": {:.3}, \"output_rows\": {}}},\n",
        quad_wall.0.as_secs_f64(),
        sweep_wall.0.as_secs_f64(),
        quad_wall.0.as_secs_f64() / sweep_wall.0.as_secs_f64().max(1e-12),
        sweep_wall.1
    ));
    out.push_str(&format!(
        "  \"determinism\": {{\"pbsm_identical_across_pool_sizes\": {identical}}}\n"
    ));
    out.push_str("}\n");
    std::fs::write("BENCH_PR5.json", out).expect("write BENCH_PR5.json");
    println!("wrote BENCH_PR5.json");
}
