//! Regenerates every table of the paper's evaluation (§3.3–§3.5):
//!
//! * Table 3.1 — scaleup data-set sizes
//! * Table 3.2 — scaleup execution times (Q2–Q14 on 4/8/16 nodes, data
//!   grown with the node count)
//! * Table 3.3 — speedup data-set size
//! * Table 3.4 — speedup execution times (fixed data, 4/8/16 nodes)
//! * Table 3.5 — declustered-raster experiment (Q2, Q3, Q3')
//!
//! Usage: `tables [--table 3.1|3.2|3.3|3.4|3.5|all] [--shrink N] [--seed N]`
//!
//! Absolute times are not comparable to the 1997 testbed; the *shape*
//! (which queries scale, which saturate, where declustering helps) is the
//! reproduction target. The paper's numbers are printed alongside.

use paradise_bench::{
    build_world, run_decluster_suite, run_suite, setup_db, BenchConfig, QueryRow,
};
use paradise_datagen::tables::World;

const NODE_COUNTS: [usize; 3] = [4, 8, 16];

/// Paper Table 3.2 (scaleup seconds) for Q2..Q14.
const PAPER_SCALEUP: [(&str, [f64; 3]); 13] = [
    ("Query 2", [118.19, 125.33, 113.00]),
    ("Query 3", [8.97, 13.57, 21.68]),
    ("Query 4", [3.34, 5.73, 10.13]),
    ("Query 5", [1.09, 1.01, 1.04]),
    ("Query 6", [14.40, 14.12, 11.93]),
    ("Query 7", [1.79, 1.83, 1.86]),
    ("Query 8", [11.70, 12.26, 12.47]),
    ("Query 9", [17.12, 26.80, 42.46]),
    ("Query 10", [79.96, 73.62, 73.49]),
    ("Query 11", [24.83, 29.19, 31.25]),
    ("Query 12", [308.43, 328.63, 367.74]),
    ("Query 13", [1156.47, 974.51, 929.69]),
    ("Query 14", [100.83, 123.72, 167.52]),
];

/// Paper Table 3.4 (speedup seconds) for Q2..Q14.
const PAPER_SPEEDUP: [(&str, [f64; 3]); 13] = [
    ("Query 2", [118.19, 50.29, 23.99]),
    ("Query 3", [8.97, 7.12, 7.80]),
    ("Query 4", [3.34, 3.60, 4.32]),
    ("Query 5", [1.09, 0.62, 0.43]),
    ("Query 6", [14.40, 8.07, 5.41]),
    ("Query 7", [1.79, 1.02, 0.70]),
    ("Query 8", [11.70, 7.28, 7.36]),
    ("Query 9", [17.12, 14.58, 14.29]),
    ("Query 10", [79.96, 39.99, 21.44]),
    ("Query 11", [24.83, 12.29, 6.53]),
    ("Query 12", [308.43, 153.28, 91.38]),
    ("Query 13", [1156.47, 514.41, 268.02]),
    ("Query 14", [100.83, 57.96, 43.04]),
];

/// Paper Table 3.5 (seconds): (query, with declustering, without).
const PAPER_DECLUSTER: [(&str, f64, f64); 3] =
    [("Query 2", 336.6, 112.9), ("Query 3", 15.3, 21.68), ("Query 3'", 53.5, 417.8)];

fn world_sizes(world: &World) -> Vec<(String, usize, usize)> {
    let vec_bytes = |ts: &[paradise_exec::Tuple]| ts.iter().map(|t| t.encode().len()).sum();
    vec![
        ("Raster".to_string(), world.rasters.len(), world.raster_bytes()),
        (
            "Pop. Places".to_string(),
            world.populated_places.len(),
            vec_bytes(&world.populated_places),
        ),
        ("Roads".to_string(), world.roads.len(), vec_bytes(&world.roads)),
        ("Drainage".to_string(), world.drainage.len(), vec_bytes(&world.drainage)),
        ("LandCover".to_string(), world.land_cover.len(), vec_bytes(&world.land_cover)),
    ]
}

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KB", b as f64 / 1024.0)
    }
}

fn table_31(shrink: usize, seed: u64) {
    println!("\n=== Table 3.1: Scaleup Data Set Sizes (shrink 1/{shrink} of the paper's) ===");
    for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
        let scale = 1 << i;
        let mut cfg = BenchConfig::new(nodes, scale);
        cfg.shrink = shrink;
        cfg.seed = seed;
        let world = build_world(&cfg);
        println!("-- {nodes} nodes (resolution scale {scale}x) --");
        println!("{:<14}{:>12}{:>14}", "table", "# tuples", "size");
        for (name, n, bytes) in world_sizes(&world) {
            println!("{name:<14}{n:>12}{:>14}", fmt_bytes(bytes));
        }
    }
}

fn table_33(shrink: usize, seed: u64) {
    println!("\n=== Table 3.3: Speedup Data Size (fixed 4-node data set) ===");
    let mut cfg = BenchConfig::new(4, 1);
    cfg.shrink = shrink;
    cfg.seed = seed;
    let world = build_world(&cfg);
    println!("{:<14}{:>12}{:>14}", "table", "# tuples", "size");
    for (name, n, bytes) in world_sizes(&world) {
        println!("{name:<14}{n:>12}{:>14}", fmt_bytes(bytes));
    }
}

fn print_time_table(title: &str, ours: &[Vec<QueryRow>; 3], paper: &[(&str, [f64; 3]); 13]) {
    println!("\n=== {title} ===");
    println!(
        "{:<10}{:>12}{:>12}{:>12}   |{:>10}{:>10}{:>10}",
        "", "4 nodes", "8 nodes", "16 nodes", "paper 4", "paper 8", "paper 16"
    );
    println!("{:<10}{:>36}   |{:>30}", "", "measured simulated seconds", "paper seconds");
    for (qi, (name, paper_times)) in paper.iter().enumerate() {
        let t: Vec<f64> = ours.iter().map(|suite| suite[qi].simulated).collect();
        println!(
            "{:<10}{:>12.4}{:>12.4}{:>12.4}   |{:>10.2}{:>10.2}{:>10.2}",
            name, t[0], t[1], t[2], paper_times[0], paper_times[1], paper_times[2]
        );
    }
    // Per-phase cost breakdown of the 16-node critical query
    // (`QueryMetrics` implements `Display`).
    if let Some(slowest) =
        ours[2].iter().max_by(|a, b| a.simulated.partial_cmp(&b.simulated).unwrap())
    {
        println!("\nslowest on 16 nodes — {} breakdown:\n{}", slowest.name, slowest.metrics);
    }
}

fn run_three(speedup: bool, shrink: usize, seed: u64) -> [Vec<QueryRow>; 3] {
    let mut out: [Vec<QueryRow>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
        let scale = if speedup { 1 } else { 1 << i };
        let mut cfg = BenchConfig::new(nodes, scale);
        cfg.shrink = shrink;
        cfg.seed = seed;
        eprintln!("[tables] loading {nodes}-node cluster (scale {scale}) …");
        let world = build_world(&cfg);
        let db = setup_db(&cfg, &world);
        eprintln!("[tables] running suite on {nodes} nodes …");
        out[i] = run_suite(&db, &cfg);
    }
    out
}

fn table_32(shrink: usize, seed: u64) {
    let ours = run_three(false, shrink, seed);
    print_time_table("Table 3.2: Scaleup Execution Times", &ours, &PAPER_SCALEUP);
}

fn table_34(shrink: usize, seed: u64) {
    let ours = run_three(true, shrink, seed);
    print_time_table("Table 3.4: Speedup Execution Times", &ours, &PAPER_SPEEDUP);
}

fn table_35(shrink: usize, seed: u64) {
    println!("\n=== Table 3.5: Declustered Rasters (16 nodes) ===");
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    let mut with_rows: Vec<QueryRow> = Vec::new();
    let mut without_rows: Vec<QueryRow> = Vec::new();
    for decl in [true, false] {
        let mut cfg = BenchConfig::new(16, 1);
        cfg.shrink = shrink;
        cfg.seed = seed;
        cfg.decluster_rasters = decl;
        cfg.base_dir =
            std::env::temp_dir().join(format!("paradise-bench-{}-t35-{decl}", std::process::id()));
        eprintln!("[tables] Table 3.5, decluster={decl} …");
        let world = build_world(&cfg);
        let db = setup_db(&cfg, &world);
        let rows = run_decluster_suite(&db, &cfg);
        if decl {
            with_rows = rows;
        } else {
            without_rows = rows;
        }
    }
    for (w, wo) in with_rows.iter().zip(&without_rows) {
        results.push((w.name.clone(), w.simulated, wo.simulated));
    }
    println!(
        "{:<10}{:>18}{:>18}   |{:>12}{:>12}",
        "", "with decl.", "w/o decl.", "paper with", "paper w/o"
    );
    for ((name, w, wo), (pname, pw, pwo)) in results.iter().zip(PAPER_DECLUSTER.iter()) {
        assert_eq!(name, pname);
        println!("{name:<10}{w:>18.4}{wo:>18.4}   |{pw:>12.1}{pwo:>12.1}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let table = get("--table").unwrap_or_else(|| "all".to_string());
    let shrink: usize = get("--shrink").and_then(|s| s.parse().ok()).unwrap_or(2000);
    let seed: u64 = get("--seed").and_then(|s| s.parse().ok()).unwrap_or(42);

    match table.as_str() {
        "3.1" => table_31(shrink, seed),
        "3.2" => table_32(shrink, seed),
        "3.3" => table_33(shrink, seed),
        "3.4" => table_34(shrink, seed),
        "3.5" => table_35(shrink, seed),
        "all" => {
            table_31(shrink, seed);
            table_33(shrink, seed);
            table_32(shrink, seed);
            table_34(shrink, seed);
            table_35(shrink, seed);
        }
        other => {
            eprintln!("unknown table {other:?}; use 3.1|3.2|3.3|3.4|3.5|all");
            std::process::exit(2);
        }
    }
}
