//! A minimal micro-benchmark harness with a Criterion-compatible surface.
//!
//! The build is hermetic (no crates.io), so the `criterion` crate is not
//! available; this module provides the subset of its API the bench targets
//! use — `Criterion` config, benchmark groups, `Bencher::iter`, ids,
//! throughput — backed by a simple warm-up + timed-sampling loop that
//! prints min/median/mean per benchmark.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark-run configuration (sampling bounds).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sampling stops once this much time has elapsed (and at least one
    /// sample was taken).
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchGroup {
        BenchGroup { name: name.to_string(), cfg: self.clone(), throughput: None }
    }
}

/// Work-per-iteration declaration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A composite benchmark name (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchGroup {
    name: String,
    cfg: Criterion,
    throughput: Option<Throughput>,
}

impl BenchGroup {
    /// Declares the work per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { cfg: self.cfg.clone(), samples: Vec::new() };
        f(&mut b);
        b.report(&self.name, &id.to_string(), self.throughput);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher { cfg: self.cfg.clone(), samples: Vec::new() };
        f(&mut b, input);
        b.report(&self.name, &id.id, self.throughput);
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(self) {}
}

/// Times a closure under the configured sampling policy.
pub struct Bencher {
    cfg: Criterion,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly: untimed warm-up, then timed samples until the
    /// sample target or the measurement budget is reached.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        while t0.elapsed() < self.cfg.warm_up {
            black_box(f());
        }
        self.samples.clear();
        let t0 = Instant::now();
        loop {
            let s = Instant::now();
            black_box(f());
            self.samples.push(s.elapsed());
            if self.samples.len() >= self.cfg.sample_size || t0.elapsed() >= self.cfg.measurement {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let rate = throughput
            .map(|t| {
                let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
                match t {
                    Throughput::Bytes(n) => {
                        format!("  {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0))
                    }
                    Throughput::Elements(n) => format!("  {:.0} elem/s", per_sec(n)),
                }
            })
            .unwrap_or_default();
        println!(
            "{group}/{id}: min {min:?}  median {median:?}  mean {mean:?}  (n={}){rate}",
            sorted.len()
        );
    }
}

/// Drop-in for `criterion_group!`: defines a function running the targets
/// against the given config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Drop-in for `criterion_main!`: a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
