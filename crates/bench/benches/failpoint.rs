//! Fault-injection plane overhead: the disarmed fast path must stay at
//! one relaxed atomic load, and arming an *unrelated* site must not slow
//! hot callers down. The storage group measures the real injection sites
//! on the page-write path, where a regression would hit every commit.

use paradise_bench::harness::Criterion;
use paradise_bench::{criterion_group, criterion_main};
use paradise_storage::page::PAGE_SIZE;
use paradise_storage::volume::Volume;
use paradise_util::failpoint::{self, Policy};
use std::hint::black_box;

fn bench_failpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("failpoint");
    g.bench_function("trigger/disarmed", |b| {
        failpoint::disarm_all();
        b.iter(|| black_box(failpoint::trigger("bench.hot.site")).is_none())
    });
    g.bench_function("trigger/other_site_armed", |b| {
        // Arming one site flips the global counter: every other site now
        // pays the slow-path lookup. This is the worst disarmed-ish case.
        let _armed = failpoint::armed("bench.cold.site", Policy::delay(std::time::Duration::ZERO));
        b.iter(|| black_box(failpoint::trigger("bench.hot.site")).is_none())
    });
    failpoint::disarm_all();
    g.finish();

    let mut g = c.benchmark_group("failpoint-storage");
    let dir = std::env::temp_dir().join(format!("paradise-bench-fp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let vol = Volume::create(dir.join("vol")).expect("volume");
    let pid = vol.alloc_extent().expect("extent");
    let bytes = [0x3Cu8; PAGE_SIZE];
    g.bench_function("write_page_bytes/disarmed", |b| {
        failpoint::disarm_all();
        b.iter(|| vol.write_page_bytes(pid, &bytes).unwrap())
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(200)).measurement_time(std::time::Duration::from_millis(600));
    targets = bench_failpoint
}
criterion_main!(benches);
