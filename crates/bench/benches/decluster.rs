//! The §2.7.1 tradeoff (Figure 2.4): more spatial partitions smooth skew
//! but replicate more spanning tuples. Measures the replication factor and
//! the routing cost as the tile count grows.

use paradise_bench::harness::{BenchmarkId, Criterion};
use paradise_bench::{criterion_group, criterion_main};
use paradise_geom::{Grid, Point, Rect};

fn shapes(n: usize) -> Vec<Rect> {
    let mut x: u64 = 99;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 3400) as f64 / 10.0 - 170.0
    };
    (0..n)
        .map(|_| {
            let (cx, cy) = (next(), next() * 0.5);
            Rect::from_corners(Point::new(cx, cy), Point::new(cx + 1.5, cy + 1.0)).unwrap()
        })
        .collect()
}

fn bench_decluster(c: &mut Criterion) {
    let world = Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).unwrap();
    let data = shapes(20_000);
    let mut g = c.benchmark_group("decluster");
    println!("\npartitions -> replication factor (stored copies / tuples):");
    for tiles in [16u32, 64, 256, 1024, 4096, 16384] {
        let grid = Grid::with_tile_count(world, tiles).unwrap();
        let copies: usize = data.iter().map(|r| grid.tile_ids_for_rect(r).len()).sum();
        println!("  {:>6} tiles: {:.4}x", grid.num_tiles(), copies as f64 / data.len() as f64);
        g.bench_with_input(BenchmarkId::new("route", tiles), &grid, |b, grid| {
            b.iter(|| data.iter().map(|r| grid.tile_ids_for_rect(r).len()).sum::<usize>())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_decluster
}
criterion_main!(benches);
