//! Micro versions of representative benchmark queries (Q2 raster clip,
//! Q6 spatial selection, Q8 indexed NL join, Q13 spatial join) over a
//! small loaded world.

use paradise::queries;
use paradise_bench::harness::Criterion;
use paradise_bench::{criterion_group, criterion_main};
use paradise_bench::{setup_db, BenchConfig};
use paradise_datagen::tables::{self, World, WorldSpec, OIL_FIELD, QUERY_CHANNEL};
use paradise_geom::Point;

fn bench_queries(c: &mut Criterion) {
    let mut cfg = BenchConfig::new(4, 1);
    cfg.shrink = 4000;
    cfg.base_dir =
        std::env::temp_dir().join(format!("paradise-bench-queries-{}", std::process::id()));
    let world = World::generate(WorldSpec::paper_ratio(cfg.seed, 1, cfg.shrink));
    let db = setup_db(&cfg, &world);
    let us = tables::us_polygon();
    let d = tables::query_date();

    let mut g = c.benchmark_group("queries");
    g.bench_function("q2_clip_rasters", |b| {
        b.iter(|| queries::q2(&db, QUERY_CHANNEL, &us).unwrap().rows.len())
    });
    g.bench_function("q5_name_probe", |b| {
        b.iter(|| queries::q5(&db, "Phoenix").unwrap().rows.len())
    });
    g.bench_function("q6_spatial_selection", |b| {
        b.iter(|| queries::q6(&db, &us).unwrap().rows.len())
    });
    g.bench_function("q8_indexed_nl_join", |b| {
        b.iter(|| queries::q8(&db, "Louisville", 8.0).unwrap().rows.len())
    });
    g.bench_function("q9_raster_polygon_join", |b| {
        b.iter(|| queries::q9(&db, d, QUERY_CHANNEL, OIL_FIELD).unwrap().rows.len())
    });
    g.bench_function("q11_closest_aggregate", |b| {
        b.iter(|| queries::q11(&db, Point::new(-89.4, 43.1)).unwrap().rows.len())
    });
    g.bench_function("q13_spatial_join", |b| b.iter(|| queries::q13(&db).unwrap().rows.len()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_queries
}
criterion_main!(benches);
