//! Ablation of the Q12 spatial semi-join (Figure 3.1): the closest join
//! with and without the semi-join's broadcast avoidance.

use paradise::queries;
use paradise_bench::harness::{BenchmarkId, Criterion};
use paradise_bench::{criterion_group, criterion_main};
use paradise_bench::{setup_db, BenchConfig};
use paradise_datagen::tables::{World, WorldSpec, LARGE_CITY};

fn bench_closest(c: &mut Criterion) {
    let mut cfg = BenchConfig::new(8, 1);
    cfg.shrink = 4000;
    cfg.base_dir =
        std::env::temp_dir().join(format!("paradise-bench-closest-{}", std::process::id()));
    let world = World::generate(WorldSpec::paper_ratio(cfg.seed, 1, cfg.shrink));
    let db = setup_db(&cfg, &world);

    let mut g = c.benchmark_group("closest_join_q12");
    for semi in [true, false] {
        g.bench_with_input(BenchmarkId::new("semi_join", semi), &semi, |b, &semi| {
            b.iter(|| queries::q12(&db, LARGE_CITY, semi).unwrap().rows.len())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_closest
}
criterion_main!(benches);
