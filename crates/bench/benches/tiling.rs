//! Figure 2.3 pipeline: chunking an array into tiles (+ adaptive per-tile
//! compression) and tile-granular region reads vs whole-array assembly.

use paradise_array::{ElemType, NdArray, TileMap};
use paradise_bench::harness::{BenchmarkId, Criterion, Throughput};
use paradise_bench::{criterion_group, criterion_main};

fn raster_like(h: usize, w: usize) -> NdArray {
    let mut a = NdArray::zeros(vec![h, w], ElemType::U16).unwrap();
    for r in 0..h {
        for c in 0..w {
            // smooth gradient -> realistic compressibility
            a.set(&[r, c], ((r * 37 + c / 3) % 60_000) as u64).unwrap();
        }
    }
    a
}

fn bench_tiling(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiling");
    let a = raster_like(512, 512); // 512 KB
    g.throughput(Throughput::Bytes(a.byte_len() as u64));
    for tile_kb in [8usize, 32, 128] {
        g.bench_with_input(BenchmarkId::new("build", tile_kb), &a, |b, a| {
            b.iter(|| TileMap::build(a, tile_kb * 1024).unwrap())
        });
    }
    let map = TileMap::build(&a, 32 * 1024).unwrap();
    g.bench_function("assemble_whole", |b| b.iter(|| map.assemble().unwrap()));
    // A 2% region (the benchmark's US clip is ~2% of a raster).
    g.bench_function("read_region_2pct", |b| {
        b.iter(|| map.read_region(&[100, 100], &[72, 72]).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_tiling
}
criterion_main!(benches);
