//! Spatial-join algorithm comparison (paper §2.4): PBSM tile join vs
//! indexed nested loops with an R*-tree vs naive nested loops, on two sets
//! of polyline bounding boxes with exact refinement.

use paradise_bench::harness::{BenchmarkId, Criterion};
use paradise_bench::{criterion_group, criterion_main};
use paradise_exec::cluster::{Cluster, ClusterConfig};
use paradise_exec::ops::spatial_join::local_tile_join;
use paradise_exec::tuple::Tuple;
use paradise_exec::value::Value;
use paradise_geom::{Point, Polyline, Shape};
use paradise_storage::RTree;

fn lines(n: usize, seed: u64) -> Vec<Tuple> {
    let mut x: u64 = seed;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 3200) as f64 / 10.0 - 160.0
    };
    (0..n)
        .map(|i| {
            let (a, b) = (next(), next() * 0.5);
            Tuple::new(vec![
                Value::Str(format!("l{i}")),
                Value::Shape(Shape::Polyline(
                    Polyline::new(vec![Point::new(a, b), Point::new(a + 4.0, b + 3.0)]).unwrap(),
                )),
            ])
        })
        .collect()
}

fn bench_spatial_join(c: &mut Criterion) {
    let cluster = Cluster::create(&ClusterConfig::for_test(1, "bench-sj")).unwrap();
    let mut g = c.benchmark_group("spatial_join");
    for n in [500usize, 2000] {
        let left = lines(n, 7);
        let right = lines(n, 1234);
        // PBSM-style tile join (single node owns every tile).
        g.bench_with_input(BenchmarkId::new("pbsm_tile", n), &n, |b, _| {
            b.iter(|| local_tile_join(&cluster, 0, &left, 1, &right, 1).unwrap())
        });
        // Indexed nested loops: bulk-load an R*-tree on the right side,
        // probe with every left bbox, refine exactly.
        g.bench_with_input(BenchmarkId::new("indexed_nl", n), &n, |b, _| {
            b.iter(|| {
                let entries: Vec<_> = right
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (t.get(1).unwrap().as_shape().unwrap().bbox(), i as u64))
                    .collect();
                let tree = RTree::bulk_load(entries);
                let mut hits = 0usize;
                for l in &left {
                    let ls = l.get(1).unwrap().as_shape().unwrap();
                    for (_, ri) in tree.search(&ls.bbox()) {
                        let rs = right[ri as usize].get(1).unwrap().as_shape().unwrap();
                        if ls.overlaps(rs) {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        });
        // Naive nested loops baseline (bbox filter only per pair).
        g.bench_with_input(BenchmarkId::new("nested_loops", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for l in &left {
                    let ls = l.get(1).unwrap().as_shape().unwrap();
                    let lb = ls.bbox();
                    for r in &right {
                        let rs = r.get(1).unwrap().as_shape().unwrap();
                        if lb.intersects(&rs.bbox()) && ls.overlaps(rs) {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_spatial_join
}
criterion_main!(benches);
