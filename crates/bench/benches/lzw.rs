//! LZW compression micro-benchmarks (paper §2.5.1): raster-like smooth
//! data vs incompressible noise, and the adaptive `maybe_compress` flag.

use paradise_array::lzw;
use paradise_bench::harness::{BenchmarkId, Criterion, Throughput};
use paradise_bench::{criterion_group, criterion_main};

fn smooth_tile(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i / 64) % 251) as u8).collect()
}

fn noisy_tile(len: usize) -> Vec<u8> {
    let mut x: u32 = 0xDEAD_BEEF;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 24) as u8
        })
        .collect()
}

fn bench_lzw(c: &mut Criterion) {
    let mut g = c.benchmark_group("lzw");
    for (name, data) in [("smooth", smooth_tile(128 * 1024)), ("noisy", noisy_tile(128 * 1024))] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("compress", name), &data, |b, d| {
            b.iter(|| lzw::compress(d))
        });
        let packed = lzw::compress(&data);
        g.bench_with_input(BenchmarkId::new("decompress", name), &packed, |b, p| {
            b.iter(|| lzw::decompress(p).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("maybe_compress", name), &data, |b, d| {
            b.iter(|| lzw::maybe_compress(d))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_lzw
}
criterion_main!(benches);
