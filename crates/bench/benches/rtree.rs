//! R*-tree micro-benchmarks: one-at-a-time insertion (with forced
//! reinsertion) vs STR bulk loading, and window searches — the paper notes
//! bulk loading packs indexes better (§3.3 Q5–Q8 discussion).

use paradise_bench::harness::{BenchmarkId, Criterion};
use paradise_bench::{criterion_group, criterion_main};
use paradise_geom::{Point, Rect};
use paradise_storage::RTree;

fn rects(n: usize) -> Vec<(Rect, u64)> {
    let mut x: u64 = 0x1234_5678;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 100_000) as f64 / 100.0
    };
    (0..n)
        .map(|i| {
            let (cx, cy) = (next(), next());
            (
                Rect::from_corners(Point::new(cx, cy), Point::new(cx + 2.0, cy + 2.0)).unwrap(),
                i as u64,
            )
        })
        .collect()
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree");
    for n in [1_000usize, 10_000] {
        let data = rects(n);
        g.bench_with_input(BenchmarkId::new("insert", n), &data, |b, d| {
            b.iter(|| {
                let mut t = RTree::new();
                for (r, v) in d {
                    t.insert(*r, *v);
                }
                t
            })
        });
        g.bench_with_input(BenchmarkId::new("bulk_load", n), &data, |b, d| {
            b.iter(|| RTree::bulk_load(d.clone()))
        });
        let tree = RTree::bulk_load(data.clone());
        let window =
            Rect::from_corners(Point::new(200.0, 200.0), Point::new(300.0, 300.0)).unwrap();
        g.bench_with_input(BenchmarkId::new("search_window", n), &tree, |b, t| {
            b.iter(|| t.search(&window))
        });
        g.bench_with_input(BenchmarkId::new("nearest", n), &tree, |b, t| {
            b.iter(|| t.nearest(&Point::new(500.0, 500.0)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_rtree
}
criterion_main!(benches);
