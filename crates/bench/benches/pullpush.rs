//! Pull vs push for large attributes (paper §2.5.2): fetching only the
//! tiles a clip needs (pull) vs shipping the whole raster (push), for
//! clip regions of growing size.

use paradise_array::{BitDepth, Raster};
use paradise_bench::harness::{BenchmarkId, Criterion};
use paradise_bench::{criterion_group, criterion_main};
use paradise_exec::cluster::{Cluster, ClusterConfig};
use paradise_exec::raster_store;
use paradise_geom::{Point, Rect};

fn bench_pullpush(c: &mut Criterion) {
    let cluster = Cluster::create(&ClusterConfig::for_test(2, "bench-pullpush")).unwrap();
    let world = Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).unwrap();
    let mut img = Raster::new(512, 256, BitDepth::Sixteen, world).unwrap();
    for row in 0..256 {
        for col in 0..512 {
            img.set_pixel(col, row, ((row * 512 + col) % 60_000) as u32).unwrap();
        }
    }
    // Stored on node 0; node 1 is the "remote" consumer.
    let sr = raster_store::store_raster(&cluster, 0, &img, false, 8 * 1024).unwrap();

    let mut g = c.benchmark_group("pull_vs_push");
    for pct in [2u32, 10, 50, 100] {
        // A clip region covering `pct`% of the raster's pixels.
        let rows = (256 * pct / 100).max(1);
        let cols = (512 * pct / 100).max(1);
        g.bench_with_input(BenchmarkId::new("pull_tiles", pct), &pct, |b, _| {
            b.iter(|| raster_store::fetch_region(&cluster, 1, &sr, 0, rows, 0, cols).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("push_whole", pct), &pct, |b, _| {
            b.iter(|| {
                // Push model: materialise the whole raster at the consumer,
                // then cut the region out locally.
                let whole = raster_store::fetch_whole(&cluster, 1, &sr).unwrap();
                whole.array().subarray(&[0, 0], &[rows as usize, cols as usize]).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_pullpush
}
criterion_main!(benches);
