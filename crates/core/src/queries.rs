//! The global Sequoia 2000 benchmark queries (paper §3.1.2), implemented
//! as physical plans over the parallel engine.
//!
//! Each function is one of the paper's fourteen queries. Q1 is the load
//! (see [`crate::Paradise::load_table`] and the index builders); Q2–Q14
//! return a [`QueryResult`] whose [`QueryMetrics`] carries the simulated
//! parallel execution time, network bytes, and pull counts the experiments
//! report.
//!
//! Column layout conventions (the benchmark schemas of §3.1.1):
//!
//! * `raster(date, channel, data)`
//! * `populatedPlaces(id, containing_face, type, location, name)`
//! * `roads(id, type, shape)` / `drainage(id, type, shape)`
//! * `landCover(id, type, shape)`

use crate::db::{Paradise, QueryResult};
use crate::Result;
use paradise_array::Raster;
use paradise_exec::cluster::NetSnapshot;
use paradise_exec::metrics::QueryMetrics;
use paradise_exec::ops::basic::sort_by_col;
use paradise_exec::ops::closest::{closest_join, ClosestResult};
use paradise_exec::ops::spatial_join::parallel_spatial_join;
use paradise_exec::phase::{route, run_phase, run_sequential};
use paradise_exec::raster_store;
use paradise_exec::table::unpack_oid;
use paradise_exec::value::{Date, RasterValue, StoredRaster, Value};
use paradise_exec::{ExecError, NodeId, Tuple};
use paradise_geom::{Circle, Point, Polygon, Shape};
use std::sync::Arc;
use std::time::Instant;

/// `raster.date` column.
pub const RASTER_DATE: usize = 0;
/// `raster.channel` column.
pub const RASTER_CHANNEL: usize = 1;
/// `raster.data` column.
pub const RASTER_DATA: usize = 2;
/// `populatedPlaces.type` column.
pub const PP_TYPE: usize = 2;
/// `populatedPlaces.location` column.
pub const PP_LOC: usize = 3;
/// `populatedPlaces.name` column.
pub const PP_NAME: usize = 4;
/// `roads`/`drainage` `.id` column.
pub const LINE_ID: usize = 0;
/// `roads`/`drainage` `.type` column.
pub const LINE_TYPE: usize = 1;
/// `roads`/`drainage` `.shape` column.
pub const LINE_SHAPE: usize = 2;
/// `landCover.id` column.
pub const LC_ID: usize = 0;
/// `landCover.type` column.
pub const LC_TYPE: usize = 1;
/// `landCover.shape` column.
pub const LC_SHAPE: usize = 2;

/// Seals a query's metrics: wall clock plus the network traffic the query
/// caused (the delta over `net0`). Accounting happens at the stream/
/// transport choke point, so these numbers are identical for `Local` and
/// `Tcp` transports running the same plan.
fn finish(
    db: &Paradise,
    net0: NetSnapshot,
    mut metrics: QueryMetrics,
    columns: &[&str],
    rows: Vec<Tuple>,
    t0: Instant,
) -> QueryResult {
    let d = db.cluster().net.since(net0);
    metrics.net_bytes = d.bytes;
    metrics.net_tuples = d.tuples;
    metrics.pulls = d.pulls;
    metrics.pull_bytes = d.pull_bytes;
    metrics.wall = t0.elapsed();
    QueryResult { columns: columns.iter().map(|s| s.to_string()).collect(), rows, metrics }
}

/// Ships per-node result rows to the query coordinator over the cluster's
/// active transport, charging network traffic for every row (the QC is its
/// own process, Figure 2.1). Over `Transport::Tcp` the rows really cross
/// sockets; accounting is identical either way.
fn collect_rows(db: &Paradise, per_node: Vec<Vec<Tuple>>) -> Result<Vec<Tuple>> {
    db.cluster().collect_to_coordinator(per_node)
}

fn stored_raster(t: &Tuple, col: usize) -> Result<&StoredRaster> {
    match t.get(col)? {
        Value::Raster(RasterValue::Stored(sr)) => Ok(sr),
        other => Err(ExecError::Type { expected: "stored raster", got: other.kind().to_string() }),
    }
}

/// **Q2** — "Select all raster images corresponding to a particular
/// satellite channel, clip each image by a fixed polygon, and sort the
/// results by date."
pub fn q2(db: &Paradise, channel: i64, clip: &Polygon) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let raster = db.table("raster")?;
    let per_node = run_phase(db.cluster(), &mut m, "scan + clip rasters", |node| {
        let mut rows = Vec::new();
        raster.scan_fragment(db.cluster(), node, |_, t| {
            if t.get(RASTER_CHANNEL)?.as_int()? != channel {
                return Ok(());
            }
            let sr = stored_raster(&t, RASTER_DATA)?;
            if let Some((clipped, _)) = raster_store::clip_stored(db.cluster(), node, sr, clip)? {
                rows.push(Tuple::new(vec![
                    t.get(RASTER_DATE)?.clone(),
                    Value::Raster(RasterValue::Mem(Arc::new(clipped))),
                ]));
            }
            Ok(())
        })?;
        Ok(rows)
    })?;
    let rows = collect_rows(db, per_node)?;
    let rows = run_sequential(&mut m, || sort_by_col(rows, 0))?;
    Ok(finish(db, net0, m, &["date", "clip"], rows, t0))
}

/// **Q3** — "Select all the raster images for a particular date, clipping
/// each image by a constant polygon. Average the pixel values of the
/// clipped images to produce a single result image."
///
/// With `declustered_rasters = false` this is the paper's sequential plan:
/// an average operator on node 0 *pulls* the clip-region tiles of every
/// matching image (§3.5). With `true`, every node averages the tiles it
/// stores locally and the coordinator merges partial sums — the §2.6
/// "decluster the image" plan.
pub fn q3(
    db: &Paradise,
    date: Date,
    clip: &Polygon,
    declustered_rasters: bool,
) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let raster = db.table("raster")?;

    // Locate the matching rasters (metadata only — cheap).
    let located = run_phase(db.cluster(), &mut m, "locate rasters", |node| {
        let mut srs: Vec<StoredRaster> = Vec::new();
        raster.scan_fragment(db.cluster(), node, |_, t| {
            if t.get(RASTER_DATE)?.as_date()? == date {
                srs.push(stored_raster(&t, RASTER_DATA)?.clone());
            }
            Ok(())
        })?;
        Ok(srs)
    })?;
    let srs: Vec<StoredRaster> = located.into_iter().flatten().collect();
    if srs.is_empty() {
        return Ok(finish(db, net0, m, &["average"], Vec::new(), t0));
    }

    let result: Raster = if !declustered_rasters {
        // The paper's plan: one average operator pulls everything to p0.
        run_sequential(&mut m, || {
            let mut clipped = Vec::with_capacity(srs.len());
            for sr in &srs {
                if let Some((c, _)) = raster_store::clip_stored(db.cluster(), 0, sr, clip)? {
                    clipped.push(c);
                }
            }
            let refs: Vec<&Raster> = clipped.iter().collect();
            Ok(Raster::average_of(&refs)?)
        })?
    } else {
        // Parallel plan: each node sums the pixels of the clip-region tiles
        // it stores, shipping compact per-tile pieces; the coordinator
        // pastes the pieces — its work is proportional to the pixels
        // contributed, independent of the node count.
        let sr0 = &srs[0];
        let Some((r0, r1, c0, c1)) = raster_store::pixel_region(sr0, &clip.bbox()) else {
            return Ok(finish(db, net0, m, &["average"], Vec::new(), t0));
        };
        let (h, w) = ((r1 - r0) as usize, (c1 - c0) as usize);
        /// One node's contribution: a sub-rectangle of per-pixel sums.
        struct Piece {
            row0: u32,
            col0: u32,
            rows: u32,
            cols: u32,
            sums: Vec<u64>,
        }
        let partials = run_phase(db.cluster(), &mut m, "local partial sums", |node| {
            let mut pieces: Vec<Piece> = Vec::new();
            for sr in &srs {
                for idx in sr.tiles_for_region(r0, r1, c0, c1) {
                    if sr.tiles[idx].node as usize != node {
                        continue; // another node owns this tile
                    }
                    let bytes = db.cluster().fetch_tile(node, &sr.tiles[idx])?;
                    let (tr0, tc0, th, tw) = sr.tile_region(idx);
                    let tile = paradise_array::NdArray::new(
                        vec![th as usize, tw as usize],
                        sr.depth.elem_type(),
                        bytes,
                    )?;
                    let (a_r, b_r) = (tr0.max(r0), (tr0 + th).min(r1));
                    let (a_c, b_c) = (tc0.max(c0), (tc0 + tw).min(c1));
                    let (prows, pcols) = ((b_r - a_r) as usize, (b_c - a_c) as usize);
                    let mut sums = vec![0u64; prows * pcols];
                    for rr in a_r..b_r {
                        for cc in a_c..b_c {
                            let v = tile
                                .get(&[(rr - tr0) as usize, (cc - tc0) as usize])
                                .expect("in range");
                            sums[(rr - a_r) as usize * pcols + (cc - a_c) as usize] += v;
                        }
                    }
                    db.cluster().net.ship(16 + sums.len() * 8);
                    pieces.push(Piece {
                        row0: a_r - r0,
                        col0: a_c - c0,
                        rows: prows as u32,
                        cols: pcols as u32,
                        sums,
                    });
                }
            }
            Ok(pieces)
        })?;
        run_sequential(&mut m, || {
            let mut sums = vec![0u64; h * w];
            let mut counts = vec![0u32; h * w];
            for piece in partials.iter().flatten() {
                for pr in 0..piece.rows as usize {
                    for pc in 0..piece.cols as usize {
                        let off = (piece.row0 as usize + pr) * w + piece.col0 as usize + pc;
                        sums[off] += piece.sums[pr * piece.cols as usize + pc];
                        counts[off] += 1;
                    }
                }
            }
            let mut out =
                Raster::new(w, h, sr0.depth, raster_store::geo_of_region(sr0, r0, r1, c0, c1))?;
            for row in 0..h {
                for col in 0..w {
                    let off = row * w + col;
                    let n = u64::from(counts[off]);
                    out.set_pixel(col, row, sums[off].checked_div(n).unwrap_or(0) as u32)?;
                }
            }
            Ok(out)
        })?
    };

    let rows = vec![Tuple::new(vec![Value::Raster(RasterValue::Mem(Arc::new(result)))])];
    Ok(finish(db, net0, m, &["average"], rows, t0))
}

/// **Q4** — select one raster by date + channel, clip, `lower_res(8)`, and
/// insert the result into a permanent relation (copy-on-insert of the new
/// large attribute, §2.5.2).
pub fn q4(
    db: &Paradise,
    date: Date,
    channel: i64,
    clip: &Polygon,
    factor: usize,
) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let raster = db.table("raster")?;
    let per_node = run_phase(db.cluster(), &mut m, "select + clip + lower_res", |node| {
        let mut rows = Vec::new();
        raster.scan_fragment(db.cluster(), node, |_, t| {
            if t.get(RASTER_DATE)?.as_date()? != date || t.get(RASTER_CHANNEL)?.as_int()? != channel
            {
                return Ok(());
            }
            let sr = stored_raster(&t, RASTER_DATA)?;
            if let Some((clipped, _)) = raster_store::clip_stored(db.cluster(), node, sr, clip)? {
                let low = clipped.lower_res(factor)?;
                rows.push(Tuple::new(vec![
                    t.get(RASTER_DATE)?.clone(),
                    t.get(RASTER_CHANNEL)?.clone(),
                    Value::Raster(RasterValue::Mem(Arc::new(low))),
                ]));
            }
            Ok(())
        })?;
        Ok(rows)
    })?;
    let rows = collect_rows(db, per_node)?;
    // Copy-on-insert into a permanent result relation, then clean it up.
    let result_table = paradise_exec::TableDef::new(
        &db.cluster().fresh_temp_name("q4_result"),
        db.table("raster")?.schema.clone(),
        paradise_exec::Decluster::RoundRobin,
    );
    run_sequential(&mut m, || {
        result_table.load(db.cluster(), rows.iter().cloned())?;
        Ok(())
    })?;
    result_table.drop_table(db.cluster())?;
    Ok(finish(db, net0, m, &["date", "channel", "lowres"], rows, t0))
}

/// **Q5** — "Select one city based on the city's name" (B+-tree probe).
pub fn q5(db: &Paradise, name: &str) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let pp = db.table("populatedPlaces")?;
    let per_node = run_phase(db.cluster(), &mut m, "index probe", |node| {
        pp.btree_probe(db.cluster(), node, PP_NAME, &Value::Str(name.to_string()))
    })?;
    let rows = collect_rows(db, per_node)?;
    Ok(finish(db, net0, m, &["id", "containing_face", "type", "location", "name"], rows, t0))
}

/// Reference-point duplicate elimination for replicated spatial tuples: a
/// replica participates on the node owning the tile of `probe ∩ bbox`'s
/// lower-left corner.
fn owns_ref_point(
    db: &Paradise,
    node: NodeId,
    a: &paradise_geom::Rect,
    b: &paradise_geom::Rect,
) -> bool {
    match a.intersection(b) {
        Some(ix) => {
            let tile = db.cluster().grid().tile_of_point(&ix.lo);
            db.cluster().node_for_tile(tile) == node
        }
        None => false,
    }
}

/// **Q6** — "Locate all polygons which overlap a particular geographical
/// region and insert the result into a permanent relation" (spatial
/// selection through the R*-tree).
pub fn q6(db: &Paradise, region: &Polygon) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let lc = db.table("landCover")?;
    let bbox = region.bbox();
    let per_node = run_phase(db.cluster(), &mut m, "spatial index selection", |node| {
        let idx = lc.rtree_index(db.cluster(), node, LC_SHAPE)?;
        let mut rows = Vec::new();
        for (rect, packed) in idx.search(&bbox) {
            // Replicated polygons: only the reference-point owner reports.
            if !owns_ref_point(db, node, &rect, &bbox) {
                continue;
            }
            let t = lc.read_tuple(db.cluster(), node, unpack_oid(packed))?;
            let shape = t.get(LC_SHAPE)?.as_shape()?;
            if shape.overlaps(&Shape::Polygon(region.clone())) {
                rows.push(t);
            }
        }
        Ok(rows)
    })?;
    let rows = collect_rows(db, per_node)?;
    // Insert into a permanent relation (then drop — benchmark hygiene).
    let result_table = paradise_exec::TableDef::new(
        &db.cluster().fresh_temp_name("q6_result"),
        lc.schema.clone(),
        paradise_exec::Decluster::RoundRobin,
    );
    run_sequential(&mut m, || {
        result_table.load(db.cluster(), rows.iter().cloned())?;
        Ok(())
    })?;
    result_table.drop_table(db.cluster())?;
    Ok(finish(db, net0, m, &["id", "type", "shape"], rows, t0))
}

/// **Q7** — polygons within a radius of a point with a bounded area
/// (combined spatial + non-spatial selection).
pub fn q7(db: &Paradise, center: Point, radius: f64, max_area: f64) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let lc = db.table("landCover")?;
    let circle = Circle::new(center, radius).map_err(ExecError::Geom)?;
    let bbox = circle.bbox();
    // The index probe is cheap; the exact within-circle refinement per
    // candidate is the hot loop, so it runs as tuple morsels on the worker
    // pool (outputs merge in candidate order — deterministic).
    let pool = db.cluster().workers();
    let per_node = run_phase(db.cluster(), &mut m, "circle selection", |node| {
        let idx = lc.rtree_index(db.cluster(), node, LC_SHAPE)?;
        let candidates = idx.search(&bbox);
        pool.map_chunks(&candidates, paradise_exec::workers::TUPLE_MORSEL, |chunk| {
            let mut rows = Vec::new();
            for (rect, packed) in chunk {
                if !owns_ref_point(db, node, rect, &bbox) {
                    continue;
                }
                let t = lc.read_tuple(db.cluster(), node, unpack_oid(*packed))?;
                let Shape::Polygon(poly) = t.get(LC_SHAPE)?.as_shape()? else {
                    continue;
                };
                if poly.within_circle(&circle) && poly.area() < max_area {
                    rows.push(Tuple::new(vec![Value::Float(poly.area()), t.get(LC_TYPE)?.clone()]));
                }
            }
            Ok(rows)
        })
    })?;
    let rows = collect_rows(db, per_node)?;
    Ok(finish(db, net0, m, &["area", "type"], rows, t0))
}

/// **Q8** — "Find all polygons which are nearby any city named Louisville"
/// (indexed nested-loops spatial join; the small outer is replicated to
/// every node, §2.4).
pub fn q8(db: &Paradise, city_name: &str, box_len: f64) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let pp = db.table("populatedPlaces")?;
    let lc = db.table("landCover")?;
    // Outer: the named cities (tiny), via the name index.
    let cities = run_phase(db.cluster(), &mut m, "select cities", |node| {
        pp.btree_probe(db.cluster(), node, PP_NAME, &Value::Str(city_name.to_string()))
    })?;
    let boxes: Vec<paradise_geom::Rect> = run_sequential(&mut m, || {
        let mut out = Vec::new();
        for t in cities.into_iter().flatten() {
            let p = t
                .get(PP_LOC)?
                .as_shape()?
                .as_point()
                .ok_or(ExecError::Type { expected: "point", got: "shape".into() })?;
            // Replicating the small outer to every node is network traffic.
            for _ in 0..db.cluster().num_nodes() {
                db.cluster().net.ship(t.wire_size());
            }
            out.push(p.make_box(box_len));
        }
        Ok(out)
    })?;
    let per_node = run_phase(db.cluster(), &mut m, "indexed NL spatial join", |node| {
        let idx = lc.rtree_index(db.cluster(), node, LC_SHAPE)?;
        let mut rows = Vec::new();
        for b in &boxes {
            for (rect, packed) in idx.search(b) {
                if !owns_ref_point(db, node, &rect, b) {
                    continue;
                }
                let t = lc.read_tuple(db.cluster(), node, unpack_oid(packed))?;
                let shape = t.get(LC_SHAPE)?.as_shape()?;
                if shape.overlaps(&Shape::Rect(*b)) {
                    rows.push(Tuple::new(vec![t.get(LC_SHAPE)?.clone(), t.get(LC_TYPE)?.clone()]));
                }
            }
        }
        Ok(rows)
    })?;
    let rows = collect_rows(db, per_node)?;
    Ok(finish(db, net0, m, &["shape", "type"], rows, t0))
}

/// Selects the oil-field polygons and de-duplicates the spatial replicas
/// (shared by Q9/Q14).
fn oil_polygons(db: &Paradise, m: &mut QueryMetrics, oil_type: i64) -> Result<Vec<Polygon>> {
    let lc = db.table("landCover")?;
    let per_node = run_phase(db.cluster(), m, "select oil fields", |node| {
        let mut out: Vec<(String, Polygon)> = Vec::new();
        lc.scan_fragment(db.cluster(), node, |_, t| {
            if t.get(LC_TYPE)?.as_int()? == oil_type {
                if let Shape::Polygon(p) = t.get(LC_SHAPE)?.as_shape()? {
                    out.push((t.get(LC_ID)?.as_str()?.to_string(), p.clone()));
                }
            }
            Ok(())
        })?;
        Ok(out)
    })?;
    run_sequential(m, || {
        let mut seen = std::collections::HashSet::new();
        let mut polys = Vec::new();
        for (node, list) in per_node.into_iter().enumerate() {
            for (id, p) in list {
                if node != 0 {
                    db.cluster().net.ship(64 + p.num_points() * 16);
                }
                if seen.insert(id) {
                    polys.push(p);
                }
            }
        }
        Ok(polys)
    })
}

/// **Q9** — clip one raster (date + channel) by every oil-field polygon:
/// "the polygons are sent to all the nodes … all the processing for the
/// query is done at the node that holds the selected raster."
pub fn q9(db: &Paradise, date: Date, channel: i64, oil_type: i64) -> Result<QueryResult> {
    q9_q14_impl(db, Some(date), None, channel, oil_type, "q9")
}

/// **Q14** — like Q9 over a date *range* (a year of rasters), so the
/// clipping parallelises across the nodes holding the selected rasters.
pub fn q14(
    db: &Paradise,
    date_lo: Date,
    date_hi: Date,
    channel: i64,
    oil_type: i64,
) -> Result<QueryResult> {
    q9_q14_impl(db, None, Some((date_lo, date_hi)), channel, oil_type, "q14")
}

fn q9_q14_impl(
    db: &Paradise,
    exact: Option<Date>,
    range: Option<(Date, Date)>,
    channel: i64,
    oil_type: i64,
    _tag: &str,
) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let raster = db.table("raster")?;
    let polys = oil_polygons(db, &mut m, oil_type)?;
    // Ship the polygons to every node (replicated small outer).
    run_sequential(&mut m, || {
        for p in &polys {
            for _ in 0..db.cluster().num_nodes() {
                db.cluster().net.ship(64 + p.num_points() * 16);
            }
        }
        Ok(())
    })?;
    let per_node = run_phase(db.cluster(), &mut m, "clip rasters by polygons", |node| {
        let mut rows = Vec::new();
        raster.scan_fragment(db.cluster(), node, |_, t| {
            if t.get(RASTER_CHANNEL)?.as_int()? != channel {
                return Ok(());
            }
            let d = t.get(RASTER_DATE)?.as_date()?;
            let matches = match (exact, range) {
                (Some(e), _) => d == e,
                (None, Some((lo, hi))) => d >= lo && d <= hi,
                _ => false,
            };
            if !matches {
                return Ok(());
            }
            let sr = stored_raster(&t, RASTER_DATA)?;
            for p in &polys {
                if let Some((clipped, _)) = raster_store::clip_stored(db.cluster(), node, sr, p)? {
                    rows.push(Tuple::new(vec![
                        Value::Shape(Shape::Polygon(p.clone())),
                        Value::Raster(RasterValue::Mem(Arc::new(clipped))),
                    ]));
                }
            }
            Ok(())
        })?;
        Ok(rows)
    })?;
    let rows = collect_rows(db, per_node)?;
    Ok(finish(db, net0, m, &["shape", "clip"], rows, t0))
}

/// **Q10** — rasters whose average pixel value over a region exceeds a
/// constant: the clipped raster is a new large attribute created during
/// predicate evaluation, stored in an operator-scoped file that disappears
/// when the operator completes (§2.5.2).
pub fn q10(db: &Paradise, clip: &Polygon, threshold: f64) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let raster = db.table("raster")?;
    let op_file = db.cluster().fresh_temp_name("q10_op");
    let per_node = run_phase(db.cluster(), &mut m, "clip + average predicate", |node| {
        // Operator-scoped large-object file for the clipped rasters.
        let store = &db.cluster().node(node).store;
        store.create_file(&op_file)?;
        let mut rows = Vec::new();
        raster.scan_fragment(db.cluster(), node, |_, t| {
            let sr = stored_raster(&t, RASTER_DATA)?;
            let Some((clipped, _)) = raster_store::clip_stored(db.cluster(), node, sr, clip)?
            else {
                return Ok(());
            };
            // Materialise the predicate's large attribute into the
            // operator-scoped file, as Paradise does.
            let file = store.file(&op_file).expect("created above");
            let oid = file.insert(clipped.array().data())?;
            let _ = oid;
            if clipped.average().unwrap_or(0.0) > threshold {
                rows.push(Tuple::new(vec![
                    t.get(RASTER_DATE)?.clone(),
                    t.get(RASTER_CHANNEL)?.clone(),
                    Value::Raster(RasterValue::Mem(Arc::new(clipped))),
                ]));
            }
            Ok(())
        })?;
        Ok(rows)
    })?;
    // The operator has completed: its file (and all its extents) go away.
    for n in db.cluster().nodes() {
        n.store.drop_entry(&op_file)?;
    }
    let rows = collect_rows(db, per_node)?;
    Ok(finish(db, net0, m, &["date", "channel", "clip"], rows, t0))
}

/// **Q11** — "Find the closest road of each type to a given point": a
/// spatial aggregate evaluated with the extensible two-phase scheme — the
/// local function keeps the per-type minimum on each node, the global
/// function merges the partials (sequential tail, §2.4/§3.3).
pub fn q11(db: &Paradise, point: Point) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let roads = db.table("roads")?;
    // Phase 1: local "closest" aggregate per road type.
    let partials = run_phase(db.cluster(), &mut m, "local closest per type", |node| {
        let mut best: std::collections::HashMap<i64, (f64, Tuple)> =
            std::collections::HashMap::new();
        roads.scan_fragment(db.cluster(), node, |_, t| {
            let ty = t.get(LINE_TYPE)?.as_int()?;
            let d = t.get(LINE_SHAPE)?.as_shape()?.distance_to_point(&point);
            let replace = best.get(&ty).is_none_or(|(bd, _)| d < *bd);
            if replace {
                best.insert(ty, (d, t));
            }
            Ok(())
        })?;
        Ok(best)
    })?;
    // Phase 2: the single global aggregate operator.
    let rows = run_sequential(&mut m, || {
        let mut merged: std::collections::HashMap<i64, (f64, Tuple)> =
            std::collections::HashMap::new();
        for (node, partial) in partials.into_iter().enumerate() {
            for (ty, (d, t)) in partial {
                if node != 0 {
                    db.cluster().net.ship(t.wire_size() + 16);
                }
                let replace = merged.get(&ty).is_none_or(|(bd, _)| d < *bd);
                if replace {
                    merged.insert(ty, (d, t));
                }
            }
        }
        let mut types: Vec<i64> = merged.keys().copied().collect();
        types.sort_unstable();
        Ok(types
            .into_iter()
            .map(|ty| {
                let (d, t) = merged.remove(&ty).expect("present");
                Tuple::new(vec![t.values[LINE_SHAPE].clone(), Value::Int(ty), Value::Float(d)])
            })
            .collect::<Vec<_>>())
    })?;
    Ok(finish(db, net0, m, &["closest", "type", "distance"], rows, t0))
}

/// **Q12** — "Find the closest drainage feature to every large city": the
/// full Figure 3.1 plan (on-the-fly local R*-trees, spatial semi-join,
/// join-with-aggregate with expanding circles, sequential global
/// aggregate). `use_semi_join = false` ablates the semi-join.
pub fn q12(db: &Paradise, large_city_type: i64, use_semi_join: bool) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let pp = db.table("populatedPlaces")?;
    let drainage = db.table("drainage")?;
    // Select the large cities from the (spatially declustered) places.
    let cities = run_phase(db.cluster(), &mut m, "select large cities", |node| {
        let mut out = Vec::new();
        pp.scan_fragment(db.cluster(), node, |_, t| {
            if t.get(PP_TYPE)?.as_int()? == large_city_type {
                out.push(t);
            }
            Ok(())
        })?;
        Ok(out)
    })?;
    let results: Vec<ClosestResult> =
        closest_join(db.cluster(), &mut m, drainage, LINE_SHAPE, cities, PP_LOC, use_semi_join)?;
    let rows = results
        .into_iter()
        .map(|r| {
            Tuple::new(vec![
                r.inner.values[LINE_SHAPE].clone(),
                r.outer.values[PP_LOC].clone(),
                Value::Float(r.distance),
            ])
        })
        .collect();
    Ok(finish(db, net0, m, &["closest", "location", "distance"], rows, t0))
}

/// **Q13** — "Find all drainage features which cross a road": the parallel
/// spatial join (tile repartitioning was done at load time — both tables
/// are spatially declustered on the shared grid — so only the local PBSM
/// phase runs, with reference-point duplicate elimination).
pub fn q13(db: &Paradise) -> Result<QueryResult> {
    let t0 = Instant::now();
    let mut m = QueryMetrics::default();
    let net0 = db.cluster().net.snapshot();
    let drainage = db.table("drainage")?;
    let roads = db.table("roads")?;
    let per_node =
        parallel_spatial_join(db.cluster(), &mut m, drainage, LINE_SHAPE, roads, LINE_SHAPE)?;
    let rows = collect_rows(db, per_node)?;
    Ok(finish(db, net0, m, &["d_id", "d_type", "d_shape", "r_id", "r_type", "r_shape"], rows, t0))
}

/// Variant of Q2/Q3 used by the §3.5 declustered-raster experiment: Q3
/// with the clip region widened to the whole raster ("Query 3'").
pub fn q3_prime(db: &Paradise, date: Date, declustered_rasters: bool) -> Result<QueryResult> {
    let whole = Polygon::from_rect(&db.cluster().grid().universe());
    q3(db, date, &whole, declustered_rasters)
}

/// Repartition-based relational helper exposed for completeness: hash
/// repartitions a table on a column and returns per-node batches (phase 1
/// of a parallel relational join when inputs are not co-partitioned).
pub fn hash_repartition(
    db: &Paradise,
    m: &mut QueryMetrics,
    table: &paradise_exec::TableDef,
    col: usize,
) -> Result<Vec<Vec<Tuple>>> {
    let n = db.cluster().num_nodes();
    let outbox = run_phase(db.cluster(), m, "hash repartition", |node| {
        let mut msgs = Vec::new();
        table.scan_fragment(db.cluster(), node, |_, t| {
            let dest = (paradise_exec::decluster::hash_value(t.get(col)?) as usize) % n;
            msgs.push((dest, t));
            Ok(())
        })?;
        Ok(msgs)
    })?;
    route(db.cluster(), outbox)
}
