//! The `paradise.*` system catalog: virtual tables over the monitoring
//! plane, queryable with ordinary SELECTs (paper §2.3 exposes catalog
//! relations the same way; this reproduction extends them to the
//! distributed metrics plane).
//!
//! | table                 | one row per            | source                         |
//! |-----------------------|------------------------|--------------------------------|
//! | `paradise.metrics`    | metric × node          | per-node registries (wire pull)|
//! | `paradise.queries`    | recent statement       | [`crate::history::QueryHistory`]|
//! | `paradise.buffer_pool`| node                   | per-node buffer/WAL counters   |
//! | `paradise.streams`    | cluster (single row)   | QC registry stream/net counters|
//!
//! Per-node tables are populated through
//! [`Cluster::node_samples`](paradise_exec::cluster::Cluster::node_samples), which
//! under the TCP transport pulls each data server's registry over the wire
//! (`StatsPull`/`StatsReply`) — the rows really do come from the remote
//! endpoints, labelled `node = "0" … "N-1"`, plus `"qc"` for the
//! coordinator's own registry.

use crate::db::Paradise;
use crate::Result;
use paradise_exec::metrics::QueryMetrics;
use paradise_exec::phase::{run_phase, run_sequential};
use paradise_exec::schema::{DataType, Field, Schema};
use paradise_exec::value::Value;
use paradise_exec::Tuple;
use paradise_obs::MetricSample;

/// Which system table a `paradise.*` FROM clause named.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogTable {
    /// `paradise.metrics` — every metric of every node, node-labelled.
    Metrics,
    /// `paradise.queries` — the query-history ring.
    Queries,
    /// `paradise.buffer_pool` — per-node buffer-pool and WAL counters.
    BufferPool,
    /// `paradise.streams` — cluster-wide stream and network totals.
    Streams,
}

impl CatalogTable {
    /// Resolves a (lowercased) `paradise.*` table name.
    pub fn from_name(name: &str) -> Option<CatalogTable> {
        match name {
            "paradise.metrics" => Some(CatalogTable::Metrics),
            "paradise.queries" => Some(CatalogTable::Queries),
            "paradise.buffer_pool" => Some(CatalogTable::BufferPool),
            "paradise.streams" => Some(CatalogTable::Streams),
            _ => None,
        }
    }

    /// The table's catalog name.
    pub fn name(&self) -> &'static str {
        match self {
            CatalogTable::Metrics => "paradise.metrics",
            CatalogTable::Queries => "paradise.queries",
            CatalogTable::BufferPool => "paradise.buffer_pool",
            CatalogTable::Streams => "paradise.streams",
        }
    }

    /// True when the table's rows are produced per node (a measured
    /// "catalog scan" phase) rather than at the coordinator.
    pub fn is_per_node(&self) -> bool {
        matches!(self, CatalogTable::Metrics | CatalogTable::BufferPool)
    }

    /// The table's schema.
    pub fn schema(&self) -> Schema {
        let f = Field::new;
        Schema::new(match self {
            CatalogTable::Metrics => {
                vec![f("name", DataType::Str), f("node", DataType::Str), f("value", DataType::Int)]
            }
            CatalogTable::Queries => vec![
                f("id", DataType::Int),
                f("statement", DataType::Str),
                f("shape", DataType::Str),
                f("status", DataType::Str),
                f("rows", DataType::Int),
                f("wall_us", DataType::Int),
                f("simulated_us", DataType::Int),
                f("net_bytes", DataType::Int),
                f("slow", DataType::Int),
            ],
            CatalogTable::BufferPool => vec![
                f("node", DataType::Str),
                f("capacity", DataType::Int),
                f("cached", DataType::Int),
                f("hits", DataType::Int),
                f("misses", DataType::Int),
                f("evictions", DataType::Int),
                f("writebacks", DataType::Int),
            ],
            CatalogTable::Streams => vec![
                f("streams_opened", DataType::Int),
                f("net_bytes", DataType::Int),
                f("net_tuples", DataType::Int),
                f("wire_bytes_sent", DataType::Int),
                f("wire_frames_sent", DataType::Int),
            ],
        })
    }
}

fn sample_value(samples: &[MetricSample], name: &str) -> i64 {
    samples.iter().find(|s| s.name == name).map(|s| s.value as i64).unwrap_or(0)
}

fn metric_rows(label: &str, samples: &[MetricSample]) -> Vec<Tuple> {
    samples
        .iter()
        .map(|s| {
            Tuple::new(vec![
                Value::Str(s.name.clone()),
                Value::Str(label.to_string()),
                Value::Int(s.value as i64),
            ])
        })
        .collect()
}

fn buffer_pool_row(label: &str, samples: &[MetricSample]) -> Tuple {
    let v = |name| Value::Int(sample_value(samples, name));
    Tuple::new(vec![
        Value::Str(label.to_string()),
        v("buffer.capacity"),
        v("buffer.frames_cached"),
        v("buffer.hits"),
        v("buffer.misses"),
        v("buffer.evictions"),
        v("buffer.writebacks"),
    ])
}

/// Materialises a catalog table's rows, recording the work in `m` (a
/// per-node "catalog scan" phase for per-node tables, sequential QC time
/// otherwise).
pub fn scan(db: &Paradise, table: CatalogTable, m: &mut QueryMetrics) -> Result<Vec<Tuple>> {
    let cluster = db.cluster();
    match table {
        CatalogTable::Metrics => {
            let per_node = run_phase(cluster, m, "catalog scan", |node| {
                Ok(metric_rows(&node.to_string(), &cluster.node_samples(node)?))
            })?;
            let mut rows: Vec<Tuple> = per_node.into_iter().flatten().collect();
            run_sequential(m, || {
                rows.extend(metric_rows("qc", &cluster.obs().samples()));
                Ok(())
            })?;
            Ok(rows)
        }
        CatalogTable::BufferPool => {
            let per_node = run_phase(cluster, m, "catalog scan", |node| {
                Ok(vec![buffer_pool_row(&node.to_string(), &cluster.node_samples(node)?)])
            })?;
            Ok(per_node.into_iter().flatten().collect())
        }
        CatalogTable::Queries => run_sequential(m, || {
            Ok(db
                .history()
                .records()
                .into_iter()
                .map(|r| {
                    Tuple::new(vec![
                        Value::Int(r.id as i64),
                        Value::Str(r.statement),
                        Value::Str(r.shape),
                        Value::Str(r.status),
                        Value::Int(r.rows as i64),
                        Value::Int(r.wall.as_micros() as i64),
                        Value::Int(r.simulated.as_micros() as i64),
                        Value::Int(r.net_bytes as i64),
                        Value::Int(i64::from(r.slow)),
                    ])
                })
                .collect())
        }),
        CatalogTable::Streams => run_sequential(m, || {
            let obs = cluster.obs();
            let g = |name: &str| Value::Int(obs.get(name).unwrap_or(0) as i64);
            Ok(vec![Tuple::new(vec![
                g("exec.streams_opened"),
                g("net.bytes"),
                g("net.tuples"),
                g("net.wire.bytes_sent"),
                g("net.wire.frames_sent"),
            ])])
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_resolution_roundtrip() {
        for t in [
            CatalogTable::Metrics,
            CatalogTable::Queries,
            CatalogTable::BufferPool,
            CatalogTable::Streams,
        ] {
            assert_eq!(CatalogTable::from_name(t.name()), Some(t));
        }
        assert_eq!(CatalogTable::from_name("paradise.nope"), None);
        assert_eq!(CatalogTable::from_name("roads"), None);
    }

    #[test]
    fn schemas_are_self_consistent() {
        assert_eq!(CatalogTable::Metrics.schema().index_of("node").unwrap(), 1);
        assert_eq!(CatalogTable::Queries.schema().index_of("statement").unwrap(), 1);
        assert_eq!(CatalogTable::BufferPool.schema().index_of("capacity").unwrap(), 1);
        assert_eq!(CatalogTable::Streams.schema().index_of("net_bytes").unwrap(), 1);
        assert!(CatalogTable::Metrics.is_per_node());
        assert!(!CatalogTable::Queries.is_per_node());
    }
}
