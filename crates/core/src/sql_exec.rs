//! SQL execution: plan selection over the parsed AST.
//!
//! The optimizer of this reproduction is a *plan matcher*: the fourteen
//! benchmark query shapes (paper §3.1.2) are recognised structurally by
//! [`match_plan`] into a [`Plan`], which [`execute_plan`] dispatches to
//! the hand-tuned parallel plans in [`crate::queries`] (that is where the
//! paper's optimizer decisions — index selection, join method, small-outer
//! replication, decluster avoidance — are encoded). Everything else falls
//! back to a generic parallel scan-filter-project plan over a single
//! table.
//!
//! Splitting matching from execution is what powers `EXPLAIN` (render the
//! chosen [`Plan`]'s operator tree without running it) and
//! `EXPLAIN ANALYZE` (run it, then annotate each operator with the row
//! counts, busy time, and buffer/network activity its measured phase
//! recorded — plus a Chrome-trace profile when the instance has a trace
//! path configured).

use crate::db::{Paradise, QueryResult};
use crate::queries;
use crate::Result;
use paradise_exec::metrics::QueryMetrics;
use paradise_exec::phase::run_phase;
use paradise_exec::value::{Date, Value};
use paradise_exec::{ExecError, Tuple};
use paradise_geom::{Circle, Point, Polygon, Rect, Shape};
use paradise_sql::ast::{BinOp, ExplainMode, Expr, Projection, SelectStmt};
use paradise_sql::parse_statement;

/// Parses and runs one SQL statement (optionally `EXPLAIN [ANALYZE]`),
/// recording the execution (or its failure) in the query history.
pub fn run_sql(db: &Paradise, text: &str) -> Result<QueryResult> {
    let t0 = std::time::Instant::now();
    let outcome: Result<(Plan, QueryResult)> = (|| {
        let stmt = parse_statement(text).map_err(|e| ExecError::Other(e.to_string()))?;
        let plan = match_plan(&stmt.select)?;
        let result = match stmt.explain {
            ExplainMode::None => execute_plan(db, &plan)?,
            ExplainMode::Plan => render_plan(&plan),
            ExplainMode::Analyze => explain_analyze(db, &plan)?,
        };
        Ok((plan, result))
    })();
    let history = db.history();
    let events = db.cluster().events();
    match outcome {
        Ok((plan, result)) => {
            history.record(
                text,
                plan.name(),
                "ok",
                result.rows.len() as u64,
                t0.elapsed(),
                &result.metrics,
                events,
            );
            Ok(result)
        }
        Err(e) => {
            events.emit("query.error", &[("error", e.to_string().into())]);
            history.record(
                text,
                "error",
                &e.to_string(),
                0,
                t0.elapsed(),
                &QueryMetrics::default(),
                events,
            );
            Err(e)
        }
    }
}

fn err(msg: impl Into<String>) -> ExecError {
    ExecError::Other(msg.into())
}

/// Evaluates a constant expression (literals and typed constructors).
fn eval_const(e: &Expr) -> Result<Value> {
    match e {
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Float(v) => Ok(Value::Float(*v)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Call { func, args } => {
            let f = func.to_ascii_lowercase();
            match f.as_str() {
                "date" => {
                    let Some(Expr::Str(s)) = args.first() else {
                        return Err(err("Date() takes a string literal"));
                    };
                    Ok(Value::Date(Date::parse(s)?))
                }
                "point" => {
                    let (x, y) = two_floats(args)?;
                    Ok(Value::Shape(Shape::Point(Point::new(x, y))))
                }
                "circle" => {
                    let center = match args.first().map(eval_const).transpose()? {
                        Some(Value::Shape(Shape::Point(p))) => p,
                        _ => return Err(err("Circle() takes (Point, radius)")),
                    };
                    let r = const_float(args.get(1).ok_or_else(|| err("Circle() radius"))?)?;
                    Ok(Value::Shape(Shape::Circle(
                        Circle::new(center, r).map_err(ExecError::Geom)?,
                    )))
                }
                "polygon" | "closedpolygon" => {
                    // ClosedPolygon(Polygon(...)) or ClosedPolygon(x, y, …);
                    // a single argument must itself be a polygonal constant.
                    if args.len() == 1 {
                        return match eval_const(&args[0])? {
                            v @ Value::Shape(Shape::Polygon(_) | Shape::Rect(_)) => Ok(v),
                            other => {
                                Err(err(format!("{func}() wraps a polygon, got {}", other.kind())))
                            }
                        };
                    }
                    if args.len() < 6 || args.len() % 2 != 0 {
                        return Err(err("Polygon() takes x1, y1, x2, y2, … (>= 3 points)"));
                    }
                    let pts: Vec<Point> = args
                        .chunks(2)
                        .map(|c| Ok(Point::new(const_float(&c[0])?, const_float(&c[1])?)))
                        .collect::<Result<_>>()?;
                    Ok(Value::Shape(Shape::Polygon(Polygon::new(pts).map_err(ExecError::Geom)?)))
                }
                "rect" | "box" => {
                    if args.len() != 4 {
                        return Err(err("Rect() takes x0, y0, x1, y1"));
                    }
                    let vals: Vec<f64> = args.iter().map(const_float).collect::<Result<_>>()?;
                    Ok(Value::Shape(Shape::Rect(
                        Rect::from_corners(
                            Point::new(vals[0], vals[1]),
                            Point::new(vals[2], vals[3]),
                        )
                        .map_err(ExecError::Geom)?,
                    )))
                }
                other => Err(err(format!("unknown constructor {other}()"))),
            }
        }
        other => Err(err(format!("expected a constant expression, found {other:?}"))),
    }
}

fn const_float(e: &Expr) -> Result<f64> {
    match eval_const(e)? {
        Value::Int(v) => Ok(v as f64),
        Value::Float(v) => Ok(v),
        other => Err(err(format!("expected number, got {}", other.kind()))),
    }
}

fn two_floats(args: &[Expr]) -> Result<(f64, f64)> {
    if args.len() != 2 {
        return Err(err("expected two numeric arguments"));
    }
    Ok((const_float(&args[0])?, const_float(&args[1])?))
}

fn const_polygon(e: &Expr) -> Result<Polygon> {
    match eval_const(e)? {
        Value::Shape(Shape::Polygon(p)) => Ok(p),
        Value::Shape(Shape::Rect(r)) => Ok(Polygon::from_rect(&r)),
        other => Err(err(format!("expected polygon constant, got {}", other.kind()))),
    }
}

fn column_name(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column { column, .. } => Some(column),
        _ => None,
    }
}

/// Finds `column <op> constant` among the conjuncts (either operand order
/// for `=`). `LCPYTYPE` is accepted as an alias of `type` (the paper's Q7/
/// Q9 use the DCW attribute name).
fn find_cmp<'a>(stmt: &'a SelectStmt, col: &str, want: BinOp) -> Option<&'a Expr> {
    let matches_col = |e: &Expr| {
        column_name(e).is_some_and(|c| {
            c.eq_ignore_ascii_case(col)
                || (col.eq_ignore_ascii_case("type") && c.eq_ignore_ascii_case("LCPYTYPE"))
        })
    };
    for c in stmt.conjuncts() {
        if let Expr::Binary { op, lhs, rhs } = c {
            if *op == want {
                if matches_col(lhs) {
                    return Some(rhs);
                }
                if want == BinOp::Eq && matches_col(rhs) {
                    return Some(lhs);
                }
            }
        }
    }
    None
}

/// Finds the first `clip(...)` argument anywhere in the statement.
fn find_clip_polygon(stmt: &SelectStmt) -> Option<Result<Polygon>> {
    fn search(e: &Expr) -> Option<&Expr> {
        match e {
            Expr::Method { recv, name, args } => {
                if name.eq_ignore_ascii_case("clip") {
                    return args.first();
                }
                search(recv).or_else(|| args.iter().find_map(search))
            }
            Expr::Call { args, .. } => args.iter().find_map(search),
            Expr::Binary { lhs, rhs, .. } => search(lhs).or_else(|| search(rhs)),
            _ => None,
        }
    }
    let mut exprs: Vec<&Expr> = Vec::new();
    if let Projection::Exprs(p) = &stmt.projection {
        exprs.extend(p.iter());
    }
    if let Some(w) = &stmt.where_clause {
        exprs.push(w);
    }
    exprs.into_iter().find_map(search).map(const_polygon)
}

fn proj_mentions(stmt: &SelectStmt, method: &str) -> bool {
    match &stmt.projection {
        Projection::Exprs(exprs) => exprs.iter().any(|e| e.mentions_method(method)),
        Projection::Star => false,
    }
}

fn proj_has_call(stmt: &SelectStmt, func: &str) -> bool {
    match &stmt.projection {
        Projection::Exprs(exprs) => exprs.iter().any(|e| e.is_call(func)),
        Projection::Star => false,
    }
}

/// A matched (bound) query plan: the benchmark shape that was recognised,
/// together with its constant parameters. Produced by [`match_plan`],
/// executed by [`execute_plan`], rendered by [`Plan::describe`].
#[derive(Debug, Clone)]
pub enum Plan {
    /// Q2 — clips of one AVHRR channel over time.
    Q2 {
        /// Selected channel.
        channel: i64,
        /// Clip region.
        clip: Polygon,
    },
    /// Q3 — global average of one day's composite, clipped.
    Q3 {
        /// Composite date.
        date: Date,
        /// Clip region.
        clip: Polygon,
    },
    /// Q4 — browse: clip + lower_res.
    Q4 {
        /// Composite date.
        date: Date,
        /// Selected channel.
        channel: i64,
        /// Clip region.
        clip: Polygon,
        /// Resolution-lowering factor.
        factor: usize,
    },
    /// Q5 — exact-match select via the B+-tree.
    Q5 {
        /// City name.
        name: String,
    },
    /// Q6 — polygon-overlap selection via the R*-tree.
    Q6 {
        /// Query region.
        region: Polygon,
    },
    /// Q7 — circle containment (+ optional area bound).
    Q7 {
        /// Circle center.
        center: Point,
        /// Circle radius.
        radius: f64,
        /// Upper bound on polygon area.
        max_area: f64,
    },
    /// Q8 — indexed nested-loops spatial join around one city.
    Q8 {
        /// City name.
        name: String,
        /// makeBox window side length.
        box_len: f64,
    },
    /// Q9 — raster–polygon clip join at one date.
    Q9 {
        /// Composite date.
        date: Date,
        /// Selected channel.
        channel: i64,
        /// Oil-field polygon type.
        oil_type: i64,
    },
    /// Q10 — content-based raster selection.
    Q10 {
        /// Clip region.
        clip: Polygon,
        /// Average threshold.
        threshold: f64,
    },
    /// Q11 — closest road per type (two-phase extensible aggregate).
    Q11 {
        /// Reference point.
        point: Point,
    },
    /// Q12 — closest drainage per large city (Figure 3.1).
    Q12 {
        /// City type selecting "large" cities.
        city_type: i64,
    },
    /// Q13 — parallel spatial join of drainage and roads.
    Q13,
    /// Q14 — raster–polygon clip join over a date range.
    Q14 {
        /// Range start.
        lo: Date,
        /// Range end.
        hi: Date,
        /// Selected channel.
        channel: i64,
        /// Oil-field polygon type.
        oil_type: i64,
    },
    /// Fallback: parallel scan-filter-project over one table.
    GenericScan {
        /// The statement to evaluate row-at-a-time.
        stmt: SelectStmt,
    },
    /// A `paradise.*` system-catalog read (metrics, query history,
    /// buffer pools, streams).
    Catalog {
        /// Which system table.
        table: crate::catalog::CatalogTable,
        /// The statement (its WHERE/projection/ORDER BY apply to the
        /// materialised catalog rows).
        stmt: SelectStmt,
    },
}

/// Recognises the statement's benchmark shape and binds its parameters.
pub fn match_plan(stmt: &SelectStmt) -> Result<Plan> {
    let tables: Vec<String> = stmt.tables.iter().map(|t| t.to_ascii_lowercase()).collect();

    // --- system catalog -------------------------------------------------
    if let [name] = tables.as_slice() {
        if name.starts_with("paradise.") {
            let table = crate::catalog::CatalogTable::from_name(name)
                .ok_or_else(|| err(format!("unknown system table {name}")))?;
            return Ok(Plan::Catalog { table, stmt: stmt.clone() });
        }
    }

    let only = |name: &str| tables.len() == 1 && tables[0] == name;
    let pair = |a: &str, b: &str| {
        tables.len() == 2 && tables.contains(&a.to_string()) && tables.contains(&b.to_string())
    };

    // --- raster-only shapes: Q2, Q3, Q4, Q10 -------------------------
    if only("raster") {
        let date = find_cmp(stmt, "date", BinOp::Eq).map(eval_const);
        let channel = find_cmp(stmt, "channel", BinOp::Eq).map(eval_const);
        if proj_has_call(stmt, "average") {
            // Q3: select average(raster.data.clip(P)) … where date = D
            let clip = find_clip_polygon(stmt).ok_or_else(|| err("Q3 needs clip(polygon)"))??;
            let Some(Ok(Value::Date(date))) = date else {
                return Err(err("Q3 needs raster.date = Date(...)"));
            };
            return Ok(Plan::Q3 { date, clip });
        }
        if proj_mentions(stmt, "lower_res") {
            // Q4
            let clip = find_clip_polygon(stmt).ok_or_else(|| err("Q4 needs clip(polygon)"))??;
            let (Some(Ok(Value::Date(date))), Some(Ok(Value::Int(channel)))) = (date, channel)
            else {
                return Err(err("Q4 needs date = Date(...) and channel = N"));
            };
            let factor = find_lower_res_factor(stmt).unwrap_or(8);
            return Ok(Plan::Q4 { date, channel, clip, factor });
        }
        if stmt.where_clause.as_ref().is_some_and(|w| w.mentions_method("average")) {
            // Q10: where clip(P).average() > C
            let clip = find_clip_polygon(stmt).ok_or_else(|| err("Q10 needs clip(polygon)"))??;
            let threshold = find_average_threshold(stmt)
                .ok_or_else(|| err("Q10 needs clip(...).average() > C"))?;
            return Ok(Plan::Q10 { clip, threshold });
        }
        if proj_mentions(stmt, "clip") {
            // Q2
            let Some(Ok(Value::Int(channel))) = channel else {
                return Err(err("Q2 needs raster.channel = N"));
            };
            let clip = find_clip_polygon(stmt).ok_or_else(|| err("Q2 needs clip(polygon)"))??;
            return Ok(Plan::Q2 { channel, clip });
        }
    }

    // --- Q5 -----------------------------------------------------------
    if only("populatedplaces") {
        if let Some(e) = find_cmp(stmt, "name", BinOp::Eq) {
            if let Value::Str(name) = eval_const(e)? {
                return Ok(Plan::Q5 { name });
            }
        }
    }

    // --- landCover-only shapes: Q6, Q7 ---------------------------------
    if only("landcover") {
        // Q7: shape < Circle(...) [and shape.area() < C]
        if let Some(rhs) = find_cmp(stmt, "shape", BinOp::Lt) {
            if let Value::Shape(Shape::Circle(c)) = eval_const(rhs)? {
                let max_area = find_area_bound(stmt).unwrap_or(f64::INFINITY);
                return Ok(Plan::Q7 { center: c.center, radius: c.radius, max_area });
            }
        }
        // Q6: shape overlaps POLYGON
        if let Some(rhs) = find_overlaps_const(stmt) {
            return Ok(Plan::Q6 { region: const_polygon(rhs)? });
        }
    }

    // --- Q8 -------------------------------------------------------------
    if pair("landcover", "populatedplaces") && !proj_has_call(stmt, "closest") {
        let name = match find_cmp(stmt, "name", BinOp::Eq).map(eval_const).transpose()? {
            Some(Value::Str(s)) => s,
            _ => return Err(err("Q8 needs populatedPlaces.name = \"…\"")),
        };
        let box_len = find_make_box_len(stmt).ok_or_else(|| err("Q8 needs makeBox(L)"))?;
        return Ok(Plan::Q8 { name, box_len });
    }

    // --- Q9 / Q14 ---------------------------------------------------------
    if pair("landcover", "raster") {
        let oil_type = match find_cmp(stmt, "type", BinOp::Eq).map(eval_const).transpose()? {
            Some(Value::Int(t)) => t,
            _ => return Err(err("Q9/Q14 need landCover.LCPYTYPE = N")),
        };
        let channel = match find_cmp(stmt, "channel", BinOp::Eq).map(eval_const).transpose()? {
            Some(Value::Int(c)) => c,
            _ => return Err(err("Q9/Q14 need raster.channel = N")),
        };
        if let Some(e) = find_cmp(stmt, "date", BinOp::Eq) {
            if let Value::Date(date) = eval_const(e)? {
                return Ok(Plan::Q9 { date, channel, oil_type });
            }
        }
        let lo = find_cmp(stmt, "date", BinOp::Ge).map(eval_const).transpose()?;
        let hi = find_cmp(stmt, "date", BinOp::Le).map(eval_const).transpose()?;
        if let (Some(Value::Date(lo)), Some(Value::Date(hi))) = (lo, hi) {
            return Ok(Plan::Q14 { lo, hi, channel, oil_type });
        }
        return Err(err("Q9/Q14 need a date equality or range"));
    }

    // --- Q11 ----------------------------------------------------------------
    if only("roads") && proj_has_call(stmt, "closest") {
        let p = find_closest_point(stmt).ok_or_else(|| err("closest(shape, Point(x, y))"))?;
        return Ok(Plan::Q11 { point: p? });
    }

    // --- Q12 -----------------------------------------------------------------
    if pair("drainage", "populatedplaces") && proj_has_call(stmt, "closest") {
        let city_type = match find_cmp(stmt, "type", BinOp::Eq).map(eval_const).transpose()? {
            Some(Value::Int(t)) => t,
            _ => 1,
        };
        return Ok(Plan::Q12 { city_type });
    }

    // --- Q13 ----------------------------------------------------------------
    if pair("drainage", "roads") {
        return Ok(Plan::Q13);
    }

    // --- generic fallback ------------------------------------------------
    if tables.len() == 1 {
        return Ok(Plan::GenericScan { stmt: stmt.clone() });
    }
    Err(err("unsupported query shape"))
}

/// Runs a matched plan against the database.
pub fn execute_plan(db: &Paradise, plan: &Plan) -> Result<QueryResult> {
    match plan {
        Plan::Q2 { channel, clip } => queries::q2(db, *channel, clip),
        Plan::Q3 { date, clip } => queries::q3(db, *date, clip, false),
        Plan::Q4 { date, channel, clip, factor } => queries::q4(db, *date, *channel, clip, *factor),
        Plan::Q5 { name } => queries::q5(db, name),
        Plan::Q6 { region } => queries::q6(db, region),
        Plan::Q7 { center, radius, max_area } => queries::q7(db, *center, *radius, *max_area),
        Plan::Q8 { name, box_len } => queries::q8(db, name, *box_len),
        Plan::Q9 { date, channel, oil_type } => queries::q9(db, *date, *channel, *oil_type),
        Plan::Q10 { clip, threshold } => queries::q10(db, clip, *threshold),
        Plan::Q11 { point } => queries::q11(db, *point),
        Plan::Q12 { city_type } => queries::q12(db, *city_type, true),
        Plan::Q13 => queries::q13(db),
        Plan::Q14 { lo, hi, channel, oil_type } => queries::q14(db, *lo, *hi, *channel, *oil_type),
        Plan::GenericScan { stmt } => generic_scan(db, stmt),
        Plan::Catalog { table, stmt } => catalog_scan(db, *table, stmt),
    }
}

/// One rendered operator line of a plan tree.
#[derive(Debug, Clone)]
pub struct PlanLine {
    /// Nesting depth below the plan header.
    pub indent: usize,
    /// Operator description.
    pub text: String,
    /// The measured phase that drives this operator (matched by name
    /// against [`QueryMetrics::phases`] for `EXPLAIN ANALYZE`).
    pub phase: Option<&'static str>,
}

fn op(indent: usize, text: impl Into<String>, phase: Option<&'static str>) -> PlanLine {
    PlanLine { indent, text: text.into(), phase }
}

impl Plan {
    /// Short name of the matched shape ("Q2" … "Q14", "GenericScan").
    pub fn name(&self) -> &'static str {
        match self {
            Plan::Q2 { .. } => "Q2",
            Plan::Q3 { .. } => "Q3",
            Plan::Q4 { .. } => "Q4",
            Plan::Q5 { .. } => "Q5",
            Plan::Q6 { .. } => "Q6",
            Plan::Q7 { .. } => "Q7",
            Plan::Q8 { .. } => "Q8",
            Plan::Q9 { .. } => "Q9",
            Plan::Q10 { .. } => "Q10",
            Plan::Q11 { .. } => "Q11",
            Plan::Q12 { .. } => "Q12",
            Plan::Q13 => "Q13",
            Plan::Q14 { .. } => "Q14",
            Plan::GenericScan { .. } => "GenericScan",
            Plan::Catalog { .. } => "CatalogScan",
        }
    }

    /// The plan's operator tree, top-down; operators that correspond to a
    /// measured phase carry its name so `EXPLAIN ANALYZE` can annotate
    /// them with the recorded rows / busy time / buffer / network counters.
    pub fn describe(&self) -> Vec<PlanLine> {
        match self {
            Plan::Q2 { channel, .. } => vec![
                op(0, "Sort [date]  (QC, sequential)", None),
                op(1, "Gather -> QC", None),
                op(2, "Clip + Project [data.clip(POLYGON)]", Some("scan + clip rasters")),
                op(3, format!("SeqScan raster [channel = {channel}]"), None),
            ],
            Plan::Q3 { date, .. } => vec![
                op(0, "GlobalAverage  (QC, sequential)", None),
                op(1, "PartialAverage [clipped tiles]", Some("local partial sums")),
                op(2, format!("TileLocate raster [date = {date}]"), Some("locate rasters")),
            ],
            Plan::Q4 { date, channel, factor, .. } => vec![
                op(0, "Gather -> QC", None),
                op(
                    1,
                    format!("Clip + LowerRes [clip(POLYGON).lower_res({factor})]"),
                    Some("select + clip + lower_res"),
                ),
                op(2, format!("SeqScan raster [date = {date}, channel = {channel}]"), None),
            ],
            Plan::Q5 { name } => vec![
                op(0, "Gather -> QC", None),
                op(
                    1,
                    format!("BTreeIndexScan populatedPlaces [name = {name:?}]"),
                    Some("index probe"),
                ),
            ],
            Plan::Q6 { .. } => vec![
                op(0, "Gather -> QC", None),
                op(
                    1,
                    "RTreeIndexScan landCover [shape overlaps POLYGON]",
                    Some("spatial index selection"),
                ),
            ],
            Plan::Q7 { center, radius, max_area } => {
                let mut pred = format!("shape < Circle(({}, {}), {radius})", center.x, center.y);
                if max_area.is_finite() {
                    pred.push_str(&format!(" and area() < {max_area}"));
                }
                vec![
                    op(0, "Gather -> QC", None),
                    op(1, format!("Filter [{pred}]"), Some("circle selection")),
                    op(2, "SeqScan landCover", None),
                ]
            }
            Plan::Q8 { name, box_len } => vec![
                op(0, "Gather -> QC", None),
                op(
                    1,
                    format!("IndexedNLJoin [landCover.shape overlaps makeBox({box_len})]"),
                    Some("indexed NL spatial join"),
                ),
                op(2, "RTreeIndexScan landCover  (inner, per box)", None),
                op(2, "Broadcast city boxes  (QC)", None),
                op(3, format!("Filter populatedPlaces [name = {name:?}]"), Some("select cities")),
            ],
            Plan::Q9 { date, channel, oil_type } => clip_join_tree(
                format!("SeqScan raster [date = {date}, channel = {channel}]"),
                *oil_type,
            ),
            Plan::Q14 { lo, hi, channel, oil_type } => clip_join_tree(
                format!("SeqScan raster [date in [{lo}, {hi}], channel = {channel}]"),
                *oil_type,
            ),
            Plan::Q10 { threshold, .. } => vec![
                op(0, "Gather -> QC", None),
                op(
                    1,
                    format!("Filter [clip(POLYGON).average() > {threshold}]"),
                    Some("clip + average predicate"),
                ),
                op(2, "SeqScan raster", None),
            ],
            Plan::Q11 { point } => vec![
                op(0, "GlobalClosest [group by type]  (QC, sequential)", None),
                op(
                    1,
                    format!("PartialClosest [closest(shape, ({}, {}))]", point.x, point.y),
                    Some("local closest per type"),
                ),
                op(2, "RTreeNearest roads", None),
            ],
            Plan::Q12 { city_type } => vec![
                op(0, "GlobalAggregate  (QC, sequential)", None),
                op(1, "JoinWithAggregate [expanding circles]", Some("join with aggregate")),
                op(2, "SpatialSemiJoin [city -> owning tile]", Some("spatial semi-join")),
                op(3, "BuildLocalRTree drainage", Some("build local index")),
                op(
                    3,
                    format!("Filter populatedPlaces [type = {city_type}]"),
                    Some("select large cities"),
                ),
            ],
            Plan::Q13 => vec![
                op(0, "Gather -> QC", None),
                op(1, "PBSMJoin [drainage.shape overlaps roads.shape]", Some("local spatial join")),
                op(2, "SeqScan drainage  (co-partitioned on grid)", None),
                op(2, "SeqScan roads  (co-partitioned on grid)", None),
            ],
            Plan::GenericScan { stmt } => {
                let mut v = vec![op(0, "Gather -> QC", None)];
                if let Some(col) = &stmt.order_by {
                    v.insert(0, op(0, format!("Sort [{col}]  (QC, sequential)"), None));
                }
                let base = v.len() - 1;
                v.push(op(base + 1, "Filter + Project", Some("scan + filter + project")));
                v.push(op(base + 2, format!("SeqScan {}", stmt.tables[0]), None));
                v
            }
            Plan::Catalog { table, .. } => {
                let mut v = vec![op(0, "Filter + Project  (QC)", None)];
                if table.is_per_node() {
                    v.push(op(
                        1,
                        format!("CatalogScan {} [stats pull per node]", table.name()),
                        Some("catalog scan"),
                    ));
                } else {
                    v.push(op(1, format!("CatalogScan {}  (QC, sequential)", table.name()), None));
                }
                v
            }
        }
    }
}

/// Shared Q9/Q14 operator tree (they differ only in the raster scan line).
fn clip_join_tree(raster_scan: String, oil_type: i64) -> Vec<PlanLine> {
    vec![
        op(0, "Gather -> QC", None),
        op(1, "ClipJoin [raster x oil-field polygons]", Some("clip rasters by polygons")),
        op(2, raster_scan, None),
        op(2, "Replicate oil fields  (QC)", None),
        op(3, format!("Filter landCover [type = {oil_type}]"), Some("select oil fields")),
    ]
}

/// Renders a plan tree without executing it (`EXPLAIN`).
fn render_plan(plan: &Plan) -> QueryResult {
    let mut lines = vec![format!("{} plan", plan.name())];
    for l in plan.describe() {
        lines.push(format!("{}{}", "  ".repeat(l.indent + 1), l.text));
    }
    plan_result(lines, QueryMetrics::default())
}

/// Runs the plan under the cluster's trace sink, then renders the operator
/// tree annotated with each phase's recorded row counts, busy time, and
/// buffer/network activity (`EXPLAIN ANALYZE`). Writes the Chrome-trace
/// profile when the instance has a trace path configured.
fn explain_analyze(db: &Paradise, plan: &Plan) -> Result<QueryResult> {
    let sink = db.cluster().trace();
    let was_enabled = sink.is_enabled();
    sink.clear();
    sink.set_enabled(true);
    let executed = execute_plan(db, plan);
    sink.set_enabled(was_enabled);
    let result = executed?;
    let m = &result.metrics;

    let mut lines = vec![format!("{} plan  (analyzed)", plan.name())];
    for l in plan.describe() {
        let mut text = format!("{}{}", "  ".repeat(l.indent + 1), l.text);
        if let Some(phase) = l.phase {
            if let Some(p) = m.phases.iter().find(|p| p.name == phase) {
                let mut ann = Vec::new();
                if let Some(rows) = p.rows_out() {
                    ann.push(format!("rows={rows}"));
                }
                ann.push(format!("busy={:.2?}", p.critical()));
                if p.morsels > 0 {
                    ann.push(format!("morsels={}", p.morsels));
                }
                if p.net.bytes > 0 {
                    ann.push(format!("net={:.1}KB", p.net.bytes as f64 / 1024.0));
                }
                if p.buffer.hits + p.buffer.misses > 0 {
                    ann.push(format!(
                        "buf={}/{} ({:.0}% hit)",
                        p.buffer.hits,
                        p.buffer.misses,
                        p.buffer.hit_rate()
                    ));
                }
                text.push_str(&format!("  [{}]", ann.join(" ")));
            } else {
                text.push_str("  [not executed]");
            }
        }
        lines.push(text);
    }
    lines.push(String::new());
    lines.extend(m.to_string().lines().map(str::to_string));
    lines.push(format!("result rows: {}", result.rows.len()));
    if let Some(path) = db.trace_path() {
        sink.write_chrome_json(path)
            .map_err(|e| err(format!("writing trace {}: {e}", path.display())))?;
        lines.push(format!("trace: {} ({} events)", path.display(), sink.len()));
    }
    Ok(plan_result(lines, result.metrics))
}

fn plan_result(lines: Vec<String>, metrics: QueryMetrics) -> QueryResult {
    QueryResult {
        columns: vec!["QUERY PLAN".to_string()],
        rows: lines.into_iter().map(|l| Tuple::new(vec![Value::Str(l)])).collect(),
        metrics,
    }
}

fn find_lower_res_factor(stmt: &SelectStmt) -> Option<usize> {
    if let Projection::Exprs(exprs) = &stmt.projection {
        for e in exprs {
            if let Expr::Method { name, args, .. } = e {
                if name.eq_ignore_ascii_case("lower_res") {
                    if let Some(Expr::Int(k)) = args.first() {
                        return Some(*k as usize);
                    }
                }
            }
        }
    }
    None
}

fn find_average_threshold(stmt: &SelectStmt) -> Option<f64> {
    for c in stmt.conjuncts() {
        if let Expr::Binary { op: BinOp::Gt, lhs, rhs } = c {
            if lhs.mentions_method("average") {
                return const_float(rhs).ok();
            }
        }
    }
    None
}

fn find_area_bound(stmt: &SelectStmt) -> Option<f64> {
    for c in stmt.conjuncts() {
        if let Expr::Binary { op: BinOp::Lt, lhs, rhs } = c {
            if lhs.mentions_method("area") {
                return const_float(rhs).ok();
            }
        }
    }
    None
}

fn find_overlaps_const(stmt: &SelectStmt) -> Option<&Expr> {
    for c in stmt.conjuncts() {
        if let Expr::Binary { op: BinOp::Overlaps, rhs, .. } = c {
            if matches!(**rhs, Expr::Call { .. }) {
                return Some(rhs);
            }
        }
    }
    None
}

fn find_make_box_len(stmt: &SelectStmt) -> Option<f64> {
    fn search(e: &Expr) -> Option<f64> {
        match e {
            Expr::Method { name, args, recv } => {
                if name.eq_ignore_ascii_case("makebox") {
                    if let Some(a) = args.first() {
                        return const_float(a).ok();
                    }
                }
                search(recv).or_else(|| args.iter().find_map(search))
            }
            Expr::Binary { lhs, rhs, .. } => search(lhs).or_else(|| search(rhs)),
            Expr::Call { args, .. } => args.iter().find_map(search),
            _ => None,
        }
    }
    stmt.where_clause.as_ref().and_then(search)
}

fn find_closest_point(stmt: &SelectStmt) -> Option<Result<Point>> {
    if let Projection::Exprs(exprs) = &stmt.projection {
        for e in exprs {
            if let Expr::Call { func, args } = e {
                if func.eq_ignore_ascii_case("closest") {
                    if let Some(arg) = args.get(1) {
                        return Some(match eval_const(arg) {
                            Ok(Value::Shape(Shape::Point(p))) => Ok(p),
                            Ok(other) => {
                                Err(err(format!("closest() wants a point, got {}", other.kind())))
                            }
                            Err(e) => Err(e),
                        });
                    }
                }
            }
        }
    }
    None
}

/// The generic parallel plan: per-node scan, scalar predicate, projection.
/// The predicate + projection run as tuple morsels on the worker pool
/// ([`paradise_exec::workers`]); morsel-order merging keeps the output
/// identical to the streaming scan for every worker count.
fn generic_scan(db: &Paradise, stmt: &SelectStmt) -> Result<QueryResult> {
    let t0 = std::time::Instant::now();
    let table = db.table(&stmt.tables[0])?;
    let schema = table.schema.clone();
    let mut m = QueryMetrics::default();
    let pool = db.cluster().workers();
    let per_node = run_phase(db.cluster(), &mut m, "scan + filter + project", |node| {
        let frag = table.fragment_tuples(db.cluster(), node)?;
        paradise_exec::ops::basic::par_project(&pool, &frag, |t| {
            let keep = match &stmt.where_clause {
                Some(w) => eval_predicate(w, t, &schema)?,
                None => true,
            };
            if !keep {
                return Ok(None);
            }
            Ok(Some(match &stmt.projection {
                Projection::Star => t.clone(),
                Projection::Exprs(exprs) => {
                    let vals: Vec<Value> =
                        exprs.iter().map(|e| eval_expr(e, t, &schema)).collect::<Result<_>>()?;
                    Tuple::new(vals)
                }
            }))
        })
    })?;
    let mut rows: Vec<Tuple> = per_node.into_iter().flatten().collect();
    if let Some(order) = &stmt.order_by {
        let idx = schema.index_of(order)?;
        // Star projection keeps the schema; expression projections sort by
        // position 0 as a fallback.
        let col = if matches!(stmt.projection, Projection::Star) { idx } else { 0 };
        rows = paradise_exec::ops::basic::sort_by_col(rows, col)?;
    }
    let columns = match &stmt.projection {
        Projection::Star => schema.fields().iter().map(|f| f.name.clone()).collect(),
        Projection::Exprs(exprs) => exprs
            .iter()
            .enumerate()
            .map(|(i, e)| column_name(e).map(str::to_string).unwrap_or(format!("col{i}")))
            .collect(),
    };
    let mut metrics = m;
    metrics.wall = t0.elapsed();
    Ok(QueryResult { columns, rows, metrics })
}

fn eval_expr(e: &Expr, t: &Tuple, schema: &paradise_exec::Schema) -> Result<Value> {
    match e {
        Expr::Column { column, .. } => Ok(t.get(schema.index_of(column)?)?.clone()),
        Expr::Method { recv, name, args } => {
            let r = eval_expr(recv, t, schema)?;
            match (r, name.to_ascii_lowercase().as_str()) {
                (Value::Shape(s), "area") => match s {
                    Shape::Polygon(p) => Ok(Value::Float(p.area())),
                    Shape::SwissCheese(sc) => Ok(Value::Float(sc.area())),
                    Shape::Rect(r) => Ok(Value::Float(r.area())),
                    Shape::Circle(c) => Ok(Value::Float(c.area())),
                    _ => Err(err("area() on a non-areal shape")),
                },
                (Value::Shape(s), "length") => match s {
                    Shape::Polyline(l) => Ok(Value::Float(l.length())),
                    _ => Err(err("length() on a non-polyline")),
                },
                (Value::Shape(Shape::Point(p)), "makebox") => {
                    let len = const_float(args.first().ok_or_else(|| err("makeBox(L)"))?)?;
                    Ok(Value::Shape(Shape::Rect(p.make_box(len))))
                }
                (v, m) => Err(err(format!("unsupported method {m}() on {}", v.kind()))),
            }
        }
        other => eval_const(other),
    }
}

fn eval_predicate(e: &Expr, t: &Tuple, schema: &paradise_exec::Schema) -> Result<bool> {
    match e {
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            Ok(eval_predicate(lhs, t, schema)? && eval_predicate(rhs, t, schema)?)
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_expr(lhs, t, schema)?;
            let r = eval_expr(rhs, t, schema)?;
            match op {
                BinOp::Overlaps => match (l, r) {
                    (Value::Shape(a), Value::Shape(b)) => Ok(a.overlaps(&b)),
                    _ => Err(err("overlaps needs two shapes")),
                },
                BinOp::Like => match (l, r) {
                    (Value::Str(text), Value::Str(pattern)) => Ok(like_match(&pattern, &text)),
                    (l, r) => {
                        Err(err(format!("like needs strings, got {} / {}", l.kind(), r.kind())))
                    }
                },
                BinOp::Lt if matches!(l, Value::Shape(_)) => match (l, r) {
                    // Circle containment (Q7 syntax).
                    (Value::Shape(Shape::Polygon(p)), Value::Shape(Shape::Circle(c))) => {
                        Ok(p.within_circle(&c))
                    }
                    (Value::Shape(Shape::Point(p)), Value::Shape(Shape::Circle(c))) => {
                        Ok(c.contains_point(&p))
                    }
                    _ => Err(err("shape < … expects a circle on the right")),
                },
                _ => {
                    let ord = compare_values(&l, &r)?;
                    Ok(match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::Le => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::Ge => ord != std::cmp::Ordering::Less,
                        BinOp::Overlaps | BinOp::And | BinOp::Like => unreachable!(),
                    })
                }
            }
        }
        other => Err(err(format!("expected a predicate, found {other:?}"))),
    }
}

/// SQL LIKE: `%` matches any run (including empty), `_` any one
/// character; everything else matches literally (case-sensitive).
fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // matched[j]: does some prefix-to-date of the pattern match t[..j]?
    let mut matched = vec![false; t.len() + 1];
    matched[0] = true;
    for pc in &p {
        match pc {
            '%' => {
                // A run of anything: once a prefix matches, every longer
                // prefix does too.
                for j in 1..=t.len() {
                    matched[j] = matched[j] || matched[j - 1];
                }
            }
            '_' => {
                for j in (1..=t.len()).rev() {
                    matched[j] = matched[j - 1];
                }
                matched[0] = false;
            }
            c => {
                for j in (1..=t.len()).rev() {
                    matched[j] = matched[j - 1] && t[j - 1] == *c;
                }
                matched[0] = false;
            }
        }
    }
    matched[t.len()]
}

/// Materialises a `paradise.*` table, then applies the statement's
/// WHERE / projection / ORDER BY with the row-at-a-time evaluator — so
/// `where name like 'wal%'` composes with the catalog exactly as with a
/// stored table.
fn catalog_scan(
    db: &Paradise,
    table: crate::catalog::CatalogTable,
    stmt: &SelectStmt,
) -> Result<QueryResult> {
    let t0 = std::time::Instant::now();
    let schema = table.schema();
    let mut m = QueryMetrics::default();
    let all = crate::catalog::scan(db, table, &mut m)?;
    let mut rows = Vec::new();
    for t in all {
        let keep = match &stmt.where_clause {
            Some(w) => eval_predicate(w, &t, &schema)?,
            None => true,
        };
        if !keep {
            continue;
        }
        rows.push(match &stmt.projection {
            Projection::Star => t,
            Projection::Exprs(exprs) => {
                let vals: Vec<Value> =
                    exprs.iter().map(|e| eval_expr(e, &t, &schema)).collect::<Result<_>>()?;
                Tuple::new(vals)
            }
        });
    }
    if let Some(order) = &stmt.order_by {
        let idx = schema.index_of(order)?;
        let col = if matches!(stmt.projection, Projection::Star) { idx } else { 0 };
        rows = paradise_exec::ops::basic::sort_by_col(rows, col)?;
    }
    let columns = match &stmt.projection {
        Projection::Star => schema.fields().iter().map(|f| f.name.clone()).collect(),
        Projection::Exprs(exprs) => exprs
            .iter()
            .enumerate()
            .map(|(i, e)| column_name(e).map(str::to_string).unwrap_or(format!("col{i}")))
            .collect(),
    };
    m.wall = t0.elapsed();
    Ok(QueryResult { columns, rows, metrics: m })
}

fn compare_values(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    use std::cmp::Ordering;
    Ok(match (l, r) {
        (Value::Int(a), Value::Int(b)) => a.cmp(b),
        (Value::Date(a), Value::Date(b)) => a.cmp(b),
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        (Value::Float(_) | Value::Int(_), Value::Float(_) | Value::Int(_)) => {
            let (a, b) = (l.as_float()?, r.as_float()?);
            a.partial_cmp(&b).unwrap_or(Ordering::Equal)
        }
        _ => return Err(err(format!("cannot compare {} with {}", l.kind(), r.kind()))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(q: &str) -> SelectStmt {
        paradise_sql::parse_select(q).unwrap()
    }

    #[test]
    fn eval_const_literals_and_constructors() {
        assert_eq!(eval_const(&Expr::Int(5)).unwrap(), Value::Int(5));
        assert_eq!(eval_const(&Expr::Float(2.5)).unwrap(), Value::Float(2.5));
        let date = eval_const(&Expr::Call {
            func: "Date".into(),
            args: vec![Expr::Str("1988-04-01".into())],
        })
        .unwrap();
        assert_eq!(date, Value::Date(Date::from_ymd(1988, 4, 1)));
        let pt = eval_const(&Expr::Call {
            func: "point".into(),
            args: vec![Expr::Int(3), Expr::Float(4.5)],
        })
        .unwrap();
        assert_eq!(pt, Value::Shape(Shape::Point(Point::new(3.0, 4.5))));
    }

    #[test]
    fn eval_const_polygon_and_circle() {
        let poly = eval_const(&Expr::Call {
            func: "Polygon".into(),
            args: vec![
                Expr::Int(0),
                Expr::Int(0),
                Expr::Int(2),
                Expr::Int(0),
                Expr::Int(1),
                Expr::Int(2),
            ],
        })
        .unwrap();
        let Value::Shape(Shape::Polygon(p)) = poly else { panic!() };
        assert_eq!(p.num_points(), 3);
        // ClosedPolygon wraps a nested polygon.
        let wrapped = eval_const(&Expr::Call {
            func: "ClosedPolygon".into(),
            args: vec![Expr::Call {
                func: "Polygon".into(),
                args: vec![
                    Expr::Int(0),
                    Expr::Int(0),
                    Expr::Int(1),
                    Expr::Int(0),
                    Expr::Int(0),
                    Expr::Int(1),
                ],
            }],
        })
        .unwrap();
        assert!(matches!(wrapped, Value::Shape(Shape::Polygon(_))));
        // bad arity
        assert!(
            eval_const(&Expr::Call { func: "Polygon".into(), args: vec![Expr::Int(1)] }).is_err()
        );
        assert!(eval_const(&Expr::Call { func: "NoSuch".into(), args: vec![] }).is_err());
    }

    #[test]
    fn find_cmp_matches_either_side_and_alias() {
        let s = parse("select * from landCover where 7 = LCPYTYPE and x >= 3");
        assert!(find_cmp(&s, "type", BinOp::Eq).is_some(), "alias + flipped =");
        assert!(find_cmp(&s, "x", BinOp::Ge).is_some());
        assert!(find_cmp(&s, "x", BinOp::Le).is_none());
    }

    #[test]
    fn find_clip_polygon_in_projection_and_where() {
        let s = parse(
            "select raster.data.clip(Polygon(0, 0, 1, 0, 0, 1)) from raster where channel = 5",
        );
        let p = find_clip_polygon(&s).unwrap().unwrap();
        assert_eq!(p.num_points(), 3);
        let s = parse(
            "select raster.date from raster \
             where raster.data.clip(Polygon(0, 0, 1, 0, 0, 1)).average() > 10",
        );
        assert!(find_clip_polygon(&s).is_some());
        assert_eq!(find_average_threshold(&s), Some(10.0));
    }

    #[test]
    fn find_make_box_and_closest_point() {
        let s = parse(
            "select a from landCover, populatedPlaces \
             where landCover.shape overlaps populatedPlaces.location.makeBox(2.5)",
        );
        assert_eq!(find_make_box_len(&s), Some(2.5));
        let s = parse("select closest(shape, Point(1, 2)), type from roads group by type");
        let p = find_closest_point(&s).unwrap().unwrap();
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn compare_values_cross_numeric() {
        use std::cmp::Ordering::*;
        assert_eq!(compare_values(&Value::Int(2), &Value::Float(2.5)).unwrap(), Less);
        assert_eq!(compare_values(&Value::Float(3.0), &Value::Int(3)).unwrap(), Equal);
        assert_eq!(
            compare_values(&Value::Str("b".into()), &Value::Str("a".into())).unwrap(),
            Greater
        );
        assert!(compare_values(&Value::Int(1), &Value::Str("x".into())).is_err());
    }

    #[test]
    fn like_match_globs() {
        assert!(like_match("wal%", "wal.commits"));
        assert!(like_match("%commits", "wal.commits"));
        assert!(like_match("%al.c%", "wal.commits"));
        assert!(like_match("wal.commit_", "wal.commits"));
        assert!(like_match("%", ""));
        assert!(like_match("", ""));
        assert!(!like_match("wal%", "buffer.hits"));
        assert!(!like_match("_", ""));
        assert!(!like_match("wal.commit_", "wal.commit"));
        assert!(!like_match("WAL%", "wal.commits"), "LIKE is case-sensitive");
    }

    #[test]
    fn catalog_tables_match_to_catalog_plans() {
        let s = parse("select * from paradise.metrics where name like 'wal%'");
        let plan = match_plan(&s).unwrap();
        assert_eq!(plan.name(), "CatalogScan");
        assert!(matches!(plan, Plan::Catalog { table: crate::catalog::CatalogTable::Metrics, .. }));
        assert!(match_plan(&parse("select * from paradise.nope")).is_err());
        // Non-catalog dotted-ish names still take the generic path.
        assert!(matches!(
            match_plan(&parse("select * from roads")).unwrap(),
            Plan::GenericScan { .. }
        ));
    }

    #[test]
    fn find_area_bound_and_overlaps_const() {
        let s = parse(
            "select shape.area() from landCover \
             where shape < Circle(Point(0, 0), 5) and shape.area() < 7.5",
        );
        assert_eq!(find_area_bound(&s), Some(7.5));
        let s = parse("select * from landCover where shape overlaps Rect(0, 0, 5, 5)");
        assert!(find_overlaps_const(&s).is_some());
        let s = parse("select * from drainage, roads where drainage.shape overlaps roads.shape");
        assert!(find_overlaps_const(&s).is_none(), "column rhs is not a constant");
    }
}
