//! SQL execution: plan selection over the parsed AST.
//!
//! The optimizer of this reproduction is a *plan matcher*: the fourteen
//! benchmark query shapes (paper §3.1.2) are recognised structurally and
//! dispatched to their hand-tuned parallel plans in [`crate::queries`]
//! (that is where the paper's optimizer decisions — index selection, join
//! method, small-outer replication, decluster avoidance — are encoded).
//! Everything else falls back to a generic parallel scan-filter-project
//! plan over a single table.

use crate::db::{Paradise, QueryResult};
use crate::queries;
use crate::Result;
use paradise_exec::metrics::QueryMetrics;
use paradise_exec::phase::run_phase;
use paradise_exec::value::{Date, Value};
use paradise_exec::{ExecError, Tuple};
use paradise_geom::{Circle, Point, Polygon, Rect, Shape};
use paradise_sql::ast::{BinOp, Expr, Projection, SelectStmt};
use paradise_sql::parse_select;

/// Parses and runs one SQL statement.
pub fn run_sql(db: &Paradise, text: &str) -> Result<QueryResult> {
    let stmt = parse_select(text).map_err(|e| ExecError::Other(e.to_string()))?;
    dispatch(db, &stmt)
}

fn err(msg: impl Into<String>) -> ExecError {
    ExecError::Other(msg.into())
}

/// Evaluates a constant expression (literals and typed constructors).
fn eval_const(e: &Expr) -> Result<Value> {
    match e {
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Float(v) => Ok(Value::Float(*v)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Call { func, args } => {
            let f = func.to_ascii_lowercase();
            match f.as_str() {
                "date" => {
                    let Some(Expr::Str(s)) = args.first() else {
                        return Err(err("Date() takes a string literal"));
                    };
                    Ok(Value::Date(Date::parse(s)?))
                }
                "point" => {
                    let (x, y) = two_floats(args)?;
                    Ok(Value::Shape(Shape::Point(Point::new(x, y))))
                }
                "circle" => {
                    let center = match args.first().map(eval_const).transpose()? {
                        Some(Value::Shape(Shape::Point(p))) => p,
                        _ => return Err(err("Circle() takes (Point, radius)")),
                    };
                    let r = const_float(args.get(1).ok_or_else(|| err("Circle() radius"))?)?;
                    Ok(Value::Shape(Shape::Circle(
                        Circle::new(center, r).map_err(ExecError::Geom)?,
                    )))
                }
                "polygon" | "closedpolygon" => {
                    // ClosedPolygon(Polygon(...)) or ClosedPolygon(x, y, …);
                    // a single argument must itself be a polygonal constant.
                    if args.len() == 1 {
                        return match eval_const(&args[0])? {
                            v @ Value::Shape(Shape::Polygon(_) | Shape::Rect(_)) => Ok(v),
                            other => {
                                Err(err(format!("{func}() wraps a polygon, got {}", other.kind())))
                            }
                        };
                    }
                    if args.len() < 6 || args.len() % 2 != 0 {
                        return Err(err("Polygon() takes x1, y1, x2, y2, … (>= 3 points)"));
                    }
                    let pts: Vec<Point> = args
                        .chunks(2)
                        .map(|c| Ok(Point::new(const_float(&c[0])?, const_float(&c[1])?)))
                        .collect::<Result<_>>()?;
                    Ok(Value::Shape(Shape::Polygon(Polygon::new(pts).map_err(ExecError::Geom)?)))
                }
                "rect" | "box" => {
                    if args.len() != 4 {
                        return Err(err("Rect() takes x0, y0, x1, y1"));
                    }
                    let vals: Vec<f64> = args.iter().map(const_float).collect::<Result<_>>()?;
                    Ok(Value::Shape(Shape::Rect(
                        Rect::from_corners(
                            Point::new(vals[0], vals[1]),
                            Point::new(vals[2], vals[3]),
                        )
                        .map_err(ExecError::Geom)?,
                    )))
                }
                other => Err(err(format!("unknown constructor {other}()"))),
            }
        }
        other => Err(err(format!("expected a constant expression, found {other:?}"))),
    }
}

fn const_float(e: &Expr) -> Result<f64> {
    match eval_const(e)? {
        Value::Int(v) => Ok(v as f64),
        Value::Float(v) => Ok(v),
        other => Err(err(format!("expected number, got {}", other.kind()))),
    }
}

fn two_floats(args: &[Expr]) -> Result<(f64, f64)> {
    if args.len() != 2 {
        return Err(err("expected two numeric arguments"));
    }
    Ok((const_float(&args[0])?, const_float(&args[1])?))
}

fn const_polygon(e: &Expr) -> Result<Polygon> {
    match eval_const(e)? {
        Value::Shape(Shape::Polygon(p)) => Ok(p),
        Value::Shape(Shape::Rect(r)) => Ok(Polygon::from_rect(&r)),
        other => Err(err(format!("expected polygon constant, got {}", other.kind()))),
    }
}

fn column_name(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column { column, .. } => Some(column),
        _ => None,
    }
}

/// Finds `column <op> constant` among the conjuncts (either operand order
/// for `=`). `LCPYTYPE` is accepted as an alias of `type` (the paper's Q7/
/// Q9 use the DCW attribute name).
fn find_cmp<'a>(stmt: &'a SelectStmt, col: &str, want: BinOp) -> Option<&'a Expr> {
    let matches_col = |e: &Expr| {
        column_name(e).is_some_and(|c| {
            c.eq_ignore_ascii_case(col)
                || (col.eq_ignore_ascii_case("type") && c.eq_ignore_ascii_case("LCPYTYPE"))
        })
    };
    for c in stmt.conjuncts() {
        if let Expr::Binary { op, lhs, rhs } = c {
            if *op == want {
                if matches_col(lhs) {
                    return Some(rhs);
                }
                if want == BinOp::Eq && matches_col(rhs) {
                    return Some(lhs);
                }
            }
        }
    }
    None
}

/// Finds the first `clip(...)` argument anywhere in the statement.
fn find_clip_polygon(stmt: &SelectStmt) -> Option<Result<Polygon>> {
    fn search(e: &Expr) -> Option<&Expr> {
        match e {
            Expr::Method { recv, name, args } => {
                if name.eq_ignore_ascii_case("clip") {
                    return args.first();
                }
                search(recv).or_else(|| args.iter().find_map(search))
            }
            Expr::Call { args, .. } => args.iter().find_map(search),
            Expr::Binary { lhs, rhs, .. } => search(lhs).or_else(|| search(rhs)),
            _ => None,
        }
    }
    let mut exprs: Vec<&Expr> = Vec::new();
    if let Projection::Exprs(p) = &stmt.projection {
        exprs.extend(p.iter());
    }
    if let Some(w) = &stmt.where_clause {
        exprs.push(w);
    }
    exprs.into_iter().find_map(search).map(const_polygon)
}

fn proj_mentions(stmt: &SelectStmt, method: &str) -> bool {
    match &stmt.projection {
        Projection::Exprs(exprs) => exprs.iter().any(|e| e.mentions_method(method)),
        Projection::Star => false,
    }
}

fn proj_has_call(stmt: &SelectStmt, func: &str) -> bool {
    match &stmt.projection {
        Projection::Exprs(exprs) => exprs.iter().any(|e| e.is_call(func)),
        Projection::Star => false,
    }
}

fn dispatch(db: &Paradise, stmt: &SelectStmt) -> Result<QueryResult> {
    let tables: Vec<String> = stmt.tables.iter().map(|t| t.to_ascii_lowercase()).collect();
    let only = |name: &str| tables.len() == 1 && tables[0] == name;
    let pair = |a: &str, b: &str| {
        tables.len() == 2 && tables.contains(&a.to_string()) && tables.contains(&b.to_string())
    };

    // --- raster-only shapes: Q2, Q3, Q4, Q10 -------------------------
    if only("raster") {
        let date = find_cmp(stmt, "date", BinOp::Eq).map(eval_const);
        let channel = find_cmp(stmt, "channel", BinOp::Eq).map(eval_const);
        if proj_has_call(stmt, "average") {
            // Q3: select average(raster.data.clip(P)) … where date = D
            let poly = find_clip_polygon(stmt).ok_or_else(|| err("Q3 needs clip(polygon)"))??;
            let Some(Ok(Value::Date(d))) = date else {
                return Err(err("Q3 needs raster.date = Date(...)"));
            };
            return queries::q3(db, d, &poly, false);
        }
        if proj_mentions(stmt, "lower_res") {
            // Q4
            let poly = find_clip_polygon(stmt).ok_or_else(|| err("Q4 needs clip(polygon)"))??;
            let (Some(Ok(Value::Date(d))), Some(Ok(Value::Int(ch)))) = (date, channel) else {
                return Err(err("Q4 needs date = Date(...) and channel = N"));
            };
            let factor = find_lower_res_factor(stmt).unwrap_or(8);
            return queries::q4(db, d, ch, &poly, factor);
        }
        if stmt.where_clause.as_ref().is_some_and(|w| w.mentions_method("average")) {
            // Q10: where clip(P).average() > C
            let poly = find_clip_polygon(stmt).ok_or_else(|| err("Q10 needs clip(polygon)"))??;
            let threshold = find_average_threshold(stmt)
                .ok_or_else(|| err("Q10 needs clip(...).average() > C"))?;
            return queries::q10(db, &poly, threshold);
        }
        if proj_mentions(stmt, "clip") {
            // Q2
            let Some(Ok(Value::Int(ch))) = channel else {
                return Err(err("Q2 needs raster.channel = N"));
            };
            let poly = find_clip_polygon(stmt).ok_or_else(|| err("Q2 needs clip(polygon)"))??;
            return queries::q2(db, ch, &poly);
        }
    }

    // --- Q5 -----------------------------------------------------------
    if only("populatedplaces") {
        if let Some(e) = find_cmp(stmt, "name", BinOp::Eq) {
            if let Value::Str(name) = eval_const(e)? {
                return queries::q5(db, &name);
            }
        }
    }

    // --- landCover-only shapes: Q6, Q7 ---------------------------------
    if only("landcover") {
        // Q7: shape < Circle(...) [and shape.area() < C]
        if let Some(rhs) = find_cmp(stmt, "shape", BinOp::Lt) {
            if let Value::Shape(Shape::Circle(c)) = eval_const(rhs)? {
                let max_area = find_area_bound(stmt).unwrap_or(f64::INFINITY);
                return queries::q7(db, c.center, c.radius, max_area);
            }
        }
        // Q6: shape overlaps POLYGON
        if let Some(rhs) = find_overlaps_const(stmt) {
            let poly = const_polygon(rhs)?;
            return queries::q6(db, &poly);
        }
    }

    // --- Q8 -------------------------------------------------------------
    if pair("landcover", "populatedplaces") && !proj_has_call(stmt, "closest") {
        let name = match find_cmp(stmt, "name", BinOp::Eq).map(eval_const).transpose()? {
            Some(Value::Str(s)) => s,
            _ => return Err(err("Q8 needs populatedPlaces.name = \"…\"")),
        };
        let len = find_make_box_len(stmt).ok_or_else(|| err("Q8 needs makeBox(L)"))?;
        return queries::q8(db, &name, len);
    }

    // --- Q9 / Q14 ---------------------------------------------------------
    if pair("landcover", "raster") {
        let oil = match find_cmp(stmt, "type", BinOp::Eq).map(eval_const).transpose()? {
            Some(Value::Int(t)) => t,
            _ => return Err(err("Q9/Q14 need landCover.LCPYTYPE = N")),
        };
        let channel = match find_cmp(stmt, "channel", BinOp::Eq).map(eval_const).transpose()? {
            Some(Value::Int(c)) => c,
            _ => return Err(err("Q9/Q14 need raster.channel = N")),
        };
        if let Some(e) = find_cmp(stmt, "date", BinOp::Eq) {
            if let Value::Date(d) = eval_const(e)? {
                return queries::q9(db, d, channel, oil);
            }
        }
        let lo = find_cmp(stmt, "date", BinOp::Ge).map(eval_const).transpose()?;
        let hi = find_cmp(stmt, "date", BinOp::Le).map(eval_const).transpose()?;
        if let (Some(Value::Date(lo)), Some(Value::Date(hi))) = (lo, hi) {
            return queries::q14(db, lo, hi, channel, oil);
        }
        return Err(err("Q9/Q14 need a date equality or range"));
    }

    // --- Q11 ----------------------------------------------------------------
    if only("roads") && proj_has_call(stmt, "closest") {
        let p = find_closest_point(stmt).ok_or_else(|| err("closest(shape, Point(x, y))"))?;
        return queries::q11(db, p?);
    }

    // --- Q12 -----------------------------------------------------------------
    if pair("drainage", "populatedplaces") && proj_has_call(stmt, "closest") {
        let city_type = match find_cmp(stmt, "type", BinOp::Eq).map(eval_const).transpose()? {
            Some(Value::Int(t)) => t,
            _ => 1,
        };
        return queries::q12(db, city_type, true);
    }

    // --- Q13 ----------------------------------------------------------------
    if pair("drainage", "roads") {
        return queries::q13(db);
    }

    // --- generic fallback ------------------------------------------------
    if tables.len() == 1 {
        return generic_scan(db, stmt);
    }
    Err(err("unsupported query shape"))
}

fn find_lower_res_factor(stmt: &SelectStmt) -> Option<usize> {
    if let Projection::Exprs(exprs) = &stmt.projection {
        for e in exprs {
            if let Expr::Method { name, args, .. } = e {
                if name.eq_ignore_ascii_case("lower_res") {
                    if let Some(Expr::Int(k)) = args.first() {
                        return Some(*k as usize);
                    }
                }
            }
        }
    }
    None
}

fn find_average_threshold(stmt: &SelectStmt) -> Option<f64> {
    for c in stmt.conjuncts() {
        if let Expr::Binary { op: BinOp::Gt, lhs, rhs } = c {
            if lhs.mentions_method("average") {
                return const_float(rhs).ok();
            }
        }
    }
    None
}

fn find_area_bound(stmt: &SelectStmt) -> Option<f64> {
    for c in stmt.conjuncts() {
        if let Expr::Binary { op: BinOp::Lt, lhs, rhs } = c {
            if lhs.mentions_method("area") {
                return const_float(rhs).ok();
            }
        }
    }
    None
}

fn find_overlaps_const(stmt: &SelectStmt) -> Option<&Expr> {
    for c in stmt.conjuncts() {
        if let Expr::Binary { op: BinOp::Overlaps, rhs, .. } = c {
            if matches!(**rhs, Expr::Call { .. }) {
                return Some(rhs);
            }
        }
    }
    None
}

fn find_make_box_len(stmt: &SelectStmt) -> Option<f64> {
    fn search(e: &Expr) -> Option<f64> {
        match e {
            Expr::Method { name, args, recv } => {
                if name.eq_ignore_ascii_case("makebox") {
                    if let Some(a) = args.first() {
                        return const_float(a).ok();
                    }
                }
                search(recv).or_else(|| args.iter().find_map(search))
            }
            Expr::Binary { lhs, rhs, .. } => search(lhs).or_else(|| search(rhs)),
            Expr::Call { args, .. } => args.iter().find_map(search),
            _ => None,
        }
    }
    stmt.where_clause.as_ref().and_then(search)
}

fn find_closest_point(stmt: &SelectStmt) -> Option<Result<Point>> {
    if let Projection::Exprs(exprs) = &stmt.projection {
        for e in exprs {
            if let Expr::Call { func, args } = e {
                if func.eq_ignore_ascii_case("closest") {
                    if let Some(arg) = args.get(1) {
                        return Some(match eval_const(arg) {
                            Ok(Value::Shape(Shape::Point(p))) => Ok(p),
                            Ok(other) => {
                                Err(err(format!("closest() wants a point, got {}", other.kind())))
                            }
                            Err(e) => Err(e),
                        });
                    }
                }
            }
        }
    }
    None
}

/// The generic parallel plan: per-node scan, scalar predicate, projection.
fn generic_scan(db: &Paradise, stmt: &SelectStmt) -> Result<QueryResult> {
    let t0 = std::time::Instant::now();
    let table = db.table(&stmt.tables[0])?;
    let schema = table.schema.clone();
    let mut m = QueryMetrics::default();
    let per_node = run_phase(db.cluster(), &mut m, "scan + filter + project", |node| {
        let mut rows = Vec::new();
        table.scan_fragment(db.cluster(), node, |_, t| {
            let keep = match &stmt.where_clause {
                Some(w) => eval_predicate(w, &t, &schema)?,
                None => true,
            };
            if !keep {
                return Ok(());
            }
            let out = match &stmt.projection {
                Projection::Star => t,
                Projection::Exprs(exprs) => {
                    let vals: Vec<Value> =
                        exprs.iter().map(|e| eval_expr(e, &t, &schema)).collect::<Result<_>>()?;
                    Tuple::new(vals)
                }
            };
            rows.push(out);
            Ok(())
        })?;
        Ok(rows)
    })?;
    let mut rows: Vec<Tuple> = per_node.into_iter().flatten().collect();
    if let Some(order) = &stmt.order_by {
        let idx = schema.index_of(order)?;
        // Star projection keeps the schema; expression projections sort by
        // position 0 as a fallback.
        let col = if matches!(stmt.projection, Projection::Star) { idx } else { 0 };
        rows = paradise_exec::ops::basic::sort_by_col(rows, col)?;
    }
    let columns = match &stmt.projection {
        Projection::Star => schema.fields().iter().map(|f| f.name.clone()).collect(),
        Projection::Exprs(exprs) => exprs
            .iter()
            .enumerate()
            .map(|(i, e)| column_name(e).map(str::to_string).unwrap_or(format!("col{i}")))
            .collect(),
    };
    let mut metrics = m;
    metrics.wall = t0.elapsed();
    Ok(QueryResult { columns, rows, metrics })
}

fn eval_expr(e: &Expr, t: &Tuple, schema: &paradise_exec::Schema) -> Result<Value> {
    match e {
        Expr::Column { column, .. } => Ok(t.get(schema.index_of(column)?)?.clone()),
        Expr::Method { recv, name, args } => {
            let r = eval_expr(recv, t, schema)?;
            match (r, name.to_ascii_lowercase().as_str()) {
                (Value::Shape(s), "area") => match s {
                    Shape::Polygon(p) => Ok(Value::Float(p.area())),
                    Shape::SwissCheese(sc) => Ok(Value::Float(sc.area())),
                    Shape::Rect(r) => Ok(Value::Float(r.area())),
                    Shape::Circle(c) => Ok(Value::Float(c.area())),
                    _ => Err(err("area() on a non-areal shape")),
                },
                (Value::Shape(s), "length") => match s {
                    Shape::Polyline(l) => Ok(Value::Float(l.length())),
                    _ => Err(err("length() on a non-polyline")),
                },
                (Value::Shape(Shape::Point(p)), "makebox") => {
                    let len = const_float(args.first().ok_or_else(|| err("makeBox(L)"))?)?;
                    Ok(Value::Shape(Shape::Rect(p.make_box(len))))
                }
                (v, m) => Err(err(format!("unsupported method {m}() on {}", v.kind()))),
            }
        }
        other => eval_const(other),
    }
}

fn eval_predicate(e: &Expr, t: &Tuple, schema: &paradise_exec::Schema) -> Result<bool> {
    match e {
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            Ok(eval_predicate(lhs, t, schema)? && eval_predicate(rhs, t, schema)?)
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_expr(lhs, t, schema)?;
            let r = eval_expr(rhs, t, schema)?;
            match op {
                BinOp::Overlaps => match (l, r) {
                    (Value::Shape(a), Value::Shape(b)) => Ok(a.overlaps(&b)),
                    _ => Err(err("overlaps needs two shapes")),
                },
                BinOp::Lt if matches!(l, Value::Shape(_)) => match (l, r) {
                    // Circle containment (Q7 syntax).
                    (Value::Shape(Shape::Polygon(p)), Value::Shape(Shape::Circle(c))) => {
                        Ok(p.within_circle(&c))
                    }
                    (Value::Shape(Shape::Point(p)), Value::Shape(Shape::Circle(c))) => {
                        Ok(c.contains_point(&p))
                    }
                    _ => Err(err("shape < … expects a circle on the right")),
                },
                _ => {
                    let ord = compare_values(&l, &r)?;
                    Ok(match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::Le => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::Ge => ord != std::cmp::Ordering::Less,
                        BinOp::Overlaps | BinOp::And => unreachable!(),
                    })
                }
            }
        }
        other => Err(err(format!("expected a predicate, found {other:?}"))),
    }
}

fn compare_values(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    use std::cmp::Ordering;
    Ok(match (l, r) {
        (Value::Int(a), Value::Int(b)) => a.cmp(b),
        (Value::Date(a), Value::Date(b)) => a.cmp(b),
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        (Value::Float(_) | Value::Int(_), Value::Float(_) | Value::Int(_)) => {
            let (a, b) = (l.as_float()?, r.as_float()?);
            a.partial_cmp(&b).unwrap_or(Ordering::Equal)
        }
        _ => return Err(err(format!("cannot compare {} with {}", l.kind(), r.kind()))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(q: &str) -> SelectStmt {
        parse_select(q).unwrap()
    }

    #[test]
    fn eval_const_literals_and_constructors() {
        assert_eq!(eval_const(&Expr::Int(5)).unwrap(), Value::Int(5));
        assert_eq!(eval_const(&Expr::Float(2.5)).unwrap(), Value::Float(2.5));
        let date = eval_const(&Expr::Call {
            func: "Date".into(),
            args: vec![Expr::Str("1988-04-01".into())],
        })
        .unwrap();
        assert_eq!(date, Value::Date(Date::from_ymd(1988, 4, 1)));
        let pt = eval_const(&Expr::Call {
            func: "point".into(),
            args: vec![Expr::Int(3), Expr::Float(4.5)],
        })
        .unwrap();
        assert_eq!(pt, Value::Shape(Shape::Point(Point::new(3.0, 4.5))));
    }

    #[test]
    fn eval_const_polygon_and_circle() {
        let poly = eval_const(&Expr::Call {
            func: "Polygon".into(),
            args: vec![
                Expr::Int(0),
                Expr::Int(0),
                Expr::Int(2),
                Expr::Int(0),
                Expr::Int(1),
                Expr::Int(2),
            ],
        })
        .unwrap();
        let Value::Shape(Shape::Polygon(p)) = poly else { panic!() };
        assert_eq!(p.num_points(), 3);
        // ClosedPolygon wraps a nested polygon.
        let wrapped = eval_const(&Expr::Call {
            func: "ClosedPolygon".into(),
            args: vec![Expr::Call {
                func: "Polygon".into(),
                args: vec![
                    Expr::Int(0),
                    Expr::Int(0),
                    Expr::Int(1),
                    Expr::Int(0),
                    Expr::Int(0),
                    Expr::Int(1),
                ],
            }],
        })
        .unwrap();
        assert!(matches!(wrapped, Value::Shape(Shape::Polygon(_))));
        // bad arity
        assert!(
            eval_const(&Expr::Call { func: "Polygon".into(), args: vec![Expr::Int(1)] }).is_err()
        );
        assert!(eval_const(&Expr::Call { func: "NoSuch".into(), args: vec![] }).is_err());
    }

    #[test]
    fn find_cmp_matches_either_side_and_alias() {
        let s = parse("select * from landCover where 7 = LCPYTYPE and x >= 3");
        assert!(find_cmp(&s, "type", BinOp::Eq).is_some(), "alias + flipped =");
        assert!(find_cmp(&s, "x", BinOp::Ge).is_some());
        assert!(find_cmp(&s, "x", BinOp::Le).is_none());
    }

    #[test]
    fn find_clip_polygon_in_projection_and_where() {
        let s = parse(
            "select raster.data.clip(Polygon(0, 0, 1, 0, 0, 1)) from raster where channel = 5",
        );
        let p = find_clip_polygon(&s).unwrap().unwrap();
        assert_eq!(p.num_points(), 3);
        let s = parse(
            "select raster.date from raster \
             where raster.data.clip(Polygon(0, 0, 1, 0, 0, 1)).average() > 10",
        );
        assert!(find_clip_polygon(&s).is_some());
        assert_eq!(find_average_threshold(&s), Some(10.0));
    }

    #[test]
    fn find_make_box_and_closest_point() {
        let s = parse(
            "select a from landCover, populatedPlaces \
             where landCover.shape overlaps populatedPlaces.location.makeBox(2.5)",
        );
        assert_eq!(find_make_box_len(&s), Some(2.5));
        let s = parse("select closest(shape, Point(1, 2)), type from roads group by type");
        let p = find_closest_point(&s).unwrap().unwrap();
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn compare_values_cross_numeric() {
        use std::cmp::Ordering::*;
        assert_eq!(compare_values(&Value::Int(2), &Value::Float(2.5)).unwrap(), Less);
        assert_eq!(compare_values(&Value::Float(3.0), &Value::Int(3)).unwrap(), Equal);
        assert_eq!(
            compare_values(&Value::Str("b".into()), &Value::Str("a".into())).unwrap(),
            Greater
        );
        assert!(compare_values(&Value::Int(1), &Value::Str("x".into())).is_err());
    }

    #[test]
    fn find_area_bound_and_overlaps_const() {
        let s = parse(
            "select shape.area() from landCover \
             where shape < Circle(Point(0, 0), 5) and shape.area() < 7.5",
        );
        assert_eq!(find_area_bound(&s), Some(7.5));
        let s = parse("select * from landCover where shape overlaps Rect(0, 0, 5, 5)");
        assert!(find_overlaps_const(&s).is_some());
        let s = parse("select * from drainage, roads where drainage.shape overlaps roads.shape");
        assert!(find_overlaps_const(&s).is_none(), "column rhs is not a constant");
    }
}
