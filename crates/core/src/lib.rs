//! # paradise
//!
//! A from-scratch Rust reproduction of **Paradise**, the parallel
//! object-relational geo-spatial DBMS of
//! *"Building a Scalable Geo-Spatial DBMS: Technology, Implementation, and
//! Evaluation"* (SIGMOD 1997).
//!
//! The crate ties together the substrates:
//!
//! * [`paradise_geom`] — spatial ADTs (point, polyline, polygon,
//!   swiss-cheese polygon, circle) and computational geometry;
//! * [`paradise_array`] — N-d arrays and geo-located rasters with ~128 KB
//!   tiling and per-tile LZW compression;
//! * [`paradise_storage`] — a SHORE-like storage manager (volumes, extents,
//!   buffer pool, heap files, large objects, WAL, B+-trees, R*-trees);
//! * [`paradise_exec`] — the shared-nothing execution engine: declustering
//!   (round-robin / hash / spatial with replication), streams, relational
//!   and spatial operators, tile-granular raster storage with the pull
//!   model, extensible two-phase aggregation, the parallel spatial join
//!   and the `closest` join-with-aggregate of Figure 3.1;
//! * [`paradise_sql`] — the extended-SQL front end.
//!
//! [`Paradise`] is the query-coordinator facade: create a cluster, define
//! and load tables, run queries — either the programmatic benchmark plans
//! in [`queries`] (Q2–Q14 of the global Sequoia 2000 benchmark, §3.1) or
//! SQL via [`Paradise::sql`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod db;
pub mod history;
pub mod queries;
pub mod sql_exec;

pub use catalog::CatalogTable;
pub use db::{Paradise, ParadiseConfig, QueryResult, TransportKind};
pub use history::{QueryHistory, QueryRecord};
pub use sql_exec::{execute_plan, match_plan, Plan, PlanLine};

pub use paradise_array as array;
pub use paradise_exec as exec;
pub use paradise_geom as geom;
pub use paradise_net as net;
pub use paradise_obs as obs;
pub use paradise_sql as sql;
pub use paradise_storage as storage;

/// Crate-wide error: the engine error type.
pub type Error = paradise_exec::ExecError;
/// Result alias.
pub type Result<T> = paradise_exec::Result<T>;
