//! The [`Paradise`] facade: cluster + catalog + query entry points.

use crate::Result;
use paradise_exec::cluster::{Cluster, ClusterConfig, Transport};
use paradise_exec::metrics::QueryMetrics;
use paradise_exec::ops::aggregate::AggRegistry;
use paradise_exec::{ExecError, TableDef, Tuple};
use paradise_geom::{Point, Rect};
use std::collections::HashMap;
use std::path::PathBuf;

/// Which transport carries cross-node tuples and tile pulls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process bounded channels (the default).
    #[default]
    Local,
    /// Real TCP data servers with the `paradise-net` wire protocol and
    /// credit-based flow control (one loopback server per node plus the
    /// QC endpoint).
    Tcp,
}

/// Construction parameters for a Paradise instance.
#[derive(Debug, Clone)]
pub struct ParadiseConfig {
    /// Where per-node volumes live.
    pub base_dir: PathBuf,
    /// Number of data-server nodes (the paper evaluates 4, 8, 16).
    pub nodes: usize,
    /// Buffer-pool pages per node.
    pub pool_pages: usize,
    /// Number of spatial-declustering grid tiles (paper: 10,000).
    pub grid_tiles: u32,
    /// The spatial universe.
    pub universe: Rect,
    /// Simulated cost per remote tile pull (see
    /// [`paradise_exec::cluster::ClusterConfig::pull_cost`]).
    pub pull_cost: std::time::Duration,
    /// How cross-node traffic moves (`Local` channels or real `Tcp`).
    pub transport: TransportKind,
    /// Where `EXPLAIN ANALYZE` writes its Chrome-trace JSON profile
    /// (`None`: no trace file is produced).
    pub trace_path: Option<PathBuf>,
}

impl ParadiseConfig {
    /// A configuration with the benchmark defaults: a longitude/latitude
    /// world and 10,000 grid tiles.
    pub fn new(base_dir: impl Into<PathBuf>, nodes: usize) -> Self {
        ParadiseConfig {
            base_dir: base_dir.into(),
            nodes,
            pool_pages: 2048,
            grid_tiles: 10_000,
            universe: Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0))
                .expect("valid universe"),
            pull_cost: std::time::Duration::from_micros(5),
            transport: TransportKind::Local,
            trace_path: None,
        }
    }

    /// Overrides the grid tile count.
    pub fn with_grid_tiles(mut self, tiles: u32) -> Self {
        self.grid_tiles = tiles;
        self
    }

    /// Overrides the per-node buffer-pool size.
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Selects the cross-node transport.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the Chrome-trace output path for `EXPLAIN ANALYZE` profiles.
    pub fn with_trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }
}

/// A query answer: result rows plus the execution cost record.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result tuples.
    pub rows: Vec<Tuple>,
    /// Cost accounting (phases, network, pulls, simulated time).
    pub metrics: QueryMetrics,
}

/// The Paradise DBMS: a query coordinator over a simulated shared-nothing
/// cluster (paper Figure 2.1).
pub struct Paradise {
    cluster: Cluster,
    tables: HashMap<String, TableDef>,
    /// Extensible aggregate catalog (§2.4).
    pub aggregates: AggRegistry,
    trace_path: Option<PathBuf>,
}

impl Paradise {
    /// Creates a fresh instance (wiping `base_dir`). With
    /// [`TransportKind::Tcp`] this also starts the cluster's data servers
    /// (one loopback listener per node plus the QC endpoint) and routes
    /// all cross-node streams and tile pulls through them.
    pub fn create(cfg: ParadiseConfig) -> Result<Paradise> {
        let mut cluster = Cluster::create(&ClusterConfig {
            nodes: cfg.nodes,
            pool_pages: cfg.pool_pages,
            grid_tiles: cfg.grid_tiles,
            universe: cfg.universe,
            base_dir: cfg.base_dir,
            pull_cost: cfg.pull_cost,
        })?;
        if cfg.transport == TransportKind::Tcp {
            let t = paradise_net::TcpTransport::serve(cluster.nodes())?;
            t.register_metrics(cluster.obs());
            cluster.set_transport(Transport::Tcp(t));
        }
        Ok(Paradise {
            cluster,
            tables: HashMap::new(),
            aggregates: AggRegistry::with_builtins(),
            trace_path: cfg.trace_path,
        })
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The cluster-wide metrics registry (buffer, WAL, network, R-tree,
    /// and stream counters — see `paradise_obs`).
    pub fn obs(&self) -> &paradise_obs::MetricsRegistry {
        self.cluster.obs()
    }

    /// Where `EXPLAIN ANALYZE` writes its Chrome-trace profile, if set.
    pub fn trace_path(&self) -> Option<&std::path::Path> {
        self.trace_path.as_deref()
    }

    /// Registers a table definition (DDL).
    pub fn define_table(&mut self, def: TableDef) {
        self.tables.insert(def.name.clone(), def);
    }

    /// Looks up a table definition.
    pub fn table(&self, name: &str) -> Result<&TableDef> {
        self.tables.get(name).ok_or_else(|| ExecError::NotFound(format!("table {name}")))
    }

    /// Defined table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Loads tuples into a defined table (part of benchmark Q1).
    pub fn load_table(
        &self,
        name: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<paradise_exec::table::LoadStats> {
        let def = self.table(name)?;
        let stats = def.load(&self.cluster, tuples)?;
        Ok(stats)
    }

    /// Builds a B+-tree index on a scalar column of a table.
    pub fn create_btree_index(&self, table: &str, col: usize) -> Result<()> {
        self.table(table)?.build_btree_index(&self.cluster, col)
    }

    /// Builds an R*-tree index on a spatial column of a table.
    pub fn create_rtree_index(&self, table: &str, col: usize) -> Result<()> {
        self.table(table)?.build_rtree_index(&self.cluster, col)
    }

    /// Durably commits all nodes (end of load).
    pub fn commit(&self) -> Result<()> {
        self.cluster.commit_all()
    }

    /// Flushes every buffer pool — run before each measured query, as the
    /// paper does ("The buffer pool was flushed between queries").
    pub fn flush_caches(&self) -> Result<()> {
        self.cluster.flush_caches()
    }

    /// Parses and executes a statement in the extended SQL dialect.
    pub fn sql(&self, text: &str) -> Result<QueryResult> {
        crate::sql_exec::run_sql(self, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_exec::schema::{DataType, Field, Schema};
    use paradise_exec::value::Value;
    use paradise_exec::Decluster;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("paradise-db-{}-{tag}", std::process::id()))
    }

    #[test]
    fn create_define_load_roundtrip() {
        let mut db = Paradise::create(ParadiseConfig::new(tmp("a"), 2)).unwrap();
        db.define_table(TableDef::new(
            "t",
            Schema::new(vec![Field::new("x", DataType::Int)]),
            Decluster::RoundRobin,
        ));
        let stats = db.load_table("t", (0..10).map(|i| Tuple::new(vec![Value::Int(i)]))).unwrap();
        assert_eq!(stats.input_tuples, 10);
        assert!(db.table("t").is_ok());
        assert!(db.table("missing").is_err());
        assert_eq!(db.table_names(), vec!["t"]);
        db.commit().unwrap();
        db.flush_caches().unwrap();
    }
}
