//! The [`Paradise`] facade: cluster + catalog + query entry points.

use crate::history::QueryHistory;
use crate::Result;
use paradise_exec::cluster::{Cluster, ClusterConfig, Transport};
use paradise_exec::metrics::QueryMetrics;
use paradise_exec::ops::aggregate::AggRegistry;
use paradise_exec::{ExecError, TableDef, Tuple};
use paradise_geom::{Point, Rect};
use paradise_obs::{render_prometheus, MetricsExporter, MetricsRegistry, RenderFn};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Which transport carries cross-node tuples and tile pulls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process bounded channels (the default).
    #[default]
    Local,
    /// Real TCP data servers with the `paradise-net` wire protocol and
    /// credit-based flow control (one loopback server per node plus the
    /// QC endpoint).
    Tcp,
}

/// Construction parameters for a Paradise instance.
#[derive(Debug, Clone)]
pub struct ParadiseConfig {
    /// Where per-node volumes live.
    pub base_dir: PathBuf,
    /// Number of data-server nodes (the paper evaluates 4, 8, 16).
    pub nodes: usize,
    /// Buffer-pool pages per node.
    pub pool_pages: usize,
    /// Number of spatial-declustering grid tiles (paper: 10,000).
    pub grid_tiles: u32,
    /// The spatial universe.
    pub universe: Rect,
    /// Simulated cost per remote tile pull (see
    /// [`paradise_exec::cluster::ClusterConfig::pull_cost`]).
    pub pull_cost: std::time::Duration,
    /// How cross-node traffic moves (`Local` channels or real `Tcp`).
    pub transport: TransportKind,
    /// Where `EXPLAIN ANALYZE` writes its Chrome-trace JSON profile
    /// (`None`: no trace file is produced).
    pub trace_path: Option<PathBuf>,
    /// Listen address for the Prometheus metrics endpoint (`None`: no
    /// exporter is started). Use `"127.0.0.1:0"` to pick a free port and
    /// read it back with [`Paradise::metrics_addr`].
    pub metrics_addr: Option<String>,
    /// How many recent statements the query history retains.
    pub history_capacity: usize,
    /// Executions at least this slow are flagged in `paradise.queries`
    /// and emitted as `slow_query` events (`None`: slow log disabled).
    pub slow_query_threshold: Option<std::time::Duration>,
    /// Where the structured JSONL event log is written (`None`: events
    /// stay in the in-memory ring and the log starts disabled).
    pub event_log_path: Option<PathBuf>,
    /// Network tunables for the [`TransportKind::Tcp`] transport
    /// (timeouts, retry/backoff schedule). `None`: the defaults. Chaos and
    /// fault-injection tests override this so a dead or stalled peer
    /// surfaces as a clean per-query error within a bounded wait.
    pub net: Option<paradise_net::NetConfig>,
    /// Intra-node worker-pool size for morsel-parallel operator kernels
    /// ([`paradise_exec::workers`]). `0` (the default) means one worker
    /// per available core. Results are byte-identical for every value.
    pub workers: usize,
}

impl ParadiseConfig {
    /// A configuration with the benchmark defaults: a longitude/latitude
    /// world and 10,000 grid tiles.
    pub fn new(base_dir: impl Into<PathBuf>, nodes: usize) -> Self {
        ParadiseConfig {
            base_dir: base_dir.into(),
            nodes,
            pool_pages: 2048,
            grid_tiles: 10_000,
            universe: Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0))
                .expect("valid universe"),
            pull_cost: std::time::Duration::from_micros(5),
            transport: TransportKind::Local,
            trace_path: None,
            metrics_addr: None,
            history_capacity: 128,
            slow_query_threshold: None,
            event_log_path: None,
            net: None,
            workers: 0,
        }
    }

    /// Overrides the grid tile count.
    ///
    /// ```
    /// use paradise::ParadiseConfig;
    ///
    /// let cfg = ParadiseConfig::new("/tmp/paradise-doc", 4).with_grid_tiles(1024);
    /// assert_eq!(cfg.grid_tiles, 1024);
    /// ```
    pub fn with_grid_tiles(mut self, tiles: u32) -> Self {
        self.grid_tiles = tiles;
        self
    }

    /// Overrides the per-node buffer-pool size.
    ///
    /// ```
    /// use paradise::ParadiseConfig;
    ///
    /// let cfg = ParadiseConfig::new("/tmp/paradise-doc", 4).with_pool_pages(256);
    /// assert_eq!(cfg.pool_pages, 256);
    /// ```
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Sets the intra-node worker-pool size for morsel-parallel kernels
    /// (PBSM tile sweeps, hash-join partitions, partial aggregation,
    /// predicate scans, LZW tile codecs). `0` means one worker per
    /// available core; `1` runs every kernel as a plain serial loop.
    /// Either way results are byte-identical — only elapsed time changes.
    ///
    /// ```
    /// use paradise::ParadiseConfig;
    ///
    /// let cfg = ParadiseConfig::new("/tmp/paradise-doc", 4).with_workers(4);
    /// assert_eq!(cfg.workers, 4);
    /// // The default requests one worker per available core.
    /// assert_eq!(ParadiseConfig::new("/tmp/paradise-doc", 4).workers, 0);
    /// ```
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Selects the cross-node transport.
    ///
    /// ```
    /// use paradise::{ParadiseConfig, TransportKind};
    ///
    /// let cfg = ParadiseConfig::new("/tmp/paradise-doc", 2).with_transport(TransportKind::Tcp);
    /// assert_eq!(cfg.transport, TransportKind::Tcp);
    /// ```
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the Chrome-trace output path for `EXPLAIN ANALYZE` profiles.
    pub fn with_trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Starts a Prometheus `/metrics` endpoint on `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port).
    pub fn with_metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Overrides how many recent statements the query history retains.
    pub fn with_history_capacity(mut self, capacity: usize) -> Self {
        self.history_capacity = capacity;
        self
    }

    /// Enables the slow-query log for executions at least this slow.
    pub fn with_slow_query_threshold(mut self, threshold: std::time::Duration) -> Self {
        self.slow_query_threshold = Some(threshold);
        self
    }

    /// Enables the structured event log and writes it (JSONL) to `path`.
    pub fn with_event_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.event_log_path = Some(path.into());
        self
    }

    /// Overrides the TCP transport's network tunables (the `events` handle
    /// is wired to the cluster's event log at startup regardless).
    pub fn with_net(mut self, net: paradise_net::NetConfig) -> Self {
        self.net = Some(net);
        self
    }
}

/// Starts the Prometheus endpoint over the cluster's registries: one
/// node-labelled sample group per data server plus the coordinator's
/// (`node="qc"`). The render closure holds its own registry handles, so
/// scrapes keep working for the exporter's whole lifetime.
fn start_exporter(addr: &str, cluster: &Cluster) -> Result<MetricsExporter> {
    let mut groups: Vec<(String, Arc<MetricsRegistry>)> = cluster
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| (i.to_string(), node.obs.clone()))
        .collect();
    groups.push(("qc".to_string(), cluster.obs().clone()));
    let render: RenderFn = Arc::new(move || {
        let sampled: Vec<(String, Vec<paradise_obs::MetricSample>)> =
            groups.iter().map(|(label, reg)| (label.clone(), reg.samples())).collect();
        render_prometheus(&sampled)
    });
    MetricsExporter::start(addr, render)
        .map_err(|e| ExecError::Other(format!("metrics endpoint {addr}: {e}")))
}

/// A query answer: result rows plus the execution cost record.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result tuples.
    pub rows: Vec<Tuple>,
    /// Cost accounting (phases, network, pulls, simulated time).
    pub metrics: QueryMetrics,
}

/// The Paradise DBMS: a query coordinator over a simulated shared-nothing
/// cluster (paper Figure 2.1).
pub struct Paradise {
    // Declared before `cluster` so the exporter thread shuts down first.
    exporter: Option<MetricsExporter>,
    cluster: Cluster,
    tables: HashMap<String, TableDef>,
    /// Extensible aggregate catalog (§2.4).
    pub aggregates: AggRegistry,
    history: QueryHistory,
    trace_path: Option<PathBuf>,
}

impl Paradise {
    /// Creates a fresh instance (wiping `base_dir`). With
    /// [`TransportKind::Tcp`] this also starts the cluster's data servers
    /// (one loopback listener per node plus the QC endpoint) and routes
    /// all cross-node streams and tile pulls through them.
    pub fn create(cfg: ParadiseConfig) -> Result<Paradise> {
        let mut cluster = Cluster::create(&ClusterConfig {
            nodes: cfg.nodes,
            pool_pages: cfg.pool_pages,
            grid_tiles: cfg.grid_tiles,
            universe: cfg.universe,
            base_dir: cfg.base_dir,
            pull_cost: cfg.pull_cost,
            workers: cfg.workers,
        })?;
        if let Some(path) = &cfg.event_log_path {
            cluster
                .events()
                .attach_file(path)
                .map_err(|e| ExecError::Other(format!("event log {}: {e}", path.display())))?;
        }
        // Every failpoint trigger in the process lands in this instance's
        // event log (site + action), so chaos runs leave an auditable JSONL
        // trail alongside the net.retry / flow.stall events they provoke.
        {
            let events = cluster.events().clone();
            paradise_util::failpoint::set_observer(move |site, action| {
                events.emit(
                    "failpoint",
                    &[("site", site.to_string().into()), ("action", action.to_string().into())],
                );
            });
        }
        if cfg.transport == TransportKind::Tcp {
            let net_cfg = paradise_net::NetConfig {
                events: Some(cluster.events().clone()),
                ..cfg.net.unwrap_or_default()
            };
            let t = paradise_net::TcpTransport::serve_with(cluster.nodes(), net_cfg)?;
            t.register_metrics(cluster.obs());
            cluster.set_transport(Transport::Tcp(t));
        }
        let exporter = match &cfg.metrics_addr {
            Some(addr) => Some(start_exporter(addr, &cluster)?),
            None => None,
        };
        let history = QueryHistory::new(cfg.history_capacity);
        history.set_slow_threshold(cfg.slow_query_threshold);
        Ok(Paradise {
            exporter,
            cluster,
            tables: HashMap::new(),
            aggregates: AggRegistry::with_builtins(),
            history,
            trace_path: cfg.trace_path,
        })
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The cluster-wide metrics registry (buffer, WAL, network, R-tree,
    /// and stream counters — see `paradise_obs`).
    pub fn obs(&self) -> &paradise_obs::MetricsRegistry {
        self.cluster.obs()
    }

    /// Where `EXPLAIN ANALYZE` writes its Chrome-trace profile, if set.
    pub fn trace_path(&self) -> Option<&std::path::Path> {
        self.trace_path.as_deref()
    }

    /// The query-history ring backing `paradise.queries`.
    pub fn history(&self) -> &QueryHistory {
        &self.history
    }

    /// Bound address of the Prometheus endpoint, when one was configured
    /// with [`ParadiseConfig::with_metrics_addr`].
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.exporter.as_ref().map(|e| e.addr())
    }

    /// Registers a table definition (DDL).
    pub fn define_table(&mut self, def: TableDef) {
        self.tables.insert(def.name.clone(), def);
    }

    /// Looks up a table definition.
    pub fn table(&self, name: &str) -> Result<&TableDef> {
        self.tables.get(name).ok_or_else(|| ExecError::NotFound(format!("table {name}")))
    }

    /// Defined table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Loads tuples into a defined table (part of benchmark Q1).
    pub fn load_table(
        &self,
        name: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<paradise_exec::table::LoadStats> {
        let def = self.table(name)?;
        let stats = def.load(&self.cluster, tuples)?;
        Ok(stats)
    }

    /// Builds a B+-tree index on a scalar column of a table.
    pub fn create_btree_index(&self, table: &str, col: usize) -> Result<()> {
        self.table(table)?.build_btree_index(&self.cluster, col)
    }

    /// Builds an R*-tree index on a spatial column of a table.
    pub fn create_rtree_index(&self, table: &str, col: usize) -> Result<()> {
        self.table(table)?.build_rtree_index(&self.cluster, col)
    }

    /// Durably commits all nodes (end of load).
    pub fn commit(&self) -> Result<()> {
        self.cluster.commit_all()
    }

    /// Flushes every buffer pool — run before each measured query, as the
    /// paper does ("The buffer pool was flushed between queries").
    pub fn flush_caches(&self) -> Result<()> {
        self.cluster.flush_caches()
    }

    /// Parses and executes a statement in the extended SQL dialect.
    pub fn sql(&self, text: &str) -> Result<QueryResult> {
        crate::sql_exec::run_sql(self, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_exec::schema::{DataType, Field, Schema};
    use paradise_exec::value::Value;
    use paradise_exec::Decluster;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("paradise-db-{}-{tag}", std::process::id()))
    }

    #[test]
    fn create_define_load_roundtrip() {
        let mut db = Paradise::create(ParadiseConfig::new(tmp("a"), 2)).unwrap();
        db.define_table(TableDef::new(
            "t",
            Schema::new(vec![Field::new("x", DataType::Int)]),
            Decluster::RoundRobin,
        ));
        let stats = db.load_table("t", (0..10).map(|i| Tuple::new(vec![Value::Int(i)]))).unwrap();
        assert_eq!(stats.input_tuples, 10);
        assert!(db.table("t").is_ok());
        assert!(db.table("missing").is_err());
        assert_eq!(db.table_names(), vec!["t"]);
        db.commit().unwrap();
        db.flush_caches().unwrap();
    }
}
