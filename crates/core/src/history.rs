//! Query history: a bounded ring of recent statement executions plus the
//! slow-query log.
//!
//! Every statement that goes through [`crate::db::Paradise::sql`] leaves a
//! [`QueryRecord`] here — statement text, matched plan shape, outcome, row
//! count and the cost summary — retained for the last
//! [`QueryHistory::capacity`] statements. The ring backs the
//! `paradise.queries` system table. Executions slower than the configured
//! threshold are additionally flagged and emitted as structured
//! `slow_query` events on the cluster's [`EventLog`].

use paradise_exec::metrics::QueryMetrics;
use paradise_obs::EventLog;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn lock_err<T>(e: std::sync::PoisonError<T>) -> T {
    e.into_inner()
}

/// One completed (or failed) statement execution.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Monotonically increasing statement id.
    pub id: u64,
    /// The statement text as submitted.
    pub statement: String,
    /// The matched plan shape ("Q2" … "Q14", "GenericScan",
    /// "CatalogScan"), or "error" when planning failed.
    pub shape: String,
    /// "ok", or the error message.
    pub status: String,
    /// Result rows produced.
    pub rows: u64,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Simulated parallel time under the paper's cost model.
    pub simulated: Duration,
    /// Bytes shipped between nodes.
    pub net_bytes: u64,
    /// Whether the execution crossed the slow-query threshold.
    pub slow: bool,
}

/// Bounded ring of the most recent [`QueryRecord`]s.
pub struct QueryHistory {
    inner: Mutex<VecDeque<QueryRecord>>,
    capacity: usize,
    next_id: AtomicU64,
    /// Wall-time threshold in microseconds; 0 disables the slow log.
    slow_threshold_us: AtomicU64,
}

impl QueryHistory {
    /// An empty history retaining the last `capacity` statements.
    pub fn new(capacity: usize) -> QueryHistory {
        QueryHistory {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            slow_threshold_us: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets the slow-query threshold (`None` disables the slow log).
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let us = threshold.map(|d| (d.as_micros() as u64).max(1)).unwrap_or(0);
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// The configured slow-query threshold, if any.
    pub fn slow_threshold(&self) -> Option<Duration> {
        match self.slow_threshold_us.load(Ordering::Relaxed) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }

    /// Records one execution; returns its id. Statements slower than the
    /// threshold are flagged and reported to `events` as a `slow_query`
    /// event carrying the statement text and the wall time.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        statement: &str,
        shape: &str,
        status: &str,
        rows: u64,
        wall: Duration,
        metrics: &QueryMetrics,
        events: &EventLog,
    ) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let threshold = self.slow_threshold_us.load(Ordering::Relaxed);
        let wall_us = wall.as_micros() as u64;
        let slow = threshold > 0 && wall_us >= threshold;
        if slow {
            events.emit(
                "slow_query",
                &[
                    ("id", id.into()),
                    ("statement", statement.into()),
                    ("shape", shape.into()),
                    ("wall_us", wall_us.into()),
                ],
            );
        }
        let rec = QueryRecord {
            id,
            statement: statement.to_string(),
            shape: shape.to_string(),
            status: status.to_string(),
            rows,
            wall,
            simulated: metrics.simulated_time(),
            net_bytes: metrics.net_bytes,
            slow,
        };
        let mut ring = self.inner.lock().unwrap_or_else(lock_err);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
        id
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<QueryRecord> {
        self.inner.lock().unwrap_or_else(lock_err).iter().cloned().collect()
    }

    /// The retained records flagged slow, oldest first.
    pub fn slow_queries(&self) -> Vec<QueryRecord> {
        self.inner.lock().unwrap_or_else(lock_err).iter().filter(|r| r.slow).cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(lock_err).len()
    }

    /// True when no statement has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(h: &QueryHistory, stmt: &str, wall: Duration, events: &EventLog) -> u64 {
        h.record(stmt, "GenericScan", "ok", 3, wall, &QueryMetrics::default(), events)
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let h = QueryHistory::new(3);
        let events = EventLog::new();
        for i in 0..5 {
            record(&h, &format!("select {i}"), Duration::from_micros(10), &events);
        }
        let recs = h.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].statement, "select 2");
        assert_eq!(recs[2].statement, "select 4");
        // Ids keep counting across evictions.
        assert_eq!(recs[2].id, 5);
    }

    #[test]
    fn slow_threshold_flags_and_logs() {
        let h = QueryHistory::new(8);
        let events = EventLog::new();
        events.set_enabled(true);
        h.set_slow_threshold(Some(Duration::from_millis(50)));
        record(&h, "select fast", Duration::from_millis(1), &events);
        record(&h, "select slow", Duration::from_millis(80), &events);
        let slow = h.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].statement, "select slow");
        // The fast statement produced no slow_query event; the slow one
        // carried its text.
        let logged = events.of_kind("slow_query");
        assert_eq!(logged.len(), 1);
        assert!(logged[0].line.contains("select slow"), "{}", logged[0].line);
        assert!(!logged[0].line.contains("select fast"));
    }

    #[test]
    fn threshold_can_be_cleared() {
        let h = QueryHistory::new(4);
        let events = EventLog::new();
        h.set_slow_threshold(Some(Duration::from_micros(1)));
        assert_eq!(h.slow_threshold(), Some(Duration::from_micros(1)));
        h.set_slow_threshold(None);
        assert_eq!(h.slow_threshold(), None);
        record(&h, "select anything", Duration::from_secs(10), &events);
        assert!(h.slow_queries().is_empty());
    }
}
