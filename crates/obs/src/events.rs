//! Structured operational events as JSON-lines (the "slow-query log").
//!
//! An [`EventLog`] is the low-volume sibling of the trace sink: instead of
//! µs-granular spans it records *notable occurrences* — slow queries,
//! flow-control stalls, connection retries, scheduler phase starts — each
//! as one JSON object per line. Events go to a bounded in-memory ring
//! (always, for `paradise.*` catalog queries and tests) and optionally to
//! an append-only JSONL file attached with [`EventLog::attach_file`].
//!
//! Like [`crate::trace::TraceSink`], the log starts **disabled**: a
//! disabled log makes [`EventLog::emit`] a single relaxed atomic load, so
//! the emit sites in the network and scheduler hot paths stay compiled-in
//! everywhere.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maximum events retained in memory; older events are dropped.
const RING_CAPACITY: usize = 256;

/// Value of one event field: numbers render bare, strings are escaped.
#[derive(Clone, Debug)]
pub enum EventValue {
    /// Unsigned number (durations in µs, attempt counts, byte counts).
    U64(u64),
    /// Free-form text (statement text, peer addresses, phase names).
    Str(String),
}

impl From<u64> for EventValue {
    fn from(v: u64) -> Self {
        EventValue::U64(v)
    }
}

impl From<&str> for EventValue {
    fn from(v: &str) -> Self {
        EventValue::Str(v.to_string())
    }
}

impl From<String> for EventValue {
    fn from(v: String) -> Self {
        EventValue::Str(v)
    }
}

/// One recorded event: its kind plus the rendered JSON line.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Event kind (`"slow_query"`, `"flow.stall"`, `"net.retry"`,
    /// `"phase.start"`, …).
    pub kind: String,
    /// Complete JSON object, one line, no trailing newline.
    pub line: String,
}

#[derive(Default)]
struct LogInner {
    ring: std::collections::VecDeque<EventRecord>,
    file: Option<File>,
}

/// Structured JSONL event log. Shared via `Arc`; all methods take `&self`.
pub struct EventLog {
    enabled: AtomicBool,
    epoch: Instant,
    inner: Mutex<LogInner>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("enabled", &self.is_enabled())
            .field("events", &self.len())
            .finish()
    }
}

impl EventLog {
    /// A new, *disabled* log.
    pub fn new() -> Self {
        Self { enabled: AtomicBool::new(false), epoch: Instant::now(), inner: Mutex::default() }
    }

    /// Turn event collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is the log currently collecting?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Attach (create/truncate) a JSONL file and enable the log. Events
    /// are appended to the file as they are emitted.
    pub fn attach_file(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        self.inner.lock().expect("event lock").file = Some(file);
        self.set_enabled(true);
        Ok(())
    }

    /// Record an event of `kind` with the given fields. No-op (one atomic
    /// load) while the log is disabled.
    pub fn emit(&self, kind: &str, fields: &[(&str, EventValue)]) {
        if !self.is_enabled() {
            return;
        }
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let mut line = String::with_capacity(64);
        let _ = write!(line, "{{\"ts_us\":{ts_us},\"event\":\"{}\"", crate::trace::escape(kind));
        for (key, value) in fields {
            match value {
                EventValue::U64(v) => {
                    let _ = write!(line, ",\"{}\":{v}", crate::trace::escape(key));
                }
                EventValue::Str(s) => {
                    let _ = write!(
                        line,
                        ",\"{}\":\"{}\"",
                        crate::trace::escape(key),
                        crate::trace::escape(s)
                    );
                }
            }
        }
        line.push('}');
        let mut inner = self.inner.lock().expect("event lock");
        if let Some(f) = inner.file.as_mut() {
            let _ = writeln!(f, "{line}");
        }
        if inner.ring.len() == RING_CAPACITY {
            inner.ring.pop_front();
        }
        inner.ring.push_back(EventRecord { kind: kind.to_string(), line });
    }

    /// Number of events currently retained in memory.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event lock").ring.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the retained events, oldest first.
    pub fn tail(&self) -> Vec<EventRecord> {
        self.inner.lock().expect("event lock").ring.iter().cloned().collect()
    }

    /// Retained events of one kind, oldest first.
    pub fn of_kind(&self, kind: &str) -> Vec<EventRecord> {
        self.tail().into_iter().filter(|e| e.kind == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = EventLog::new();
        log.emit("slow_query", &[("wall_us", 5u64.into())]);
        assert!(log.is_empty());
    }

    #[test]
    fn events_render_as_json_lines() {
        let log = EventLog::new();
        log.set_enabled(true);
        log.emit(
            "slow_query",
            &[("statement", "select \"x\"".into()), ("wall_us", 1234u64.into())],
        );
        let evs = log.tail();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "slow_query");
        let line = &evs[0].line;
        assert!(line.starts_with("{\"ts_us\":"), "{line}");
        assert!(line.contains("\"event\":\"slow_query\""), "{line}");
        assert!(line.contains("\"wall_us\":1234"), "{line}");
        assert!(line.contains("select \\\"x\\\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn ring_is_bounded() {
        let log = EventLog::new();
        log.set_enabled(true);
        for i in 0..(RING_CAPACITY as u64 + 10) {
            log.emit("tick", &[("i", i.into())]);
        }
        assert_eq!(log.len(), RING_CAPACITY);
        // Oldest events were evicted.
        let first = &log.tail()[0];
        assert!(first.line.contains("\"i\":10"), "{}", first.line);
    }

    #[test]
    fn attach_file_appends_jsonl() {
        let dir = std::env::temp_dir().join(format!("paradise-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let log = EventLog::new();
        log.attach_file(&path).unwrap();
        assert!(log.is_enabled());
        log.emit("net.retry", &[("attempt", 2u64.into())]);
        log.emit("flow.stall", &[("timeout_ms", 100u64.into())]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("net.retry"));
        assert!(lines[1].contains("flow.stall"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
