//! Span-based tracing with Chrome-trace-format JSON output.
//!
//! A [`TraceSink`] owns an epoch instant and a buffer of completed events.
//! Code under measurement opens a [`Span`] (RAII — the event is recorded
//! on drop) on a *lane*: lanes map to Chrome trace `tid`s, so each
//! node/operator renders as its own horizontal track in the viewer.
//!
//! The sink starts **disabled**; a disabled sink makes `span()` a single
//! relaxed atomic load (no allocation, no lock), which keeps always-on
//! instrumentation under the <5% overhead budget. `EXPLAIN ANALYZE`
//! enables the sink for the duration of one query.
//!
//! Output is the Chrome trace-event JSON array format — complete (`"X"`)
//! duration events plus `thread_name` metadata — loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Serialisation is
//! hand-rolled (the workspace is dependency-free by policy).

use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed span, in µs relative to the sink's epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Human label ("scan + clip rasters", …).
    pub name: String,
    /// Lane (Chrome `tid`) the event belongs to.
    pub lane: u32,
    /// Start, µs since the sink epoch.
    pub ts_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

#[derive(Default)]
struct SinkInner {
    events: Vec<TraceEvent>,
    /// `lanes[i]` is the display name for lane id `i`.
    lanes: Vec<String>,
}

/// Collects spans and serialises them as Chrome-trace JSON.
pub struct TraceSink {
    enabled: AtomicBool,
    epoch: Instant,
    inner: Mutex<SinkInner>,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .field("events", &self.len())
            .finish()
    }
}

impl TraceSink {
    /// A new, *disabled* sink.
    pub fn new() -> Self {
        Self { enabled: AtomicBool::new(false), epoch: Instant::now(), inner: Mutex::default() }
    }

    /// Turn span collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is the sink currently collecting?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Register (or rename) a lane. Lane ids are Chrome `tid`s; the name
    /// shows as the track label in the viewer.
    pub fn set_lane_name(&self, lane: u32, name: &str) {
        let mut inner = self.inner.lock().expect("trace lock");
        let lane = lane as usize;
        if inner.lanes.len() <= lane {
            inner.lanes.resize(lane + 1, String::new());
        }
        inner.lanes[lane] = name.to_string();
    }

    /// Open a span on `lane`. The event is recorded when the guard drops.
    /// On a disabled sink this is a single atomic load and the guard is
    /// inert.
    pub fn span(&self, name: &str, lane: u32) -> Span<'_> {
        if self.is_enabled() {
            Span { sink: Some(self), name: name.to_string(), lane, start: Instant::now() }
        } else {
            Span { sink: None, name: String::new(), lane, start: self.epoch }
        }
    }

    /// Record a completed interval directly (used by [`Span::drop`], and
    /// by call sites that measured the interval themselves).
    pub fn record(&self, name: &str, lane: u32, start: Instant, dur: Duration) {
        if !self.is_enabled() {
            return;
        }
        let ts_us = start.saturating_duration_since(self.epoch).as_micros() as u64;
        let ev = TraceEvent { name: name.to_string(), lane, ts_us, dur_us: dur.as_micros() as u64 };
        self.inner.lock().expect("trace lock").events.push(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace lock").events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all buffered events (lane names are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("trace lock").events.clear();
    }

    /// Copy of the buffered events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("trace lock").events.clone()
    }

    /// Serialise buffered events as a Chrome trace-event JSON array:
    /// `thread_name` metadata per lane followed by complete (`"X"`)
    /// duration events.
    pub fn to_chrome_json(&self) -> String {
        let inner = self.inner.lock().expect("trace lock");
        let mut out = String::from("[");
        let mut first = true;
        for (tid, lane_name) in inner.lanes.iter().enumerate() {
            if lane_name.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(lane_name)
            );
        }
        for ev in &inner.events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                escape(&ev.name),
                ev.ts_us,
                ev.dur_us,
                ev.lane
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Write [`Self::to_chrome_json`] to `path`.
    pub fn write_chrome_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// JSON string escaping for the small subset we emit (shared with the
/// event log).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// RAII span guard: records a complete event on the sink when dropped.
/// Obtained from [`TraceSink::span`].
#[must_use = "a span measures until it is dropped"]
pub struct Span<'a> {
    /// `None` when the sink was disabled at creation — drop is a no-op.
    sink: Option<&'a TraceSink>,
    name: String,
    lane: u32,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(sink) = self.sink {
            sink.record(&self.name, self.lane, self.start, self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new();
        {
            let _s = sink.span("work", 0);
        }
        assert!(sink.is_empty());
    }

    #[test]
    fn spans_record_when_enabled() {
        let sink = TraceSink::new();
        sink.set_enabled(true);
        sink.set_lane_name(0, "node 0");
        {
            let _s = sink.span("scan", 0);
            std::thread::sleep(Duration::from_millis(2));
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "scan");
        assert!(evs[0].dur_us >= 1000, "dur {}µs", evs[0].dur_us);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let sink = TraceSink::new();
        sink.set_enabled(true);
        sink.set_lane_name(0, "node 0");
        sink.set_lane_name(1, "QC \"quote\"");
        sink.record("phase \"a\"", 0, Instant::now(), Duration::from_micros(5));
        sink.record("phase b", 1, Instant::now(), Duration::from_micros(7));
        let json = sink.to_chrome_json();
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\\\"quote\\\""));
        // Balanced braces ⇒ no truncated objects.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        // Every event object carries the 4 required keys.
        assert_eq!(json.matches("\"pid\":1").count(), 4);
    }

    #[test]
    fn clear_drops_events_keeps_lanes() {
        let sink = TraceSink::new();
        sink.set_enabled(true);
        sink.set_lane_name(0, "lane");
        sink.record("e", 0, Instant::now(), Duration::ZERO);
        sink.clear();
        assert!(sink.is_empty());
        assert!(sink.to_chrome_json().contains("thread_name"));
    }
}
