//! Named-metric registry: lock-light handles on the hot path, a single
//! mutex-guarded name table on the (cold) registration/snapshot path.
//!
//! Design: a handle is an `Arc<AtomicU64>` (or a small array of them for
//! histograms). Incrementing is one relaxed `fetch_add` — no lock, no name
//! lookup. The registry's mutex is taken only when a metric is *created*
//! or when a snapshot/render is requested, which happens once per query
//! (EXPLAIN ANALYZE) or per report, never per tuple.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not (yet) attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge (e.g. "frames currently cached").
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not (yet) attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }
    /// Set the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
    /// Add `n` atomically — safe to call concurrently with snapshots,
    /// unlike a read-modify-`set` cycle which races between the read and
    /// the write.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// Subtract `n` atomically, saturating at zero.
    pub fn sub(&self, n: u64) {
        // fetch_update never fails with a Some-returning closure.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const HIST_BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// `buckets[i]` counts samples with `v < 2^i` (and `>= 2^(i-1)`).
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Power-of-two bucketed histogram (latency in µs, sizes in bytes, …).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let i = (u64::BITS - v.leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize;
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }
    /// Point-in-time summary of the samples recorded so far.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.0.count.load(Ordering::Relaxed);
        let sum = self.0.sum.load(Ordering::Relaxed);
        let max = self.0.max.load(Ordering::Relaxed);
        let buckets: [u64; HIST_BUCKETS] =
            std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count,
            sum,
            max,
            p50: percentile(&buckets, count, 50),
            p95: percentile(&buckets, count, 95),
            p99: percentile(&buckets, count, 99),
        }
    }
}

/// Upper bound of the power-of-two bucket containing the `p`-th percentile
/// sample (0 for an empty histogram).
fn percentile(buckets: &[u64; HIST_BUCKETS], count: u64, p: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    // Rank of the percentile sample, rounding up: for p=99 this is
    // `count - count/100`, matching the "at least p% of samples are <= the
    // reported bound" reading.
    let target = count - count * (100 - p) / 100;
    let mut seen = 0;
    for (i, b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= target {
            return if i >= HIST_BUCKETS - 1 { u64::MAX } else { 1u64 << i };
        }
    }
    u64::MAX
}

/// Summary returned by [`Histogram::snapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Upper bound of the bucket containing the median sample.
    pub p50: u64,
    /// Upper bound of the bucket containing the 95th-percentile sample.
    pub p95: u64,
    /// Upper bound of the bucket containing the 99th-percentile sample.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

type CollectorFn = Arc<dyn Fn() -> u64 + Send + Sync>;

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// Reads a pre-existing atomic (or computes a value) at snapshot time.
    Collector(CollectorFn),
}

/// Kind of a [`MetricSample`] — what Prometheus calls the metric *type*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleKind {
    /// Monotonically increasing (counters, collectors, histogram
    /// count/sum).
    Counter,
    /// Point-in-time level (gauges, histogram max/percentiles).
    Gauge,
}

/// One flattened `name = value` reading out of a registry — the unit that
/// travels over the wire in a `StatsReply` and feeds the exporter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSample {
    /// Metric name (histograms are pre-expanded to `name.count` etc.).
    pub name: String,
    /// Counter vs gauge semantics, for exporter `# TYPE` lines.
    pub kind: SampleKind,
    /// Value at sampling time.
    pub value: u64,
}

impl MetricSample {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: SampleKind, value: u64) -> Self {
        MetricSample { name: name.into(), kind, value }
    }
}

/// The unified name → metric table. One per cluster.
///
/// All lookups are idempotent: asking for `counter("x")` twice returns
/// handles sharing the same atomic, so independent subsystems can publish
/// into the same name without coordination.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("len", &self.metrics.lock().expect("metrics lock").len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m.get(name) {
            Some(Metric::Counter(c)) => c.clone(),
            _ => {
                let c = Counter::new();
                m.insert(name.to_string(), Metric::Counter(c.clone()));
                c
            }
        }
    }

    /// Get-or-create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m.get(name) {
            Some(Metric::Gauge(g)) => g.clone(),
            _ => {
                let g = Gauge::default();
                m.insert(name.to_string(), Metric::Gauge(g.clone()));
                g
            }
        }
    }

    /// Get-or-create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m.get(name) {
            Some(Metric::Histogram(h)) => h.clone(),
            _ => {
                let h = Histogram::default();
                m.insert(name.to_string(), Metric::Histogram(h.clone()));
                h
            }
        }
    }

    /// Register a closure evaluated lazily at snapshot time — the bridge
    /// for subsystems that already keep their own atomics (buffer pools,
    /// WAL, wire transports) and should not be rewritten to hold handles.
    pub fn register_collector<F>(&self, name: &str, f: F)
    where
        F: Fn() -> u64 + Send + Sync + 'static,
    {
        let mut m = self.metrics.lock().expect("metrics lock");
        m.insert(name.to_string(), Metric::Collector(Arc::new(f)));
    }

    /// Publish a pre-existing [`Gauge`] handle under `name` (used by
    /// subsystems — e.g. the buffer pool's cached-frame gauge — that bump
    /// the handle themselves).
    pub fn register_gauge(&self, name: &str, gauge: Gauge) {
        let mut m = self.metrics.lock().expect("metrics lock");
        m.insert(name.to_string(), Metric::Gauge(gauge));
    }

    /// Read a single metric by name. Histograms answer both their bare
    /// name (sample count) and the expanded statistic names produced by
    /// [`Self::snapshot`]: `name.count`, `name.sum`, `name.max`,
    /// `name.p50`, `name.p95`, `name.p99`.
    pub fn get(&self, name: &str) -> Option<u64> {
        let m = self.metrics.lock().expect("metrics lock");
        if let Some(metric) = m.get(name) {
            return Some(match metric {
                Metric::Counter(c) => c.get(),
                Metric::Gauge(g) => g.get(),
                Metric::Histogram(h) => h.snapshot().count,
                Metric::Collector(f) => f(),
            });
        }
        // `lat.p95` style lookup into a histogram registered as `lat`.
        let (base, stat) = name.rsplit_once('.')?;
        if let Some(Metric::Histogram(h)) = m.get(base) {
            let s = h.snapshot();
            return match stat {
                "count" => Some(s.count),
                "sum" => Some(s.sum),
                "max" => Some(s.max),
                "p50" => Some(s.p50),
                "p95" => Some(s.p95),
                "p99" => Some(s.p99),
                _ => None,
            };
        }
        None
    }

    /// Point-in-time values of every metric, sorted by name. Histograms
    /// expand to `name.count`, `name.sum`, `name.max` and `name.p99`.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        // Clone the handles out so collectors run without holding the lock
        // (a collector may itself consult the registry).
        let metrics: Vec<(String, Metric)> = {
            let m = self.metrics.lock().expect("metrics lock");
            m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = BTreeMap::new();
        for (name, metric) in metrics {
            match metric {
                Metric::Counter(c) => {
                    out.insert(name, c.get());
                }
                Metric::Gauge(g) => {
                    out.insert(name, g.get());
                }
                Metric::Collector(f) => {
                    out.insert(name, f());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.insert(format!("{name}.count"), s.count);
                    out.insert(format!("{name}.sum"), s.sum);
                    out.insert(format!("{name}.max"), s.max);
                    out.insert(format!("{name}.p50"), s.p50);
                    out.insert(format!("{name}.p95"), s.p95);
                    out.insert(format!("{name}.p99"), s.p99);
                }
            }
        }
        out
    }

    /// Flattened, kind-tagged readings of every metric, sorted by name —
    /// what a `StatsReply` carries and what the exporter renders.
    pub fn samples(&self) -> Vec<MetricSample> {
        let metrics: Vec<(String, Metric)> = {
            let m = self.metrics.lock().expect("metrics lock");
            m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = Vec::with_capacity(metrics.len());
        for (name, metric) in metrics {
            match metric {
                Metric::Counter(c) => {
                    out.push(MetricSample::new(name, SampleKind::Counter, c.get()))
                }
                Metric::Gauge(g) => out.push(MetricSample::new(name, SampleKind::Gauge, g.get())),
                Metric::Collector(f) => out.push(MetricSample::new(name, SampleKind::Counter, f())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let c = SampleKind::Counter;
                    let g = SampleKind::Gauge;
                    out.push(MetricSample::new(format!("{name}.count"), c, s.count));
                    out.push(MetricSample::new(format!("{name}.sum"), c, s.sum));
                    out.push(MetricSample::new(format!("{name}.max"), g, s.max));
                    out.push(MetricSample::new(format!("{name}.p50"), g, s.p50));
                    out.push(MetricSample::new(format!("{name}.p95"), g, s.p95));
                    out.push(MetricSample::new(format!("{name}.p99"), g, s.p99));
                }
            }
        }
        out
    }

    /// Human-readable `name value` listing (Prometheus-text-alike).
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let width = snap.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &snap {
            let _ = writeln!(out, "{name:<width$}  {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.get("x"), Some(4));
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn collectors_read_lazily() {
        let reg = MetricsRegistry::new();
        let shared = Arc::new(AtomicU64::new(0));
        let probe = shared.clone();
        reg.register_collector("ext", move || probe.load(Ordering::Relaxed));
        assert_eq!(reg.get("ext"), Some(0));
        shared.store(99, Ordering::Relaxed);
        assert_eq!(reg.get("ext"), Some(99));
    }

    #[test]
    fn histogram_summarises() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean(), 26);
        assert!(s.p99 >= 100);
        let snap = reg.snapshot();
        assert_eq!(snap.get("lat.count"), Some(&4));
        assert_eq!(snap.get("lat.sum"), Some(&106));
    }

    #[test]
    fn gauge_add_sub_are_atomic_deltas() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("frames");
        g.add(5);
        g.add(3);
        g.sub(2);
        assert_eq!(reg.get("frames"), Some(6));
        // Saturates instead of wrapping below zero.
        g.sub(100);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn register_gauge_publishes_existing_handle() {
        let reg = MetricsRegistry::new();
        let g = Gauge::new();
        g.add(7);
        reg.register_gauge("pool.cached", g.clone());
        assert_eq!(reg.get("pool.cached"), Some(7));
        g.sub(3);
        assert_eq!(reg.get("pool.cached"), Some(4));
    }

    #[test]
    fn histogram_percentiles_from_buckets() {
        let h = Histogram::default();
        // 99 samples of 1 and one of 1000: p50 lands in the `1` bucket,
        // p99/p95 vary, max is exact.
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1000);
        assert_eq!(s.p50, 2, "p50 bound {}", s.p50);
        assert_eq!(s.p95, 2, "p95 bound {}", s.p95);
        assert!(s.p99 <= 2 || s.p99 >= 1000, "p99 bound {}", s.p99);
        // Empty histogram reports zeros.
        assert_eq!(Histogram::default().snapshot().p95, 0);
    }

    #[test]
    fn get_resolves_expanded_histogram_stats() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [2u64, 4, 8] {
            h.record(v);
        }
        assert_eq!(reg.get("lat"), Some(3));
        assert_eq!(reg.get("lat.count"), Some(3));
        assert_eq!(reg.get("lat.sum"), Some(14));
        assert_eq!(reg.get("lat.max"), Some(8));
        assert!(reg.get("lat.p50").is_some());
        assert!(reg.get("lat.p95").is_some());
        assert!(reg.get("lat.p99").is_some());
        assert_eq!(reg.get("lat.bogus"), None);
        assert_eq!(reg.get("missing.p99"), None);
    }

    #[test]
    fn samples_tag_kinds_and_expand_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(2);
        reg.gauge("g").set(5);
        reg.histogram("h").record(9);
        reg.register_collector("k", || 11);
        let samples = reg.samples();
        let find = |n: &str| samples.iter().find(|s| s.name == n).cloned().unwrap();
        assert_eq!(find("c").kind, SampleKind::Counter);
        assert_eq!(find("c").value, 2);
        assert_eq!(find("g").kind, SampleKind::Gauge);
        assert_eq!(find("k").value, 11);
        assert_eq!(find("h.count").value, 1);
        assert_eq!(find("h.sum").value, 9);
        assert_eq!(find("h.max").kind, SampleKind::Gauge);
        assert!(samples.iter().any(|s| s.name == "h.p50"));
        assert!(samples.iter().any(|s| s.name == "h.p95"));
    }

    #[test]
    fn render_lists_sorted_names() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        let text = reg.render();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("a.first"), "unsorted render: {text}");
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("hot");
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.get("hot"), Some(4000));
    }
}
