//! Named-metric registry: lock-light handles on the hot path, a single
//! mutex-guarded name table on the (cold) registration/snapshot path.
//!
//! Design: a handle is an `Arc<AtomicU64>` (or a small array of them for
//! histograms). Incrementing is one relaxed `fetch_add` — no lock, no name
//! lookup. The registry's mutex is taken only when a metric is *created*
//! or when a snapshot/render is requested, which happens once per query
//! (EXPLAIN ANALYZE) or per report, never per tuple.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not (yet) attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge (e.g. "frames currently cached").
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const HIST_BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// `buckets[i]` counts samples with `v < 2^i` (and `>= 2^(i-1)`).
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Power-of-two bucketed histogram (latency in µs, sizes in bytes, …).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let i = (u64::BITS - v.leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize;
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }
    /// Point-in-time summary of the samples recorded so far.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.0.count.load(Ordering::Relaxed);
        let sum = self.0.sum.load(Ordering::Relaxed);
        let max = self.0.max.load(Ordering::Relaxed);
        // Approximate p99 as the upper bound of the bucket holding the
        // 99th-percentile sample.
        let target = count - count / 100;
        let mut seen = 0;
        let mut p99 = 0;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if count > 0 && seen >= target {
                p99 = if i >= 63 { u64::MAX } else { 1u64 << i };
                break;
            }
        }
        HistogramSnapshot { count, sum, max, p99 }
    }
}

/// Summary returned by [`Histogram::snapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Upper bound of the bucket containing the 99th-percentile sample.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

type CollectorFn = Arc<dyn Fn() -> u64 + Send + Sync>;

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// Reads a pre-existing atomic (or computes a value) at snapshot time.
    Collector(CollectorFn),
}

/// The unified name → metric table. One per cluster.
///
/// All lookups are idempotent: asking for `counter("x")` twice returns
/// handles sharing the same atomic, so independent subsystems can publish
/// into the same name without coordination.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("len", &self.metrics.lock().expect("metrics lock").len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m.get(name) {
            Some(Metric::Counter(c)) => c.clone(),
            _ => {
                let c = Counter::new();
                m.insert(name.to_string(), Metric::Counter(c.clone()));
                c
            }
        }
    }

    /// Get-or-create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m.get(name) {
            Some(Metric::Gauge(g)) => g.clone(),
            _ => {
                let g = Gauge::default();
                m.insert(name.to_string(), Metric::Gauge(g.clone()));
                g
            }
        }
    }

    /// Get-or-create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m.get(name) {
            Some(Metric::Histogram(h)) => h.clone(),
            _ => {
                let h = Histogram::default();
                m.insert(name.to_string(), Metric::Histogram(h.clone()));
                h
            }
        }
    }

    /// Register a closure evaluated lazily at snapshot time — the bridge
    /// for subsystems that already keep their own atomics (buffer pools,
    /// WAL, wire transports) and should not be rewritten to hold handles.
    pub fn register_collector<F>(&self, name: &str, f: F)
    where
        F: Fn() -> u64 + Send + Sync + 'static,
    {
        let mut m = self.metrics.lock().expect("metrics lock");
        m.insert(name.to_string(), Metric::Collector(Arc::new(f)));
    }

    /// Read a single metric by name (histograms report their sample count).
    pub fn get(&self, name: &str) -> Option<u64> {
        let m = self.metrics.lock().expect("metrics lock");
        m.get(name).map(|metric| match metric {
            Metric::Counter(c) => c.get(),
            Metric::Gauge(g) => g.get(),
            Metric::Histogram(h) => h.snapshot().count,
            Metric::Collector(f) => f(),
        })
    }

    /// Point-in-time values of every metric, sorted by name. Histograms
    /// expand to `name.count`, `name.sum`, `name.max` and `name.p99`.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        // Clone the handles out so collectors run without holding the lock
        // (a collector may itself consult the registry).
        let metrics: Vec<(String, Metric)> = {
            let m = self.metrics.lock().expect("metrics lock");
            m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = BTreeMap::new();
        for (name, metric) in metrics {
            match metric {
                Metric::Counter(c) => {
                    out.insert(name, c.get());
                }
                Metric::Gauge(g) => {
                    out.insert(name, g.get());
                }
                Metric::Collector(f) => {
                    out.insert(name, f());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.insert(format!("{name}.count"), s.count);
                    out.insert(format!("{name}.sum"), s.sum);
                    out.insert(format!("{name}.max"), s.max);
                    out.insert(format!("{name}.p99"), s.p99);
                }
            }
        }
        out
    }

    /// Human-readable `name value` listing (Prometheus-text-alike).
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let width = snap.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &snap {
            let _ = writeln!(out, "{name:<width$}  {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.get("x"), Some(4));
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn collectors_read_lazily() {
        let reg = MetricsRegistry::new();
        let shared = Arc::new(AtomicU64::new(0));
        let probe = shared.clone();
        reg.register_collector("ext", move || probe.load(Ordering::Relaxed));
        assert_eq!(reg.get("ext"), Some(0));
        shared.store(99, Ordering::Relaxed);
        assert_eq!(reg.get("ext"), Some(99));
    }

    #[test]
    fn histogram_summarises() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean(), 26);
        assert!(s.p99 >= 100);
        let snap = reg.snapshot();
        assert_eq!(snap.get("lat.count"), Some(&4));
        assert_eq!(snap.get("lat.sum"), Some(&106));
    }

    #[test]
    fn render_lists_sorted_names() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        let text = reg.render();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("a.first"), "unsorted render: {text}");
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("hot");
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.get("hot"), Some(4000));
    }
}
