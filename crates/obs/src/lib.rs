//! paradise-obs: the observability substrate (DESIGN §8).
//!
//! Two halves, both std-only and dependency-free:
//!
//! * [`registry`] — a process-wide [`MetricsRegistry`] of *named* atomic
//!   counters, gauges and histograms. Subsystems either hand out cheap
//!   `Clone`-able handles ([`Counter`], [`Gauge`], [`Histogram`]) that they
//!   bump on the hot path, or register *collector* closures that read
//!   pre-existing atomics (e.g. `BufferPool` stats) lazily at snapshot time.
//! * [`trace`] — span-based tracing. A [`TraceSink`] collects completed
//!   [`Span`]s and serialises them as Chrome-trace-format JSON (open the
//!   file in `chrome://tracing` or <https://ui.perfetto.dev>), one lane per
//!   node/operator. Disabled sinks cost a single relaxed atomic load per
//!   span, so instrumentation can stay compiled-in everywhere.
//!
//! The monitoring plane (DESIGN §8.4–§8.7) adds two more pieces:
//!
//! * [`events`] — an [`EventLog`] of structured JSONL events (slow
//!   queries, flow-control stalls, connection retries, phase starts), with
//!   the same disabled-by-default near-zero cost as the trace sink.
//! * [`exporter`] — a std-only [`MetricsExporter`] serving `GET /metrics`
//!   in Prometheus text format, rendered from node-labelled
//!   [`MetricSample`] groups.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod events;
pub mod exporter;
pub mod registry;
pub mod trace;

pub use events::{EventLog, EventRecord, EventValue};
pub use exporter::{render_prometheus, MetricsExporter, RenderFn};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSample, MetricsRegistry, SampleKind,
};
pub use trace::{Span, TraceEvent, TraceSink};
