//! paradise-obs: the observability substrate (DESIGN §8).
//!
//! Two halves, both std-only and dependency-free:
//!
//! * [`registry`] — a process-wide [`MetricsRegistry`] of *named* atomic
//!   counters, gauges and histograms. Subsystems either hand out cheap
//!   `Clone`-able handles ([`Counter`], [`Gauge`], [`Histogram`]) that they
//!   bump on the hot path, or register *collector* closures that read
//!   pre-existing atomics (e.g. `BufferPool` stats) lazily at snapshot time.
//! * [`trace`] — span-based tracing. A [`TraceSink`] collects completed
//!   [`Span`]s and serialises them as Chrome-trace-format JSON (open the
//!   file in `chrome://tracing` or <https://ui.perfetto.dev>), one lane per
//!   node/operator. Disabled sinks cost a single relaxed atomic load per
//!   span, so instrumentation can stay compiled-in everywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use trace::{Span, TraceEvent, TraceSink};
