//! Prometheus-text `/metrics` endpoint (std-only, no HTTP library).
//!
//! [`MetricsExporter::start`] binds a `TcpListener` and answers
//! `GET /metrics` with the text rendered by a caller-supplied closure —
//! typically [`render_prometheus`] over per-node registry snapshots pulled
//! moments before. The server is deliberately minimal: one accept-loop
//! thread, one request per connection, `Connection: close`. That is all a
//! scraper needs and keeps the workspace dependency-free.

use crate::registry::{MetricSample, SampleKind};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Produces the exporter's response body on each scrape.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Content-Type of the classic Prometheus text exposition format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Sanitise a dotted metric name into a Prometheus identifier:
/// `net.wire.bytes_sent` → `paradise_net_wire_bytes_sent` (counters
/// additionally get the conventional `_total` suffix).
pub fn prometheus_name(name: &str, kind: SampleKind) -> String {
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str("paradise_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if kind == SampleKind::Counter && !out.ends_with("_total") {
        out.push_str("_total");
    }
    out
}

/// Render node-labelled sample groups as Prometheus text. Each group is
/// `(node_label, samples)`; every time series gets a `node="<label>"`
/// label and each metric family gets one `# TYPE` line.
pub fn render_prometheus(groups: &[(String, Vec<MetricSample>)]) -> String {
    // family name -> (kind, series lines) in first-seen order is fine,
    // but sorted output is easier to read and to test.
    let mut families: std::collections::BTreeMap<String, (SampleKind, Vec<String>)> =
        std::collections::BTreeMap::new();
    for (node, samples) in groups {
        for s in samples {
            let fam = prometheus_name(&s.name, s.kind);
            let series = format!("{fam}{{node=\"{node}\"}} {}", s.value);
            families.entry(fam).or_insert_with(|| (s.kind, Vec::new())).1.push(series);
        }
    }
    let mut out = String::new();
    for (fam, (kind, series)) in &families {
        let ty = match kind {
            SampleKind::Counter => "counter",
            SampleKind::Gauge => "gauge",
        };
        let _ = writeln!(out, "# TYPE {fam} {ty}");
        for line in series {
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

/// A running `/metrics` endpoint. Shuts its thread down on drop.
pub struct MetricsExporter {
    addr: SocketAddr,
    shut: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsExporter").field("addr", &self.addr).finish()
    }
}

impl MetricsExporter {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `GET /metrics` with
    /// the body produced by `render` on every scrape.
    pub fn start(addr: &str, render: RenderFn) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shut = Arc::new(AtomicBool::new(false));
        let flag = shut.clone();
        let handle =
            std::thread::Builder::new().name("paradise-metrics".into()).spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((conn, _)) => serve_one(conn, &render),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(3));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(MetricsExporter { addr, shut, handle: Some(handle) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn shutdown(&mut self) {
        self.shut.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answer one HTTP/1.x request on `conn`: 200 + metrics text for
/// `GET /metrics`, 404 otherwise. Malformed requests are dropped.
fn serve_one(mut conn: TcpStream, render: &RenderFn) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(2)));
    // Read up to the end of the request head (or 4 KiB, whichever first).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method == "GET" && (path == "/metrics" || path == "/metrics/") {
        ("200 OK", render())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {PROMETHEUS_CONTENT_TYPE}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = conn.write_all(response.as_bytes());
    let _ = conn.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        let req = format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        conn.write_all(req.as_bytes()).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn prometheus_names_are_sanitised() {
        assert_eq!(
            prometheus_name("net.wire.bytes_sent", SampleKind::Counter),
            "paradise_net_wire_bytes_sent_total"
        );
        assert_eq!(
            prometheus_name("buffer.frames_cached", SampleKind::Gauge),
            "paradise_buffer_frames_cached"
        );
        // No double `_total`.
        assert_eq!(
            prometheus_name("net.bytes_total", SampleKind::Counter),
            "paradise_net_bytes_total"
        );
    }

    #[test]
    fn render_groups_by_family_with_node_labels() {
        let groups = vec![
            ("0".to_string(), vec![MetricSample::new("wal.commits", SampleKind::Counter, 3)]),
            ("1".to_string(), vec![MetricSample::new("wal.commits", SampleKind::Counter, 5)]),
            ("qc".to_string(), vec![MetricSample::new("net.bytes", SampleKind::Counter, 77)]),
        ];
        let text = render_prometheus(&groups);
        assert!(text.contains("# TYPE paradise_wal_commits_total counter"), "{text}");
        assert!(text.contains("paradise_wal_commits_total{node=\"0\"} 3"), "{text}");
        assert!(text.contains("paradise_wal_commits_total{node=\"1\"} 5"), "{text}");
        assert!(text.contains("paradise_net_bytes_total{node=\"qc\"} 77"), "{text}");
        // One TYPE line per family.
        assert_eq!(text.matches("# TYPE paradise_wal_commits_total").count(), 1);
    }

    #[test]
    fn exporter_serves_metrics_and_404() {
        let render: RenderFn = Arc::new(|| {
            render_prometheus(&[(
                "0".to_string(),
                vec![MetricSample::new("up", SampleKind::Gauge, 1)],
            )])
        });
        let exporter = MetricsExporter::start("127.0.0.1:0", render).unwrap();
        let ok = scrape(exporter.addr(), "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("paradise_up{node=\"0\"} 1"), "{ok}");
        let missing = scrape(exporter.addr(), "/other");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        // Scrapes keep working until shutdown.
        let again = scrape(exporter.addr(), "/metrics");
        assert!(again.contains("paradise_up"), "{again}");
    }
}
