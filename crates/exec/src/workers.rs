//! Intra-node worker pool: morsel-driven parallelism inside one data
//! server.
//!
//! The cluster parallelises *across* nodes (§2.2, §2.7 of the paper); this
//! module parallelises *inside* each node's operator kernels in the style
//! of "Parallel In-Memory Evaluation of Spatial Joins" (Tsitsigkos &
//! Mamoulis): inputs are cut into fixed-size morsels, claimed dynamically
//! by workers, and merged back **in morsel order** so results are
//! byte-identical for every pool size (see [`WorkerPool`] for the full
//! determinism rule). The pool size comes from
//! `ParadiseConfig::with_workers(n)` (0 = one worker per available core).
//!
//! Kernels driven through the pool:
//!
//! - PBSM tile buckets in [`crate::ops::spatial_join`] (plane-sweep filter
//!   per tile, morsel = a run of sorted tiles),
//! - Grace hash-join partitions in [`crate::ops::join`],
//! - per-morsel partial aggregation in [`crate::ops::aggregate`],
//! - predicate scans in [`crate::ops::basic`],
//! - LZW tile compress/decompress batches in `paradise_array::lzw` (used
//!   by [`crate::raster_store`]).
//!
//! Per-run busy time and morsel counts accumulate in the pool's counters;
//! [`register_pool_metrics`] publishes them into the cluster's obs
//! registry and the measured phase driver snapshots them per phase so
//! `EXPLAIN ANALYZE` can annotate operators with `morsels=`.

use std::sync::{Arc, RwLock};

use paradise_obs::MetricsRegistry;
pub use paradise_util::workers::{
    default_workers, PoolMode, PoolSnapshot, WorkerPool, BLOB_MORSEL, TILE_MORSEL, TUPLE_MORSEL,
};

/// A shared, swappable handle to a cluster's worker pool.
///
/// Metrics collectors and phase drivers hold the handle (stable for the
/// cluster's lifetime) while benchmarks and tests may swap the pool
/// underneath it ([`PoolHandle::set`]) to compare worker counts on the
/// same data.
pub struct PoolHandle {
    inner: RwLock<Arc<WorkerPool>>,
}

impl PoolHandle {
    /// Wraps a pool in a shared handle.
    pub fn new(pool: Arc<WorkerPool>) -> Arc<PoolHandle> {
        Arc::new(PoolHandle { inner: RwLock::new(pool) })
    }

    /// The current pool (cheap `Arc` clone).
    pub fn get(&self) -> Arc<WorkerPool> {
        self.inner.read().expect("pool handle").clone()
    }

    /// Replaces the pool; subsequent kernel invocations use the new one.
    pub fn set(&self, pool: Arc<WorkerPool>) {
        *self.inner.write().expect("pool handle") = pool;
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolHandle").field("pool", &*self.get()).finish()
    }
}

/// Publishes the pool's counters into a metrics registry as lazy
/// collectors: `exec.worker.pool_size`, `exec.worker.runs`,
/// `exec.worker.morsels`, and `exec.worker.busy_ns`. Reads go through the
/// handle, so a swapped pool is picked up automatically.
pub fn register_pool_metrics(obs: &MetricsRegistry, handle: &Arc<PoolHandle>) {
    let h = handle.clone();
    obs.register_collector("exec.worker.pool_size", move || h.get().workers() as u64);
    let h = handle.clone();
    obs.register_collector("exec.worker.runs", move || h.get().snapshot().runs);
    let h = handle.clone();
    obs.register_collector("exec.worker.morsels", move || h.get().snapshot().morsels);
    let h = handle.clone();
    obs.register_collector("exec.worker.busy_ns", move || h.get().snapshot().busy_ns);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_swaps_pools_under_collectors() {
        let handle = PoolHandle::new(Arc::new(WorkerPool::new(2)));
        let obs = MetricsRegistry::new();
        register_pool_metrics(&obs, &handle);
        let size = |obs: &MetricsRegistry| {
            obs.samples()
                .into_iter()
                .find(|s| s.name == "exec.worker.pool_size")
                .map(|s| s.value)
                .unwrap()
        };
        assert_eq!(size(&obs), 2);
        handle.set(Arc::new(WorkerPool::new(7)));
        assert_eq!(size(&obs), 7);
        handle.get().run(10, 1, |_| Ok::<_, ()>(())).unwrap();
        let morsels = obs
            .samples()
            .into_iter()
            .find(|s| s.name == "exec.worker.morsels")
            .map(|s| s.value)
            .unwrap();
        assert_eq!(morsels, 10);
    }
}
