//! Table schemas.

use crate::{ExecError, Result};

/// Attribute type, mirroring the Paradise data model (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Calendar date.
    Date,
    /// Point ADT.
    Point,
    /// Polyline ADT.
    Polyline,
    /// Polygon ADT.
    Polygon,
    /// Swiss-cheese polygon ADT.
    SwissCheese,
    /// Circle ADT.
    Circle,
    /// 16-bit raster image ADT (`Raster16` in the benchmark schema).
    Raster,
}

impl DataType {
    /// Whether the type is one of the spatial ADTs.
    pub fn is_spatial(&self) -> bool {
        matches!(
            self,
            DataType::Point
                | DataType::Polyline
                | DataType::Polygon
                | DataType::SwissCheese
                | DataType::Circle
        )
    }

    /// Whether the type is a potentially very large attribute.
    pub fn is_large(&self) -> bool {
        matches!(self, DataType::Raster)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: &str, ty: DataType) -> Self {
        Field { name: name.to_string(), ty }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True for a zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| ExecError::NotFound(format!("column {name}")))
    }

    /// Field of a column by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![
            Field::new("id", DataType::Str),
            Field::new("type", DataType::Int),
            Field::new("shape", DataType::Polygon),
        ]);
        assert_eq!(s.index_of("type").unwrap(), 1);
        assert_eq!(s.field("shape").unwrap().ty, DataType::Polygon);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn type_categories() {
        assert!(DataType::Polygon.is_spatial());
        assert!(DataType::Point.is_spatial());
        assert!(!DataType::Raster.is_spatial());
        assert!(DataType::Raster.is_large());
        assert!(!DataType::Int.is_large());
    }
}
