//! Tuples: ordered lists of values with a self-describing byte encoding.

use crate::value::Value;
use crate::{ExecError, Result};

/// A tuple of attribute values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    /// The values, positionally matching the table schema.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Value at column `i`.
    pub fn get(&self, i: usize) -> Result<&Value> {
        self.values.get(i).ok_or_else(|| ExecError::NotFound(format!("column index {i}")))
    }

    /// Serializes the tuple (column count + tagged values).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.values.len() * 12);
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            v.encode(&mut out);
        }
        out
    }

    /// Deserializes a tuple encoded by [`Tuple::encode`].
    pub fn decode(buf: &[u8]) -> Result<Tuple> {
        if buf.len() < 2 {
            return Err(ExecError::Codec("truncated tuple"));
        }
        let n = u16::from_le_bytes(buf[0..2].try_into().unwrap()) as usize;
        let mut pos = 2;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(Value::decode(buf, &mut pos)?);
        }
        Ok(Tuple { values })
    }

    /// Network cost of shipping the tuple (large attributes count as
    /// references, §2.5.2).
    pub fn wire_size(&self) -> usize {
        2 + self.values.iter().map(|v| v.wire_size()).sum::<usize>()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Date;
    use paradise_geom::{Point, Shape};

    #[test]
    fn encode_decode_roundtrip() {
        let t = Tuple::new(vec![
            Value::Str("WI-001".into()),
            Value::Int(5),
            Value::Shape(Shape::Point(Point::new(3.0, 4.0))),
            Value::Date(Date::from_ymd(1988, 4, 1)),
            Value::Null,
        ]);
        let bytes = t.encode();
        assert_eq!(Tuple::decode(&bytes).unwrap(), t);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::new(vec![]);
        assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn decode_rejects_truncation() {
        let t = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let bytes = t.encode();
        assert!(Tuple::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(Tuple::decode(&[]).is_err());
    }

    #[test]
    fn get_out_of_range() {
        let t = Tuple::new(vec![Value::Int(1)]);
        assert!(t.get(0).is_ok());
        assert!(t.get(1).is_err());
    }
}
