//! # paradise-exec
//!
//! The parallel execution engine of Paradise (paper §2.2–§2.7): a simulated
//! shared-nothing cluster of data-server nodes, tuple streams, declustering
//! (round-robin / hash / spatial with replication), the relational and
//! spatial operator library (selection, projection, sort, nested-loops /
//! indexed / Grace-hash joins, PBSM spatial join, two-phase extensible
//! aggregation), the tile-granular raster store with the pull model for
//! large attributes, and the spatial-semi-join + join-with-aggregate
//! machinery behind the `closest` spatial aggregate (Figure 3.1).
//!
//! ## Timing model
//!
//! Nodes are simulated within one process. Operators run either through
//! channel-connected push streams ([`stream`]) or through the *measured
//! phase driver* ([`phase`]) that executes each node's fragment work
//! sequentially while recording per-node busy time; a query's simulated
//! parallel time is `Σ_phases max_node(busy) + sequential time`, the
//! shared-nothing cost model of the paper. Repartitioning and pulls account
//! network bytes either way.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod decluster;
pub mod metrics;
pub mod ops;
pub mod phase;
pub mod pipeline;
pub mod raster_store;
pub mod schema;
pub mod stream;
pub mod table;
pub mod tuple;
pub mod value;
pub mod workers;

pub use cluster::{Cluster, ClusterConfig, NetSnapshot, Node, NodeId, Transport, WireTransport};
pub use decluster::Decluster;
pub use metrics::{PhaseTimes, QueryMetrics};
pub use phase::RowCounted;
pub use schema::{DataType, Field, Schema};
pub use stream::{RemoteRx, RemoteTx};
pub use table::TableDef;
pub use tuple::Tuple;
pub use value::{Date, StoredRaster, Value};

use paradise_array::ArrayError;
use paradise_geom::GeomError;
use paradise_storage::StorageError;

/// Errors from the execution engine.
#[derive(Debug)]
pub enum ExecError {
    /// Storage-layer failure.
    Storage(StorageError),
    /// Array/raster failure.
    Array(ArrayError),
    /// Geometry failure.
    Geom(GeomError),
    /// Tuple/schema mismatch.
    Type {
        /// What the operator expected.
        expected: &'static str,
        /// What it got.
        got: String,
    },
    /// Named table/column/aggregate missing.
    NotFound(String),
    /// Malformed tuple bytes.
    Codec(&'static str),
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage: {e}"),
            ExecError::Array(e) => write!(f, "array: {e}"),
            ExecError::Geom(e) => write!(f, "geometry: {e}"),
            ExecError::Type { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            ExecError::NotFound(what) => write!(f, "not found: {what}"),
            ExecError::Codec(w) => write!(f, "tuple codec: {w}"),
            ExecError::Other(w) => write!(f, "{w}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}
impl From<ArrayError> for ExecError {
    fn from(e: ArrayError) -> Self {
        ExecError::Array(e)
    }
}
impl From<GeomError> for ExecError {
    fn from(e: GeomError) -> Self {
        ExecError::Geom(e)
    }
}

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, ExecError>;
