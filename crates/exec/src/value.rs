//! Attribute values, including spatial shapes and (possibly remote) rasters.

use crate::{ExecError, Result};
use paradise_array::{BitDepth, Raster};
use paradise_geom::{Circle, Point, Polygon, Polyline, Rect, Shape, SwissCheese};
use paradise_storage::Oid;
use std::sync::Arc;

/// A calendar date, stored as days since 1970-01-01 (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i64);

impl Date {
    /// Builds a date from year/month/day (civil calendar).
    pub fn from_ymd(y: i64, m: u32, d: u32) -> Date {
        // Howard Hinnant's days_from_civil algorithm.
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (m as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + d as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Date(era * 146_097 + doe - 719_468)
    }

    /// Parses `"YYYY-MM-DD"`.
    pub fn parse(s: &str) -> Result<Date> {
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 3 {
            return Err(ExecError::Other(format!("bad date literal {s:?}")));
        }
        let y: i64 = parts[0].parse().map_err(|_| ExecError::Codec("bad year"))?;
        let m: u32 = parts[1].parse().map_err(|_| ExecError::Codec("bad month"))?;
        let d: u32 = parts[2].parse().map_err(|_| ExecError::Codec("bad day"))?;
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(ExecError::Other(format!("bad date literal {s:?}")));
        }
        Ok(Date::from_ymd(y, m, d))
    }

    /// Decomposes back into (year, month, day).
    pub fn ymd(self) -> (i64, u32, u32) {
        // Howard Hinnant's civil_from_days algorithm.
        let z = self.0 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
        (if m <= 2 { y + 1 } else { y }, m, d)
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// The mapping-table entry for one stored raster tile (Figure 2.3): the
/// SHORE object holding the tile plus the per-tile compression flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRef {
    /// Node that stores the tile (tiles of a declustered raster live on
    /// several nodes, §2.6).
    pub node: u32,
    /// Object id of the tile within that node's store.
    pub oid: Oid,
    /// Whether the tile bytes are LZW-compressed.
    pub compressed: bool,
}

/// A raster stored as tiles in the database: the array metadata stays
/// inline in the tuple while the pixel data lives in separate tile objects
/// (paper §2.5.1). Cheap to clone and to ship between nodes — shipping the
/// *value* never ships the pixels (share-by-reference, §2.5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRaster {
    /// Pixel depth.
    pub depth: BitDepth,
    /// Geo-registration rectangle.
    pub geo: Rect,
    /// Pixel columns.
    pub width: u32,
    /// Pixel rows.
    pub height: u32,
    /// Tile extent in pixel rows.
    pub tile_h: u32,
    /// Tile extent in pixel columns.
    pub tile_w: u32,
    /// Mapping table, row-major over the tile grid.
    pub tiles: Arc<Vec<TileRef>>,
}

impl StoredRaster {
    /// Tiles per row of the tile grid.
    pub fn tile_cols(&self) -> u32 {
        self.width.div_ceil(self.tile_w)
    }

    /// Tiles per column of the tile grid.
    pub fn tile_rows(&self) -> u32 {
        self.height.div_ceil(self.tile_h)
    }

    /// Uncompressed pixel payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.width as usize * self.height as usize * self.depth.bytes()
    }

    /// Linear tile indexes overlapping the pixel region
    /// `[row0, row1) x [col0, col1)`.
    pub fn tiles_for_region(&self, row0: u32, row1: u32, col0: u32, col1: u32) -> Vec<usize> {
        if row0 >= row1 || col0 >= col1 {
            return Vec::new();
        }
        let tr0 = row0 / self.tile_h;
        let tr1 = (row1 - 1) / self.tile_h;
        let tc0 = col0 / self.tile_w;
        let tc1 = (col1 - 1) / self.tile_w;
        let mut out = Vec::new();
        for tr in tr0..=tr1.min(self.tile_rows() - 1) {
            for tc in tc0..=tc1.min(self.tile_cols() - 1) {
                out.push((tr * self.tile_cols() + tc) as usize);
            }
        }
        out
    }

    /// Pixel-space origin and shape (rows, cols) of linear tile `idx`.
    pub fn tile_region(&self, idx: usize) -> (u32, u32, u32, u32) {
        let tc = idx as u32 % self.tile_cols();
        let tr = idx as u32 / self.tile_cols();
        let r0 = tr * self.tile_h;
        let c0 = tc * self.tile_w;
        let h = self.tile_h.min(self.height - r0);
        let w = self.tile_w.min(self.width - c0);
        (r0, c0, h, w)
    }
}

/// A raster value: in memory (query intermediate) or stored as tiles.
#[derive(Debug, Clone, PartialEq)]
pub enum RasterValue {
    /// Materialised pixels (e.g. the output of a clip).
    Mem(Arc<Raster>),
    /// Reference to stored tiles, possibly on other nodes.
    Stored(StoredRaster),
}

/// One attribute value. Large attributes ([`RasterValue::Stored`]) are held
/// by reference: copying a tuple into a temporary table copies the mapping
/// table, not the pixels (§2.5.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Calendar date.
    Date(Date),
    /// Spatial shape.
    Shape(Shape),
    /// Raster image.
    Raster(RasterValue),
}

impl Value {
    /// Kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Date(_) => "date",
            Value::Shape(_) => "shape",
            Value::Raster(_) => "raster",
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(type_err("int", other)),
        }
    }

    /// Float accessor (ints coerce).
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(type_err("float", other)),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(type_err("string", other)),
        }
    }

    /// Date accessor.
    pub fn as_date(&self) -> Result<Date> {
        match self {
            Value::Date(d) => Ok(*d),
            other => Err(type_err("date", other)),
        }
    }

    /// Shape accessor.
    pub fn as_shape(&self) -> Result<&Shape> {
        match self {
            Value::Shape(s) => Ok(s),
            other => Err(type_err("shape", other)),
        }
    }

    /// Raster accessor.
    pub fn as_raster(&self) -> Result<&RasterValue> {
        match self {
            Value::Raster(r) => Ok(r),
            other => Err(type_err("raster", other)),
        }
    }

    /// Serialized size estimate in bytes — what shipping this value over a
    /// network stream costs. A stored raster costs only its mapping table.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Float(_) | Value::Date(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Shape(s) => 5 + s.num_points() * 16,
            Value::Raster(RasterValue::Mem(r)) => 32 + r.byte_len(),
            Value::Raster(RasterValue::Stored(s)) => 48 + s.tiles.len() * 16,
        }
    }

    /// Encodes the value into `out` (tagged, little-endian).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Float(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(4);
                out.extend_from_slice(&d.0.to_le_bytes());
            }
            Value::Shape(s) => {
                out.push(5);
                encode_shape(s, out);
            }
            Value::Raster(RasterValue::Stored(s)) => {
                out.push(6);
                out.push(match s.depth {
                    BitDepth::Eight => 8,
                    BitDepth::Sixteen => 16,
                    BitDepth::TwentyFour => 24,
                });
                encode_rect(&s.geo, out);
                for v in [s.width, s.height, s.tile_h, s.tile_w] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&(s.tiles.len() as u32).to_le_bytes());
                for t in s.tiles.iter() {
                    out.extend_from_slice(&t.node.to_le_bytes());
                    out.extend_from_slice(&t.oid.to_bytes());
                    out.push(t.compressed as u8);
                }
            }
            Value::Raster(RasterValue::Mem(r)) => {
                out.push(7);
                out.push(match r.depth() {
                    BitDepth::Eight => 8,
                    BitDepth::Sixteen => 16,
                    BitDepth::TwentyFour => 24,
                });
                encode_rect(&r.geo(), out);
                out.extend_from_slice(&(r.width() as u32).to_le_bytes());
                out.extend_from_slice(&(r.height() as u32).to_le_bytes());
                out.extend_from_slice(r.array().data());
            }
        }
    }

    /// Decodes one value, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value> {
        let tag = *buf.get(*pos).ok_or(ExecError::Codec("truncated value"))?;
        *pos += 1;
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Int(i64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap())),
            2 => Value::Float(f64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap())),
            3 => {
                let n = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
                Value::Str(
                    String::from_utf8(take(buf, pos, n)?.to_vec())
                        .map_err(|_| ExecError::Codec("bad utf8"))?,
                )
            }
            4 => Value::Date(Date(i64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap()))),
            5 => Value::Shape(decode_shape(buf, pos)?),
            6 => {
                let depth = decode_depth(take(buf, pos, 1)?[0])?;
                let geo = decode_rect(buf, pos)?;
                let mut dims = [0u32; 4];
                for d in &mut dims {
                    *d = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap());
                }
                let n = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
                let mut tiles = Vec::with_capacity(n);
                for _ in 0..n {
                    let node = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap());
                    let oid =
                        Oid::from_bytes(take(buf, pos, 10)?).ok_or(ExecError::Codec("bad oid"))?;
                    let compressed = take(buf, pos, 1)?[0] == 1;
                    tiles.push(TileRef { node, oid, compressed });
                }
                Value::Raster(RasterValue::Stored(StoredRaster {
                    depth,
                    geo,
                    width: dims[0],
                    height: dims[1],
                    tile_h: dims[2],
                    tile_w: dims[3],
                    tiles: Arc::new(tiles),
                }))
            }
            7 => {
                let depth = decode_depth(take(buf, pos, 1)?[0])?;
                let geo = decode_rect(buf, pos)?;
                let w = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
                let h = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
                let len = w * h * depth.bytes();
                let data = take(buf, pos, len)?.to_vec();
                let arr = paradise_array::NdArray::new(vec![h, w], depth.elem_type(), data)
                    .map_err(|_| ExecError::Codec("bad raster payload"))?;
                Value::Raster(RasterValue::Mem(Arc::new(
                    Raster::from_array(arr, depth, geo)
                        .map_err(|_| ExecError::Codec("bad raster"))?,
                )))
            }
            _ => return Err(ExecError::Codec("unknown value tag")),
        })
    }
}

fn type_err(expected: &'static str, got: &Value) -> ExecError {
    ExecError::Type { expected, got: got.kind().to_string() }
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    if *pos + n > buf.len() {
        return Err(ExecError::Codec("truncated value"));
    }
    let s = &buf[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn decode_depth(b: u8) -> Result<BitDepth> {
    Ok(match b {
        8 => BitDepth::Eight,
        16 => BitDepth::Sixteen,
        24 => BitDepth::TwentyFour,
        _ => return Err(ExecError::Codec("bad bit depth")),
    })
}

fn encode_point(p: &Point, out: &mut Vec<u8>) {
    out.extend_from_slice(&p.x.to_le_bytes());
    out.extend_from_slice(&p.y.to_le_bytes());
}

fn decode_point(buf: &[u8], pos: &mut usize) -> Result<Point> {
    let x = f64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap());
    let y = f64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap());
    Ok(Point::new(x, y))
}

fn encode_rect(r: &Rect, out: &mut Vec<u8>) {
    encode_point(&r.lo, out);
    encode_point(&r.hi, out);
}

fn decode_rect(buf: &[u8], pos: &mut usize) -> Result<Rect> {
    let lo = decode_point(buf, pos)?;
    let hi = decode_point(buf, pos)?;
    Rect::new(lo, hi).map_err(|_| ExecError::Codec("bad rect"))
}

fn encode_points(pts: &[Point], out: &mut Vec<u8>) {
    out.extend_from_slice(&(pts.len() as u32).to_le_bytes());
    for p in pts {
        encode_point(p, out);
    }
}

fn decode_points(buf: &[u8], pos: &mut usize) -> Result<Vec<Point>> {
    let n = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        pts.push(decode_point(buf, pos)?);
    }
    Ok(pts)
}

/// Encodes a shape (tag + payload).
pub fn encode_shape(s: &Shape, out: &mut Vec<u8>) {
    match s {
        Shape::Point(p) => {
            out.push(0);
            encode_point(p, out);
        }
        Shape::Polyline(l) => {
            out.push(1);
            encode_points(l.points(), out);
        }
        Shape::Polygon(p) => {
            out.push(2);
            encode_points(p.ring(), out);
        }
        Shape::SwissCheese(sc) => {
            out.push(3);
            encode_points(sc.shell().ring(), out);
            out.extend_from_slice(&(sc.holes().len() as u32).to_le_bytes());
            for h in sc.holes() {
                encode_points(h.ring(), out);
            }
        }
        Shape::Circle(c) => {
            out.push(4);
            encode_point(&c.center, out);
            out.extend_from_slice(&c.radius.to_le_bytes());
        }
        Shape::Rect(r) => {
            out.push(5);
            encode_rect(r, out);
        }
    }
}

/// Decodes a shape encoded by [`encode_shape`].
pub fn decode_shape(buf: &[u8], pos: &mut usize) -> Result<Shape> {
    let tag = take(buf, pos, 1)?[0];
    let bad = |_e: paradise_geom::GeomError| ExecError::Codec("bad shape payload");
    Ok(match tag {
        0 => Shape::Point(decode_point(buf, pos)?),
        1 => Shape::Polyline(Polyline::new(decode_points(buf, pos)?).map_err(bad)?),
        2 => Shape::Polygon(Polygon::new(decode_points(buf, pos)?).map_err(bad)?),
        3 => {
            let shell = Polygon::new(decode_points(buf, pos)?).map_err(bad)?;
            let n = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
            let mut holes = Vec::with_capacity(n);
            for _ in 0..n {
                holes.push(Polygon::new(decode_points(buf, pos)?).map_err(bad)?);
            }
            Shape::SwissCheese(SwissCheese::new(shell, holes).map_err(bad)?)
        }
        4 => {
            let c = decode_point(buf, pos)?;
            let r = f64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap());
            Shape::Circle(Circle::new(c, r).map_err(bad)?)
        }
        5 => Shape::Rect(decode_rect(buf, pos)?),
        _ => return Err(ExecError::Codec("unknown shape tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        let back = Value::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, v);
        assert_eq!(pos, buf.len(), "trailing bytes for {v:?}");
    }

    #[test]
    fn date_from_ymd_known_values() {
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).0, 1);
        assert_eq!(Date::from_ymd(1988, 4, 1).0, 6665);
        assert_eq!(Date::from_ymd(1969, 12, 31).0, -1);
        // leap-year handling
        assert_eq!(Date::from_ymd(2000, 3, 1).0 - Date::from_ymd(2000, 2, 28).0, 2);
        assert_eq!(Date::from_ymd(1900, 3, 1).0 - Date::from_ymd(1900, 2, 28).0, 1);
    }

    #[test]
    fn date_ymd_round_trips_and_displays() {
        for (y, m, d) in [(1970, 1, 1), (1988, 4, 1), (2000, 2, 29), (1969, 12, 31)] {
            assert_eq!(Date::from_ymd(y, m, d).ymd(), (y, m, d));
        }
        assert_eq!(Date::from_ymd(1988, 4, 1).to_string(), "1988-04-01");
    }

    #[test]
    fn date_parse() {
        assert_eq!(Date::parse("1988-04-01").unwrap(), Date::from_ymd(1988, 4, 1));
        assert!(Date::parse("1988/04/01").is_err());
        assert!(Date::parse("1988-13-01").is_err());
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(Value::Null);
        roundtrip(Value::Int(-42));
        roundtrip(Value::Float(3.75));
        roundtrip(Value::Str("Phoenix".to_string()));
        roundtrip(Value::Date(Date::from_ymd(1988, 4, 1)));
    }

    #[test]
    fn shape_roundtrips() {
        roundtrip(Value::Shape(Shape::Point(Point::new(1.0, 2.0))));
        roundtrip(Value::Shape(Shape::Polyline(
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]).unwrap(),
        )));
        roundtrip(Value::Shape(Shape::Polygon(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 2.0)])
                .unwrap(),
        )));
        let shell = Polygon::from_rect(
            &Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap(),
        );
        let hole = Polygon::from_rect(
            &Rect::from_corners(Point::new(4.0, 4.0), Point::new(6.0, 6.0)).unwrap(),
        );
        roundtrip(Value::Shape(Shape::SwissCheese(SwissCheese::new(shell, vec![hole]).unwrap())));
        roundtrip(Value::Shape(Shape::Circle(Circle::new(Point::new(5.0, 5.0), 2.5).unwrap())));
        roundtrip(Value::Shape(Shape::Rect(
            Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap(),
        )));
    }

    #[test]
    fn stored_raster_roundtrip() {
        let geo = Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        let sr = StoredRaster {
            depth: BitDepth::Sixteen,
            geo,
            width: 100,
            height: 80,
            tile_h: 32,
            tile_w: 40,
            tiles: Arc::new(vec![
                TileRef { node: 0, oid: Oid { page: 5, slot: 1 }, compressed: true },
                TileRef { node: 1, oid: Oid { page: 9, slot: 0 }, compressed: false },
                TileRef { node: 0, oid: Oid { page: 6, slot: 2 }, compressed: true },
                TileRef { node: 2, oid: Oid { page: 7, slot: 3 }, compressed: true },
                TileRef { node: 1, oid: Oid { page: 8, slot: 4 }, compressed: false },
                TileRef { node: 0, oid: Oid { page: 10, slot: 5 }, compressed: true },
            ]),
        };
        roundtrip(Value::Raster(RasterValue::Stored(sr)));
    }

    #[test]
    fn mem_raster_roundtrip() {
        let geo = Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let mut r = Raster::new(4, 3, BitDepth::Eight, geo).unwrap();
        r.set_pixel(2, 1, 99).unwrap();
        roundtrip(Value::Raster(RasterValue::Mem(Arc::new(r))));
    }

    #[test]
    fn stored_raster_tile_math() {
        let geo = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        let sr = StoredRaster {
            depth: BitDepth::Eight,
            geo,
            width: 100,
            height: 90,
            tile_h: 32,
            tile_w: 40,
            tiles: Arc::new(Vec::new()),
        };
        assert_eq!(sr.tile_cols(), 3);
        assert_eq!(sr.tile_rows(), 3);
        // full region covers all 9 tiles
        assert_eq!(sr.tiles_for_region(0, 90, 0, 100).len(), 9);
        // a region inside tile (1,1)
        assert_eq!(sr.tiles_for_region(40, 50, 45, 60), vec![4]);
        // edge tile shapes are clipped
        let (r0, c0, h, w) = sr.tile_region(8);
        assert_eq!((r0, c0, h, w), (64, 80, 26, 20));
        // empty region
        assert!(sr.tiles_for_region(10, 10, 0, 5).is_empty());
    }

    #[test]
    fn wire_size_reference_vs_pixels() {
        let geo = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        let mem = Value::Raster(RasterValue::Mem(Arc::new(
            Raster::new(100, 100, BitDepth::Sixteen, geo).unwrap(),
        )));
        let stored = Value::Raster(RasterValue::Stored(StoredRaster {
            depth: BitDepth::Sixteen,
            geo,
            width: 100,
            height: 100,
            tile_h: 50,
            tile_w: 50,
            tiles: Arc::new(vec![
                TileRef {
                    node: 0,
                    oid: Oid { page: 1, slot: 0 },
                    compressed: false
                };
                4
            ]),
        }));
        assert!(stored.wire_size() * 10 < mem.wire_size(), "references must be cheap to ship");
    }

    #[test]
    fn accessors_enforce_types() {
        assert!(Value::Int(1).as_int().is_ok());
        assert!(Value::Str("x".into()).as_int().is_err());
        assert_eq!(Value::Int(2).as_float().unwrap(), 2.0);
        assert!(Value::Null.as_shape().is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut pos = 0;
        assert!(Value::decode(&[], &mut pos).is_err());
        let mut pos = 0;
        assert!(Value::decode(&[99], &mut pos).is_err());
        let mut pos = 0;
        assert!(Value::decode(&[1, 0, 0], &mut pos).is_err()); // truncated int
    }
}
