//! The measured phase driver.
//!
//! A query is a sequence of *phases*. Within a phase every node processes
//! its fragment independently (shared-nothing); between phases tuples are
//! routed to other nodes (repartitioning / replication / collection). The
//! driver executes node fragments one after another on the host, measuring
//! each node's busy time; [`crate::metrics::QueryMetrics::simulated_time`]
//! then reconstructs the parallel execution time as the per-phase critical
//! path — the paper's cost model with one CPU per node.

use crate::cluster::Cluster;
use crate::metrics::QueryMetrics;
use crate::tuple::Tuple;
use crate::{NodeId, Result};
use std::time::Instant;

/// Runs one parallel phase: `work(node_id)` for every node, recording
/// per-node busy time into `metrics` under `name`. Returns each node's
/// output.
pub fn run_phase<O>(
    cluster: &Cluster,
    metrics: &mut QueryMetrics,
    name: &str,
    mut work: impl FnMut(NodeId) -> Result<O>,
) -> Result<Vec<O>> {
    let mut busy = Vec::with_capacity(cluster.num_nodes());
    let mut outs = Vec::with_capacity(cluster.num_nodes());
    for id in 0..cluster.num_nodes() {
        let t0 = Instant::now();
        outs.push(work(id)?);
        busy.push(t0.elapsed());
    }
    metrics.push_phase(name, busy);
    Ok(outs)
}

/// Runs a sequential (coordinator-side) step, accumulating its time into
/// `metrics.sequential` — e.g. the single global-aggregate operator of Q12
/// that the paper calls out as "a sequential portion of the query".
pub fn run_sequential<O>(
    metrics: &mut QueryMetrics,
    work: impl FnOnce() -> Result<O>,
) -> Result<O> {
    let t0 = Instant::now();
    let out = work()?;
    metrics.sequential += t0.elapsed();
    Ok(out)
}

/// Routes per-node outboxes to per-node inboxes over the cluster's
/// transport, accounting network bytes for every tuple that crosses a
/// node boundary. `outbox[src]` is the list of `(dest, tuple)` pairs node
/// `src` emitted.
///
/// Under [`crate::cluster::Transport::Local`] tuples move by ownership;
/// under `Tcp` each cross-node `(src, dst)` batch travels through a real
/// flow-controlled wire stream. Both paths charge identical traffic at
/// the [`crate::stream::TupleTx::send`] choke point.
pub fn route(cluster: &Cluster, outbox: Vec<Vec<(NodeId, Tuple)>>) -> Result<Vec<Vec<Tuple>>> {
    let n = cluster.num_nodes();
    let mut inbox: Vec<Vec<Tuple>> = (0..n).map(|_| Vec::new()).collect();
    if matches!(cluster.transport(), crate::cluster::Transport::Local) {
        for (src, msgs) in outbox.into_iter().enumerate() {
            for (dest, tuple) in msgs {
                if dest != src {
                    cluster.net.ship(tuple.wire_size());
                }
                inbox[dest].push(tuple);
            }
        }
        return Ok(inbox);
    }
    // Wire transport: local tuples short-circuit, cross-node batches go
    // over per-(src,dst) streams drained concurrently with the senders.
    let mut cross: Vec<Vec<Vec<Tuple>>> =
        (0..n).map(|_| (0..n).map(|_| Vec::new()).collect()).collect();
    for (src, msgs) in outbox.into_iter().enumerate() {
        for (dest, tuple) in msgs {
            if dest == src {
                inbox[dest].push(tuple);
            } else {
                cross[src][dest].push(tuple);
            }
        }
    }
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for (src, per_dst) in cross.into_iter().enumerate() {
        for (dst, batch) in per_dst.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (tx, rx) = cluster.stream(crate::stream::DEFAULT_WINDOW, src, dst)?;
            senders.push(std::thread::spawn(move || -> Result<()> {
                for t in batch {
                    tx.send(t)?;
                }
                Ok(())
            }));
            receivers.push((dst, rx));
        }
    }
    for (dst, rx) in receivers {
        inbox[dst].extend(rx);
    }
    for s in senders {
        s.join().map_err(|_| crate::ExecError::Other("route sender panicked".into()))??;
    }
    Ok(inbox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::value::Value;

    #[test]
    fn phases_record_per_node_busy() {
        let cluster = Cluster::create(&ClusterConfig::for_test(3, "phase")).unwrap();
        let mut m = QueryMetrics::default();
        let outs = run_phase(&cluster, &mut m, "square", |id| Ok(id * id)).unwrap();
        assert_eq!(outs, vec![0, 1, 4]);
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.phases[0].node_busy.len(), 3);
        assert_eq!(m.phases[0].name, "square");
    }

    #[test]
    fn route_accounts_cross_node_traffic_only() {
        let cluster = Cluster::create(&ClusterConfig::for_test(2, "route")).unwrap();
        let t = |v: i64| Tuple::new(vec![Value::Int(v)]);
        let base = cluster.net.snapshot();
        let inbox = route(
            &cluster,
            vec![
                vec![(0, t(1)), (1, t(2))], // node 0: one local, one remote
                vec![(0, t(3))],            // node 1: one remote
            ],
        )
        .unwrap();
        assert_eq!(inbox[0].len(), 2);
        assert_eq!(inbox[1].len(), 1);
        let d = cluster.net.since(base);
        assert_eq!(d.tuples, 2, "only cross-node tuples are network traffic");
        assert!(d.bytes > 0);
    }

    #[test]
    fn sequential_time_accumulates() {
        let mut m = QueryMetrics::default();
        let v = run_sequential(&mut m, || Ok(41 + 1)).unwrap();
        assert_eq!(v, 42);
        let first = m.sequential;
        run_sequential(&mut m, || Ok(())).unwrap();
        assert!(m.sequential >= first);
    }
}
