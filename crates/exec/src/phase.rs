//! The measured phase driver.
//!
//! A query is a sequence of *phases*. Within a phase every node processes
//! its fragment independently (shared-nothing); between phases tuples are
//! routed to other nodes (repartitioning / replication / collection). The
//! driver executes node fragments one after another on the host, measuring
//! each node's busy time; [`crate::metrics::QueryMetrics::simulated_time`]
//! then reconstructs the parallel execution time as the per-phase critical
//! path — the paper's cost model with one CPU per node.

use crate::cluster::Cluster;
use crate::metrics::{PhaseTimes, QueryMetrics};
use crate::tuple::Tuple;
use crate::{NodeId, Result};
use std::time::Instant;

/// Output cardinality of a phase's per-node result, for automatic
/// per-operator row accounting in [`run_phase`].
///
/// Row-shaped outputs (`Vec`, `HashMap`) report their length; opaque
/// outputs (indexes, scalars, composites) report `None`, which marks the
/// whole phase's cardinality as not-row-shaped rather than as zero.
pub trait RowCounted {
    /// Number of rows in this output, if it is row-shaped.
    fn row_count(&self) -> Option<u64> {
        None
    }
}

impl<T> RowCounted for Vec<T> {
    fn row_count(&self) -> Option<u64> {
        Some(self.len() as u64)
    }
}

impl<K, V, S> RowCounted for std::collections::HashMap<K, V, S> {
    fn row_count(&self) -> Option<u64> {
        Some(self.len() as u64)
    }
}

impl RowCounted for usize {}
impl RowCounted for () {}
impl<A, B> RowCounted for (A, B) {}

/// Runs one parallel phase: `work(node_id)` for every node, recording
/// per-node busy time into `metrics` under `name`, together with the
/// phase's output cardinality, the cross-node traffic and the (summed)
/// buffer-pool activity charged while it ran. Each node's fragment also
/// runs under a trace span on that node's lane, so `EXPLAIN ANALYZE`
/// renders one Chrome-trace track per node. Returns each node's output.
pub fn run_phase<O: RowCounted>(
    cluster: &Cluster,
    metrics: &mut QueryMetrics,
    name: &str,
    mut work: impl FnMut(NodeId) -> Result<O>,
) -> Result<Vec<O>> {
    cluster.events().emit("phase.start", &[("phase", name.into())]);
    let net0 = cluster.net.snapshot();
    let buf0 = cluster.buffer_stats_total();
    let pool = cluster.workers();
    let pool0 = pool.snapshot();
    let mut busy = Vec::with_capacity(cluster.num_nodes());
    let mut outs = Vec::with_capacity(cluster.num_nodes());
    let mut rows = Vec::with_capacity(cluster.num_nodes());
    let mut countable = true;
    for id in 0..cluster.num_nodes() {
        let span = cluster.trace().span(name, id as u32);
        let t0 = Instant::now();
        let out = work(id)?;
        busy.push(t0.elapsed());
        drop(span);
        match out.row_count() {
            Some(n) => rows.push(n),
            None => countable = false,
        }
        outs.push(out);
    }
    let pool_delta = pool.snapshot().since(&pool0);
    metrics.push_phase_record(PhaseTimes {
        name: name.to_string(),
        node_busy: busy,
        node_rows: countable.then_some(rows),
        net: cluster.net.since(net0),
        buffer: cluster.buffer_stats_total().since(buf0),
        morsels: pool_delta.morsels,
        worker_busy: std::time::Duration::from_nanos(pool_delta.busy_ns),
    });
    Ok(outs)
}

/// Runs a sequential (coordinator-side) step, accumulating its time into
/// `metrics.sequential` — e.g. the single global-aggregate operator of Q12
/// that the paper calls out as "a sequential portion of the query".
pub fn run_sequential<O>(
    metrics: &mut QueryMetrics,
    work: impl FnOnce() -> Result<O>,
) -> Result<O> {
    let t0 = Instant::now();
    let out = work()?;
    metrics.sequential += t0.elapsed();
    Ok(out)
}

/// Routes per-node outboxes to per-node inboxes over the cluster's
/// transport, accounting network bytes for every tuple that crosses a
/// node boundary. `outbox[src]` is the list of `(dest, tuple)` pairs node
/// `src` emitted.
///
/// Under [`crate::cluster::Transport::Local`] tuples move by ownership;
/// under `Tcp` each cross-node `(src, dst)` batch travels through a real
/// flow-controlled wire stream. Both paths charge identical traffic at
/// the [`crate::stream::TupleTx::send`] choke point.
pub fn route(cluster: &Cluster, outbox: Vec<Vec<(NodeId, Tuple)>>) -> Result<Vec<Vec<Tuple>>> {
    let n = cluster.num_nodes();
    let mut inbox: Vec<Vec<Tuple>> = (0..n).map(|_| Vec::new()).collect();
    if matches!(cluster.transport(), crate::cluster::Transport::Local) {
        for (src, msgs) in outbox.into_iter().enumerate() {
            for (dest, tuple) in msgs {
                if dest != src {
                    cluster.net.ship(tuple.wire_size());
                }
                inbox[dest].push(tuple);
            }
        }
        return Ok(inbox);
    }
    // Wire transport: local tuples short-circuit, cross-node batches go
    // over per-(src,dst) streams drained concurrently with the senders.
    let mut cross: Vec<Vec<Vec<Tuple>>> =
        (0..n).map(|_| (0..n).map(|_| Vec::new()).collect()).collect();
    for (src, msgs) in outbox.into_iter().enumerate() {
        for (dest, tuple) in msgs {
            if dest == src {
                inbox[dest].push(tuple);
            } else {
                cross[src][dest].push(tuple);
            }
        }
    }
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for (src, per_dst) in cross.into_iter().enumerate() {
        for (dst, batch) in per_dst.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (tx, rx) = cluster.stream(crate::stream::DEFAULT_WINDOW, src, dst)?;
            senders.push(std::thread::spawn(move || -> Result<()> {
                // `exec.route_send` injects a poisoned sender: the node's
                // routing thread dies and the whole phase must fail
                // cleanly rather than deliver a partial repartition.
                if let Err(msg) = paradise_util::failpoint::check("exec.route_send") {
                    return Err(crate::ExecError::Other(format!(
                        "injected fault at exec.route_send (node {src}): {msg}"
                    )));
                }
                for t in batch {
                    tx.send(t)?;
                }
                Ok(())
            }));
            receivers.push((dst, rx));
        }
    }
    // Drain every receiver before joining senders (senders block on flow
    // control until their stream drains), then surface the first failure.
    // A link error without a sender error means tuples were lost in
    // flight — that MUST fail the phase: a silently short inbox would
    // produce wrong results rather than an error.
    let mut link_err: Option<String> = None;
    for (dst, mut rx) in receivers {
        while let Some(t) = rx.recv() {
            inbox[dst].push(t);
        }
        if link_err.is_none() {
            link_err = rx.link_error();
        }
    }
    let mut send_err: Option<crate::ExecError> = None;
    for s in senders {
        match s.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => send_err = send_err.or(Some(e)),
            Err(_) => {
                send_err =
                    send_err.or(Some(crate::ExecError::Other("route sender panicked".into())))
            }
        }
    }
    if let Some(e) = send_err {
        return Err(e);
    }
    if let Some(msg) = link_err {
        return Err(crate::ExecError::Other(format!("route stream failed: {msg}")));
    }
    Ok(inbox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::value::Value;

    #[test]
    fn phases_record_per_node_busy() {
        let cluster = Cluster::create(&ClusterConfig::for_test(3, "phase")).unwrap();
        let mut m = QueryMetrics::default();
        let outs = run_phase(&cluster, &mut m, "square", |id| Ok(id * id)).unwrap();
        assert_eq!(outs, vec![0, 1, 4]);
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.phases[0].node_busy.len(), 3);
        assert_eq!(m.phases[0].name, "square");
        // usize outputs are opaque, not row-shaped.
        assert_eq!(m.phases[0].rows_out(), None);
    }

    #[test]
    fn phases_capture_rows_net_and_spans() {
        let cluster = Cluster::create(&ClusterConfig::for_test(2, "phase-obs")).unwrap();
        cluster.trace().set_enabled(true);
        let mut m = QueryMetrics::default();
        let outs = run_phase(&cluster, &mut m, "emit", |id| {
            if id == 1 {
                cluster.net.ship(128);
            }
            Ok(vec![Tuple::new(vec![Value::Int(id as i64)]); id + 1])
        })
        .unwrap();
        assert_eq!(outs.len(), 2);
        let p = &m.phases[0];
        assert_eq!(p.node_rows, Some(vec![1, 2]));
        assert_eq!(p.rows_out(), Some(3));
        assert_eq!(p.net.bytes, 128, "net delta is scoped to the phase");
        // One span per node, on that node's lane.
        let evs = cluster.trace().events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "emit");
        assert_eq!(evs[0].lane, 0);
        assert_eq!(evs[1].lane, 1);
        cluster.trace().set_enabled(false);
    }

    #[test]
    fn route_accounts_cross_node_traffic_only() {
        let cluster = Cluster::create(&ClusterConfig::for_test(2, "route")).unwrap();
        let t = |v: i64| Tuple::new(vec![Value::Int(v)]);
        let base = cluster.net.snapshot();
        let inbox = route(
            &cluster,
            vec![
                vec![(0, t(1)), (1, t(2))], // node 0: one local, one remote
                vec![(0, t(3))],            // node 1: one remote
            ],
        )
        .unwrap();
        assert_eq!(inbox[0].len(), 2);
        assert_eq!(inbox[1].len(), 1);
        let d = cluster.net.since(base);
        assert_eq!(d.tuples, 2, "only cross-node tuples are network traffic");
        assert!(d.bytes > 0);
    }

    #[test]
    fn sequential_time_accumulates() {
        let mut m = QueryMetrics::default();
        let v = run_sequential(&mut m, || Ok(41 + 1)).unwrap();
        assert_eq!(v, 42);
        let first = m.sequential;
        run_sequential(&mut m, || Ok(())).unwrap();
        assert!(m.sequential >= first);
    }
}
