//! Tuple streams: the push-model plumbing of §2.3.
//!
//! *"Every Paradise operator takes its input from an input stream and
//! places its result tuples on an output stream. … Network streams also
//! provide a flow-control mechanism that is used to regulate the execution
//! rates of the different operators in the pipeline. Network streams can be
//! further specialized into split streams which are used to demultiplex an
//! output stream into multiple output streams based on a function being
//! applied to each tuple."*
//!
//! * [`mem_stream`] — same-node operator link (a bounded channel; the bound
//!   is the flow-control window);
//! * [`network_stream`] — cross-node link; every tuple's wire size is
//!   charged to the cluster's [`NetStats`];
//! * [`SplitStream`] — demultiplexes by a split function (hash /
//!   round-robin / spatial tiles) and *replicates* a tuple to several
//!   outputs when the split function returns several destinations
//!   (spanning shapes, Figure 2.4);
//! * [`FileStream`] — reads/writes a stream from/to a heap file.
//!
//! All stream kinds share the [`TupleTx`]/[`TupleRx`] interface, so an
//! operator is "totally isolated from the type of stream it reads or
//! writes" — the scheduler picks the concrete kind, as in the paper.
//!
//! Streams come in two physical flavours behind the same interface:
//! in-process bounded channels (the [`mem_stream`]/[`network_stream`]
//! constructors) and *remote* endpoints supplied by a wire transport
//! ([`remote_stream`], used by `paradise-net` to run a stream over TCP
//! with credit-based flow control). Network accounting happens here, in
//! [`TupleTx::send`] — the single choke point every transported tuple
//! passes through — so `Local` and `Tcp` transports report identical
//! traffic for identical plans.

use crate::cluster::{NetStats, NodeId};
use crate::tuple::Tuple;
use crate::Result;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

/// Default flow-control window (tuples in flight per stream).
pub const DEFAULT_WINDOW: usize = 256;

/// The sending side of a wire-transported stream. Implementations must
/// apply flow control in `send` (blocking until the peer grants credit)
/// and deliver end-of-stream when the last clone is dropped.
pub trait RemoteTx: Send + Sync {
    /// Ships one tuple, blocking on flow control.
    fn send(&self, t: Tuple) -> Result<()>;
}

/// The receiving side of a wire-transported stream.
pub trait RemoteRx: Send {
    /// Next tuple; `None` once the peer finished (or the link died).
    fn recv(&mut self) -> Option<Tuple>;

    /// If the link terminated abnormally (peer death, timeout), the error.
    fn link_error(&self) -> Option<String> {
        None
    }
}

enum TxInner {
    Chan(SyncSender<Tuple>),
    Remote(Arc<dyn RemoteTx>),
}

impl Clone for TxInner {
    fn clone(&self) -> Self {
        match self {
            TxInner::Chan(s) => TxInner::Chan(s.clone()),
            TxInner::Remote(r) => TxInner::Remote(r.clone()),
        }
    }
}

enum RxInner {
    Chan(Receiver<Tuple>),
    Remote(Box<dyn RemoteRx>),
}

/// Sending half of a stream.
#[derive(Clone)]
pub struct TupleTx {
    inner: TxInner,
    /// Set for network streams: (src, dst, counters).
    net: Option<(NodeId, NodeId, Arc<NetStats>)>,
}

/// Receiving half of a stream.
pub struct TupleRx {
    inner: RxInner,
}

impl TupleTx {
    /// Sends a tuple, blocking when the flow-control window is full.
    /// Cross-node sends are charged to the network counters.
    pub fn send(&self, t: Tuple) -> Result<()> {
        if let Some((src, dst, net)) = &self.net {
            if src != dst {
                net.ship(t.wire_size());
            }
        }
        match &self.inner {
            TxInner::Chan(s) => {
                s.send(t).map_err(|_| crate::ExecError::Other("stream receiver dropped".into()))
            }
            TxInner::Remote(r) => r.send(t),
        }
    }
}

impl TupleRx {
    /// Receives the next tuple; `None` when every sender has finished.
    pub fn recv(&mut self) -> Option<Tuple> {
        match &mut self.inner {
            RxInner::Chan(r) => r.recv().ok(),
            RxInner::Remote(r) => r.recv(),
        }
    }

    /// Drains the stream into a vector.
    pub fn collect(mut self) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(t) = self.recv() {
            out.push(t);
        }
        out
    }

    /// For remote streams: the abnormal-termination reason, if any.
    pub fn link_error(&self) -> Option<String> {
        match &self.inner {
            RxInner::Chan(_) => None,
            RxInner::Remote(r) => r.link_error(),
        }
    }
}

impl Iterator for TupleRx {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        self.recv()
    }
}

/// A same-node stream with a flow-control window of `window` tuples.
pub fn mem_stream(window: usize) -> (TupleTx, TupleRx) {
    let (tx, rx) = sync_channel(window.max(1));
    (TupleTx { inner: TxInner::Chan(tx), net: None }, TupleRx { inner: RxInner::Chan(rx) })
}

/// A cross-node stream: tuples crossing `src → dst` are charged to `net`.
pub fn network_stream(
    window: usize,
    src: NodeId,
    dst: NodeId,
    net: Arc<NetStats>,
) -> (TupleTx, TupleRx) {
    let (tx, rx) = sync_channel(window.max(1));
    (
        TupleTx { inner: TxInner::Chan(tx), net: Some((src, dst, net)) },
        TupleRx { inner: RxInner::Chan(rx) },
    )
}

/// Wraps transport-provided endpoints (e.g. a TCP connection with credit
/// flow control) in the standard stream interface, attaching the same
/// cross-node accounting as [`network_stream`]. Operators cannot tell the
/// difference — which is the point.
pub fn remote_stream(
    tx: Arc<dyn RemoteTx>,
    rx: Box<dyn RemoteRx>,
    src: NodeId,
    dst: NodeId,
    net: Arc<NetStats>,
) -> (TupleTx, TupleRx) {
    (
        TupleTx { inner: TxInner::Remote(tx), net: Some((src, dst, net)) },
        TupleRx { inner: RxInner::Remote(rx) },
    )
}

/// Destination selector of a split stream. Returning more than one index
/// replicates the tuple (spatial declustering of spanning shapes).
pub type SplitFn = Box<dyn Fn(&Tuple) -> Vec<usize> + Send>;

/// Demultiplexes one logical output onto several streams.
pub struct SplitStream {
    outs: Vec<TupleTx>,
    split: SplitFn,
}

impl SplitStream {
    /// Creates a split stream over `outs`.
    pub fn new(outs: Vec<TupleTx>, split: SplitFn) -> Self {
        SplitStream { outs, split }
    }

    /// Routes (and possibly replicates) one tuple.
    pub fn push(&self, t: Tuple) -> Result<()> {
        let dests = (self.split)(&t);
        match dests.len() {
            0 => Ok(()),
            1 => self.outs[dests[0]].send(t),
            _ => {
                for &d in &dests {
                    self.outs[d].send(t.clone())?;
                }
                Ok(())
            }
        }
    }

    /// Number of output streams.
    pub fn fan_out(&self) -> usize {
        self.outs.len()
    }
}

/// A split function that hashes column `col` (round-robin for NULLs).
pub fn hash_split(col: usize, fan_out: usize) -> SplitFn {
    let counter = std::sync::atomic::AtomicUsize::new(0);
    Box::new(move |t: &Tuple| {
        let h = match t.values.get(col) {
            Some(v) => crate::decluster::hash_value(v),
            None => 0,
        };
        if h == 0 && t.values.get(col).map(|v| v.kind()) == Some("null") {
            let c = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            vec![c % fan_out]
        } else {
            vec![(h as usize) % fan_out]
        }
    })
}

/// File streams: the leaf (scan) and sink (materialise) ends of a pipeline.
pub struct FileStream;

impl FileStream {
    /// Streams every tuple of a heap file into `tx` (a scan leaf).
    pub fn read_all(file: &paradise_storage::HeapFile, tx: &TupleTx) -> Result<()> {
        file.for_each(|_, bytes| {
            let t = Tuple::decode(&bytes).map_err(|_| {
                paradise_storage::StorageError::Corrupt("undecodable tuple in heap file")
            })?;
            tx.send(t)
                .map_err(|_| paradise_storage::StorageError::Corrupt("stream closed mid-scan"))?;
            Ok(())
        })?;
        Ok(())
    }

    /// Drains `rx` into a heap file (a materialising sink). Returns the
    /// number of tuples written.
    pub fn write_all(file: &paradise_storage::HeapFile, rx: TupleRx) -> Result<usize> {
        let mut n = 0;
        for t in rx {
            file.insert(&t.encode())?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn mem_stream_roundtrip() {
        let (tx, rx) = mem_stream(8);
        std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(t(i)).unwrap();
            }
        });
        let got = rx.collect();
        assert_eq!(got.len(), 100);
        assert_eq!(got[99], t(99));
    }

    #[test]
    fn flow_control_blocks_fast_producer() {
        // Window of 2: producer cannot run ahead; the test completes only
        // if the consumer draining unblocks the producer (flow control).
        let (tx, rx) = mem_stream(2);
        let producer = std::thread::spawn(move || {
            for i in 0..50 {
                tx.send(t(i)).unwrap();
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let got = rx.collect();
        producer.join().unwrap();
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn network_stream_charges_cross_node_traffic() {
        let net = Arc::new(NetStats::default());
        let (tx, rx) = network_stream(8, 0, 1, net.clone());
        tx.send(t(7)).unwrap();
        drop(tx);
        assert_eq!(rx.collect().len(), 1);
        assert_eq!(net.snapshot().tuples, 1);
        assert!(net.snapshot().bytes > 0);

        // Same-node "network" stream (SMP memory transport, §2.2) is free.
        let net2 = Arc::new(NetStats::default());
        let (tx, rx) = network_stream(8, 3, 3, net2.clone());
        tx.send(t(7)).unwrap();
        drop(tx);
        let _ = rx.collect();
        assert_eq!(net2.snapshot().tuples, 0);
    }

    #[test]
    fn split_stream_routes_by_hash() {
        // Windows must cover the worst-case skew (all 100 one way), since
        // nothing drains until the producer finishes.
        let (tx0, rx0) = mem_stream(128);
        let (tx1, rx1) = mem_stream(128);
        let split = SplitStream::new(vec![tx0, tx1], hash_split(0, 2));
        for i in 0..100 {
            split.push(t(i)).unwrap();
        }
        drop(split);
        let a = rx0.collect();
        let b = rx1.collect();
        assert_eq!(a.len() + b.len(), 100);
        assert!(!a.is_empty() && !b.is_empty(), "hash split should use both");
        // Determinism: same value always goes the same way.
        let (tx0, rx0) = mem_stream(16);
        let (tx1, rx1) = mem_stream(16);
        let split = SplitStream::new(vec![tx0, tx1], hash_split(0, 2));
        for _ in 0..10 {
            split.push(t(42)).unwrap();
        }
        drop(split);
        let a = rx0.collect().len();
        let b = rx1.collect().len();
        assert!(a == 10 || b == 10);
    }

    #[test]
    fn split_stream_backpressure_with_stalled_consumer_does_not_deadlock() {
        // Fan-out of two with the tiniest window (1) and consumers that
        // stall before draining: the producer must block on the full
        // window — backpressure, not unbounded buffering — and complete
        // once the consumers drain. Completion of this test *is* the
        // no-deadlock proof; the assertions pin down loss and ordering.
        let (tx0, rx0) = mem_stream(1);
        let (tx1, rx1) = mem_stream(1);
        let split = SplitStream::new(
            vec![tx0, tx1],
            Box::new(|t: &Tuple| match t.values.first() {
                Some(Value::Int(v)) => vec![(*v as usize) % 2],
                _ => vec![0],
            }),
        );
        let producer = std::thread::spawn(move || {
            for i in 0..200 {
                split.push(t(i)).unwrap();
            }
        });
        // Both consumers stall: the producer can be at most ~2 tuples in
        // (one queued per window) and must still be running.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!producer.is_finished(), "window of 1 should have blocked the producer");
        let c0 = std::thread::spawn(move || rx0.collect());
        let c1 = std::thread::spawn(move || rx1.collect());
        producer.join().unwrap();
        let evens = c0.join().unwrap();
        let odds = c1.join().unwrap();
        assert_eq!(evens.len(), 100);
        assert_eq!(odds.len(), 100);
        // Per-output FIFO order survives the blocking.
        for (k, row) in evens.iter().enumerate() {
            assert_eq!(*row, t(2 * k as i64));
        }
        for (k, row) in odds.iter().enumerate() {
            assert_eq!(*row, t(2 * k as i64 + 1));
        }
    }

    #[test]
    fn split_stream_replicates_multi_destination() {
        let (tx0, rx0) = mem_stream(8);
        let (tx1, rx1) = mem_stream(8);
        let (tx2, rx2) = mem_stream(8);
        // Every tuple goes to outputs 0 and 2 (like a spanning polygon).
        let split = SplitStream::new(vec![tx0, tx1, tx2], Box::new(|_| vec![0, 2]));
        split.push(t(1)).unwrap();
        drop(split);
        assert_eq!(rx0.collect().len(), 1);
        assert_eq!(rx1.collect().len(), 0);
        assert_eq!(rx2.collect().len(), 1);
    }

    #[test]
    fn file_stream_roundtrip() {
        let dir = std::env::temp_dir().join(format!("paradise-fstream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vol = Arc::new(paradise_storage::Volume::create(dir.join("fs.vol")).unwrap());
        let pool = Arc::new(paradise_storage::BufferPool::new(vol, 64));
        let file = paradise_storage::HeapFile::create(pool).unwrap();

        let (tx, rx) = mem_stream(16);
        let writer = std::thread::spawn(move || {
            for i in 0..40 {
                tx.send(t(i)).unwrap();
            }
        });
        let n = FileStream::write_all(&file, rx).unwrap();
        writer.join().unwrap();
        assert_eq!(n, 40);

        // Drain concurrently: read_all blocks on the flow-control window
        // when the scan outpaces the consumer.
        let (tx, rx) = mem_stream(16);
        let reader = std::thread::spawn(move || rx.collect());
        FileStream::read_all(&file, &tx).unwrap();
        drop(tx);
        let got = reader.join().unwrap();
        assert_eq!(got.len(), 40);
        assert_eq!(got[7], t(7));
    }
}
