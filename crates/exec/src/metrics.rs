//! Query cost accounting (the shared-nothing timing model).

use crate::cluster::NetSnapshot;
use paradise_storage::BufferStats;
use std::time::Duration;

/// Per-node busy time of one parallel phase, plus the per-operator
/// observability captured by [`crate::phase::run_phase`]: output
/// cardinality, network traffic and buffer-pool activity during the phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimes {
    /// Phase label (e.g. "scan+select", "repartition", "local join").
    pub name: String,
    /// Busy time of each node during the phase.
    pub node_busy: Vec<Duration>,
    /// Per-node output cardinality, when the phase output is row-shaped
    /// (`None` for opaque outputs like pre-built indexes).
    pub node_rows: Option<Vec<u64>>,
    /// Cross-node traffic charged while the phase ran.
    pub net: NetSnapshot,
    /// Buffer-pool activity (summed over all nodes) while the phase ran.
    pub buffer: BufferStats,
    /// Worker-pool morsels executed by this phase's kernels
    /// ([`crate::workers`]); `0` when the phase ran no pool-driven kernel.
    pub morsels: u64,
    /// Busy time summed across pool workers during the phase (a subset of
    /// the node busy time: the part spent inside morsel kernels).
    pub worker_busy: Duration,
}

impl PhaseTimes {
    /// The phase's contribution to parallel execution time: the slowest
    /// node (all nodes work concurrently within a phase).
    pub fn critical(&self) -> Duration {
        self.node_busy.iter().copied().max().unwrap_or_default()
    }

    /// Total work across nodes (for utilisation statistics).
    pub fn total_work(&self) -> Duration {
        self.node_busy.iter().sum()
    }

    /// Total output rows across nodes (`None` when the output of this
    /// phase is not row-shaped).
    pub fn rows_out(&self) -> Option<u64> {
        self.node_rows.as_ref().map(|r| r.iter().sum())
    }
}

/// Cost record of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Parallel phases in execution order.
    pub phases: Vec<PhaseTimes>,
    /// Time spent in sequential operators (e.g. the single global
    /// aggregate of Q12, result assembly at the query coordinator).
    pub sequential: Duration,
    /// Bytes shipped between nodes (repartitioning, replication, results).
    pub net_bytes: u64,
    /// Number of tuples shipped between nodes.
    pub net_tuples: u64,
    /// Number of remote tile pulls (§2.5.2).
    pub pulls: u64,
    /// Bytes moved by pulls.
    pub pull_bytes: u64,
    /// Wall-clock time of the whole execution (for transparency).
    pub wall: Duration,
}

impl QueryMetrics {
    /// Simulated parallel execution time under the paper's cost model:
    /// phases run their nodes concurrently (critical path = slowest node),
    /// phases and sequential operators run back to back.
    pub fn simulated_time(&self) -> Duration {
        self.phases.iter().map(|p| p.critical()).sum::<Duration>() + self.sequential
    }

    /// Sum of all node work (what a single node would have to do alone).
    pub fn total_work(&self) -> Duration {
        self.phases.iter().map(|p| p.total_work()).sum::<Duration>() + self.sequential
    }

    /// Number of nodes involved (max across phases).
    pub fn num_nodes(&self) -> usize {
        self.phases.iter().map(|p| p.node_busy.len()).max().unwrap_or(0)
    }

    /// Parallel utilisation in percent: how much of the cluster's capacity
    /// along the simulated critical path did useful work. 100% means every
    /// node was busy for the whole simulated time.
    pub fn utilisation(&self) -> f64 {
        let nodes = self.num_nodes();
        let sim = self.simulated_time().as_secs_f64();
        if nodes == 0 || sim <= 0.0 {
            return 100.0;
        }
        (self.total_work().as_secs_f64() / (sim * nodes as f64) * 100.0).min(100.0)
    }

    /// Adds a plain phase record (no per-operator observability — used by
    /// tests and by callers that measured busy times themselves).
    pub fn push_phase(&mut self, name: &str, node_busy: Vec<Duration>) {
        self.phases.push(PhaseTimes { name: name.to_string(), node_busy, ..Default::default() });
    }

    /// Adds a fully populated phase record.
    pub fn push_phase_record(&mut self, phase: PhaseTimes) {
        self.phases.push(phase);
    }
}

/// Compact duration like "3.42ms" padded into a fixed-width cell.
fn dur_cell(d: Duration, width: usize) -> String {
    format!("{:>width$}", format!("{d:.2?}"))
}

/// The per-query report: a phases table (rows, busy critical path, total
/// work, net traffic, buffer hit rate), the sequential remainder, and the
/// simulated/wall/utilisation summary. This is the single formatting path
/// for examples, the bench tables, and `EXPLAIN ANALYZE`.
impl std::fmt::Display for QueryMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name_w = self.phases.iter().map(|p| p.name.len()).max().unwrap_or(5).max(5);
        writeln!(
            f,
            "{:<name_w$} {:>9} {:>10} {:>10} {:>10} {:>14}",
            "phase", "rows", "busy(max)", "work", "net KB", "buf hit/miss"
        )?;
        for p in &self.phases {
            let rows = match p.rows_out() {
                Some(r) => r.to_string(),
                None => "-".to_string(),
            };
            writeln!(
                f,
                "{:<name_w$} {:>9} {} {} {:>10.1} {:>9}/{:<4}",
                p.name,
                rows,
                dur_cell(p.critical(), 10),
                dur_cell(p.total_work(), 10),
                p.net.bytes as f64 / 1024.0,
                p.buffer.hits,
                p.buffer.misses,
            )?;
        }
        if self.sequential > Duration::ZERO {
            writeln!(f, "{:<name_w$} {:>9} {}", "sequential", "-", dur_cell(self.sequential, 10))?;
        }
        writeln!(
            f,
            "simulated {:.2?}  wall {:.2?}  utilisation {:.1}% over {} nodes",
            self.simulated_time(),
            self.wall,
            self.utilisation(),
            self.num_nodes(),
        )?;
        write!(
            f,
            "net {:.1} KB / {} tuples  pulls {} ({:.1} KB)",
            self.net_bytes as f64 / 1024.0,
            self.net_tuples,
            self.pulls,
            self.pull_bytes as f64 / 1024.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn simulated_time_is_critical_path() {
        let mut m = QueryMetrics::default();
        m.push_phase("scan", vec![ms(10), ms(30), ms(20)]);
        m.push_phase("join", vec![ms(5), ms(5), ms(50)]);
        m.sequential = ms(7);
        assert_eq!(m.simulated_time(), ms(30 + 50 + 7));
        assert_eq!(m.total_work(), ms(10 + 30 + 20 + 5 + 5 + 50 + 7));
    }

    #[test]
    fn empty_metrics() {
        let m = QueryMetrics::default();
        assert_eq!(m.simulated_time(), Duration::ZERO);
        assert_eq!(m.num_nodes(), 0);
        assert_eq!(m.utilisation(), 100.0);
    }

    #[test]
    fn rows_out_sums_per_node_counts() {
        let p = PhaseTimes {
            name: "scan".into(),
            node_busy: vec![ms(1), ms(2)],
            node_rows: Some(vec![10, 32]),
            ..Default::default()
        };
        assert_eq!(p.rows_out(), Some(42));
        let opaque = PhaseTimes { name: "index".into(), ..Default::default() };
        assert_eq!(opaque.rows_out(), None);
    }

    #[test]
    fn display_renders_phases_and_summary() {
        let mut m = QueryMetrics::default();
        m.push_phase_record(PhaseTimes {
            name: "scan + clip".into(),
            node_busy: vec![ms(10), ms(30)],
            node_rows: Some(vec![5, 7]),
            net: NetSnapshot { bytes: 2048, tuples: 12, ..Default::default() },
            buffer: BufferStats { hits: 90, misses: 10, ..Default::default() },
            ..Default::default()
        });
        m.sequential = ms(3);
        m.net_bytes = 4096;
        m.net_tuples = 12;
        m.pulls = 2;
        let text = m.to_string();
        assert!(text.contains("scan + clip"), "{text}");
        assert!(text.contains("12"), "{text}");
        assert!(text.contains("90"), "{text}");
        assert!(text.contains("sequential"), "{text}");
        assert!(text.contains("utilisation"), "{text}");
        assert!(text.contains("pulls 2"), "{text}");
    }

    #[test]
    fn utilisation_is_bounded() {
        let mut m = QueryMetrics::default();
        m.push_phase("even", vec![ms(10), ms(10)]);
        assert!((m.utilisation() - 100.0).abs() < 1e-6);
        let mut skewed = QueryMetrics::default();
        skewed.push_phase("skew", vec![ms(0), ms(100)]);
        assert!(skewed.utilisation() <= 51.0);
    }
}
