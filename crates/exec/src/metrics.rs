//! Query cost accounting (the shared-nothing timing model).

use std::time::Duration;

/// Per-node busy time of one parallel phase.
#[derive(Debug, Clone)]
pub struct PhaseTimes {
    /// Phase label (e.g. "scan+select", "repartition", "local join").
    pub name: String,
    /// Busy time of each node during the phase.
    pub node_busy: Vec<Duration>,
}

impl PhaseTimes {
    /// The phase's contribution to parallel execution time: the slowest
    /// node (all nodes work concurrently within a phase).
    pub fn critical(&self) -> Duration {
        self.node_busy.iter().copied().max().unwrap_or_default()
    }

    /// Total work across nodes (for utilisation statistics).
    pub fn total_work(&self) -> Duration {
        self.node_busy.iter().sum()
    }
}

/// Cost record of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Parallel phases in execution order.
    pub phases: Vec<PhaseTimes>,
    /// Time spent in sequential operators (e.g. the single global
    /// aggregate of Q12, result assembly at the query coordinator).
    pub sequential: Duration,
    /// Bytes shipped between nodes (repartitioning, replication, results).
    pub net_bytes: u64,
    /// Number of tuples shipped between nodes.
    pub net_tuples: u64,
    /// Number of remote tile pulls (§2.5.2).
    pub pulls: u64,
    /// Bytes moved by pulls.
    pub pull_bytes: u64,
    /// Wall-clock time of the whole execution (for transparency).
    pub wall: Duration,
}

impl QueryMetrics {
    /// Simulated parallel execution time under the paper's cost model:
    /// phases run their nodes concurrently (critical path = slowest node),
    /// phases and sequential operators run back to back.
    pub fn simulated_time(&self) -> Duration {
        self.phases.iter().map(|p| p.critical()).sum::<Duration>() + self.sequential
    }

    /// Sum of all node work (what a single node would have to do alone).
    pub fn total_work(&self) -> Duration {
        self.phases.iter().map(|p| p.total_work()).sum::<Duration>() + self.sequential
    }

    /// Adds a phase record.
    pub fn push_phase(&mut self, name: &str, node_busy: Vec<Duration>) {
        self.phases.push(PhaseTimes { name: name.to_string(), node_busy });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn simulated_time_is_critical_path() {
        let mut m = QueryMetrics::default();
        m.push_phase("scan", vec![ms(10), ms(30), ms(20)]);
        m.push_phase("join", vec![ms(5), ms(5), ms(50)]);
        m.sequential = ms(7);
        assert_eq!(m.simulated_time(), ms(30 + 50 + 7));
        assert_eq!(m.total_work(), ms(10 + 30 + 20 + 5 + 5 + 50 + 7));
    }

    #[test]
    fn empty_metrics() {
        let m = QueryMetrics::default();
        assert_eq!(m.simulated_time(), Duration::ZERO);
    }
}
