//! Tile-granular raster storage (paper §2.5.1, §2.6) and the pull-based
//! region fetch (§2.5.2).
//!
//! A raster is stored as one SHORE object per ~tile plus a mapping table
//! that stays inline in the tuple ([`StoredRaster`]). Tiles are LZW
//! compressed when that helps (per-tile flag). A raster's tiles normally
//! live on the node that owns the tuple; with *raster declustering* (§2.6)
//! each tile goes to the node owning the grid tile under the tile's
//! geographic center, so one image can be processed by many nodes.

use crate::cluster::{Cluster, NodeId};
use crate::value::{StoredRaster, TileRef};
use crate::Result;
use paradise_array::{lzw, NdArray, Raster, TilingScheme};
use paradise_geom::{Point, Polygon, Rect};
use std::sync::Arc;

/// Name of the per-node heap file holding raster tile objects.
pub const TILE_FILE: &str = "__raster_tiles";

/// Target tile payload. The paper uses 128 KB; the scaled-down benchmark
/// data uses smaller rasters, so the engine takes it as a parameter.
pub const DEFAULT_TILE_BYTES: usize = 32 * 1024;

/// Stores `raster` as tiles. With `decluster = false` every tile lands on
/// `home`; with `decluster = true` tiles are spread by the geographic
/// position of each tile (§2.6).
pub fn store_raster(
    cluster: &Cluster,
    home: NodeId,
    raster: &Raster,
    decluster: bool,
    tile_bytes: usize,
) -> Result<StoredRaster> {
    let dims = [raster.height(), raster.width()];
    let scheme = TilingScheme::new(&dims, raster.depth().elem_type(), tile_bytes)?;
    let (tile_h, tile_w) = (scheme.tile_shape()[0], scheme.tile_shape()[1]);
    // Cut the raster into tile payloads (cheap memory moves), then LZW-encode
    // the whole batch on the worker pool — the codec dominates store cost.
    let mut payloads = Vec::with_capacity(scheme.num_tiles());
    for i in 0..scheme.num_tiles() {
        let (lo, shape) = scheme.tile_region(i);
        payloads.push(raster.array().subarray(&lo, &shape)?.data().to_vec());
    }
    let encoded = lzw::maybe_compress_batch(&cluster.workers(), &payloads);
    // Inserts stay serial, in tile order: object ids are handed out in
    // insertion order, so the mapping table is identical for any pool size.
    let mut tiles = Vec::with_capacity(scheme.num_tiles());
    for (i, (bytes, compressed)) in encoded.into_iter().enumerate() {
        let (lo, shape) = scheme.tile_region(i);
        let owner = if decluster {
            // Geographic center of this tile picks the node.
            let px_w = raster.geo().width() / raster.width() as f64;
            let px_h = raster.geo().height() / raster.height() as f64;
            let cx = raster.geo().lo.x + (lo[1] as f64 + shape[1] as f64 / 2.0) * px_w;
            let cy = raster.geo().hi.y - (lo[0] as f64 + shape[0] as f64 / 2.0) * px_h;
            let tile = cluster.grid().tile_of_point(&Point::new(cx, cy));
            cluster.node_for_tile(tile)
        } else {
            home
        };
        let file = cluster.node(owner).store.create_file(TILE_FILE)?;
        let oid = file.insert(&bytes)?;
        tiles.push(TileRef { node: owner as u32, oid, compressed });
    }
    Ok(StoredRaster {
        depth: raster.depth(),
        geo: raster.geo(),
        width: raster.width() as u32,
        height: raster.height() as u32,
        tile_h: tile_h as u32,
        tile_w: tile_w as u32,
        tiles: Arc::new(tiles),
    })
}

/// The pixel region `[row0, row1) × [col0, col1)` of `sr` covered by the
/// world rectangle `window`, snapped outward to whole pixels. `None` when
/// disjoint.
pub fn pixel_region(sr: &StoredRaster, window: &Rect) -> Option<(u32, u32, u32, u32)> {
    let region = sr.geo.intersection(window)?;
    let px_w = sr.geo.width() / f64::from(sr.width);
    let px_h = sr.geo.height() / f64::from(sr.height);
    let col0 = ((((region.lo.x - sr.geo.lo.x) / px_w).floor()) as i64)
        .clamp(0, i64::from(sr.width) - 1) as u32;
    let col1 = ((((region.hi.x - sr.geo.lo.x) / px_w).ceil()) as i64)
        .clamp(i64::from(col0) + 1, i64::from(sr.width)) as u32;
    let row0 = ((((sr.geo.hi.y - region.hi.y) / px_h).floor()) as i64)
        .clamp(0, i64::from(sr.height) - 1) as u32;
    let row1 = ((((sr.geo.hi.y - region.lo.y) / px_h).ceil()) as i64)
        .clamp(i64::from(row0) + 1, i64::from(sr.height)) as u32;
    Some((row0, row1, col0, col1))
}

/// World rectangle of a pixel region of `sr`.
pub fn geo_of_region(sr: &StoredRaster, row0: u32, row1: u32, col0: u32, col1: u32) -> Rect {
    let px_w = sr.geo.width() / f64::from(sr.width);
    let px_h = sr.geo.height() / f64::from(sr.height);
    Rect::from_corners(
        Point::new(sr.geo.lo.x + f64::from(col0) * px_w, sr.geo.hi.y - f64::from(row1) * px_h),
        Point::new(sr.geo.lo.x + f64::from(col1) * px_w, sr.geo.hi.y - f64::from(row0) * px_h),
    )
    .expect("pixel-aligned rect")
}

/// Materialises a pixel region of a stored raster, reading **only** the
/// tiles the region overlaps and pulling remote ones (§2.5.2). Returns the
/// raster and the number of tiles read.
pub fn fetch_region(
    cluster: &Cluster,
    requester: NodeId,
    sr: &StoredRaster,
    row0: u32,
    row1: u32,
    col0: u32,
    col1: u32,
) -> Result<(Raster, usize)> {
    let h = (row1 - row0) as usize;
    let w = (col1 - col0) as usize;
    let mut out = NdArray::zeros(vec![h, w], sr.depth.elem_type())?;
    let needed = sr.tiles_for_region(row0, row1, col0, col1);
    // Fetch raw tiles serially (pull accounting and failpoint order stay
    // deterministic), decompress the batch on the worker pool, then place
    // the pieces serially in tile order.
    let mut raw = Vec::with_capacity(needed.len());
    for &idx in &needed {
        let tile = &sr.tiles[idx];
        raw.push((cluster.fetch_tile_raw(requester, tile)?, tile.compressed));
    }
    let decoded = lzw::maybe_decompress_batch(&cluster.workers(), &raw)?;
    for (&idx, bytes) in needed.iter().zip(decoded) {
        let (tr0, tc0, th, tw) = sr.tile_region(idx);
        let tile = NdArray::new(vec![th as usize, tw as usize], sr.depth.elem_type(), bytes)?;
        // Intersect the tile with the requested region.
        let a_r = row0.max(tr0);
        let b_r = row1.min(tr0 + th);
        let a_c = col0.max(tc0);
        let b_c = col1.min(tc0 + tw);
        debug_assert!(a_r < b_r && a_c < b_c);
        let piece = tile.subarray(
            &[(a_r - tr0) as usize, (a_c - tc0) as usize],
            &[(b_r - a_r) as usize, (b_c - a_c) as usize],
        )?;
        out.write_subarray(&[(a_r - row0) as usize, (a_c - col0) as usize], &piece)?;
    }
    let geo = geo_of_region(sr, row0, row1, col0, col1);
    Ok((Raster::from_array(out, sr.depth, geo)?, needed.len()))
}

/// Clips a stored raster by a polygon (queries 2–4, 9, 10, 14): fetches
/// only the tiles under the polygon's bounding box, then masks pixels
/// outside the polygon. Returns `None` when the polygon misses the raster.
pub fn clip_stored(
    cluster: &Cluster,
    requester: NodeId,
    sr: &StoredRaster,
    poly: &Polygon,
) -> Result<Option<(Raster, usize)>> {
    let Some((r0, r1, c0, c1)) = pixel_region(sr, &poly.bbox()) else {
        return Ok(None);
    };
    let (region, tiles_read) = fetch_region(cluster, requester, sr, r0, r1, c0, c1)?;
    match region.clip(poly) {
        Ok(clipped) => Ok(Some((clipped, tiles_read))),
        Err(paradise_array::ArrayError::EmptyClip) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Materialises a whole stored raster.
pub fn fetch_whole(cluster: &Cluster, requester: NodeId, sr: &StoredRaster) -> Result<Raster> {
    Ok(fetch_region(cluster, requester, sr, 0, sr.height, 0, sr.width)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use paradise_array::BitDepth;

    fn world() -> Rect {
        Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).unwrap()
    }

    fn gradient(w: usize, h: usize) -> Raster {
        let mut r = Raster::new(w, h, BitDepth::Sixteen, world()).unwrap();
        for row in 0..h {
            for col in 0..w {
                r.set_pixel(col, row, ((row * w + col) % 60_000) as u32).unwrap();
            }
        }
        r
    }

    #[test]
    fn store_and_fetch_whole_roundtrip() {
        let cluster = Cluster::create(&ClusterConfig::for_test(2, "rs1")).unwrap();
        let r = gradient(120, 80);
        let sr = store_raster(&cluster, 0, &r, false, 2048).unwrap();
        assert!(sr.tiles.len() > 1, "should be tiled");
        // All tiles on the home node.
        assert!(sr.tiles.iter().all(|t| t.node == 0));
        let back = fetch_whole(&cluster, 0, &sr).unwrap();
        assert_eq!(back.array().data(), r.array().data());
        assert_eq!(back.geo(), r.geo());
    }

    #[test]
    fn fetch_region_reads_only_needed_tiles_and_pulls_remote() {
        let cluster = Cluster::create(&ClusterConfig::for_test(2, "rs2")).unwrap();
        let r = gradient(128, 128);
        let sr = store_raster(&cluster, 0, &r, false, 1024).unwrap();
        let total = sr.tiles.len();
        // Local fetch of a corner region: few tiles, no pulls.
        let base = cluster.net.snapshot();
        let (region, read) = fetch_region(&cluster, 0, &sr, 0, 16, 0, 16).unwrap();
        assert!(read < total / 2, "{read} of {total}");
        assert_eq!(region.pixel(3, 2).unwrap(), r.pixel(3, 2).unwrap());
        assert_eq!(cluster.net.since(base).pulls, 0, "local reads are not pulls");
        // Remote fetch from node 1 pulls.
        let base = cluster.net.snapshot();
        let _ = fetch_region(&cluster, 1, &sr, 0, 16, 0, 16).unwrap();
        let d = cluster.net.since(base);
        assert_eq!(d.pulls as usize, read);
        assert!(d.pull_bytes > 0);
    }

    #[test]
    fn declustered_raster_spreads_tiles() {
        let cluster = Cluster::create(&ClusterConfig::for_test(4, "rs3")).unwrap();
        let r = gradient(256, 128); // world-covering raster
        let sr = store_raster(&cluster, 0, &r, true, 1024).unwrap();
        let nodes: std::collections::HashSet<u32> = sr.tiles.iter().map(|t| t.node).collect();
        assert!(nodes.len() > 1, "declustered tiles should span nodes: {nodes:?}");
        // Content survives the scatter.
        let back = fetch_whole(&cluster, 0, &sr).unwrap();
        assert_eq!(back.array().data(), r.array().data());
    }

    #[test]
    fn clip_stored_by_polygon() {
        let cluster = Cluster::create(&ClusterConfig::for_test(1, "rs4")).unwrap();
        let r = gradient(360, 180); // 1 pixel per degree
        let sr = store_raster(&cluster, 0, &r, false, 4096).unwrap();
        // A rectangle roughly like the continental US (~2% of the world).
        let us = Polygon::from_rect(
            &Rect::from_corners(Point::new(-125.0, 25.0), Point::new(-67.0, 49.0)).unwrap(),
        );
        let (clipped, tiles_read) = clip_stored(&cluster, 0, &sr, &us).unwrap().unwrap();
        assert!(tiles_read < sr.tiles.len(), "clip must not read every tile");
        assert_eq!(clipped.width(), 58);
        assert_eq!(clipped.height(), 24);
        // A polygon off the raster returns None.
        let off = Polygon::from_rect(
            &Rect::from_corners(Point::new(500.0, 500.0), Point::new(600.0, 600.0)).unwrap(),
        );
        assert!(clip_stored(&cluster, 0, &sr, &off).unwrap().is_none());
    }

    #[test]
    fn pixel_region_math() {
        let cluster = Cluster::create(&ClusterConfig::for_test(1, "rs5")).unwrap();
        let r = gradient(360, 180);
        let sr = store_raster(&cluster, 0, &r, false, 1 << 20).unwrap();
        // Whole world.
        assert_eq!(pixel_region(&sr, &world()), Some((0, 180, 0, 360)));
        // One-degree box at the top-left corner.
        let tl = Rect::from_corners(Point::new(-180.0, 89.0), Point::new(-179.0, 90.0)).unwrap();
        assert_eq!(pixel_region(&sr, &tl), Some((0, 1, 0, 1)));
        // Disjoint.
        let off = Rect::from_corners(Point::new(300.0, 0.0), Point::new(310.0, 10.0)).unwrap();
        assert_eq!(pixel_region(&sr, &off), None);
        // geo roundtrip
        let g = geo_of_region(&sr, 0, 180, 0, 360);
        assert_eq!(g, world());
    }

    #[test]
    fn compression_flags_recorded_per_tile() {
        let cluster = Cluster::create(&ClusterConfig::for_test(1, "rs6")).unwrap();
        // Left half constant, right half noisy.
        let mut r = Raster::new(128, 64, BitDepth::Eight, world()).unwrap();
        let mut x: u32 = 1;
        for row in 0..64 {
            for col in 64..128 {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                r.set_pixel(col, row, x >> 24).unwrap();
            }
        }
        let sr = store_raster(&cluster, 0, &r, false, 1024).unwrap();
        let compressed = sr.tiles.iter().filter(|t| t.compressed).count();
        assert!(compressed > 0, "smooth tiles should compress");
        assert!(compressed < sr.tiles.len(), "noisy tiles should stay raw");
        let back = fetch_whole(&cluster, 0, &sr).unwrap();
        assert_eq!(back.array().data(), r.array().data());
    }
}
