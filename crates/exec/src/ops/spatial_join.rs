//! Spatial joins: PBSM locally, tile-partitioned + replicated in parallel
//! (paper §2.4, §2.7.2).
//!
//! The parallel algorithm is the paper's two-phase scheme: (1) redecluster
//! both inputs on the shared spatial grid — shapes spanning several tiles
//! are *replicated*; (2) every node joins the tuples of the tiles it owns
//! with a Partition Based Spatial-Merge \[Pate96\] filter + refine pass.
//! Replication can produce duplicate result pairs (the Wisconsin river ×
//! US-90 example); they are eliminated with the PBSM *reference-point*
//! rule: a candidate pair is reported only by the tile containing the
//! lower-left corner of the two bounding boxes' intersection, and only by
//! the node owning that tile — each pair is therefore reported exactly
//! once cluster-wide.
//!
//! Inside one node the filter step is a **plane sweep**, not the quadratic
//! all-pairs test: each tile's two bucket lists are sorted by bbox `lo.x`
//! and swept forward so every x-overlapping pair is enumerated exactly
//! once, then checked for y-overlap, the reference-point rule, and the
//! exact refinement. Tile buckets are processed as fixed-size morsels on
//! the cluster's worker pool ([`crate::workers`]) in sorted tile order —
//! **the reference-point rule is evaluated per tile, never per morsel**,
//! so morsel boundaries cannot re-introduce duplicates, and morsel-order
//! merging keeps the output deterministic for every worker count.

use crate::cluster::Cluster;
use crate::metrics::QueryMetrics;
use crate::ops::basic::concat;
use crate::phase::{route, run_phase};
use crate::table::TableDef;
use crate::tuple::Tuple;
use crate::workers::TILE_MORSEL;
use crate::{ExecError, NodeId, Result};
use paradise_geom::{Grid, Rect, Shape, TileId};
use std::collections::HashMap;

/// Per-tile bucket lists: tuple indexes of both sides whose bounding boxes
/// touch the tile, for every tile (owned by `node`) present on *both*
/// sides, in ascending tile order.
type TileBuckets = Vec<(TileId, Vec<usize>, Vec<usize>)>;

/// One side's buckets plus its per-tuple bounding boxes.
type SideBuckets = (HashMap<TileId, Vec<usize>>, Vec<Rect>);

/// Buckets tuple indexes by the tiles their bounding boxes cover, keeping
/// only tiles `node` owns (other replicas handle the rest), and returns
/// the per-tuple bounding boxes alongside.
fn bucket_by_tile(
    cluster: &Cluster,
    node: NodeId,
    tuples: &[Tuple],
    col: usize,
) -> Result<SideBuckets> {
    let grid = cluster.grid();
    let mut buckets: HashMap<TileId, Vec<usize>> = HashMap::new();
    let mut boxes: Vec<Rect> = Vec::with_capacity(tuples.len());
    for (i, t) in tuples.iter().enumerate() {
        let b = t.get(col)?.as_shape()?.bbox();
        boxes.push(b);
        for tile in grid.tile_ids_for_rect(&b) {
            if cluster.node_for_tile(tile) == node {
                buckets.entry(tile).or_default().push(i);
            }
        }
    }
    Ok((buckets, boxes))
}

/// The sorted per-tile work list: tiles present in both inputs.
fn tile_worklist(
    cluster: &Cluster,
    node: NodeId,
    left: &[Tuple],
    lcol: usize,
    right: &[Tuple],
    rcol: usize,
) -> Result<(TileBuckets, Vec<Rect>, Vec<Rect>)> {
    let (lbuckets, lboxes) = bucket_by_tile(cluster, node, left, lcol)?;
    let (mut rbuckets, rboxes) = bucket_by_tile(cluster, node, right, rcol)?;
    let mut tiles: TileBuckets = lbuckets
        .into_iter()
        .filter_map(|(tile, lids)| rbuckets.remove(&tile).map(|rids| (tile, lids, rids)))
        .collect();
    // Sorted tile order makes the per-node output deterministic (the
    // buckets come out of a HashMap) and gives morsels a stable identity.
    tiles.sort_unstable_by_key(|(tile, _, _)| *tile);
    Ok((tiles, lboxes, rboxes))
}

/// Candidate test shared by the sweep and the quadratic reference: bbox
/// intersection (the y-overlap check of the sweep), the PBSM
/// reference-point rule **for this tile**, then the exact refinement.
#[allow(clippy::too_many_arguments)]
fn emit_if_reference_pair(
    grid: &Grid,
    tile: TileId,
    li: usize,
    ri: usize,
    lboxes: &[Rect],
    rboxes: &[Rect],
    left: &[Tuple],
    lcol: usize,
    right: &[Tuple],
    rcol: usize,
    out: &mut Vec<Tuple>,
) -> Result<()> {
    // Filter: bounding boxes must intersect (the sweep guarantees x; this
    // also checks y).
    let Some(ix) = lboxes[li].intersection(&rboxes[ri]) else {
        return Ok(());
    };
    // Reference point: report the pair only in the tile holding the
    // intersection's lower-left corner.
    if grid.tile_of_point(&ix.lo) != tile {
        return Ok(());
    }
    // Refine: exact geometry test.
    let ls: &Shape = left[li].get(lcol)?.as_shape()?;
    let rs: &Shape = right[ri].get(rcol)?.as_shape()?;
    if ls.overlaps(rs) {
        out.push(concat(&left[li], &right[ri]));
    }
    Ok(())
}

/// Plane-sweep filter over one tile's bucket lists: both lists are sorted
/// by bbox `lo.x` (ties by tuple index) and swept forward, enumerating
/// every x-overlapping pair exactly once before the y/reference/refine
/// checks.
#[allow(clippy::too_many_arguments)]
fn sweep_tile(
    grid: &Grid,
    tile: TileId,
    lids: &[usize],
    rids: &[usize],
    lboxes: &[Rect],
    rboxes: &[Rect],
    left: &[Tuple],
    lcol: usize,
    right: &[Tuple],
    rcol: usize,
    out: &mut Vec<Tuple>,
) -> Result<()> {
    fn sort_by_lo_x(ids: &[usize], boxes: &[Rect]) -> Vec<usize> {
        let mut sorted = ids.to_vec();
        sorted.sort_unstable_by(|&a, &b| {
            boxes[a]
                .lo
                .x
                .partial_cmp(&boxes[b].lo.x)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        sorted
    }
    let ls = sort_by_lo_x(lids, lboxes);
    let rs = sort_by_lo_x(rids, rboxes);

    let (mut i, mut j) = (0usize, 0usize);
    while i < ls.len() && j < rs.len() {
        if lboxes[ls[i]].lo.x <= rboxes[rs[j]].lo.x {
            // The left box starts first: pair it with every right box that
            // starts before it ends.
            let li = ls[i];
            let hi_x = lboxes[li].hi.x;
            let mut k = j;
            while k < rs.len() && rboxes[rs[k]].lo.x <= hi_x {
                emit_if_reference_pair(
                    grid, tile, li, rs[k], lboxes, rboxes, left, lcol, right, rcol, out,
                )?;
                k += 1;
            }
            i += 1;
        } else {
            let ri = rs[j];
            let hi_x = rboxes[ri].hi.x;
            let mut k = i;
            while k < ls.len() && lboxes[ls[k]].lo.x <= hi_x {
                emit_if_reference_pair(
                    grid, tile, ls[k], ri, lboxes, rboxes, left, lcol, right, rcol, out,
                )?;
                k += 1;
            }
            j += 1;
        }
    }
    Ok(())
}

/// Filter + refine join of two local tuple batches over the cluster grid,
/// reporting only pairs whose reference tile belongs to `node`.
///
/// Inputs are the node's fragments of spatially-declustered (and therefore
/// possibly replicated) tables. The filter is a per-tile plane sweep; tile
/// buckets run as [`TILE_MORSEL`]-sized morsels on the cluster's worker
/// pool and the outputs are merged in morsel (= sorted tile) order, so the
/// result is identical for every worker count.
pub fn local_tile_join(
    cluster: &Cluster,
    node: NodeId,
    left: &[Tuple],
    lcol: usize,
    right: &[Tuple],
    rcol: usize,
) -> Result<Vec<Tuple>> {
    let (tiles, lboxes, rboxes) = tile_worklist(cluster, node, left, lcol, right, rcol)?;
    let grid = cluster.grid();
    let pool = cluster.workers();
    let per_morsel = pool.run(tiles.len(), TILE_MORSEL, |range| {
        let mut out = Vec::new();
        for (tile, lids, rids) in &tiles[range] {
            sweep_tile(
                grid, *tile, lids, rids, &lboxes, &rboxes, left, lcol, right, rcol, &mut out,
            )?;
        }
        Ok::<_, ExecError>(out)
    })?;
    Ok(per_morsel.into_iter().flatten().collect())
}

/// The pre-sweep quadratic filter (every left×right bbox pair per tile),
/// kept as the reference implementation for equivalence tests and the
/// ablation benchmark. Semantics are identical to [`local_tile_join`];
/// only the candidate-enumeration order differs.
pub fn local_tile_join_quadratic(
    cluster: &Cluster,
    node: NodeId,
    left: &[Tuple],
    lcol: usize,
    right: &[Tuple],
    rcol: usize,
) -> Result<Vec<Tuple>> {
    let (tiles, lboxes, rboxes) = tile_worklist(cluster, node, left, lcol, right, rcol)?;
    let grid = cluster.grid();
    let mut out = Vec::new();
    for (tile, lids, rids) in &tiles {
        for &li in lids {
            for &ri in rids {
                emit_if_reference_pair(
                    grid, *tile, li, ri, &lboxes, &rboxes, left, lcol, right, rcol, &mut out,
                )?;
            }
        }
    }
    Ok(out)
}

/// Phase 1 of the parallel spatial join: redeclusters a table's tuples onto
/// the shared grid (replicating spanning shapes), returning each node's
/// received batch. Skip this for tables already spatially declustered —
/// "if either of the input tables are already declustered on their joining
/// attributes, then the first phase can be eliminated for that table".
pub fn spatial_repartition(
    cluster: &Cluster,
    metrics: &mut QueryMetrics,
    table: &TableDef,
    col: usize,
    phase_name: &str,
) -> Result<Vec<Vec<Tuple>>> {
    let outbox = run_phase(cluster, metrics, phase_name, |node| {
        let mut msgs: Vec<(NodeId, Tuple)> = Vec::new();
        table.scan_fragment(cluster, node, |_, t| {
            let b = t.get(col)?.as_shape()?.bbox();
            let mut dests: Vec<NodeId> = cluster
                .grid()
                .tile_ids_for_rect(&b)
                .into_iter()
                .map(|tile| cluster.node_for_tile(tile))
                .collect();
            dests.sort_unstable();
            dests.dedup();
            for d in dests {
                msgs.push((d, t.clone()));
            }
            Ok(())
        })?;
        Ok(msgs)
    })?;
    route(cluster, outbox)
}

/// The full parallel spatial join of two spatially-declustered tables:
/// every node joins its own fragments (phase 2 only — co-located inputs).
pub fn parallel_spatial_join(
    cluster: &Cluster,
    metrics: &mut QueryMetrics,
    left: &TableDef,
    lcol: usize,
    right: &TableDef,
    rcol: usize,
) -> Result<Vec<Vec<Tuple>>> {
    run_phase(cluster, metrics, "local spatial join", |node| {
        let l = left.fragment_tuples(cluster, node)?;
        let r = right.fragment_tuples(cluster, node)?;
        local_tile_join(cluster, node, &l, lcol, &r, rcol)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::decluster::Decluster;
    use crate::schema::{DataType, Field, Schema};
    use crate::value::Value;
    use paradise_geom::{Point, Polyline};

    fn cluster(n: usize, tag: &str) -> Cluster {
        Cluster::create(&ClusterConfig::for_test(n, tag)).unwrap()
    }

    fn line_table(name: &str) -> TableDef {
        TableDef::new(
            name,
            Schema::new(vec![
                Field::new("id", DataType::Str),
                Field::new("shape", DataType::Polyline),
            ]),
            Decluster::Spatial { col: 1 },
        )
    }

    fn line(id: &str, pts: &[(f64, f64)]) -> Tuple {
        Tuple::new(vec![
            Value::Str(id.into()),
            Value::Shape(Shape::Polyline(
                Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap(),
            )),
        ])
    }

    /// Brute-force expected crossing pairs.
    fn brute(pairs_l: &[Tuple], pairs_r: &[Tuple]) -> usize {
        let mut n = 0;
        for l in pairs_l {
            for r in pairs_r {
                let ls = l.get(1).unwrap().as_shape().unwrap();
                let rs = r.get(1).unwrap().as_shape().unwrap();
                if ls.overlaps(rs) {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn parallel_join_no_duplicates_for_multi_crossing_pair() {
        // The paper's Wisconsin-river × US-90 case: the shapes cross twice
        // in regions owned by different tiles/nodes; the result must still
        // contain exactly one pair.
        let c = cluster(4, "sj1");
        let rivers = line_table("rivers");
        let roads = line_table("roads");
        // A long zig-zag river and a long straight road crossing repeatedly.
        let river = line(
            "wisconsin",
            &[(-120.0, -40.0), (-60.0, 40.0), (0.0, -40.0), (60.0, 40.0), (120.0, -40.0)],
        );
        let road = line("us90", &[(-150.0, 0.0), (150.0, 0.0)]);
        rivers.load(&c, vec![river.clone()]).unwrap();
        roads.load(&c, vec![road.clone()]).unwrap();
        // Both tuples are replicated to several nodes.
        assert!(rivers.stored_count(&c) > 1);
        let mut m = QueryMetrics::default();
        let per_node = parallel_spatial_join(&c, &mut m, &rivers, 1, &roads, 1).unwrap();
        let total: usize = per_node.iter().map(|v| v.len()).sum();
        assert_eq!(total, 1, "duplicates must be eliminated");
    }

    #[test]
    fn parallel_join_matches_brute_force() {
        let c = cluster(4, "sj2");
        let drainage = line_table("drainage");
        let roads = line_table("roads");
        // Deterministic pseudo-random short segments.
        let mut x: u64 = 42;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 3000) as f64 / 10.0 - 150.0
        };
        // Vary the segment direction — identical directions would make
        // every pair parallel and crossing-free.
        let mk = |next: &mut dyn FnMut() -> f64, id: String| {
            let (a, b) = (next(), next() * 0.5);
            let (dx, dy) = (next() / 15.0, next() / 25.0);
            line(&id, &[(a, b), (a + dx, b + dy)])
        };
        let dr: Vec<Tuple> = (0..80).map(|i| mk(&mut next, format!("d{i}"))).collect();
        let rd: Vec<Tuple> = (0..80).map(|i| mk(&mut next, format!("r{i}"))).collect();
        drainage.load(&c, dr.clone()).unwrap();
        roads.load(&c, rd.clone()).unwrap();
        let mut m = QueryMetrics::default();
        let per_node = parallel_spatial_join(&c, &mut m, &drainage, 1, &roads, 1).unwrap();
        let total: usize = per_node.iter().map(|v| v.len()).sum();
        assert_eq!(total, brute(&dr, &rd));
        assert!(total > 0, "test should produce some crossings");
    }

    #[test]
    fn local_tile_join_respects_node_ownership() {
        // A pair visible on a node that doesn't own the reference tile must
        // not be reported by that node.
        let c = cluster(4, "sj3");
        let l = vec![line("a", &[(-50.0, -50.0), (50.0, 50.0)])];
        let r = vec![line("b", &[(-50.0, 50.0), (50.0, -50.0)])];
        let mut owners = Vec::new();
        let mut total = 0;
        for node in 0..4 {
            let out = local_tile_join(&c, node, &l, 1, &r, 1).unwrap();
            if !out.is_empty() {
                owners.push(node);
            }
            total += out.len();
        }
        assert_eq!(total, 1);
        assert_eq!(owners.len(), 1);
    }

    #[test]
    fn spatial_repartition_replicates_and_ships() {
        let c = cluster(4, "sj4");
        // A hash-declustered table being redeclustered spatially (phase 1).
        let t = TableDef::new(
            "roads_hash",
            Schema::new(vec![
                Field::new("id", DataType::Str),
                Field::new("shape", DataType::Polyline),
            ]),
            Decluster::Hash { col: 0 },
        );
        let rows: Vec<Tuple> = (0..40)
            .map(|i| {
                let x = f64::from(i) * 7.0 - 140.0;
                line(&format!("r{i}"), &[(x, -20.0), (x + 5.0, 20.0)])
            })
            .collect();
        t.load(&c, rows).unwrap();
        let mut m = QueryMetrics::default();
        let base = c.net.snapshot();
        let parts = spatial_repartition(&c, &mut m, &t, 1, "repartition roads").unwrap();
        let received: usize = parts.iter().map(|v| v.len()).sum();
        assert!(received >= 40, "every tuple must arrive somewhere");
        assert!(c.net.since(base).tuples > 0, "repartitioning crosses nodes");
        assert_eq!(m.phases.len(), 1);
    }
}
