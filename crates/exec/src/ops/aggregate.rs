//! Two-phase, *extensible* aggregation (paper §2.4).
//!
//! "Our solution … is to define all aggregate operators in terms of local
//! and global functions. The local function is executed during the first
//! phase and the global function during the second phase. … When the
//! system is extended either by adding new ADTs and/or new aggregate
//! operators, the aggregate name along with its local and global functions
//! are registered in the system catalogs."
//!
//! The partial state is itself a [`Tuple`], so a new aggregate can carry
//! whatever composite it needs (`avg` carries `(sum, count)`, `closest`
//! carries `(distance, shape-bearing tuple)`).

use crate::table::index_key;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::workers::{WorkerPool, TUPLE_MORSEL};
use crate::{ExecError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Accumulates one input tuple into the partial state (phase 1, runs on
/// every node over its fragment).
pub type LocalFn = Arc<dyn Fn(&mut Option<Tuple>, &Tuple) -> Result<()> + Send + Sync>;
/// Merges a partial state from some node into the combined state (phase 2,
/// runs once).
pub type GlobalFn = Arc<dyn Fn(&mut Option<Tuple>, &Tuple) -> Result<()> + Send + Sync>;
/// Turns the combined state into the result value.
pub type FinishFn = Arc<dyn Fn(Tuple) -> Result<Value> + Send + Sync>;

/// A registered aggregate: (local, global, finish).
#[derive(Clone)]
pub struct AggregateFn {
    /// Catalog name.
    pub name: String,
    /// Phase-1 accumulator.
    pub local: LocalFn,
    /// Phase-2 merger.
    pub global: GlobalFn,
    /// Finaliser.
    pub finish: FinishFn,
}

/// The aggregate catalog. New ADTs register their aggregates here without
/// touching the scheduler or execution engine.
#[derive(Clone, Default)]
pub struct AggRegistry {
    map: HashMap<String, AggregateFn>,
}

impl AggRegistry {
    /// A registry pre-loaded with the standard SQL aggregates over column 0
    /// of the aggregate input (`count`, `sum`, `avg`, `min`, `max`).
    pub fn with_builtins() -> Self {
        let mut r = AggRegistry::default();
        r.register(count_agg());
        r.register(sum_agg());
        r.register(avg_agg());
        r.register(minmax_agg("min", true));
        r.register(minmax_agg("max", false));
        r
    }

    /// Registers (or replaces) an aggregate.
    ///
    /// The §2.4 extension path end to end — define a `product` aggregate
    /// in terms of local/global functions, register it, and run both
    /// phases:
    ///
    /// ```
    /// use paradise_exec::ops::aggregate::{
    ///     global_aggregate, local_aggregate, AggRegistry, AggregateFn,
    /// };
    /// use paradise_exec::{Tuple, Value};
    /// use std::sync::Arc;
    ///
    /// let mul = Arc::new(|st: &mut Option<Tuple>, t: &Tuple| {
    ///     let x = t.get(0)?.as_float()?;
    ///     let p = match st {
    ///         Some(prev) => prev.get(0)?.as_float()? * x,
    ///         None => x,
    ///     };
    ///     *st = Some(Tuple::new(vec![Value::Float(p)]));
    ///     Ok(())
    /// });
    /// let mut registry = AggRegistry::with_builtins();
    /// registry.register(AggregateFn {
    ///     name: "product".into(),
    ///     local: mul.clone(),
    ///     global: mul,
    ///     finish: Arc::new(|t| Ok(t.get(0)?.clone())),
    /// });
    ///
    /// let agg = registry.get("product")?;
    /// let rows: Vec<Tuple> =
    ///     [2.0, 3.0, 4.0].iter().map(|&v| Tuple::new(vec![Value::Float(v)])).collect();
    /// // One-node plan: phase 1 locally, phase 2 globally.
    /// let partials = local_aggregate(&rows, &[], agg)?;
    /// let out = global_aggregate(vec![partials], agg)?;
    /// assert_eq!(out[0].get(0)?, &Value::Float(24.0));
    /// # Ok::<(), paradise_exec::ExecError>(())
    /// ```
    pub fn register(&mut self, f: AggregateFn) {
        self.map.insert(f.name.clone(), f);
    }

    /// Looks up an aggregate by name.
    pub fn get(&self, name: &str) -> Result<&AggregateFn> {
        self.map.get(name).ok_or_else(|| ExecError::NotFound(format!("aggregate {name}")))
    }

    /// Registered names (for catalog listings).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Phase 1: folds a fragment into per-group partial states. `group_cols`
/// picks the GROUP BY columns; the whole input tuple is handed to the
/// aggregate's local function.
pub fn local_aggregate(
    input: &[Tuple],
    group_cols: &[usize],
    agg: &AggregateFn,
) -> Result<Vec<(Vec<Value>, Tuple)>> {
    let mut groups: HashMap<Vec<u8>, (Vec<Value>, Option<Tuple>)> = HashMap::new();
    for t in input {
        let mut key_bytes = Vec::new();
        let mut key_vals = Vec::with_capacity(group_cols.len());
        for &c in group_cols {
            let v = t.get(c)?;
            key_bytes.extend(index_key(v));
            key_bytes.push(0xFF); // separator
            key_vals.push(v.clone());
        }
        let entry = groups.entry(key_bytes).or_insert_with(|| (key_vals, None));
        (agg.local)(&mut entry.1, t)?;
    }
    let mut out: Vec<(Vec<Value>, Tuple)> =
        groups.into_values().filter_map(|(k, state)| state.map(|s| (k, s))).collect();
    // Deterministic order for tests and stable output.
    out.sort_by(|a, b| {
        let ka: Vec<u8> = a.0.iter().flat_map(index_key).collect();
        let kb: Vec<u8> = b.0.iter().flat_map(index_key).collect();
        ka.cmp(&kb)
    });
    Ok(out)
}

/// [`local_aggregate`] with phase 1 running as [`TUPLE_MORSEL`]-sized
/// morsels on a worker pool: each morsel folds its slice into per-group
/// partial states with the aggregate's *local* function, and the morsel
/// partials are merged **in morsel order** through the existing *global*
/// function — the same local/global contract the cross-node phase 2 uses,
/// so the output remains a mergeable partial. Fixed morsel boundaries
/// (never derived from the worker count) fix the fold's association
/// order, making the result byte-identical for every pool size.
pub fn local_aggregate_with(
    pool: &WorkerPool,
    input: &[Tuple],
    group_cols: &[usize],
    agg: &AggregateFn,
) -> Result<Vec<(Vec<Value>, Tuple)>> {
    let mut per_morsel = pool
        .run(input.len(), TUPLE_MORSEL, |range| local_aggregate(&input[range], group_cols, agg))?;
    if per_morsel.len() <= 1 {
        // Single morsel: exactly the serial fold.
        return Ok(per_morsel.pop().unwrap_or_default());
    }
    // Merge morsel partials in morsel order via the global function.
    let mut merged: HashMap<Vec<u8>, (Vec<Value>, Option<Tuple>)> = HashMap::new();
    for morsel in per_morsel {
        for (key_vals, state) in morsel {
            let key: Vec<u8> = key_vals.iter().flat_map(index_key).collect();
            let entry = merged.entry(key).or_insert_with(|| (key_vals, None));
            (agg.global)(&mut entry.1, &state)?;
        }
    }
    let mut out: Vec<(Vec<Value>, Tuple)> =
        merged.into_values().filter_map(|(k, state)| state.map(|s| (k, s))).collect();
    out.sort_by(|a, b| {
        let ka: Vec<u8> = a.0.iter().flat_map(index_key).collect();
        let kb: Vec<u8> = b.0.iter().flat_map(index_key).collect();
        ka.cmp(&kb)
    });
    Ok(out)
}

/// Phase 2: merges every node's partials and finishes each group. Returns
/// `(group values…, aggregate result)` tuples. This operator is the
/// sequential tail the paper calls out for Q11/Q12.
pub fn global_aggregate(
    partials: Vec<Vec<(Vec<Value>, Tuple)>>,
    agg: &AggregateFn,
) -> Result<Vec<Tuple>> {
    let mut merged: HashMap<Vec<u8>, (Vec<Value>, Option<Tuple>)> = HashMap::new();
    for node_partials in partials {
        for (key_vals, state) in node_partials {
            let key: Vec<u8> = key_vals.iter().flat_map(index_key).collect();
            let entry = merged.entry(key).or_insert_with(|| (key_vals, None));
            (agg.global)(&mut entry.1, &state)?;
        }
    }
    let mut keys: Vec<Vec<u8>> = merged.keys().cloned().collect();
    keys.sort();
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let (group, state) = merged.remove(&k).expect("key present");
        let state = state.expect("at least one partial per group");
        let mut values = group;
        values.push((agg.finish)(state)?);
        out.push(Tuple::new(values));
    }
    Ok(out)
}

/// `count(*)`.
pub fn count_agg() -> AggregateFn {
    AggregateFn {
        name: "count".into(),
        local: Arc::new(|st, _| {
            let n = match st {
                Some(t) => t.get(0)?.as_int()? + 1,
                None => 1,
            };
            *st = Some(Tuple::new(vec![Value::Int(n)]));
            Ok(())
        }),
        global: Arc::new(|st, p| {
            let n = match st {
                Some(t) => t.get(0)?.as_int()? + p.get(0)?.as_int()?,
                None => p.get(0)?.as_int()?,
            };
            *st = Some(Tuple::new(vec![Value::Int(n)]));
            Ok(())
        }),
        finish: Arc::new(|t| Ok(t.get(0)?.clone())),
    }
}

/// `sum(col 0)` over floats/ints.
pub fn sum_agg() -> AggregateFn {
    AggregateFn {
        name: "sum".into(),
        local: Arc::new(|st, t| {
            let add = t.get(0)?.as_float()?;
            let s = match st {
                Some(t) => t.get(0)?.as_float()? + add,
                None => add,
            };
            *st = Some(Tuple::new(vec![Value::Float(s)]));
            Ok(())
        }),
        global: Arc::new(|st, p| {
            let add = p.get(0)?.as_float()?;
            let s = match st {
                Some(t) => t.get(0)?.as_float()? + add,
                None => add,
            };
            *st = Some(Tuple::new(vec![Value::Float(s)]));
            Ok(())
        }),
        finish: Arc::new(|t| Ok(t.get(0)?.clone())),
    }
}

/// `avg(col 0)`: partial state is `(sum, count)` — the paper's running
/// example of a two-phase aggregate.
pub fn avg_agg() -> AggregateFn {
    AggregateFn {
        name: "avg".into(),
        local: Arc::new(|st, t| {
            let x = t.get(0)?.as_float()?;
            let (s, n) = match st {
                Some(t) => (t.get(0)?.as_float()? + x, t.get(1)?.as_int()? + 1),
                None => (x, 1),
            };
            *st = Some(Tuple::new(vec![Value::Float(s), Value::Int(n)]));
            Ok(())
        }),
        global: Arc::new(|st, p| {
            let (ps, pn) = (p.get(0)?.as_float()?, p.get(1)?.as_int()?);
            let (s, n) = match st {
                Some(t) => (t.get(0)?.as_float()? + ps, t.get(1)?.as_int()? + pn),
                None => (ps, pn),
            };
            *st = Some(Tuple::new(vec![Value::Float(s), Value::Int(n)]));
            Ok(())
        }),
        finish: Arc::new(|t| Ok(Value::Float(t.get(0)?.as_float()? / t.get(1)?.as_int()? as f64))),
    }
}

/// `min`/`max`(col 0) by the order-preserving key encoding.
pub fn minmax_agg(name: &str, is_min: bool) -> AggregateFn {
    let better = move |cur: &Value, cand: &Value| -> bool {
        let c = index_key(cand).cmp(&index_key(cur));
        if is_min {
            c.is_lt()
        } else {
            c.is_gt()
        }
    };
    let pick = move |st: &mut Option<Tuple>, v: &Value| {
        let replace = match st.as_ref() {
            Some(t) => t.get(0).map(|cur| better(cur, v)).unwrap_or(true),
            None => true,
        };
        if replace {
            *st = Some(Tuple::new(vec![v.clone()]));
        }
    };
    AggregateFn {
        name: name.into(),
        local: Arc::new(move |st, t| {
            pick(st, t.get(0)?);
            Ok(())
        }),
        global: Arc::new(move |st, p| {
            pick(st, p.get(0)?);
            Ok(())
        }),
        finish: Arc::new(|t| Ok(t.get(0)?.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(g: i64, v: f64) -> Tuple {
        // aggregate input convention: col 0 = value, col 1 = group
        Tuple::new(vec![Value::Float(v), Value::Int(g)])
    }

    /// Distributes rows across "nodes", runs both phases, returns results.
    fn run(agg: &AggregateFn, rows: Vec<Tuple>, nodes: usize, group: &[usize]) -> Vec<Tuple> {
        let mut frags: Vec<Vec<Tuple>> = vec![Vec::new(); nodes];
        for (i, r) in rows.into_iter().enumerate() {
            frags[i % nodes].push(r);
        }
        let partials: Vec<_> =
            frags.iter().map(|f| local_aggregate(f, group, agg).unwrap()).collect();
        global_aggregate(partials, agg).unwrap()
    }

    #[test]
    fn count_per_group_across_nodes() {
        let rows: Vec<Tuple> = (0..30).map(|i| t2(i64::from(i % 3), 0.0)).collect();
        let out = run(&count_agg(), rows, 4, &[1]);
        assert_eq!(out.len(), 3);
        for row in &out {
            assert_eq!(row.get(1).unwrap(), &Value::Int(10));
        }
    }

    #[test]
    fn avg_matches_reference() {
        let rows: Vec<Tuple> = (0..100).map(|i| t2(0, f64::from(i))).collect();
        let out = run(&avg_agg(), rows, 3, &[1]);
        assert_eq!(out.len(), 1);
        let avg = out[0].get(1).unwrap().as_float().unwrap();
        assert!((avg - 49.5).abs() < 1e-9);
    }

    #[test]
    fn sum_and_minmax() {
        let rows = vec![t2(0, 5.0), t2(0, -2.0), t2(0, 7.5)];
        let s = run(&sum_agg(), rows.clone(), 2, &[1]);
        assert!((s[0].get(1).unwrap().as_float().unwrap() - 10.5).abs() < 1e-9);
        let mn = run(&minmax_agg("min", true), rows.clone(), 2, &[1]);
        assert_eq!(mn[0].get(1).unwrap(), &Value::Float(-2.0));
        let mx = run(&minmax_agg("max", false), rows, 2, &[1]);
        assert_eq!(mx[0].get(1).unwrap(), &Value::Float(7.5));
    }

    #[test]
    fn grouping_key_is_composite_safe() {
        // Groups ("a", "bc") and ("ab", "c") must stay distinct.
        let rows = vec![
            Tuple::new(vec![Value::Float(1.0), Value::Str("a".into()), Value::Str("bc".into())]),
            Tuple::new(vec![Value::Float(2.0), Value::Str("ab".into()), Value::Str("c".into())]),
        ];
        let out = run(&count_agg(), rows, 1, &[1, 2]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn registry_registration_and_lookup() {
        let mut r = AggRegistry::with_builtins();
        assert!(r.get("avg").is_ok());
        assert!(r.get("closest").is_err());
        // Register a new aggregate (the §2.4 extension path).
        let custom = AggregateFn {
            name: "closest".into(),
            local: count_agg().local,
            global: count_agg().global,
            finish: count_agg().finish,
        };
        r.register(custom);
        assert!(r.get("closest").is_ok());
        assert!(r.names().contains(&"closest".to_string()));
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let out = run(&count_agg(), vec![], 2, &[1]);
        assert!(out.is_empty());
    }
}
