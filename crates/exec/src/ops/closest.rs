//! The `closest` spatial aggregate and the spatial join-with-aggregate of
//! Figure 3.1 (paper §2.7.3, §3.1.2 / benchmark Q11, Q12).

use crate::cluster::Cluster;
use crate::metrics::QueryMetrics;
use crate::phase::{route, run_phase, run_sequential};
use crate::table::TableDef;
use crate::tuple::Tuple;
use crate::{NodeId, Result};
use paradise_geom::{Circle, Point, Rect};
use paradise_storage::RTree;

/// Finds the entry of `rtree` closest to `point` by *exact* shape distance
/// (`dist(payload)`), using the paper's expanding-circle probe: start with
/// a circle whose area is a millionth of the universe, double the area
/// until the probe returns candidates, then verify with one final probe at
/// the best exact distance (a candidate's true shape can lie farther than
/// its bounding box). Falls back to a full scan over `all_payloads` when
/// the circle outgrows the universe.
pub fn expanding_circle_closest(
    rtree: &RTree,
    point: &Point,
    universe: &Rect,
    mut dist: impl FnMut(u64) -> Result<f64>,
    all_payloads: impl Fn() -> Vec<u64>,
) -> Result<Option<(u64, f64)>> {
    if rtree.is_empty() {
        // "the index scan is changed to a file scan"
        return full_scan_closest(all_payloads(), dist);
    }
    let start_area = universe.area() / 1_000_000.0;
    let mut circle = Circle::new(*point, (start_area / std::f64::consts::PI).sqrt().max(1e-12))
        .expect("valid probe circle");
    let max_radius = universe.width().hypot(universe.height());
    loop {
        let candidates = rtree.search_circle(&circle);
        if !candidates.is_empty() {
            // Exact-distance refinement over this candidate set.
            let mut best: Option<(u64, f64)> = None;
            for (_, payload) in &candidates {
                let d = dist(*payload)?;
                if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
                    best = Some((*payload, d));
                }
            }
            let (bp, bd) = best.expect("non-empty candidates");
            if bd <= circle.radius {
                return Ok(Some((bp, bd)));
            }
            // The nearest candidate's true distance exceeds the probe
            // radius: a closer shape may exist outside the circle. Re-probe
            // at the verified distance.
            let verify = Circle::new(*point, bd).expect("valid radius");
            let mut best = (bp, bd);
            for (_, payload) in rtree.search_circle(&verify) {
                let d = dist(payload)?;
                if d < best.1 {
                    best = (payload, d);
                }
            }
            return Ok(Some(best));
        }
        if circle.radius > max_radius {
            return full_scan_closest(all_payloads(), dist);
        }
        // "forms a new circle, which is twice the area of the previous"
        circle = circle.scale_area(2.0);
    }
}

fn full_scan_closest(
    payloads: Vec<u64>,
    mut dist: impl FnMut(u64) -> Result<f64>,
) -> Result<Option<(u64, f64)>> {
    let mut best: Option<(u64, f64)> = None;
    for p in payloads {
        let d = dist(p)?;
        if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
            best = Some((p, d));
        }
    }
    Ok(best)
}

/// The spatial semi-join test (Figure 3.1): form the largest circle around
/// the point completely contained in the point's grid tile; if a local
/// feature provably lies inside that circle, the closest feature is local
/// and the point need not be broadcast.
///
/// The R-tree probe is only a bounding-box filter; the guarantee requires
/// an *exact* feature within the circle (everything outside the tile is at
/// least `circle.radius` away), so candidates are refined with `dist`.
pub fn semi_join_is_local(
    cluster: &Cluster,
    rtree: &RTree,
    point: &Point,
    mut dist: impl FnMut(u64) -> Result<f64>,
) -> Result<bool> {
    let tile = cluster.grid().tile_of_point(point);
    let tile_rect = cluster.grid().tile_rect(tile);
    match Circle::largest_inscribed(*point, &tile_rect) {
        Some(c) if c.radius > 0.0 => {
            for (_, payload) in rtree.search_circle(&c) {
                if dist(payload)? <= c.radius {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        _ => Ok(false),
    }
}

/// One result row of a closest join.
#[derive(Debug, Clone)]
pub struct ClosestResult {
    /// The outer (point) tuple.
    pub outer: Tuple,
    /// The closest inner tuple.
    pub inner: Tuple,
    /// Their distance.
    pub distance: f64,
}

/// The parallel spatial join-with-aggregate of Figure 3.1 (benchmark Q12):
/// finds, for every outer point, the closest inner feature.
///
/// * `inner` must be spatially declustered; each node builds an on-the-fly
///   R*-tree over its fragment (step 3 of the paper's walk-through).
/// * `outer_pts[node]` holds the (already spatially declustered) point
///   tuples of each node; `outer_col` is the point column.
/// * With `use_semi_join = false` every point is broadcast to all nodes
///   (the ablation of the semi-join optimisation).
///
/// The final global-aggregate step is sequential, exactly as in the paper
/// ("this operator represents a sequential portion of the query execution,
/// and hurts the speedup and scaleup somewhat").
pub fn closest_join(
    cluster: &Cluster,
    metrics: &mut QueryMetrics,
    inner: &TableDef,
    inner_col: usize,
    outer_pts: Vec<Vec<Tuple>>,
    outer_col: usize,
    use_semi_join: bool,
) -> Result<Vec<ClosestResult>> {
    let n = cluster.num_nodes();

    // Step 3: per-node on-the-fly index over the inner fragments.
    let mut frags: Vec<Vec<Tuple>> = Vec::with_capacity(n);
    let mut trees: Vec<RTree> = Vec::with_capacity(n);
    {
        let mut built = run_phase(cluster, metrics, "build local index", |node| {
            let frag = inner.fragment_tuples(cluster, node)?;
            let entries: Vec<(Rect, u64)> = frag
                .iter()
                .enumerate()
                .map(|(i, t)| Ok((t.get(inner_col)?.as_shape()?.bbox(), i as u64)))
                .collect::<Result<_>>()?;
            let mut tree = RTree::bulk_load(entries);
            tree.set_visit_counter(cluster.obs().counter("rtree.node_visits"));
            Ok((frag, tree))
        })?;
        for (frag, tree) in built.drain(..) {
            frags.push(frag);
            trees.push(tree);
        }
    }

    // Step 4a: spatial semi-join routes each point (Figure 3.1 lower half).
    let outbox = {
        let (trees, frags) = (&trees, &frags);
        let mut outer_iter = outer_pts.into_iter();
        run_phase(cluster, metrics, "spatial semi-join", move |node| {
            let pts = outer_iter.next().expect("one batch per node");
            let mut msgs: Vec<(NodeId, Tuple)> = Vec::new();
            for t in pts {
                let p = t.get(outer_col)?.as_shape()?.as_point().ok_or(crate::ExecError::Type {
                    expected: "point",
                    got: "non-point shape".into(),
                })?;
                let local = use_semi_join
                    && semi_join_is_local(cluster, &trees[node], &p, |payload| {
                        Ok(frags[node][payload as usize]
                            .get(inner_col)?
                            .as_shape()?
                            .distance_to_point(&p))
                    })?;
                if local {
                    msgs.push((node, t));
                } else {
                    // Replicate to every node: the closest feature could be
                    // anywhere (Figure 2.5's Madison case).
                    for dest in 0..cluster.num_nodes() {
                        msgs.push((dest, t.clone()));
                    }
                }
            }
            Ok(msgs)
        })?
    };
    let inbox = route(cluster, outbox)?;

    // Step 4b: join-with-aggregate per node (expanding circle probes).
    let per_node: Vec<Vec<(Tuple, usize, f64)>> = {
        let (trees, frags) = (&trees, &frags);
        let mut inbox_iter = inbox.into_iter();
        run_phase(cluster, metrics, "join with aggregate", move |node| {
            let pts = inbox_iter.next().expect("one inbox per node");
            let mut out = Vec::new();
            for t in pts {
                let p = t.get(outer_col)?.as_shape()?.as_point().expect("checked");
                let found = expanding_circle_closest(
                    &trees[node],
                    &p,
                    &cluster.grid().universe(),
                    |payload| {
                        Ok(frags[node][payload as usize]
                            .get(inner_col)?
                            .as_shape()?
                            .distance_to_point(&p))
                    },
                    || (0..frags[node].len() as u64).collect(),
                )?;
                if let Some((payload, d)) = found {
                    out.push((t, payload as usize, d));
                }
            }
            Ok(out)
        })?
    };

    // Final sequential global aggregate: min distance per outer point.
    run_sequential(metrics, || {
        use std::collections::HashMap;
        let mut best: HashMap<Vec<u8>, ClosestResult> = HashMap::new();
        for (node, rows) in per_node.into_iter().enumerate() {
            for (outer, inner_idx, d) in rows {
                // Results crossing back to the coordinator are network
                // traffic when they come from another node.
                if node != 0 {
                    cluster.net.ship(outer.wire_size() + 16);
                }
                let key = outer.encode();
                let replace = best.get(&key).is_none_or(|r| d < r.distance);
                if replace {
                    best.insert(
                        key,
                        ClosestResult { outer, inner: frags[node][inner_idx].clone(), distance: d },
                    );
                }
            }
        }
        let mut out: Vec<ClosestResult> = best.into_values().collect();
        out.sort_by_key(|a| a.outer.encode());
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::decluster::Decluster;
    use crate::schema::{DataType, Field, Schema};
    use crate::value::Value;
    use paradise_geom::{Polyline, Shape};

    fn cluster(n: usize, tag: &str) -> Cluster {
        Cluster::create(&ClusterConfig::for_test(n, tag)).unwrap()
    }

    fn seg_table(name: &str) -> TableDef {
        TableDef::new(
            name,
            Schema::new(vec![
                Field::new("id", DataType::Str),
                Field::new("shape", DataType::Polyline),
            ]),
            Decluster::Spatial { col: 1 },
        )
    }

    fn seg(id: &str, x0: f64, y0: f64, x1: f64, y1: f64) -> Tuple {
        Tuple::new(vec![
            Value::Str(id.into()),
            Value::Shape(Shape::Polyline(
                Polyline::new(vec![Point::new(x0, y0), Point::new(x1, y1)]).unwrap(),
            )),
        ])
    }

    fn pt(id: &str, x: f64, y: f64) -> Tuple {
        Tuple::new(vec![Value::Str(id.into()), Value::Shape(Shape::Point(Point::new(x, y)))])
    }

    /// Deterministic drainage segments spread over the world.
    fn world_segments(n: usize) -> Vec<Tuple> {
        let mut x: u64 = 7;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 3200) as f64 / 10.0 - 160.0
        };
        (0..n)
            .map(|i| {
                let (a, b) = (next(), next() * 0.5);
                seg(&format!("s{i}"), a, b, a + 3.0, b + 2.0)
            })
            .collect()
    }

    fn brute_closest(segments: &[Tuple], p: &Point) -> (String, f64) {
        let mut best = (String::new(), f64::INFINITY);
        for s in segments {
            let d = s.get(1).unwrap().as_shape().unwrap().distance_to_point(p);
            if d < best.1 {
                best = (s.get(0).unwrap().as_str().unwrap().to_string(), d);
            }
        }
        best
    }

    #[test]
    fn expanding_circle_matches_brute_force() {
        let segs = world_segments(200);
        let entries: Vec<(Rect, u64)> = segs
            .iter()
            .enumerate()
            .map(|(i, t)| (t.get(1).unwrap().as_shape().unwrap().bbox(), i as u64))
            .collect();
        let tree = RTree::bulk_load(entries);
        let universe =
            Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).unwrap();
        for probe in [Point::new(0.0, 0.0), Point::new(-170.0, 80.0), Point::new(42.0, -33.0)] {
            let got = expanding_circle_closest(
                &tree,
                &probe,
                &universe,
                |i| Ok(segs[i as usize].get(1)?.as_shape()?.distance_to_point(&probe)),
                || (0..segs.len() as u64).collect(),
            )
            .unwrap()
            .unwrap();
            let want = brute_closest(&segs, &probe);
            assert!((got.1 - want.1).abs() < 1e-9, "probe {probe}: {} vs {}", got.1, want.1);
        }
    }

    #[test]
    fn expanding_circle_empty_tree_falls_back() {
        let tree = RTree::new();
        let universe = Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let got = expanding_circle_closest(
            &tree,
            &Point::new(5.0, 5.0),
            &universe,
            |_| Ok(1.0),
            Vec::new,
        )
        .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn semi_join_detects_local_candidates() {
        let c = cluster(4, "cj1");
        // A point with a feature right next to it (same tile) is local.
        let p = Point::new(10.05, 10.05);
        let tile_rect = c.grid().tile_rect(c.grid().tile_of_point(&p));
        let near = tile_rect.center();
        let tree = RTree::bulk_load(vec![(near.bbox(), 0)]);
        let probe = tile_rect.center();
        let local = semi_join_is_local(&c, &tree, &probe, |_| Ok(near.distance(&probe))).unwrap();
        assert!(local);
        // An empty local index can never prove locality.
        let empty = RTree::new();
        assert!(!semi_join_is_local(&c, &empty, &p, |_| Ok(0.0)).unwrap());
        // A bbox-only false positive must NOT count as local: the exact
        // distance exceeds the inscribed radius.
        let far = semi_join_is_local(&c, &tree, &probe, |_| Ok(1e9)).unwrap();
        assert!(!far, "exact refinement must reject far features");
    }

    #[test]
    fn closest_join_matches_brute_force() {
        let c = cluster(4, "cj2");
        let drainage = seg_table("drainage");
        let segs = world_segments(150);
        drainage.load(&c, segs.clone()).unwrap();

        let cities: Vec<Tuple> = vec![
            pt("madison", -89.4, 43.1),
            pt("quito", -78.5, -0.2),
            pt("perth", 115.9, -31.9),
            pt("reykjavik", -21.9, 64.1),
        ];
        // Decluster the cities spatially, as the paper's step 2 does.
        let mut outer: Vec<Vec<Tuple>> = vec![Vec::new(); 4];
        for t in &cities {
            let p = t.get(1).unwrap().as_shape().unwrap().as_point().unwrap();
            let node = c.node_for_tile(c.grid().tile_of_point(&p));
            outer[node].push(t.clone());
        }

        let mut m = QueryMetrics::default();
        let results = closest_join(&c, &mut m, &drainage, 1, outer, 1, true).unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            let p = r.outer.get(1).unwrap().as_shape().unwrap().as_point().unwrap();
            let (want_id, want_d) = brute_closest(&segs, &p);
            assert!(
                (r.distance - want_d).abs() < 1e-9,
                "{}: {} vs {} ({want_id})",
                r.outer.get(0).unwrap().as_str().unwrap(),
                r.distance,
                want_d
            );
        }
        // Phases recorded: index build, semi-join, join-with-aggregate.
        assert_eq!(m.phases.len(), 3);
        assert!(m.sequential > std::time::Duration::ZERO);
    }

    #[test]
    fn semi_join_reduces_broadcasts() {
        let c = cluster(4, "cj3");
        let drainage = seg_table("drainage");
        // Dense features everywhere: most points should resolve locally.
        let segs = world_segments(800);
        drainage.load(&c, segs.clone()).unwrap();
        let cities: Vec<Tuple> = (0..40)
            .map(|i| {
                pt(&format!("c{i}"), f64::from(i) * 8.0 - 160.0, f64::from(i % 9) * 16.0 - 64.0)
            })
            .collect();
        let mut outer: Vec<Vec<Tuple>> = vec![Vec::new(); 4];
        for t in &cities {
            let p = t.get(1).unwrap().as_shape().unwrap().as_point().unwrap();
            outer[c.node_for_tile(c.grid().tile_of_point(&p))].push(t.clone());
        }

        let mut m1 = QueryMetrics::default();
        let b1 = c.net.snapshot();
        let with = closest_join(&c, &mut m1, &drainage, 1, outer.clone(), 1, true).unwrap();
        let traffic_with = c.net.since(b1).tuples;

        let mut m2 = QueryMetrics::default();
        let b2 = c.net.snapshot();
        let without = closest_join(&c, &mut m2, &drainage, 1, outer, 1, false).unwrap();
        let traffic_without = c.net.since(b2).tuples;

        assert_eq!(with.len(), without.len());
        // Identical answers.
        for (a, b) in with.iter().zip(&without) {
            assert!((a.distance - b.distance).abs() < 1e-9);
        }
        assert!(
            traffic_with < traffic_without,
            "semi-join should cut traffic: {traffic_with} vs {traffic_without}"
        );
    }
}
