//! Selection, projection and sort.

use crate::table::index_key;
use crate::tuple::Tuple;
use crate::workers::{WorkerPool, TUPLE_MORSEL};
use crate::Result;

/// Filters tuples by a predicate (the parallel `select` operator; each node
/// runs one instance over its fragment).
pub fn select(
    input: Vec<Tuple>,
    mut pred: impl FnMut(&Tuple) -> Result<bool>,
) -> Result<Vec<Tuple>> {
    let mut out = Vec::new();
    for t in input {
        if pred(&t)? {
            out.push(t);
        }
    }
    Ok(out)
}

/// [`select`] with the predicate evaluated in [`TUPLE_MORSEL`]-sized
/// morsels on a worker pool. Each morsel produces keep-flags (so matching
/// tuples are moved, not cloned); flags merge in morsel order, making the
/// output — including which error surfaces first — byte-identical to the
/// serial operator for every worker count.
pub fn par_select(
    pool: &WorkerPool,
    input: Vec<Tuple>,
    pred: impl Fn(&Tuple) -> Result<bool> + Sync,
) -> Result<Vec<Tuple>> {
    let keep = pool.map_chunks(&input, TUPLE_MORSEL, |chunk| {
        chunk.iter().map(&pred).collect::<Result<Vec<bool>>>()
    })?;
    Ok(input.into_iter().zip(keep).filter_map(|(t, k)| k.then_some(t)).collect())
}

/// Maps every tuple (projection with ADT method evaluation — clip,
/// lower_res, area … happen inside `f`). `f` returning `None` drops the
/// tuple (used when a clip produces an empty region).
pub fn project(
    input: Vec<Tuple>,
    mut f: impl FnMut(Tuple) -> Result<Option<Tuple>>,
) -> Result<Vec<Tuple>> {
    let mut out = Vec::with_capacity(input.len());
    for t in input {
        if let Some(t) = f(t)? {
            out.push(t);
        }
    }
    Ok(out)
}

/// [`project`] with the mapping evaluated in [`TUPLE_MORSEL`]-sized
/// morsels on a worker pool (the map takes the tuple by reference so
/// morsels can share the input). Outputs merge in morsel order —
/// byte-identical to the serial operator for every worker count.
pub fn par_project(
    pool: &WorkerPool,
    input: &[Tuple],
    f: impl Fn(&Tuple) -> Result<Option<Tuple>> + Sync,
) -> Result<Vec<Tuple>> {
    pool.map_chunks(input, TUPLE_MORSEL, |chunk| {
        let mut out = Vec::with_capacity(chunk.len());
        for t in chunk {
            if let Some(t) = f(t)? {
                out.push(t);
            }
        }
        Ok(out)
    })
}

/// Sorts tuples by column `col` using the order-preserving index encoding
/// (query 2's `order by date`).
pub fn sort_by_col(mut input: Vec<Tuple>, col: usize) -> Result<Vec<Tuple>> {
    // Precompute keys to keep the comparator panic-free.
    let mut keyed: Vec<(Vec<u8>, Tuple)> = input
        .drain(..)
        .map(|t| {
            let k = t.get(col).map(index_key)?;
            Ok((k, t))
        })
        .collect::<Result<_>>()?;
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(keyed.into_iter().map(|(_, t)| t).collect())
}

/// Concatenates two tuples (join output composition).
pub fn concat(a: &Tuple, b: &Tuple) -> Tuple {
    let mut values = Vec::with_capacity(a.values.len() + b.values.len());
    values.extend(a.values.iter().cloned());
    values.extend(b.values.iter().cloned());
    Tuple::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn select_filters() {
        let out = select((0..10).map(t).collect(), |t| Ok(t.get(0)?.as_int()? % 2 == 0)).unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn project_maps_and_drops() {
        let out = project((0..6).map(t).collect(), |t| {
            let v = t.get(0)?.as_int()?;
            Ok(if v >= 3 { Some(t) } else { None })
        })
        .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn sort_by_int_col() {
        let out = sort_by_col(vec![t(5), t(-3), t(9), t(0)], 0).unwrap();
        let vals: Vec<i64> = out.iter().map(|t| t.get(0).unwrap().as_int().unwrap()).collect();
        assert_eq!(vals, vec![-3, 0, 5, 9]);
    }

    #[test]
    fn concat_tuples() {
        let a = Tuple::new(vec![Value::Int(1)]);
        let b = Tuple::new(vec![Value::Str("x".into()), Value::Int(2)]);
        let c = concat(&a, &b);
        assert_eq!(c.values.len(), 3);
        assert_eq!(c.get(2).unwrap(), &Value::Int(2));
    }
}
