//! Relational join algorithms (paper §2.4): nested loops, indexed nested
//! loops, and dynamic-memory Grace hash join.

use crate::decluster::hash_value;
use crate::ops::basic::concat;
use crate::table::index_key;
use crate::tuple::Tuple;
use crate::workers::WorkerPool;
use crate::{ExecError, Result};
use std::collections::HashMap;

/// Fixed morsel size (hash buckets) for the parallel build/probe phase of
/// the Grace hash join: one morsel is a run of adjacent buckets. Fixed —
/// never derived from the worker count — so outputs merge identically for
/// every pool size.
const BUCKET_MORSEL: usize = 4;

/// Nested-loops join with an arbitrary predicate.
pub fn nested_loops_join(
    left: &[Tuple],
    right: &[Tuple],
    mut pred: impl FnMut(&Tuple, &Tuple) -> Result<bool>,
) -> Result<Vec<Tuple>> {
    let mut out = Vec::new();
    for l in left {
        for r in right {
            if pred(l, r)? {
                out.push(concat(l, r));
            }
        }
    }
    Ok(out)
}

/// Indexed nested-loops join: for every outer tuple, `probe` consults an
/// index (B+-tree or R*-tree) and returns the matching inner tuples. The
/// optimizer replicates small outers to use this when an index exists on
/// the inner join column (§2.4).
pub fn indexed_nl_join(
    outer: &[Tuple],
    mut probe: impl FnMut(&Tuple) -> Result<Vec<Tuple>>,
) -> Result<Vec<Tuple>> {
    let mut out = Vec::new();
    for o in outer {
        for inner in probe(o)? {
            out.push(concat(o, &inner));
        }
    }
    Ok(out)
}

/// Grace hash join on equality of `left[lcol] == right[rcol]`.
///
/// Phase 1 partitions both inputs by a hash of the join key into enough
/// buckets that each build side fits in `mem_budget` bytes (the
/// dynamic-memory behaviour of \[Kits89\]); phase 2 builds an in-memory
/// hash table per bucket from the smaller side and probes with the other.
pub fn hash_join(
    left: &[Tuple],
    lcol: usize,
    right: &[Tuple],
    rcol: usize,
    mem_budget: usize,
) -> Result<Vec<Tuple>> {
    hash_join_with(&WorkerPool::serial(), left, lcol, right, rcol, mem_budget)
}

/// [`hash_join`] with the build/probe phase running as bucket morsels on a
/// worker pool. Partitioning stays serial (it is a single cheap pass whose
/// first error must be deterministic); each morsel then builds and probes
/// a run of `BUCKET_MORSEL` (4) adjacent buckets, and the per-morsel outputs
/// are concatenated in bucket order — byte-identical to the serial join
/// for every worker count.
pub fn hash_join_with(
    pool: &WorkerPool,
    left: &[Tuple],
    lcol: usize,
    right: &[Tuple],
    rcol: usize,
    mem_budget: usize,
) -> Result<Vec<Tuple>> {
    // Choose the bucket count from the estimated build size.
    let build_bytes: usize = left.iter().map(|t| t.wire_size()).sum();
    let buckets = (build_bytes / mem_budget.max(1) + 1).next_power_of_two();

    let mut lparts: Vec<Vec<&Tuple>> = vec![Vec::new(); buckets];
    for t in left {
        let h = hash_value(t.get(lcol)?) as usize;
        lparts[h & (buckets - 1)].push(t);
    }
    let mut rparts: Vec<Vec<&Tuple>> = vec![Vec::new(); buckets];
    for t in right {
        let h = hash_value(t.get(rcol)?) as usize;
        rparts[h & (buckets - 1)].push(t);
    }

    let per_morsel = pool.run(buckets, BUCKET_MORSEL, |range| {
        let mut out = Vec::new();
        for (lp, rp) in lparts[range.clone()].iter().zip(&rparts[range]) {
            if lp.is_empty() || rp.is_empty() {
                continue;
            }
            // Build on the left partition, keyed by the order-preserving
            // encoding (hash collisions re-checked by key equality).
            let mut table: HashMap<Vec<u8>, Vec<&Tuple>> = HashMap::with_capacity(lp.len());
            for l in lp {
                table.entry(index_key(l.get(lcol)?)).or_default().push(l);
            }
            for r in rp {
                if let Some(matches) = table.get(&index_key(r.get(rcol)?)) {
                    for l in matches {
                        out.push(concat(l, r));
                    }
                }
            }
        }
        Ok::<_, ExecError>(out)
    })?;
    Ok(per_morsel.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn kv(k: i64, v: &str) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Str(v.into())])
    }

    #[test]
    fn nested_loops_cross_predicate() {
        let left = vec![kv(1, "a"), kv(2, "b")];
        let right = vec![kv(2, "x"), kv(3, "y")];
        let out =
            nested_loops_join(&left, &right, |l, r| Ok(l.get(0)?.as_int()? == r.get(0)?.as_int()?))
                .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(1).unwrap(), &Value::Str("b".into()));
        assert_eq!(out[0].get(3).unwrap(), &Value::Str("x".into()));
    }

    #[test]
    fn hash_join_matches_nested_loops() {
        let left: Vec<Tuple> = (0..200).map(|i| kv(i % 37, "l")).collect();
        let right: Vec<Tuple> = (0..150).map(|i| kv(i % 41, "r")).collect();
        let hj = hash_join(&left, 0, &right, 0, 1 << 20).unwrap();
        let nl =
            nested_loops_join(&left, &right, |l, r| Ok(l.get(0)?.as_int()? == r.get(0)?.as_int()?))
                .unwrap();
        assert_eq!(hj.len(), nl.len());
    }

    #[test]
    fn hash_join_tiny_budget_forces_many_buckets() {
        // A 100-byte budget forces heavy partitioning; result unchanged.
        let left: Vec<Tuple> = (0..100).map(|i| kv(i % 10, "l")).collect();
        let right: Vec<Tuple> = (0..100).map(|i| kv(i % 10, "r")).collect();
        let small = hash_join(&left, 0, &right, 0, 100).unwrap();
        let big = hash_join(&left, 0, &right, 0, 1 << 30).unwrap();
        assert_eq!(small.len(), big.len());
        assert_eq!(small.len(), 10 * 10 * 10); // 10 keys × 10 × 10
    }

    #[test]
    fn hash_join_duplicates_and_empties() {
        let left = vec![kv(7, "a"), kv(7, "b")];
        let right = vec![kv(7, "x"), kv(7, "y"), kv(8, "z")];
        let out = hash_join(&left, 0, &right, 0, 1024).unwrap();
        assert_eq!(out.len(), 4);
        assert!(hash_join(&[], 0, &right, 0, 1024).unwrap().is_empty());
        assert!(hash_join(&left, 0, &[], 0, 1024).unwrap().is_empty());
    }

    #[test]
    fn indexed_join_uses_probe() {
        let outer = vec![kv(1, "o1"), kv(2, "o2")];
        let out = indexed_nl_join(&outer, |o| {
            let k = o.get(0)?.as_int()?;
            Ok(if k == 2 { vec![kv(k, "hit")] } else { vec![] })
        })
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(1).unwrap(), &Value::Str("o2".into()));
    }
}
