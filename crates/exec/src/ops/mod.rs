//! The operator library (paper §2.4, §2.7).
//!
//! Operators work on materialised per-fragment tuple batches; the phase
//! driver ([`crate::phase`]) runs them per node and the stream layer
//! ([`crate::stream`]) pipelines them when the threaded driver is used.

pub mod aggregate;
pub mod basic;
pub mod closest;
pub mod join;
pub mod spatial_join;
