//! The simulated shared-nothing cluster.
//!
//! Paper §2.2/§3.2: Paradise runs one Query Coordinator plus one Data
//! Server per node; each node owns its disks exclusively. Here every node
//! is a [`Node`] owning one [`Store`] (volume + buffer pool + WAL) rooted
//! in its own directory — shared-nothing by construction. The paper's four
//! database disks per node are collapsed into one volume per node; within-
//! node disk striping does not change any of the parallel algorithms.
//!
//! Cross-node traffic (repartitioning, replication, pulls) is accounted in
//! [`NetStats`], which the experiments read.

use crate::stream::{self, RemoteRx, RemoteTx, TupleRx, TupleTx};
use crate::tuple::Tuple;
use crate::value::TileRef;
use crate::{ExecError, Result};
use paradise_geom::{Grid, Point, Rect, TileId};
use paradise_obs::{Counter, EventLog, MetricSample, MetricsRegistry, TraceSink};
use paradise_storage::{BufferStats, Store};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Index of a node within the cluster.
pub type NodeId = usize;

/// The endpoints a wire transport must provide. `paradise-net` implements
/// this over TCP; the trait lives here so the engine can be wired to any
/// transport without a dependency cycle (net depends on exec, not the
/// other way round).
pub trait WireTransport: Send + Sync {
    /// Opens a flow-controlled tuple stream from `src` to `dst` with a
    /// window of `window` tuples in flight. `dst` may be
    /// [`Cluster::coordinator_id`] (the QC endpoint). Returns the raw
    /// endpoints; the cluster wraps them with traffic accounting.
    fn open(
        &self,
        window: usize,
        src: NodeId,
        dst: NodeId,
    ) -> Result<(Arc<dyn RemoteTx>, Box<dyn RemoteRx>)>;

    /// Fetches the raw stored bytes of a tile object living on
    /// `tile.node`, on behalf of `requester` (§2.5.2 pull).
    fn fetch_tile(&self, requester: NodeId, tile: &TileRef) -> Result<Vec<u8>>;

    /// Pulls a snapshot of `node`'s metrics registry over the wire
    /// (`StatsPull`/`StatsReply`) — the monitoring plane's per-node view.
    fn pull_stats(&self, node: NodeId) -> Result<Vec<MetricSample>>;

    /// Stops servers and closes connections. Idempotent.
    fn shutdown(&self);
}

/// How tuples and tiles move between nodes.
#[derive(Clone)]
pub enum Transport {
    /// In-process bounded channels (the default; zero-copy simulation).
    Local,
    /// A real wire protocol (e.g. `paradise-net` TCP with credit-based
    /// flow control). Both transports share the bounded-window semantics
    /// and the accounting choke point, so plans behave identically.
    Tcp(Arc<dyn WireTransport>),
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transport::Local => write!(f, "Transport::Local"),
            Transport::Tcp(_) => write!(f, "Transport::Tcp"),
        }
    }
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of data-server nodes (the paper uses 4, 8, 16).
    pub nodes: usize,
    /// Buffer-pool pages per node (the paper: 32 MB = 4096 8 KB pages;
    /// scaled down alongside the data).
    pub pool_pages: usize,
    /// Spatial-declustering tile count (the paper uses 10,000).
    pub grid_tiles: u32,
    /// World rectangle (the spatial universe).
    pub universe: Rect,
    /// Directory to place per-node volumes in.
    pub base_dir: PathBuf,
    /// Busy-time charged to the requesting node per remote tile pull,
    /// modelling the paper's §2.5.2 observation that "pull is an expensive
    /// operation because each pull requires that a separate operator be
    /// started on the remote node" plus the extra random disk seeks.
    pub pull_cost: std::time::Duration,
    /// Intra-node worker-pool size for morsel-parallel kernels
    /// ([`crate::workers`]). `0` means one worker per available core.
    pub workers: usize,
}

impl ClusterConfig {
    /// A small default configuration for tests: `nodes` nodes in a fresh
    /// temporary directory, a 360×180 "world", 1024 grid tiles.
    pub fn for_test(nodes: usize, tag: &str) -> ClusterConfig {
        let base_dir = std::env::temp_dir().join(format!(
            "paradise-cluster-{}-{}-{}",
            std::process::id(),
            tag,
            nodes
        ));
        ClusterConfig {
            nodes,
            pool_pages: 512,
            grid_tiles: 1024,
            universe: Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0))
                .expect("valid universe"),
            base_dir,
            pull_cost: std::time::Duration::from_micros(5),
            workers: 0,
        }
    }
}

/// Cross-node traffic counters.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Bytes shipped between distinct nodes.
    pub bytes: AtomicU64,
    /// Tuples shipped between distinct nodes.
    pub tuples: AtomicU64,
    /// Remote tile pulls.
    pub pulls: AtomicU64,
    /// Bytes moved by pulls.
    pub pull_bytes: AtomicU64,
}

/// Snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Bytes shipped between distinct nodes.
    pub bytes: u64,
    /// Tuples shipped between distinct nodes.
    pub tuples: u64,
    /// Remote tile pulls.
    pub pulls: u64,
    /// Bytes moved by pulls.
    pub pull_bytes: u64,
}

impl NetStats {
    /// Current values.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            bytes: self.bytes.load(Ordering::Relaxed),
            tuples: self.tuples.load(Ordering::Relaxed),
            pulls: self.pulls.load(Ordering::Relaxed),
            pull_bytes: self.pull_bytes.load(Ordering::Relaxed),
        }
    }

    /// Difference since `base` (per-query accounting).
    pub fn since(&self, base: NetSnapshot) -> NetSnapshot {
        let now = self.snapshot();
        NetSnapshot {
            bytes: now.bytes - base.bytes,
            tuples: now.tuples - base.tuples,
            pulls: now.pulls - base.pulls,
            pull_bytes: now.pull_bytes - base.pull_bytes,
        }
    }

    /// Records one cross-node tuple shipment.
    pub fn ship(&self, bytes: usize) {
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.tuples.fetch_add(1, Ordering::Relaxed);
    }
}

/// One data-server node.
pub struct Node {
    /// The node's index.
    pub id: NodeId,
    /// The node's private storage manager.
    pub store: Arc<Store>,
    /// The node's own metrics registry (unprefixed names — `buffer.hits`,
    /// `wal.commits`, …). Over a wire transport this is what the node's
    /// data server serves to `StatsPull`; the QC labels each snapshot
    /// with `node=<id>` when aggregating.
    pub obs: Arc<MetricsRegistry>,
}

/// A simulated cluster: the query coordinator's view of all nodes.
pub struct Cluster {
    nodes: Vec<Arc<Node>>,
    grid: Grid,
    /// Traffic counters (shared with network streams).
    pub net: Arc<NetStats>,
    pull_cost: std::time::Duration,
    temp_counter: AtomicU64,
    transport: Transport,
    /// The unified metrics registry every subsystem publishes into.
    obs: Arc<MetricsRegistry>,
    /// Span sink for per-node/per-operator tracing (disabled by default;
    /// `EXPLAIN ANALYZE` enables it for one query).
    trace: Arc<TraceSink>,
    /// Structured JSONL event log (slow queries, stalls, retries, phase
    /// starts). Disabled by default.
    events: Arc<EventLog>,
    streams_opened: Counter,
    /// Intra-node worker pool for morsel-parallel kernels
    /// ([`crate::workers`]), shared by every node in the simulated cluster.
    workers: Arc<crate::workers::PoolHandle>,
}

impl Cluster {
    /// Creates a fresh cluster (wiping `base_dir`).
    pub fn create(cfg: &ClusterConfig) -> Result<Cluster> {
        let _ = std::fs::remove_dir_all(&cfg.base_dir);
        std::fs::create_dir_all(&cfg.base_dir).map_err(paradise_storage::StorageError::Io)?;
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for id in 0..cfg.nodes {
            let base = cfg.base_dir.join(format!("node{id}"));
            let store = Arc::new(Store::create(&base, cfg.pool_pages)?);
            let obs = Arc::new(MetricsRegistry::new());
            register_node_metrics(&obs, &store);
            nodes.push(Arc::new(Node { id, store, obs }));
        }
        let grid = Grid::with_tile_count(cfg.universe, cfg.grid_tiles).map_err(ExecError::Geom)?;
        let net = Arc::new(NetStats::default());
        let obs = Arc::new(MetricsRegistry::new());
        let trace = Arc::new(TraceSink::new());
        register_cluster_metrics(&obs, &nodes, &net);
        for n in &nodes {
            trace.set_lane_name(n.id as u32, &format!("node {}", n.id));
        }
        trace.set_lane_name(nodes.len() as u32, "QC");
        let streams_opened = obs.counter("exec.streams_opened");
        let pool_size =
            if cfg.workers == 0 { crate::workers::default_workers() } else { cfg.workers };
        let workers =
            crate::workers::PoolHandle::new(Arc::new(crate::workers::WorkerPool::new(pool_size)));
        crate::workers::register_pool_metrics(&obs, &workers);
        Ok(Cluster {
            nodes,
            grid,
            net,
            pull_cost: cfg.pull_cost,
            temp_counter: AtomicU64::new(0),
            transport: Transport::Local,
            obs,
            trace,
            events: Arc::new(EventLog::new()),
            streams_opened,
            workers,
        })
    }

    /// The intra-node worker pool every kernel on this cluster runs
    /// through (cheap `Arc` clone of the current pool).
    pub fn workers(&self) -> Arc<crate::workers::WorkerPool> {
        self.workers.get()
    }

    /// Replaces the worker pool (e.g. to compare worker counts on the same
    /// data in benchmarks). Registered pool metrics follow the swap.
    pub fn set_workers(&self, pool: Arc<crate::workers::WorkerPool>) {
        self.workers.set(pool);
    }

    /// The cluster-wide metrics registry.
    pub fn obs(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// The cluster-wide trace sink. Lane `i` is node `i`; lane
    /// [`Cluster::coordinator_id`] is the QC.
    pub fn trace(&self) -> &Arc<TraceSink> {
        &self.trace
    }

    /// The cluster-wide structured event log (disabled by default).
    pub fn events(&self) -> &Arc<EventLog> {
        &self.events
    }

    /// Snapshot of one node's own registry. Over a `Tcp` transport the
    /// samples are pulled over the wire from the node's data server
    /// (`StatsPull`/`StatsReply`); over `Local` they are read directly.
    pub fn node_samples(&self, id: NodeId) -> Result<Vec<MetricSample>> {
        let node = self
            .nodes
            .get(id)
            .ok_or_else(|| ExecError::Other(format!("no node {id} in this cluster")))?;
        match &self.transport {
            Transport::Tcp(t) => t.pull_stats(id),
            Transport::Local => Ok(node.obs.samples()),
        }
    }

    /// Node-labelled snapshots of the whole monitoring plane: one group
    /// per data server (labelled `"0"`, `"1"`, …) plus the QC's own
    /// cluster-level registry (labelled `"qc"`). Wire pulls that fail
    /// (e.g. during shutdown) degrade to a direct in-process read — the
    /// nodes share our address space, so the data is always reachable.
    pub fn all_samples(&self) -> Vec<(String, Vec<MetricSample>)> {
        let mut groups = Vec::with_capacity(self.nodes.len() + 1);
        for node in &self.nodes {
            let samples = self.node_samples(node.id).unwrap_or_else(|_| node.obs.samples());
            groups.push((node.id.to_string(), samples));
        }
        groups.push(("qc".to_string(), self.obs.samples()));
        groups
    }

    /// Summed buffer-pool statistics across every node's pool (each pool
    /// snapshot is internally consistent; see `BufferPool::stats`).
    pub fn buffer_stats_total(&self) -> BufferStats {
        self.nodes.iter().fold(BufferStats::default(), |acc, n| acc.merge(n.store.pool().stats()))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The stream/tile endpoint id of the query coordinator — one past the
    /// last data server, mirroring the paper's QC-as-its-own-process
    /// (Figure 2.1).
    pub fn coordinator_id(&self) -> NodeId {
        self.nodes.len()
    }

    /// Installs a wire transport (servers must already be running).
    /// Subsequent cross-node streams, routing, and tile pulls go over it.
    pub fn set_transport(&mut self, transport: Transport) {
        self.transport = transport;
    }

    /// The active transport.
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// Shuts the wire transport down (no-op for `Local`). Idempotent.
    pub fn shutdown_transport(&self) {
        if let Transport::Tcp(t) = &self.transport {
            t.shutdown();
        }
    }

    /// Opens a cross-node stream `src → dst` with the given flow-control
    /// window, over whichever transport the cluster runs. Every tuple
    /// crossing distinct nodes is charged to [`NetStats`] at the
    /// [`TupleTx::send`] choke point, so `Local` and `Tcp` account
    /// identically for identical plans.
    pub fn stream(&self, window: usize, src: NodeId, dst: NodeId) -> Result<(TupleTx, TupleRx)> {
        self.streams_opened.inc();
        match &self.transport {
            Transport::Local => Ok(stream::network_stream(window, src, dst, self.net.clone())),
            Transport::Tcp(t) => {
                let (tx, rx) = t.open(window, src, dst)?;
                Ok(stream::remote_stream(tx, rx, src, dst, self.net.clone()))
            }
        }
    }

    /// Ships per-node result rows to the query coordinator over the active
    /// transport, preserving node order then emission order — the QC is
    /// its own endpoint, so every row is network traffic.
    pub fn collect_to_coordinator(&self, per_node: Vec<Vec<Tuple>>) -> Result<Vec<Tuple>> {
        let qc = self.coordinator_id();
        match &self.transport {
            Transport::Local => {
                // Fast path: charge each row and concatenate.
                let mut out = Vec::new();
                for rows in per_node {
                    for t in rows {
                        self.net.ship(t.wire_size());
                        out.push(t);
                    }
                }
                Ok(out)
            }
            Transport::Tcp(_) => {
                // Real path: one stream per node, drained in node order.
                let mut receivers = Vec::new();
                let mut senders = Vec::new();
                for (node, rows) in per_node.into_iter().enumerate() {
                    if rows.is_empty() {
                        continue;
                    }
                    let (tx, rx) = self.stream(stream::DEFAULT_WINDOW, node, qc)?;
                    senders.push(std::thread::spawn(move || -> Result<()> {
                        // `exec.collect_send` injects a poisoned node
                        // during result collection.
                        if let Err(msg) = paradise_util::failpoint::check("exec.collect_send") {
                            return Err(ExecError::Other(format!(
                                "injected fault at exec.collect_send (node {node}): {msg}"
                            )));
                        }
                        for t in rows {
                            tx.send(t)?;
                        }
                        Ok(())
                    }));
                    receivers.push(rx);
                }
                // Drain everything first (senders block on flow control),
                // then fail on any sender or link error — a lossy link must
                // produce an error, never a silently truncated result set.
                let mut out = Vec::new();
                let mut link_err: Option<String> = None;
                for mut rx in receivers {
                    while let Some(t) = rx.recv() {
                        out.push(t);
                    }
                    if link_err.is_none() {
                        link_err = rx.link_error();
                    }
                }
                let mut send_err: Option<ExecError> = None;
                for s in senders {
                    match s.join() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => send_err = send_err.or(Some(e)),
                        Err(_) => {
                            send_err = send_err
                                .or(Some(ExecError::Other("collect sender panicked".into())))
                        }
                    }
                }
                if let Some(e) = send_err {
                    return Err(e);
                }
                if let Some(msg) = link_err {
                    return Err(ExecError::Other(format!("collect stream failed: {msg}")));
                }
                Ok(out)
            }
        }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    /// One node.
    pub fn node(&self, id: NodeId) -> &Arc<Node> {
        &self.nodes[id]
    }

    /// The spatial-declustering grid (shared by every spatially declustered
    /// table so joins can be local, §2.7.1).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The node owning a grid tile: hash on tile number (paper §3.1.2,
    /// "each tile is mapped to one of the nodes by hashing on tile number").
    pub fn node_for_tile(&self, tile: TileId) -> NodeId {
        // Fibonacci hash on the tile id.
        let h = (u64::from(tile)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.nodes.len()
    }

    /// A fresh unique name for a temporary table / operator file.
    pub fn fresh_temp_name(&self, prefix: &str) -> String {
        let n = self.temp_counter.fetch_add(1, Ordering::Relaxed);
        format!("__tmp_{prefix}_{n}")
    }

    /// Reads a raster tile object, possibly from a remote node — the pull
    /// operator of §2.5.2. Returns the decoded (decompressed) tile bytes.
    ///
    /// `requester` is the node doing the work; a pull is accounted whenever
    /// the tile lives elsewhere.
    pub fn fetch_tile(&self, requester: NodeId, tile: &TileRef) -> Result<Vec<u8>> {
        let raw = self.fetch_tile_raw(requester, tile)?;
        Ok(paradise_array::lzw::maybe_decompress(&raw, tile.compressed)?)
    }

    /// Like [`Cluster::fetch_tile`] but returns the *stored* (possibly
    /// LZW-compressed) bytes without decoding them. Region reads fetch raw
    /// tiles serially — keeping pull accounting and failpoint ordering
    /// deterministic — then decompress the batch on the worker pool.
    pub fn fetch_tile_raw(&self, requester: NodeId, tile: &TileRef) -> Result<Vec<u8>> {
        let owner = tile.node as usize;
        let raw = match (&self.transport, owner == requester) {
            // A remote pull over a real transport goes through the wire:
            // the owning data server reads the object and ships the bytes.
            (Transport::Tcp(t), false) => t.fetch_tile(requester, tile)?,
            // Local transport (or a pull of a tile we own): direct read.
            _ => {
                let file = self.nodes[owner]
                    .store
                    .file(crate::raster_store::TILE_FILE)
                    .ok_or_else(|| ExecError::NotFound("tile file".into()))?;
                file.read(tile.oid)?
            }
        };
        if owner != requester {
            self.net.pulls.fetch_add(1, Ordering::Relaxed);
            self.net.pull_bytes.fetch_add(raw.len() as u64, Ordering::Relaxed);
            // Charge the remote-operator startup + extra seeks to the
            // requesting node's busy time (§2.5.2).
            let t0 = std::time::Instant::now();
            while t0.elapsed() < self.pull_cost {
                std::hint::spin_loop();
            }
        }
        Ok(raw)
    }

    /// Flushes every node's buffer pool (cold-cache start, paper §3.2).
    pub fn flush_caches(&self) -> Result<()> {
        for n in &self.nodes {
            n.store.flush_cache()?;
        }
        Ok(())
    }

    /// Commits every node's store.
    pub fn commit_all(&self) -> Result<()> {
        for n in &self.nodes {
            n.store.commit()?;
        }
        Ok(())
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_transport();
    }
}

/// Publishes one node's pre-existing storage atomics (buffer pool, WAL)
/// into the node's *own* registry under unprefixed names — this is the
/// snapshot that travels over the wire in a `StatsReply`; the QC attaches
/// the `node=<id>` label when it aggregates.
fn register_node_metrics(obs: &MetricsRegistry, store: &Arc<Store>) {
    macro_rules! pool_stat {
        ($field:ident) => {{
            let store = store.clone();
            obs.register_collector(&format!("buffer.{}", stringify!($field)), move || {
                store.pool().stats().$field
            });
        }};
    }
    pool_stat!(hits);
    pool_stat!(misses);
    pool_stat!(writebacks);
    pool_stat!(evictions);
    macro_rules! wal_stat {
        ($field:ident) => {{
            let store = store.clone();
            obs.register_collector(&format!("wal.{}", stringify!($field)), move || {
                store.wal_stats().$field
            });
        }};
    }
    wal_stat!(commits);
    wal_stat!(pages);
    wal_stat!(bytes);
    // The live cached-frame level, tracked with gauge deltas inside the
    // pool (no recompute-and-set race), plus the static capacity.
    obs.register_gauge("buffer.frames_cached", store.pool().frames_gauge());
    let capacity = store.pool().capacity() as u64;
    obs.register_collector("buffer.capacity", move || capacity);
}

/// Publishes the per-node storage atomics (prefixed `node<i>.*`, for the
/// QC-side aggregate view and `EXPLAIN ANALYZE`) and the cluster-wide
/// [`NetStats`] into the cluster registry as lazy collectors — the hot
/// paths keep their own counters and pay nothing extra.
fn register_cluster_metrics(obs: &MetricsRegistry, nodes: &[Arc<Node>], net: &Arc<NetStats>) {
    for node in nodes {
        let id = node.id;
        macro_rules! pool_stat {
            ($field:ident) => {{
                let store = node.store.clone();
                obs.register_collector(
                    &format!("node{id}.buffer.{}", stringify!($field)),
                    move || store.pool().stats().$field,
                );
            }};
        }
        pool_stat!(hits);
        pool_stat!(misses);
        pool_stat!(writebacks);
        pool_stat!(evictions);
        macro_rules! wal_stat {
            ($field:ident) => {{
                let store = node.store.clone();
                obs.register_collector(
                    &format!("node{id}.wal.{}", stringify!($field)),
                    move || store.wal_stats().$field,
                );
            }};
        }
        wal_stat!(commits);
        wal_stat!(pages);
        wal_stat!(bytes);
    }
    macro_rules! net_stat {
        ($field:ident) => {{
            let net = net.clone();
            obs.register_collector(&format!("net.{}", stringify!($field)), move || {
                net.$field.load(Ordering::Relaxed)
            });
        }};
    }
    net_stat!(bytes);
    net_stat!(tuples);
    net_stat!(pulls);
    net_stat!(pull_bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_cluster_with_private_stores() {
        let cluster = Cluster::create(&ClusterConfig::for_test(4, "create")).unwrap();
        assert_eq!(cluster.num_nodes(), 4);
        // Each node can host its own files independently.
        for n in cluster.nodes() {
            let f = n.store.create_file("frag").unwrap();
            f.insert(format!("node {}", n.id).as_bytes()).unwrap();
        }
        for n in cluster.nodes() {
            let f = n.store.file("frag").unwrap();
            let rows = f.scan().unwrap();
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].1, format!("node {}", n.id).as_bytes());
        }
    }

    #[test]
    fn tile_to_node_mapping_is_stable_and_balanced() {
        let cluster = Cluster::create(&ClusterConfig::for_test(8, "map")).unwrap();
        let mut counts = [0usize; 8];
        for t in 0..cluster.grid().num_tiles() {
            let n = cluster.node_for_tile(t);
            assert_eq!(n, cluster.node_for_tile(t), "mapping must be deterministic");
            counts[n] += 1;
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total as u32, cluster.grid().num_tiles());
        let avg = total / 8;
        for (n, &c) in counts.iter().enumerate() {
            assert!(c > avg / 2 && c < avg * 2, "node {n} got {c} of {total} tiles");
        }
    }

    #[test]
    fn net_stats_accumulate() {
        let cluster = Cluster::create(&ClusterConfig::for_test(2, "net")).unwrap();
        let base = cluster.net.snapshot();
        cluster.net.ship(100);
        cluster.net.ship(50);
        let d = cluster.net.since(base);
        assert_eq!(d.bytes, 150);
        assert_eq!(d.tuples, 2);
    }

    #[test]
    fn registry_surfaces_storage_and_net_counters() {
        let cluster = Cluster::create(&ClusterConfig::for_test(2, "obs")).unwrap();
        // Touch node 0's store so buffer counters move.
        let f = cluster.node(0).store.create_file("t").unwrap();
        f.insert(b"x").unwrap();
        cluster.node(0).store.commit().unwrap();
        cluster.net.ship(64);
        let snap = cluster.obs().snapshot();
        assert!(snap.contains_key("node0.buffer.hits"), "keys: {:?}", snap.keys());
        assert!(snap.contains_key("node1.wal.commits"));
        assert_eq!(snap["net.bytes"], 64);
        assert_eq!(snap["net.tuples"], 1);
        assert!(snap["node0.wal.commits"] >= 1, "commit not visible: {snap:?}");
        // stream() publishes into the registry too.
        let before = snap["exec.streams_opened"];
        let _ = cluster.stream(4, 0, 1).unwrap();
        assert_eq!(cluster.obs().get("exec.streams_opened"), Some(before + 1));
    }

    #[test]
    fn per_node_registries_carry_unprefixed_storage_metrics() {
        let cluster = Cluster::create(&ClusterConfig::for_test(2, "nodeobs")).unwrap();
        let f = cluster.node(0).store.create_file("t").unwrap();
        f.insert(b"x").unwrap();
        cluster.node(0).store.commit().unwrap();
        let n0 = cluster.node(0).obs.snapshot();
        assert!(n0.contains_key("buffer.hits"), "keys: {:?}", n0.keys());
        assert!(n0.contains_key("buffer.frames_cached"));
        assert!(n0["buffer.capacity"] > 0);
        assert!(n0["wal.commits"] >= 1, "{n0:?}");
        // Node 1 saw none of that traffic (only the shared setup commits).
        let n1_commits = cluster.node(1).obs.get("wal.commits").unwrap();
        assert!(n0["wal.commits"] > n1_commits, "{n0:?} vs {n1_commits}");
        // Local transport: node_samples reads the registry directly.
        let samples = cluster.node_samples(0).unwrap();
        assert!(samples.iter().any(|s| s.name == "wal.commits" && s.value >= 1));
        assert!(cluster.node_samples(7).is_err());
        // all_samples groups every node plus the QC registry.
        let groups = cluster.all_samples();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[2].0, "qc");
        assert!(groups[2].1.iter().any(|s| s.name == "net.bytes"));
    }

    #[test]
    fn temp_names_unique() {
        let cluster = Cluster::create(&ClusterConfig::for_test(1, "tmp")).unwrap();
        let a = cluster.fresh_temp_name("join");
        let b = cluster.fresh_temp_name("join");
        assert_ne!(a, b);
    }
}
