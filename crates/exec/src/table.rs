//! Declustered tables: fragments, loading, scans and per-fragment indexes.

use crate::cluster::{Cluster, NodeId};
use crate::decluster::Decluster;
use crate::raster_store;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{RasterValue, Value};
use crate::{ExecError, Result};
use paradise_storage::{Oid, RTree};

/// Load statistics (replication factor is the §2.7.1 tradeoff).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Tuples presented to the loader.
    pub input_tuples: u64,
    /// Physical copies stored (≥ input for spatial declustering).
    pub stored_tuples: u64,
    /// Bytes written (tuple encodings, excluding raster tiles).
    pub bytes: u64,
}

/// A table declustered across the cluster.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Column schema.
    pub schema: Schema,
    /// How tuples map to nodes.
    pub decluster: Decluster,
    /// Whether raster attributes' tiles are spread across nodes (§2.6).
    pub decluster_rasters: bool,
    /// Target raster tile payload in bytes.
    pub tile_bytes: usize,
}

impl TableDef {
    /// Defines a table.
    pub fn new(name: &str, schema: Schema, decluster: Decluster) -> Self {
        TableDef {
            name: name.to_string(),
            schema,
            decluster,
            decluster_rasters: false,
            tile_bytes: raster_store::DEFAULT_TILE_BYTES,
        }
    }

    /// Enables/disables raster-tile declustering (§2.6, Table 3.5).
    pub fn with_raster_decluster(mut self, on: bool) -> Self {
        self.decluster_rasters = on;
        self
    }

    /// Overrides the raster tile size.
    pub fn with_tile_bytes(mut self, bytes: usize) -> Self {
        self.tile_bytes = bytes;
        self
    }

    /// Heap-file name of this table's fragment on every node.
    pub fn fragment_file(&self) -> String {
        format!("tbl_{}", self.name)
    }

    fn btree_index_file(&self, col: usize) -> String {
        format!("idx_{}_{col}", self.name)
    }

    fn rtree_index_file(&self, col: usize) -> String {
        format!("rtidx_{}_{col}", self.name)
    }

    /// Loads tuples, routing each to its destination node(s) and
    /// materialising in-memory raster attributes as stored tiles on the
    /// destination.
    pub fn load(
        &self,
        cluster: &Cluster,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<LoadStats> {
        let mut stats = LoadStats::default();
        // Ensure fragments exist on every node.
        for n in cluster.nodes() {
            n.store.create_file(&self.fragment_file())?;
        }
        for (seq, tuple) in tuples.into_iter().enumerate() {
            let dests = self.decluster.route(cluster, &tuple, seq as u64)?;
            stats.input_tuples += 1;
            for &dest in &dests {
                let mut stored = tuple.clone();
                for v in &mut stored.values {
                    if let Value::Raster(RasterValue::Mem(r)) = v {
                        let sr = raster_store::store_raster(
                            cluster,
                            dest,
                            r,
                            self.decluster_rasters,
                            self.tile_bytes,
                        )?;
                        *v = Value::Raster(RasterValue::Stored(sr));
                    }
                }
                let bytes = stored.encode();
                stats.bytes += bytes.len() as u64;
                stats.stored_tuples += 1;
                cluster
                    .node(dest)
                    .store
                    .file(&self.fragment_file())
                    .expect("fragment created above")
                    .insert(&bytes)?;
            }
        }
        Ok(stats)
    }

    /// Streams every tuple of one node's fragment.
    pub fn scan_fragment(
        &self,
        cluster: &Cluster,
        node: NodeId,
        mut f: impl FnMut(Oid, Tuple) -> Result<()>,
    ) -> Result<()> {
        let Some(file) = cluster.node(node).store.file(&self.fragment_file()) else {
            return Ok(()); // unloaded table: empty fragment
        };
        let mut inner_err = None;
        file.for_each(|oid, bytes| {
            if inner_err.is_some() {
                return Ok(());
            }
            match Tuple::decode(&bytes) {
                Ok(t) => {
                    if let Err(e) = f(oid, t) {
                        inner_err = Some(e);
                    }
                    Ok(())
                }
                Err(_) => Err(paradise_storage::StorageError::Corrupt("bad tuple bytes")),
            }
        })?;
        match inner_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Materialises one node's fragment.
    pub fn fragment_tuples(&self, cluster: &Cluster, node: NodeId) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        self.scan_fragment(cluster, node, |_, t| {
            out.push(t);
            Ok(())
        })?;
        Ok(out)
    }

    /// Reads one tuple by OID from a node's fragment.
    pub fn read_tuple(&self, cluster: &Cluster, node: NodeId, oid: Oid) -> Result<Tuple> {
        let file = cluster
            .node(node)
            .store
            .file(&self.fragment_file())
            .ok_or_else(|| ExecError::NotFound(format!("table {}", self.name)))?;
        Tuple::decode(&file.read(oid)?)
    }

    /// Total stored tuples across nodes (including replicas).
    pub fn stored_count(&self, cluster: &Cluster) -> u64 {
        cluster
            .nodes()
            .iter()
            .filter_map(|n| n.store.file(&self.fragment_file()))
            .map(|f| f.count())
            .sum()
    }

    /// Builds a per-fragment B+-tree index on column `col` (scalar types).
    pub fn build_btree_index(&self, cluster: &Cluster, col: usize) -> Result<()> {
        for node in 0..cluster.num_nodes() {
            let mut pairs: Vec<(Vec<u8>, u64)> = Vec::new();
            self.scan_fragment(cluster, node, |oid, t| {
                pairs.push((index_key(t.get(col)?), pack_oid(oid)));
                Ok(())
            })?;
            pairs.sort();
            let tree = cluster.node(node).store.create_btree(&self.btree_index_file(col))?;
            tree.bulk_load(&pairs)?;
        }
        Ok(())
    }

    /// Probes the B+-tree index on `col` for `value` on one node.
    pub fn btree_probe(
        &self,
        cluster: &Cluster,
        node: NodeId,
        col: usize,
        value: &Value,
    ) -> Result<Vec<Tuple>> {
        let Some(tree) = cluster.node(node).store.btree(&self.btree_index_file(col)) else {
            return Err(ExecError::NotFound(format!("btree index on {}.{col}", self.name)));
        };
        tree.get_all(&index_key(value))?
            .into_iter()
            .map(|v| self.read_tuple(cluster, node, unpack_oid(v)))
            .collect()
    }

    /// Range probe on the B+-tree index (inclusive bounds).
    pub fn btree_range(
        &self,
        cluster: &Cluster,
        node: NodeId,
        col: usize,
        lo: &Value,
        hi: &Value,
    ) -> Result<Vec<Tuple>> {
        let Some(tree) = cluster.node(node).store.btree(&self.btree_index_file(col)) else {
            return Err(ExecError::NotFound(format!("btree index on {}.{col}", self.name)));
        };
        tree.range(&index_key(lo), &index_key(hi))?
            .into_iter()
            .map(|(_, v)| self.read_tuple(cluster, node, unpack_oid(v)))
            .collect()
    }

    /// Builds a per-fragment R*-tree on spatial column `col`, bulk loaded
    /// (the paper bulk-loads spatial indexes at load time \[DeWi94\] and on
    /// the fly after redeclustering). Persisted as a serialized object.
    pub fn build_rtree_index(&self, cluster: &Cluster, col: usize) -> Result<()> {
        for node in 0..cluster.num_nodes() {
            let mut entries: Vec<(paradise_geom::Rect, u64)> = Vec::new();
            self.scan_fragment(cluster, node, |oid, t| {
                entries.push((t.get(col)?.as_shape()?.bbox(), pack_oid(oid)));
                Ok(())
            })?;
            let tree = RTree::bulk_load(entries);
            let file = cluster.node(node).store.create_file(&self.rtree_index_file(col))?;
            file.insert(&tree.to_bytes())?;
        }
        Ok(())
    }

    /// Loads one node's persisted R*-tree index on `col`, wired to the
    /// cluster's `rtree.node_visits` metric so index selectivity shows up
    /// in the registry.
    pub fn rtree_index(&self, cluster: &Cluster, node: NodeId, col: usize) -> Result<RTree> {
        let file =
            cluster.node(node).store.file(&self.rtree_index_file(col)).ok_or_else(|| {
                ExecError::NotFound(format!("rtree index on {}.{col}", self.name))
            })?;
        let rows = file.scan()?;
        let bytes =
            rows.first().ok_or_else(|| ExecError::NotFound("empty rtree index file".into()))?;
        let mut tree = RTree::from_bytes(&bytes.1)?;
        tree.set_visit_counter(cluster.obs().counter("rtree.node_visits"));
        Ok(tree)
    }

    /// Drops the table's fragments and indexes everywhere.
    pub fn drop_table(&self, cluster: &Cluster) -> Result<()> {
        for n in cluster.nodes() {
            for name in n.store.names() {
                if name == self.fragment_file()
                    || name.starts_with(&format!("idx_{}_", self.name))
                    || name.starts_with(&format!("rtidx_{}_", self.name))
                {
                    n.store.drop_entry(&name)?;
                }
            }
        }
        Ok(())
    }
}

/// Packs an OID into the `u64` payload of an index entry (page numbers stay
/// far below 2^48 at benchmark scale).
pub fn pack_oid(oid: Oid) -> u64 {
    (oid.page << 16) | u64::from(oid.slot)
}

/// Inverse of [`pack_oid`].
pub fn unpack_oid(v: u64) -> Oid {
    Oid { page: v >> 16, slot: (v & 0xFFFF) as u16 }
}

/// Order-preserving index key encoding for scalar values.
pub fn index_key(v: &Value) -> Vec<u8> {
    match v {
        Value::Null => vec![0],
        Value::Int(i) => {
            let mut out = vec![1];
            out.extend_from_slice(&((*i as u64) ^ (1u64 << 63)).to_be_bytes());
            out
        }
        Value::Date(d) => {
            let mut out = vec![1]; // dates sort with ints
            out.extend_from_slice(&((d.0 as u64) ^ (1u64 << 63)).to_be_bytes());
            out
        }
        Value::Float(f) => {
            // IEEE total-order trick: flip all bits for negatives, sign for
            // positives.
            let bits = f.to_bits();
            let key = if *f >= 0.0 { bits ^ (1u64 << 63) } else { !bits };
            let mut out = vec![2];
            out.extend_from_slice(&key.to_be_bytes());
            out
        }
        Value::Str(s) => {
            let mut out = vec![3];
            out.extend_from_slice(s.as_bytes());
            out
        }
        // Spatial/raster columns use R-trees, but give them a stable key so
        // hash-grouping on shapes is possible.
        other => {
            let mut out = vec![9];
            other.encode(&mut out);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::schema::{DataType, Field};
    use crate::value::Date;
    use paradise_geom::{Point, Polygon, Rect, Shape};

    fn cluster(n: usize, tag: &str) -> Cluster {
        Cluster::create(&ClusterConfig::for_test(n, tag)).unwrap()
    }

    fn cities_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Str),
            Field::new("type", DataType::Int),
            Field::new("location", DataType::Point),
            Field::new("name", DataType::Str),
        ])
    }

    fn city(i: i64, x: f64, y: f64, name: &str) -> Tuple {
        Tuple::new(vec![
            Value::Str(format!("pp-{i}")),
            Value::Int(i % 6),
            Value::Shape(Shape::Point(Point::new(x, y))),
            Value::Str(name.to_string()),
        ])
    }

    #[test]
    fn round_robin_load_balances() {
        let c = cluster(4, "t1");
        let t = TableDef::new("pp", cities_schema(), Decluster::RoundRobin);
        let tuples: Vec<Tuple> =
            (0..100).map(|i| city(i, f64::from(i as i32) - 50.0, 0.0, "x")).collect();
        let stats = t.load(&c, tuples).unwrap();
        assert_eq!(stats.input_tuples, 100);
        assert_eq!(stats.stored_tuples, 100, "round robin never replicates");
        for node in 0..4 {
            assert_eq!(t.fragment_tuples(&c, node).unwrap().len(), 25);
        }
    }

    #[test]
    fn spatial_load_replicates_spanning_tuples() {
        let c = cluster(4, "t2");
        let schema = Schema::new(vec![
            Field::new("id", DataType::Str),
            Field::new("shape", DataType::Polygon),
        ]);
        let t = TableDef::new("lc", schema, Decluster::Spatial { col: 1 });
        // One tiny polygon and one giant polygon.
        let tiny = Polygon::from_rect(
            &Rect::from_corners(Point::new(10.0, 10.0), Point::new(10.1, 10.1)).unwrap(),
        );
        let giant = Polygon::from_rect(
            &Rect::from_corners(Point::new(-150.0, -70.0), Point::new(150.0, 70.0)).unwrap(),
        );
        let stats = t
            .load(
                &c,
                vec![
                    Tuple::new(vec![Value::Str("tiny".into()), Value::Shape(Shape::Polygon(tiny))]),
                    Tuple::new(vec![
                        Value::Str("giant".into()),
                        Value::Shape(Shape::Polygon(giant)),
                    ]),
                ],
            )
            .unwrap();
        assert_eq!(stats.input_tuples, 2);
        assert!(stats.stored_tuples > 2, "giant polygon must be replicated");
        assert_eq!(t.stored_count(&c), stats.stored_tuples);
    }

    #[test]
    fn btree_index_probe_and_range() {
        let c = cluster(2, "t3");
        let t = TableDef::new("pp", cities_schema(), Decluster::RoundRobin);
        let tuples: Vec<Tuple> = (0..50).map(|i| city(i, 0.0, 0.0, &format!("city{i}"))).collect();
        t.load(&c, tuples).unwrap();
        t.build_btree_index(&c, 3).unwrap(); // index on name
        let mut found = Vec::new();
        for node in 0..2 {
            found.extend(t.btree_probe(&c, node, 3, &Value::Str("city7".into())).unwrap());
        }
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].get(0).unwrap(), &Value::Str("pp-7".into()));
        // Missing key
        for node in 0..2 {
            assert!(t.btree_probe(&c, node, 3, &Value::Str("atlantis".into())).unwrap().is_empty());
        }
        // Range over the int column.
        t.build_btree_index(&c, 1).unwrap();
        let mut hits = 0;
        for node in 0..2 {
            hits += t.btree_range(&c, node, 1, &Value::Int(0), &Value::Int(1)).unwrap().len();
        }
        // types cycle 0..6 over 50 tuples: type 0 x9 (0,6,..48), type 1 x9? 50/6
        let expected = (0..50).filter(|i| i % 6 <= 1).count();
        assert_eq!(hits, expected);
    }

    #[test]
    fn rtree_index_roundtrip() {
        let c = cluster(2, "t4");
        let t = TableDef::new("pp", cities_schema(), Decluster::RoundRobin);
        let tuples: Vec<Tuple> =
            (0..60).map(|i| city(i, f64::from(i as i32) * 2.0 - 60.0, 10.0, "x")).collect();
        t.load(&c, tuples).unwrap();
        t.build_rtree_index(&c, 2).unwrap();
        let window = Rect::from_corners(Point::new(-10.0, 0.0), Point::new(10.0, 20.0)).unwrap();
        let mut hits = 0;
        for node in 0..2 {
            let idx = t.rtree_index(&c, node, 2).unwrap();
            for (_, packed) in idx.search(&window) {
                let tup = t.read_tuple(&c, node, unpack_oid(packed)).unwrap();
                let p = tup.get(2).unwrap().as_shape().unwrap().as_point().unwrap();
                assert!(window.contains_point(&p));
                hits += 1;
            }
        }
        // x = 2i - 60 in [-10, 10] => i in [25, 35] => 11 points
        assert_eq!(hits, 11);
    }

    #[test]
    fn index_key_order_preserving() {
        // ints incl. negatives
        let ints = [-100i64, -1, 0, 1, 99];
        let keys: Vec<_> = ints.iter().map(|&i| index_key(&Value::Int(i))).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // floats incl. negatives
        let floats = [-5.5f64, -0.25, 0.0, 0.5, 7.0];
        let keys: Vec<_> = floats.iter().map(|&f| index_key(&Value::Float(f))).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // dates
        let d1 = index_key(&Value::Date(Date::from_ymd(1988, 4, 1)));
        let d2 = index_key(&Value::Date(Date::from_ymd(1988, 12, 31)));
        assert!(d1 < d2);
        // strings
        assert!(index_key(&Value::Str("a".into())) < index_key(&Value::Str("b".into())));
    }

    #[test]
    fn pack_unpack_oid() {
        let oid = Oid { page: 123_456, slot: 789 };
        assert_eq!(unpack_oid(pack_oid(oid)), oid);
    }

    #[test]
    fn drop_table_removes_everything() {
        let c = cluster(2, "t5");
        let t = TableDef::new("pp", cities_schema(), Decluster::RoundRobin);
        t.load(&c, (0..10).map(|i| city(i, 0.0, 0.0, "x"))).unwrap();
        t.build_btree_index(&c, 3).unwrap();
        t.build_rtree_index(&c, 2).unwrap();
        t.drop_table(&c).unwrap();
        assert_eq!(t.stored_count(&c), 0);
        for node in 0..2 {
            assert!(t.btree_probe(&c, node, 3, &Value::Str("x".into())).is_err());
        }
    }

    #[test]
    fn raster_attribute_stored_as_tiles_on_destination() {
        use paradise_array::{BitDepth, Raster};
        let c = cluster(2, "t6");
        let schema = Schema::new(vec![
            Field::new("date", DataType::Date),
            Field::new("channel", DataType::Int),
            Field::new("data", DataType::Raster),
        ]);
        let t = TableDef::new("raster", schema, Decluster::RoundRobin).with_tile_bytes(1024);
        let world = Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).unwrap();
        let tuples: Vec<Tuple> = (0..4)
            .map(|i| {
                let mut r = Raster::new(64, 32, BitDepth::Sixteen, world).unwrap();
                r.set_pixel(1, 1, 1000 + i).unwrap();
                Tuple::new(vec![
                    Value::Date(Date::from_ymd(1988, 1, 1 + i)),
                    Value::Int(5),
                    Value::Raster(RasterValue::Mem(std::sync::Arc::new(r))),
                ])
            })
            .collect();
        t.load(&c, tuples).unwrap();
        // Every stored tuple now holds a Stored raster whose tiles live on
        // the tuple's node.
        for node in 0..2 {
            for tup in t.fragment_tuples(&c, node).unwrap() {
                match tup.get(2).unwrap() {
                    Value::Raster(RasterValue::Stored(sr)) => {
                        assert!(sr.tiles.iter().all(|tr| tr.node as usize == node));
                        let back = raster_store::fetch_whole(&c, node, sr).unwrap();
                        assert_eq!(back.width(), 64);
                    }
                    other => panic!("expected stored raster, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn raster_date_pixel_roundtrip() {
        use paradise_array::{BitDepth, Raster};
        let c = cluster(1, "t7");
        let schema = Schema::new(vec![
            Field::new("date", DataType::Date),
            Field::new("data", DataType::Raster),
        ]);
        let t = TableDef::new("raster", schema, Decluster::RoundRobin);
        let world = Rect::from_corners(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)).unwrap();
        let mut r = Raster::new(16, 8, BitDepth::Sixteen, world).unwrap();
        r.set_pixel(7, 3, 4242).unwrap();
        t.load(
            &c,
            vec![Tuple::new(vec![
                Value::Date(Date::from_ymd(1988, 4, 1)),
                Value::Raster(RasterValue::Mem(std::sync::Arc::new(r))),
            ])],
        )
        .unwrap();
        let rows = t.fragment_tuples(&c, 0).unwrap();
        let Value::Raster(RasterValue::Stored(sr)) = rows[0].get(1).unwrap() else {
            panic!("not stored")
        };
        let back = raster_store::fetch_whole(&c, 0, sr).unwrap();
        assert_eq!(back.pixel(7, 3).unwrap(), 4242);
    }
}
