//! Declustering policies (paper §2.3, §2.7.1).
//!
//! "Tables are fully partitioned across all disks in the system using
//! round-robin, hash, or spatial declustering." Spatial declustering maps a
//! tuple to the grid tiles its spatial attribute's bounding box covers;
//! tiles map to nodes by hashing the tile number. A tuple spanning tiles on
//! several nodes is **replicated** to each of them (Figure 2.4) — queries
//! then eliminate the duplicates.

use crate::cluster::{Cluster, NodeId};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::{ExecError, Result};

/// How a table's tuples are spread across nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decluster {
    /// Tuple *i* goes to node *i mod n*.
    RoundRobin,
    /// Hash of column `col` picks the node.
    Hash {
        /// Column hashed.
        col: usize,
    },
    /// Grid tiles covered by column `col`'s bounding box pick the node(s);
    /// spanning tuples are replicated.
    Spatial {
        /// Spatial column.
        col: usize,
    },
}

/// A stable 64-bit hash of a value (FNV-1a over its encoding).
pub fn hash_value(v: &Value) -> u64 {
    let mut buf = Vec::with_capacity(16);
    v.encode(&mut buf);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in buf {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Decluster {
    /// The destination node(s) for a tuple. `seq` is the tuple's load
    /// ordinal (used by round-robin). Spatial declustering may return
    /// several nodes — the tuple must be stored at each (replication).
    pub fn route(&self, cluster: &Cluster, tuple: &Tuple, seq: u64) -> Result<Vec<NodeId>> {
        let n = cluster.num_nodes();
        Ok(match self {
            Decluster::RoundRobin => vec![(seq as usize) % n],
            Decluster::Hash { col } => {
                vec![(hash_value(tuple.get(*col)?) as usize) % n]
            }
            Decluster::Spatial { col } => {
                let shape = match tuple.get(*col)? {
                    Value::Shape(s) => s.bbox(),
                    Value::Raster(r) => match r {
                        crate::value::RasterValue::Mem(m) => m.geo(),
                        crate::value::RasterValue::Stored(s) => s.geo,
                    },
                    other => {
                        return Err(ExecError::Type {
                            expected: "shape or raster",
                            got: other.kind().to_string(),
                        })
                    }
                };
                let mut nodes: Vec<NodeId> = cluster
                    .grid()
                    .tile_ids_for_rect(&shape)
                    .into_iter()
                    .map(|t| cluster.node_for_tile(t))
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            }
        })
    }

    /// The grid tiles a tuple's spatial column covers (used by the spatial
    /// repartitioning phase of the parallel spatial join, §2.7.2, where
    /// many more partitions than nodes are needed).
    pub fn tiles_for(&self, cluster: &Cluster, tuple: &Tuple) -> Result<Vec<u32>> {
        match self {
            Decluster::Spatial { col } => {
                let shape = tuple.get(*col)?.as_shape()?;
                Ok(cluster.grid().tile_ids_for_shape(shape))
            }
            _ => Err(ExecError::Other("tiles_for on non-spatial declustering".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use paradise_geom::{Point, Polygon, Rect, Shape};

    fn cluster(n: usize, tag: &str) -> Cluster {
        Cluster::create(&ClusterConfig::for_test(n, tag)).unwrap()
    }

    #[test]
    fn round_robin_cycles() {
        let c = cluster(4, "rr");
        let d = Decluster::RoundRobin;
        let t = Tuple::new(vec![Value::Int(0)]);
        let dests: Vec<_> = (0..8).map(|i| d.route(&c, &t, i).unwrap()[0]).collect();
        assert_eq!(dests, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        let c = cluster(4, "hash");
        let d = Decluster::Hash { col: 0 };
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let t = Tuple::new(vec![Value::Str(format!("key{i}"))]);
            let a = d.route(&c, &t, 0).unwrap();
            let b = d.route(&c, &t, 99).unwrap();
            assert_eq!(a, b, "hash must ignore seq");
            assert_eq!(a.len(), 1);
            seen.insert(a[0]);
        }
        assert_eq!(seen.len(), 4, "200 keys should hit all 4 nodes");
    }

    #[test]
    fn spatial_small_shape_single_node() {
        let c = cluster(4, "sp1");
        let d = Decluster::Spatial { col: 0 };
        // A tiny polygon well inside one tile.
        let tile = c.grid().tile_rect(500);
        let center = tile.center();
        let poly = Polygon::from_rect(
            &Rect::from_corners(
                Point::new(center.x - 0.01, center.y - 0.01),
                Point::new(center.x + 0.01, center.y + 0.01),
            )
            .unwrap(),
        );
        let t = Tuple::new(vec![Value::Shape(Shape::Polygon(poly))]);
        let dests = d.route(&c, &t, 0).unwrap();
        assert_eq!(dests.len(), 1);
        assert_eq!(dests[0], c.node_for_tile(500));
    }

    #[test]
    fn spatial_spanning_shape_replicated() {
        let c = cluster(8, "sp2");
        let d = Decluster::Spatial { col: 0 };
        // A polygon covering a large fraction of the world spans many tiles
        // and therefore several nodes.
        let poly = Polygon::from_rect(
            &Rect::from_corners(Point::new(-90.0, -45.0), Point::new(90.0, 45.0)).unwrap(),
        );
        let t = Tuple::new(vec![Value::Shape(Shape::Polygon(poly))]);
        let dests = d.route(&c, &t, 0).unwrap();
        assert!(dests.len() > 1, "spanning shape must be replicated");
        assert!(dests.len() <= 8);
        // destinations unique
        let mut sorted = dests.clone();
        sorted.dedup();
        assert_eq!(sorted, dests);
    }

    #[test]
    fn spatial_on_scalar_column_errors() {
        let c = cluster(2, "sp3");
        let d = Decluster::Spatial { col: 0 };
        let t = Tuple::new(vec![Value::Int(5)]);
        assert!(d.route(&c, &t, 0).is_err());
    }

    #[test]
    fn replication_fraction_grows_with_partition_count() {
        // §2.7.1: more partitions smooth skew but raise the fraction of
        // replicated tuples. Verify the mechanism with a fixed shape size.
        let world = Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        let shape_count = 400;
        let frac = |tiles: u32| -> f64 {
            let grid = paradise_geom::Grid::with_tile_count(world, tiles).unwrap();
            let mut replicated = 0;
            for i in 0..shape_count {
                let x = (i % 20) as f64 * 5.0 + 0.3;
                let y = (i / 20) as f64 * 5.0 + 0.3;
                let r = Rect::from_corners(Point::new(x, y), Point::new(x + 2.0, y + 2.0)).unwrap();
                if grid.tile_ids_for_rect(&r).len() > 1 {
                    replicated += 1;
                }
            }
            f64::from(replicated) / f64::from(shape_count)
        };
        let few = frac(16);
        let many = frac(2048);
        assert!(many > few, "replication should grow with partitions: {few} vs {many}");
    }
}
