//! The threaded push-model driver (paper §2.3): operators run as threads
//! connected by flow-controlled streams, with tuples pushed from the
//! leaves of the operator tree upward — "when a scan or selection query is
//! executed, a separate thread is started for each fragment of each
//! table".
//!
//! The measured phase driver ([`crate::phase`]) is what the experiments
//! use (deterministic per-node busy times); this module is the
//! architecture the paper describes, useful when real overlap between
//! producer and consumer matters.

use crate::cluster::Cluster;
use crate::stream::{mem_stream, SplitStream, TupleRx, TupleTx, DEFAULT_WINDOW};
use crate::table::TableDef;
use crate::tuple::Tuple;
use crate::{ExecError, NodeId, Result};
use std::thread::JoinHandle;

/// A handle to a running operator thread.
pub struct OperatorHandle {
    join: JoinHandle<Result<()>>,
}

impl OperatorHandle {
    /// Waits for the operator to finish.
    pub fn wait(self) -> Result<()> {
        self.join.join().map_err(|_| ExecError::Other("operator thread panicked".into()))?
    }
}

/// Starts a scan operator thread over one fragment, pushing every tuple of
/// the fragment into `out`.
pub fn spawn_scan(
    cluster: &Cluster,
    table: &TableDef,
    node: NodeId,
    out: TupleTx,
) -> OperatorHandle {
    let file = cluster.node(node).store.file(&table.fragment_file());
    let join = std::thread::spawn(move || -> Result<()> {
        if let Some(file) = file {
            crate::stream::FileStream::read_all(&file, &out)?;
        }
        Ok(())
    });
    OperatorHandle { join }
}

/// Starts a filter operator thread: reads `input`, pushes tuples passing
/// `pred` into `out`.
pub fn spawn_filter(
    input: TupleRx,
    out: TupleTx,
    pred: impl Fn(&Tuple) -> Result<bool> + Send + 'static,
) -> OperatorHandle {
    let join = std::thread::spawn(move || -> Result<()> {
        for t in input {
            if pred(&t)? {
                out.send(t)?;
            }
        }
        Ok(())
    });
    OperatorHandle { join }
}

/// Starts a split (repartitioning) operator thread: reads `input` and
/// demultiplexes into `split`.
pub fn spawn_split(input: TupleRx, split: SplitStream) -> OperatorHandle {
    let join = std::thread::spawn(move || -> Result<()> {
        for t in input {
            split.push(t)?;
        }
        Ok(())
    });
    OperatorHandle { join }
}

/// Runs a fully-threaded parallel scan + filter over every fragment of a
/// table: one scan thread and one filter thread per node (the paper's
/// per-fragment threads), with results demultiplexed back to the
/// coordinator over per-node network streams. Returns all passing tuples.
pub fn parallel_filter_scan(
    cluster: &Cluster,
    table: &TableDef,
    pred: impl Fn(&Tuple) -> Result<bool> + Send + Clone + 'static,
) -> Result<Vec<Tuple>> {
    let n = cluster.num_nodes();
    let mut handles = Vec::with_capacity(2 * n);
    let mut result_rxs = Vec::with_capacity(n);
    for node in 0..n {
        // scan -> (mem stream) -> filter -> (network stream to the QC).
        let (scan_tx, scan_rx) = mem_stream(DEFAULT_WINDOW);
        // The QC is modelled as "node n" (a distinct endpoint), so every
        // result tuple is network traffic, as with the real coordinator.
        // Over a Tcp transport this stream runs on a real socket.
        let (res_tx, res_rx) = cluster.stream(DEFAULT_WINDOW, node, n)?;
        handles.push(spawn_scan(cluster, table, node, scan_tx));
        handles.push(spawn_filter(scan_rx, res_tx, pred.clone()));
        result_rxs.push(res_rx);
    }
    let mut out = Vec::new();
    for rx in result_rxs {
        out.extend(rx);
    }
    for h in handles {
        h.wait()?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::decluster::Decluster;
    use crate::schema::{DataType, Field, Schema};
    use crate::stream::hash_split;
    use crate::value::Value;

    fn setup(tag: &str) -> (Cluster, TableDef) {
        let c = Cluster::create(&ClusterConfig::for_test(4, tag)).unwrap();
        let t = TableDef::new(
            "nums",
            Schema::new(vec![Field::new("x", DataType::Int)]),
            Decluster::RoundRobin,
        );
        t.load(&c, (0..200).map(|i| Tuple::new(vec![Value::Int(i)]))).unwrap();
        (c, t)
    }

    #[test]
    fn threaded_scan_filter_matches_expected() {
        let (c, t) = setup("pl1");
        let out = parallel_filter_scan(&c, &t, |t| Ok(t.get(0)?.as_int()? % 3 == 0)).unwrap();
        assert_eq!(out.len(), (0..200).filter(|i| i % 3 == 0).count());
        // Every result crossed a network stream to the coordinator.
        assert!(c.net.snapshot().tuples >= out.len() as u64);
    }

    #[test]
    fn threaded_repartition_via_split_streams() {
        let (c, t) = setup("pl2");
        // One scan per node feeding a split stream that hash-partitions
        // into 2 downstream consumers (window large enough for skew).
        let (d0_tx, d0_rx) = mem_stream(512);
        let (d1_tx, d1_rx) = mem_stream(512);
        let mut handles = Vec::new();
        for node in 0..c.num_nodes() {
            let (scan_tx, scan_rx) = mem_stream(64);
            handles.push(spawn_scan(&c, &t, node, scan_tx));
            let split = SplitStream::new(vec![d0_tx.clone(), d1_tx.clone()], hash_split(0, 2));
            handles.push(spawn_split(scan_rx, split));
        }
        drop(d0_tx);
        drop(d1_tx);
        let a = d0_rx.collect();
        let b = d1_rx.collect();
        for h in handles {
            h.wait().unwrap();
        }
        assert_eq!(a.len() + b.len(), 200);
        assert!(!a.is_empty() && !b.is_empty());
        // Determinism: the same key always lands in the same partition.
        let in_a: std::collections::HashSet<i64> =
            a.iter().map(|t| t.get(0).unwrap().as_int().unwrap()).collect();
        for t in &b {
            assert!(!in_a.contains(&t.get(0).unwrap().as_int().unwrap()));
        }
    }

    #[test]
    fn empty_table_threaded_scan() {
        let c = Cluster::create(&ClusterConfig::for_test(2, "pl3")).unwrap();
        let t = TableDef::new(
            "empty",
            Schema::new(vec![Field::new("x", DataType::Int)]),
            Decluster::RoundRobin,
        );
        // Never loaded: fragments missing entirely.
        let out = parallel_filter_scan(&c, &t, |_| Ok(true)).unwrap();
        assert!(out.is_empty());
    }
}
